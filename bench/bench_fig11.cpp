// Fig. 11: GS-TG speedup for tile+group size combinations (8+16, 8+32,
// 8+64, 16+32, 16+64) over the conventional pipeline, four scenes,
// GPU-order execution (stages sequential, as on a GPU). The paper finds
// 16+64 fastest in most cases.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "render/pipeline.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;
using benchutil::cached_scene;

struct Combo {
  int tile;
  int group;
};
constexpr std::array<Combo, 5> kCombos = {{{8, 16}, {8, 32}, {8, 64}, {16, 32}, {16, 64}}};

std::map<std::string, double> g_baseline_ms;                  // per scene
std::map<std::string, std::map<std::string, double>> g_ours;  // combo -> scene -> ms

std::string combo_name(const Combo& c) {
  return std::to_string(c.tile) + "+" + std::to_string(c.group);
}

void run_baseline(benchmark::State& state, const std::string& scene_name) {
  const Scene& scene = cached_scene(scene_name);
  RenderConfig config;  // tile 16, Ellipse: the conventional fast default
  config.tile_size = 16;
  config.boundary = Boundary::kEllipse;
  double ms = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    const RenderResult r = render_baseline(scene.cloud, scene.camera, config);
    benchmark::DoNotOptimize(r.counters.alpha_computations);
    ms += r.times.total_ms();
    ++iterations;
  }
  g_baseline_ms[scene_name] = ms / iterations;
}

void run_combo(benchmark::State& state, const std::string& scene_name, const Combo& combo) {
  const Scene& scene = cached_scene(scene_name);
  GsTgConfig config;
  config.tile_size = combo.tile;
  config.group_size = combo.group;
  double ms = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    const RenderResult r = render_gstg(scene.cloud, scene.camera, config);
    benchmark::DoNotOptimize(r.counters.alpha_computations);
    ms += r.times.total_ms();  // GPU order: all four stages sequential
    ++iterations;
  }
  g_ours[combo_name(combo)][scene_name] = ms / iterations;
}

void print_table() {
  TextTable table("Fig. 11: GS-TG speedup vs tile+group size (GPU-order, vs baseline 16 Ellipse)");
  std::vector<std::string> header = {"combo"};
  for (const auto& s : algo_scene_names()) header.push_back(s);
  table.set_header(header);
  for (const Combo& combo : kCombos) {
    std::vector<double> row;
    for (const auto& scene : algo_scene_names()) {
      row.push_back(g_baseline_ms[scene] / g_ours[combo_name(combo)][scene]);
    }
    table.add_row(combo_name(combo), row, 2);
  }
  table.print();
  std::printf("\npaper reference: speedups around 0.9-1.3 with 16+64 fastest in most cases.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 11: tile+group size sweep");
  for (const auto& scene : algo_scene_names()) {
    benchmark::RegisterBenchmark(
        ("Fig11/baseline/" + scene).c_str(),
        [scene](benchmark::State& state) { run_baseline(state, scene); })
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);
    for (const Combo& combo : kCombos) {
      benchmark::RegisterBenchmark(
          ("Fig11/" + combo_name(combo) + "/" + scene).c_str(),
          [scene, combo](benchmark::State& state) { run_combo(state, scene, combo); })
          ->Iterations(3)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
