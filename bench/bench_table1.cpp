// Table I: percentage of Gaussians shared with adjacent tiles vs tile size
// (8/16/32/64), four scenes, AABB binning — plus the Table II scene
// metadata as a header. Reproduces the redundant-sorting motivation.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "render/binning.h"
#include "render/preprocess.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;
using benchutil::cached_scene;

constexpr std::array<int, 4> kTileSizes = {8, 16, 32, 64};

// shared% per (scene, tile), filled by the registered benchmarks.
std::map<std::string, std::map<int, double>> g_shared;

void run_case(benchmark::State& state, const std::string& scene_name, int tile) {
  const Scene& scene = cached_scene(scene_name);
  RenderConfig config;
  config.tile_size = tile;
  config.boundary = Boundary::kAabb;
  double shared = 0.0;
  for (auto _ : state) {
    RenderCounters counters;
    const auto splats = preprocess(scene.cloud, scene.camera, config, counters);
    const CellGrid grid =
        CellGrid::over_image(scene.camera.width(), scene.camera.height(), tile);
    benchmark::DoNotOptimize(bin_splats(splats, grid, config.boundary, 0, counters));
    shared = counters.shared_gaussian_percent();
  }
  g_shared[scene_name][tile] = shared;
  state.counters["shared_pct"] = shared;
}

void print_table() {
  TextTable scenes_table("Table II: datasets (paper resolution; bench runs scaled per banner)");
  scenes_table.set_header({"dataset", "scene", "resolution", "type"});
  for (const auto& info : all_scenes()) {
    scenes_table.add_row({info.dataset, info.name,
                          std::to_string(info.paper_width) + "x" + std::to_string(info.paper_height),
                          info.kind == SceneKind::kIndoorRoom ? "Indoor" : "Outdoor"});
  }
  scenes_table.print();
  std::printf("\n");

  TextTable table("Table I: % of Gaussians shared with adjacent tiles (AABB)");
  table.set_header({"scene", "8x8", "16x16", "32x32", "64x64"});
  std::array<double, 4> sums{};
  for (const auto& scene : algo_scene_names()) {
    std::vector<double> row;
    for (std::size_t i = 0; i < kTileSizes.size(); ++i) {
      const double v = g_shared[scene][kTileSizes[i]];
      row.push_back(v);
      sums[i] += v;
    }
    table.add_row(scene, row, 1);
  }
  std::vector<double> avg;
  for (const double s : sums) avg.push_back(s / static_cast<double>(algo_scene_names().size()));
  table.add_row("Average", avg, 1);
  table.print();
  std::printf("\npaper reference (Table I):\n"
              "  Train 94.4/89.0/79.7/66.0  Truck 89.0/79.2/64.7/47.7\n"
              "  Drjohnson 91.4/83.9/71.3/54.0  Playroom 91.3/83.8/71.7/54.7\n"
              "  Average 91.5/84.0/71.9/55.6\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Table I/II: Gaussian sharing across tile sizes");
  for (const auto& scene : algo_scene_names()) {
    for (const int tile : kTileSizes) {
      benchmark::RegisterBenchmark(
          ("Table1/" + scene + "/tile:" + std::to_string(tile)).c_str(),
          [scene, tile](benchmark::State& state) { run_case(state, scene, tile); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
