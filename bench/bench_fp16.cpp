// fp16 fidelity experiment (extension; DESIGN.md section 6).
//
// Section VI-A converts the fp32-trained models to fp16 for the
// accelerator. This bench quantifies what that costs: it renders each
// algorithm scene from the fp32 cloud and from the fp16-quantised cloud
// and reports PSNR / SSIM between the two, plus the quantisation error and
// the change in pipeline workload (pairs), supporting the paper's implicit
// claim that fp16 is visually lossless.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "gaussian/quantize.h"
#include "render/metrics.h"
#include "render/pipeline.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;

struct Fp16Result {
  double psnr_db = 0.0;
  double ssim_score = 0.0;
  double max_sh_err = 0.0;
  double pairs_ratio = 0.0;
};

std::map<std::string, Fp16Result> g_results;

void run_scene(benchmark::State& state, const std::string& scene_name) {
  for (auto _ : state) {
    const Scene scene = generate_scene(scene_name);
    RenderConfig config;
    config.tile_size = 16;
    config.boundary = Boundary::kEllipse;
    const RenderResult fp32 = render_baseline(scene.cloud, scene.camera, config);

    GaussianCloud quantized = scene.cloud;
    const QuantizeReport q = quantize_cloud_to_fp16(quantized);
    const RenderResult fp16 = render_baseline(quantized, scene.camera, config);

    Fp16Result r;
    r.psnr_db = psnr(fp32.image, fp16.image);
    r.ssim_score = ssim(fp32.image, fp16.image);
    r.max_sh_err = q.max_sh_error;
    r.pairs_ratio = static_cast<double>(fp16.counters.tile_pairs) /
                    static_cast<double>(fp32.counters.tile_pairs);
    g_results[scene_name] = r;
    benchmark::DoNotOptimize(r.psnr_db);
  }
  state.counters["psnr_db"] = g_results[scene_name].psnr_db;
}

void print_table() {
  TextTable table("fp16 model quantisation fidelity (baseline Ellipse, tile 16)");
  table.set_header({"scene", "PSNR [dB]", "SSIM", "max SH err", "pairs fp16/fp32"});
  for (const auto& scene : algo_scene_names()) {
    const Fp16Result& r = g_results[scene];
    table.add_row({scene, format_fixed(r.psnr_db, 1), format_fixed(r.ssim_score, 4),
                   format_fixed(r.max_sh_err, 5), format_fixed(r.pairs_ratio, 4)});
  }
  table.print();
  std::printf(
      "\ninterpretation: PSNR well above ~40 dB and SSIM ~1 mean the fp16\n"
      "conversion the paper applies (section VI-A) is visually lossless; the\n"
      "pairs ratio shows the binning workload is essentially unchanged.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("fp16 fidelity (extension)");
  for (const auto& scene : algo_scene_names()) {
    benchmark::RegisterBenchmark(("Fp16/" + scene).c_str(),
                                 [scene](benchmark::State& state) { run_scene(state, scene); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
