// bench_service: multi-client serving driver for the async render service.
// Per scene it drives N simulated clients (each a session streaming a
// tour-sampled orbit) against one RenderService, checks every concurrent
// response bit-identical to a per-request sequential render_gstg, measures
// the 1 -> 4 client throughput scaling, runs the verify-gate audit, and
// probes the malformed-input paths (bad request, unknown scene, garbled
// PLY) for typed rejections. Writes BENCH_service.json — gated against the
// committed baseline by scripts/check_bench.py --service.
//
// Like run_all, this only needs the project libraries, so it always builds.
// An identity/verify/typed-error violation exits with code 2 so CI's bench
// step goes red.
//
// Run:  ./bench_service [--out-dir=.] [--scenes=train,truck] [--workers=4]
//                       [--frames=14] [--verify-frames=6]
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "json_writer.h"
#include "render/framebuffer.h"
#include "service/render_service.h"
#include "telemetry/trace.h"
#include "temporal/camera_path.h"

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;
using benchutil::split_csv;

/// One multi-client run against a fresh service: every client streams the
/// same frame sequence under its own session. Returns wall-clock and
/// whether every response was ok and bit-identical to `reference`.
struct ClientRunResult {
  double wall_ms = 0.0;
  bool identical = true;
  ServiceStats stats;
  std::vector<double> latency_ms;  ///< per-request submit -> resolve, all clients
};

ClientRunResult run_clients(const std::string& scene_key, const std::vector<Camera>& cameras,
                            const std::vector<Framebuffer>& reference, std::size_t clients,
                            const ServiceConfig& config) {
  RenderService service(config);
  ClientRunResult result;
  std::vector<char> client_ok(clients, 1);

  // Warm the scene cache (and the stateless render path) outside the timed
  // window: the run measures steady-state serving throughput, not the
  // one-time synthetic-scene generation the first request triggers.
  {
    const RenderResponse warmup = service.submit(RenderRequest{scene_key, cameras.front(), 0}).get();
    if (!warmup.ok() || max_abs_diff(reference.front(), warmup.image) != 0.0f) {
      result.identical = false;
    }
  }

  Timer timer;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<RenderResponse>> futures;
      std::vector<std::uint64_t> submitted_ns;
      futures.reserve(cameras.size());
      submitted_ns.reserve(cameras.size());
      for (const Camera& camera : cameras) {
        submitted_ns.push_back(telemetry::now_ns());
        futures.push_back(
            service.submit(RenderRequest{scene_key, camera, static_cast<std::uint64_t>(c + 1)}));
      }
      for (std::size_t f = 0; f < futures.size(); ++f) {
        RenderResponse response = futures[f].get();
        latencies[c].push_back(
            static_cast<double>(telemetry::now_ns() - submitted_ns[f]) / 1e6);
        if (!response.ok() || max_abs_diff(reference[f], response.image) != 0.0f) {
          client_ok[c] = 0;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_ms = timer.lap_ms();
  for (const char ok : client_ok) result.identical = result.identical && ok != 0;
  for (std::vector<double>& client : latencies) {
    result.latency_ms.insert(result.latency_ms.end(), client.begin(), client.end());
  }
  result.stats = service.stats();
  return result;
}

/// Malformed-input probes: each must resolve with the expected typed status
/// (and the process must simply keep going).
bool probe_typed_rejections(const ServiceConfig& config, const Camera& camera,
                            const std::string& out_dir) {
  RenderService service(config);
  bool ok = true;

  const RenderResponse invalid = service.submit(RenderRequest{"", camera, 0}).get();
  ok = ok && invalid.status == ServiceStatus::kInvalidRequest && !invalid.error.empty();

  const RenderResponse unknown =
      service.submit(RenderRequest{"no-such-scene", camera, 0}).get();
  ok = ok && unknown.status == ServiceStatus::kSceneLoadFailed && !unknown.error.empty();

  // The garbled probe file lives next to the JSON output (never the source
  // checkout) and is removed as soon as the response resolves.
  const std::string path = out_dir + "/bench_service_garbled.ply";
  {
    std::ofstream out(path, std::ios::binary);
    out << "ply\nformat binary_little_endian 1.0\nelement vertex zzz\nend_header\n";
  }
  const RenderResponse garbled = service.submit(RenderRequest{path, camera, 0}).get();
  std::remove(path.c_str());
  ok = ok && garbled.status == ServiceStatus::kSceneLoadFailed &&
       garbled.error.find("PLY") != std::string::npos;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "scenes", "workers", "frames", "verify-frames"});
    const std::string out_dir = args.get("out-dir", ".");
    const std::size_t workers = args.get_size("workers", 4);
    const int frames = args.get_int("frames", 14);
    const int verify_frames = args.get_int("verify-frames", 6);
    if (workers == 0) throw std::invalid_argument("--workers must be >= 1");
    if (frames < 1 || verify_frames < 1) {
      throw std::invalid_argument("--frames and --verify-frames must be >= 1");
    }
    std::vector<std::string> scenes = split_csv(args.get("scenes", ""));
    if (scenes.empty()) scenes = benchutil::algo_scene_names();

    benchutil::print_scale_banner("bench_service: async multi-client render service");

    ServiceConfig config;  // threads=1, temporal kReuse: service-layer defaults
    config.workers = workers;
    config.queue_capacity = 64;
    config.scene_capacity = 4;
    config.max_batch = 8;

    bool correctness_ok = true;
    JsonWriter json(out_dir + "/BENCH_service.json");
    json.open_object();
    json.value("bench", "render_service");
    const RunScale scale = run_scale_from_env();
    json.open_object("scale");
    json.value("resolution_divisor", scale.resolution_divisor);
    json.value("gaussian_divisor", scale.gaussian_divisor);
    json.close_object();
    json.value("workers", workers);
    json.value("frames_per_client", frames);
    // Wall-clock scaling is bounded by the physical cores: ~1.0x is the
    // expected (and honest) result on a single-core machine, >1.5x needs
    // >= 4 cores. Recorded so the scaling numbers are interpretable.
    const unsigned cores = std::thread::hardware_concurrency();
    json.value("hardware_concurrency", static_cast<std::size_t>(cores));
    if (cores < 4) {
      std::printf(
          "bench_service: note — %u core(s) available; 1 -> 4 client scaling is "
          "core-bound (expect >1.5x only on >= 4 cores)\n",
          cores);
    }
    json.open_array("scenes");

    TextTable table("service throughput (frames/client: " + std::to_string(frames) + ", workers: " +
                    std::to_string(workers) + ")");
    table.set_header({"scene", "1-client fps", "4-client fps", "scaling", "reuse pairs",
                      "exact", "verify", "typed errors"});

    for (const std::string& name : scenes) {
      const Scene& scene = cached_scene(name);
      std::printf("bench_service: %s (%zu gaussians, %dx%d)\n", name.c_str(), scene.cloud.size(),
                  scene.render_width, scene.render_height);

      // Client stream: tour-sampled orbit (hold frames are where cross-frame
      // reuse pays; move frames carry real motion).
      const FrameSequence sequence = tour_frames(orbit_path(scene, 0.25f, 4), 2, 2);
      std::vector<Camera> cameras(sequence.cameras.begin(),
                                  sequence.cameras.begin() +
                                      std::min<std::size_t>(sequence.frame_count(),
                                                            static_cast<std::size_t>(frames)));

      // Sequential reference: per-request render_gstg — both the timing
      // anchor and the bit-identity oracle for every concurrent response.
      GsTgConfig reference_config = config.render;
      reference_config.temporal = TemporalMode::kOff;
      std::vector<Framebuffer> reference;
      reference.reserve(cameras.size());
      Timer timer;
      for (const Camera& camera : cameras) {
        reference.push_back(render_gstg(scene.cloud, camera, reference_config).image);
      }
      const double sequential_ms = timer.lap_ms();

      const ClientRunResult one = run_clients(name, cameras, reference, 1, config);
      const ClientRunResult four = run_clients(name, cameras, reference, 4, config);
      const double fps_one =
          one.wall_ms > 0.0 ? 1000.0 * static_cast<double>(cameras.size()) / one.wall_ms : 0.0;
      const double fps_four =
          four.wall_ms > 0.0 ? 4000.0 * static_cast<double>(cameras.size()) / four.wall_ms : 0.0;
      const double scaling = fps_one > 0.0 ? fps_four / fps_one : 0.0;

      // Verify-gate audit: shorter stream, every response re-rendered
      // through the one-shot pipeline inside the service.
      ServiceConfig verify_config = config;
      verify_config.verify = true;
      const std::vector<Camera> verify_cameras(
          cameras.begin(),
          cameras.begin() + std::min<std::size_t>(cameras.size(),
                                                  static_cast<std::size_t>(verify_frames)));
      const std::vector<Framebuffer> verify_reference(
          reference.begin(), reference.begin() + static_cast<std::ptrdiff_t>(verify_cameras.size()));
      const ClientRunResult verify = run_clients(name, verify_cameras, verify_reference, 2,
                                                 verify_config);
      const bool verify_ok = verify.identical && verify.stats.verify_mismatches == 0;

      const bool typed_ok = probe_typed_rejections(config, cameras.front(), out_dir);
      const bool identical = one.identical && four.identical;
      // The multi-client scaling claim is enforceable only where the
      // hardware can express it: on >= 4 cores, 1 -> 4 clients must scale
      // beyond 1.5x (the acceptance bar, with headroom below the ~4x
      // ideal); on fewer cores the gate records itself as inactive.
      const bool scaling_gate_active = cores >= 4;
      const bool scaling_ok = !scaling_gate_active || scaling > 1.5;
      if (!identical || !verify_ok || !typed_ok || !scaling_ok) {
        correctness_ok = false;
        std::fprintf(stderr, "bench_service: FAILURE on %s (%s)\n", name.c_str(),
                     !identical   ? "image diff vs sequential"
                     : !verify_ok ? "verify-gate mismatch"
                     : !typed_ok  ? "missing typed error"
                                  : "1->4 client scaling below 1.5x on a >=4-core machine");
      }

      table.add_row({name, format_fixed(fps_one, 1), format_fixed(fps_four, 1),
                     format_fixed(scaling, 2) + "x",
                     format_fixed(100.0 * four.stats.reuse_pair_ratio(), 1) + "%",
                     identical ? "yes" : "NO", verify_ok ? "yes" : "NO",
                     typed_ok ? "yes" : "NO"});

      json.open_object();
      json.value("scene", name);
      json.value("gaussians", scene.cloud.size());
      json.value("frames_per_client", cameras.size());
      json.value("sequential_ms", sequential_ms);
      json.value("wall_ms_1client", one.wall_ms);
      json.value("wall_ms_4client", four.wall_ms);
      // Shared nearest-rank helper (common/stats.h) over the 4-client run's
      // per-request submit -> resolve latencies.
      const PercentileSummary latency = summarize_percentiles(four.latency_ms);
      json.value("latency_p50_ms", latency.p50);
      json.value("latency_p95_ms", latency.p95);
      json.value("latency_p99_ms", latency.p99);
      json.value("throughput_fps_1client", fps_one);
      json.value("throughput_fps_4client", fps_four);
      json.value("scaling_1_to_4", scaling);
      json.value("requests_completed", four.stats.requests_completed);
      json.value("requests_failed", four.stats.requests_failed);
      json.value("cache_misses", four.stats.cache_misses);
      json.value("batches", four.stats.batches);
      json.value("max_batch", four.stats.max_batch);
      json.value("peak_queue_depth", four.stats.peak_queue_depth);
      json.value("sessions", four.stats.sessions);
      json.value("reuse_pairs", four.stats.reuse_pairs);
      json.value("sorted_pairs", four.stats.sorted_pairs);
      json.value("reuse_pair_ratio", four.stats.reuse_pair_ratio());
      json.value_bool("identical_to_sequential", identical);
      json.value_bool("verify_ok", verify_ok);
      json.value_bool("malformed_rejected", typed_ok);
      json.value_bool("scaling_gate_active", scaling_gate_active);
      json.value_bool("scaling_ok", scaling_ok);
      json.close_object();
    }
    json.close_array();
    json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
    json.close_object();
    json.finish();
    table.print();
    std::printf("bench_service: wrote %s/BENCH_service.json\n", out_dir.c_str());
    return correctness_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_service: %s\n", e.what());
    return 1;
  }
}
