// Fig. 7: average number of Gaussians that must be processed per pixel vs
// tile size, (a) AABB and (b) Ellipse, four scenes. The per-pixel workload
// is the tile list length seen by each pixel (computable from the binning
// alone): larger tiles -> coarser association -> more per-pixel work. Paper
// headline ratios: 4.79x (AABB) and 10.6x (truck, Ellipse, 64x64 vs 8x8).
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "render/binning.h"
#include "render/preprocess.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;
using benchutil::cached_scene;

constexpr std::array<int, 4> kTileSizes = {8, 16, 32, 64};

std::map<std::string, std::map<std::string, std::map<int, double>>> g_gpp;

/// Average per-pixel list length: sum over cells of len(cell) * pixels(cell)
/// divided by the image pixel count.
double gaussians_per_pixel(const BinnedSplats& bins) {
  const CellGrid& g = bins.grid;
  double work = 0.0;
  for (int c = 0; c < g.cell_count(); ++c) {
    const int cx = c % g.cells_x, cy = c / g.cells_x;
    const int w = std::min(g.cell_size, g.image_width - cx * g.cell_size);
    const int h = std::min(g.cell_size, g.image_height - cy * g.cell_size);
    work += static_cast<double>(bins.cell_size_of(c)) * w * h;
  }
  return work / (static_cast<double>(g.image_width) * g.image_height);
}

void run_case(benchmark::State& state, const std::string& scene_name, int tile,
              Boundary boundary) {
  const Scene& scene = cached_scene(scene_name);
  RenderConfig config;
  config.tile_size = tile;
  config.boundary = boundary;
  double gpp = 0.0;
  for (auto _ : state) {
    RenderCounters counters;
    const auto splats = preprocess(scene.cloud, scene.camera, config, counters);
    const CellGrid grid =
        CellGrid::over_image(scene.camera.width(), scene.camera.height(), tile);
    const BinnedSplats bins = bin_splats(splats, grid, boundary, 0, counters);
    gpp = gaussians_per_pixel(bins);
  }
  g_gpp[to_string(boundary)][scene_name][tile] = gpp;
  state.counters["gaussians_per_pixel"] = gpp;
}

void print_tables() {
  for (const char* boundary : {"AABB", "Ellipse"}) {
    TextTable table(std::string("Fig. 7 (") + boundary + "): avg Gaussians per pixel");
    table.set_header({"scene", "8x8", "16x16", "32x32", "64x64", "64x64/8x8"});
    for (const auto& scene : algo_scene_names()) {
      std::vector<double> row;
      for (const int tile : kTileSizes) row.push_back(g_gpp[boundary][scene][tile]);
      row.push_back(row.back() / row.front());
      table.add_row(scene, row, 1);
    }
    table.print();
    std::printf("\n");
  }
  std::printf("paper reference: per-pixel workload in the 10^3 range at large tiles;\n"
              "max ratio 4.79x (AABB) and 10.6x (truck, Ellipse).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 7: Gaussians per pixel vs tile size");
  for (const Boundary b : {Boundary::kAabb, Boundary::kEllipse}) {
    for (const auto& scene : algo_scene_names()) {
      for (const int tile : kTileSizes) {
        benchmark::RegisterBenchmark(
            ("Fig7/" + std::string(to_string(b)) + "/" + scene + "/tile:" + std::to_string(tile))
                .c_str(),
            [scene, tile, b](benchmark::State& state) { run_case(state, scene, tile, b); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
