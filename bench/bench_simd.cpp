// bench_simd: per-backend SIMD A/B driver. Renders every scene with every
// compiled backend in exact and fast-exp mode, verifies exact-mode
// bit-identity against the scalar backend, and writes BENCH_simd.json —
// the per-backend trajectory CI archives so speedups (and the bit-identity
// invariant) stay inspectable from any PR.
//
// Like run_all, this only needs the project libraries (no Google Benchmark),
// so it always builds.
//
// Run:  ./bench_simd [--out-dir=.] [--repeat=3] [--scenes=train,truck]
//                    [--threads=N]
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "core/pipeline.h"
#include "json_writer.h"
#include "render/framebuffer.h"
#include "render/simd_kernels.h"

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;
using benchutil::split_csv;

RenderResult best_of(int repeat, const Scene& scene, const GsTgConfig& config) {
  RenderResult best = render_gstg(scene.cloud, scene.camera, config);
  for (int i = 1; i < repeat; ++i) {
    RenderResult r = render_gstg(scene.cloud, scene.camera, config);
    if (r.times.total_ms() < best.times.total_ms()) best = std::move(r);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "repeat", "scenes", "threads"});
    const std::string out_dir = args.get("out-dir", ".");
    const int repeat = args.get_int("repeat", 3);
    const std::size_t threads = args.get_size("threads", 0);
    std::vector<std::string> scenes = split_csv(args.get("scenes", ""));
    if (scenes.empty()) scenes = benchutil::algo_scene_names();

    benchutil::print_scale_banner("bench_simd: per-backend rasterize/preprocess A/B");
    const std::vector<SimdBackend>& backends = available_simd_backends();
    std::printf("# backends:");
    for (const SimdBackend b : backends) std::printf(" %s", to_string(b));
    std::printf(" | widest verified: %s\n", to_string(widest_verified_backend()));

    bool identity_ok = true;
    JsonWriter json(out_dir + "/BENCH_simd.json");
    json.open_object();
    json.value("bench", "simd_ab");
    const RunScale scale = run_scale_from_env();
    json.open_object("scale");
    json.value("resolution_divisor", scale.resolution_divisor);
    json.value("gaussian_divisor", scale.gaussian_divisor);
    json.close_object();
    json.value("widest_verified", to_string(widest_verified_backend()));
    json.open_array("scenes");

    for (const std::string& name : scenes) {
      const Scene& scene = cached_scene(name);
      std::printf("bench_simd: %s (%zu gaussians, %dx%d)\n", name.c_str(), scene.cloud.size(),
                  scene.render_width, scene.render_height);

      GsTgConfig scalar_config;
      scalar_config.threads = threads;
      scalar_config.simd = SimdPolicy{SimdBackend::kScalar, ExpMode::kExact};
      const RenderResult scalar_exact = best_of(repeat, scene, scalar_config);

      json.open_object();
      json.value("scene", name);
      json.value("gaussians", scene.cloud.size());
      json.open_array("backends");
      for (const SimdBackend backend : backends) {
        GsTgConfig config;
        config.threads = threads;
        config.simd = SimdPolicy{backend, ExpMode::kExact};
        // The scalar/exact reference render doubles as that backend's sample.
        const RenderResult exact =
            backend == SimdBackend::kScalar ? scalar_exact : best_of(repeat, scene, config);
        config.simd.exp_mode = ExpMode::kFast;
        const RenderResult fast = best_of(repeat, scene, config);

        const bool identical = max_abs_diff(scalar_exact.image, exact.image) == 0.0f;
        if (!identical) {
          identity_ok = false;
          std::fprintf(stderr, "bench_simd: EXACT-MODE MISMATCH on %s (backend %s)\n",
                       name.c_str(), to_string(backend));
        }
        const double raster_speedup = exact.times.raster_ms > 0.0
                                          ? scalar_exact.times.raster_ms / exact.times.raster_ms
                                          : 0.0;
        const double fast_speedup = fast.times.raster_ms > 0.0
                                        ? scalar_exact.times.raster_ms / fast.times.raster_ms
                                        : 0.0;
        const double pre_speedup =
            exact.times.preprocess_ms > 0.0
                ? scalar_exact.times.preprocess_ms / exact.times.preprocess_ms
                : 0.0;
        std::printf(
            "  %-6s exact: pre %7.2fms raster %7.2fms (%.2fx / %.2fx) | fast raster %7.2fms "
            "(%.2fx) %s\n",
            to_string(backend), exact.times.preprocess_ms, exact.times.raster_ms, pre_speedup,
            raster_speedup, fast.times.raster_ms, fast_speedup,
            identical ? "bit-identical" : "MISMATCH");

        json.open_object();
        json.value("backend", to_string(backend));
        json.value("lane_width", simd_kernels(backend).lane_width);
        json.value("exact_preprocess_ms", exact.times.preprocess_ms);
        json.value("exact_sort_ms", exact.times.sort_ms);
        json.value("exact_raster_ms", exact.times.raster_ms);
        json.value("exact_total_ms", exact.times.total_ms());
        json.value_bool("exact_identical_to_scalar", identical);
        json.value("exact_raster_speedup_vs_scalar", raster_speedup);
        json.value("exact_preprocess_speedup_vs_scalar", pre_speedup);
        json.value("fast_preprocess_ms", fast.times.preprocess_ms);
        json.value("fast_raster_ms", fast.times.raster_ms);
        json.value("fast_raster_speedup_vs_scalar", fast_speedup);
        json.value("fast_max_abs_diff",
                   static_cast<double>(max_abs_diff(scalar_exact.image, fast.image)));
        json.close_object();
      }
      json.close_array();
      json.close_object();
    }
    json.close_array();
    json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
    json.close_object();
    json.finish();
    std::printf("bench_simd: wrote %s/BENCH_simd.json\n", out_dir.c_str());
    // An exact-mode divergence is a correctness regression: fail the driver
    // so CI's bench step goes red.
    return identity_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_simd: %s\n", e.what());
    return 1;
  }
}
