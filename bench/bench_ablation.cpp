// Ablation studies on the GS-TG design choices called out in DESIGN.md:
//   (a) BGM/GSM overlap: the dedicated-hardware parallelism of section V-A
//       vs GPU-like sequential execution of the two steps,
//   (b) RM filter width (8 in the paper) sweep,
//   (c) group dispatch policy: cost-ordered (LPT) vs naive round-robin,
//   (d) DRAM bandwidth sensitivity (is 51.2 GB/s enough?).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.h"
#include "common/table.h"
#include "gaussian/quantize.h"
#include "sim/accel.h"
#include "sim/modules.h"
#include "sim/workload.h"

namespace {

using namespace gstg;
using benchutil::cached_scene;

FrameWorkload g_workload;

void build_workload() {
  Scene scene = generate_scene("truck");
  quantize_cloud_to_fp16(scene.cloud);
  GsTgConfig config;
  g_workload = build_gstg_workload(scene.cloud, scene.camera, config);
  g_workload.scene = "truck";
}

void bm_build(benchmark::State& state) {
  for (auto _ : state) {
    build_workload();
  }
}
BENCHMARK(bm_build)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_tables() {
  const HwConfig hw;
  const SimReport overlap = simulate_frame(g_workload, gstg_pipeline_model(), hw);

  TextTable a("Ablation (a): BGM/GSM overlap (truck scene)");
  a.set_header({"execution", "total cycles", "sort-stage cycles", "speedup"});
  PipelineModel sequential_model = gstg_pipeline_model();
  sequential_model.sequential_bgm = true;  // GPU-order: BGM then GSM
  const SimReport sequential = simulate_frame(g_workload, sequential_model, hw);
  a.add_row({"sequential (GPU order)", format_fixed(sequential.total_cycles, 0),
             format_fixed(sequential.sort_stage_cycles, 0), "1.00"});
  a.add_row({"overlapped (GS-TG HW)", format_fixed(overlap.total_cycles, 0),
             format_fixed(overlap.sort_stage_cycles, 0),
             format_fixed(sequential.total_cycles / overlap.total_cycles, 3)});
  a.print();
  std::printf("\n");

  TextTable b("Ablation (b): RM bitmask filter width");
  b.set_header({"width", "total cycles", "vs width 8"});
  HwConfig hw_w = hw;
  const double base_cycles = overlap.total_cycles;
  for (const int width : {1, 2, 4, 8, 16, 32}) {
    hw_w.rm_filter_width = width;
    const SimReport r = simulate_frame(g_workload, gstg_pipeline_model(), hw_w);
    b.add_row({std::to_string(width), format_fixed(r.total_cycles, 0),
               format_fixed(base_cycles / r.total_cycles, 3)});
  }
  b.print();
  std::printf("\n");

  TextTable d("Ablation (d): DRAM bandwidth sensitivity");
  d.set_header({"bandwidth [GB/s]", "total cycles", "bottleneck"});
  HwConfig hw_bw = hw;
  for (const double gbps : {6.4, 12.8, 25.6, 51.2, 102.4}) {
    hw_bw.dram_bytes_per_second = gbps * 1e9;
    const SimReport r = simulate_frame(g_workload, gstg_pipeline_model(), hw_bw);
    d.add_row({format_fixed(gbps, 1), format_fixed(r.total_cycles, 0), r.bottleneck});
  }
  d.print();
  std::printf("\nnote: ablation (c), dispatch policy, is implicit — simulate_frame uses\n"
              "cost-ordered dispatch; see tests/sim/test_accel.cpp for the imbalance case.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Ablations: overlap, filter width, DRAM bandwidth");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
