// Shared runner for the hardware-evaluation figures (14/15): builds the
// three designs' workloads per scene and simulates each on the GS-TG
// hardware configuration. The models are fp16-quantised first, as in the
// paper's methodology (section VI-A).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "gaussian/quantize.h"
#include "sim/accel.h"
#include "sim/workload.h"

namespace gstg::benchutil {

struct SceneSims {
  SimReport baseline;
  SimReport gscore;
  SimReport gstg;
};

/// Runs baseline / GSCore / GS-TG on one scene and returns the reports.
inline SceneSims simulate_scene(const std::string& scene_name) {
  Scene scene = generate_scene(scene_name);
  quantize_cloud_to_fp16(scene.cloud);

  const HwConfig hw;

  RenderConfig baseline_config;
  baseline_config.tile_size = 16;
  baseline_config.boundary = Boundary::kEllipse;
  FrameWorkload wb =
      build_tile_sorted_workload(scene.cloud, scene.camera, baseline_config, "Baseline");
  FrameWorkload wc = build_gscore_workload(scene.cloud, scene.camera, 16);
  GsTgConfig gstg_config;  // 16+64, Ellipse+Ellipse
  FrameWorkload wg = build_gstg_workload(scene.cloud, scene.camera, gstg_config);
  wb.scene = wc.scene = wg.scene = scene_name;

  SceneSims sims{simulate_frame(wb, baseline_pipeline_model(), hw),
                 simulate_frame(wc, gscore_pipeline_model(), hw),
                 simulate_frame(wg, gstg_pipeline_model(), hw)};
  return sims;
}

}  // namespace gstg::benchutil
