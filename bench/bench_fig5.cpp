// Fig. 5: average number of intersecting tiles per Gaussian across tile
// sizes (8/16/32/64), for (a) AABB and (b) Ellipse boundaries, four scenes.
// The paper's headline ratios: 18.3x (playroom, AABB, 8x8 vs 64x64) and
// 7.09x (ellipse).
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "render/binning.h"
#include "render/preprocess.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;
using benchutil::cached_scene;

constexpr std::array<int, 4> kTileSizes = {8, 16, 32, 64};

// tiles-per-gaussian per (boundary, scene, tile).
std::map<std::string, std::map<std::string, std::map<int, double>>> g_tpg;

void run_case(benchmark::State& state, const std::string& scene_name, int tile,
              Boundary boundary) {
  const Scene& scene = cached_scene(scene_name);
  RenderConfig config;
  config.tile_size = tile;
  config.boundary = boundary;
  double tpg = 0.0;
  for (auto _ : state) {
    RenderCounters counters;
    const auto splats = preprocess(scene.cloud, scene.camera, config, counters);
    const CellGrid grid =
        CellGrid::over_image(scene.camera.width(), scene.camera.height(), tile);
    benchmark::DoNotOptimize(bin_splats(splats, grid, boundary, 0, counters));
    tpg = counters.tiles_per_gaussian();
  }
  g_tpg[to_string(boundary)][scene_name][tile] = tpg;
  state.counters["tiles_per_gaussian"] = tpg;
}

void print_tables() {
  for (const char* boundary : {"AABB", "Ellipse"}) {
    TextTable table(std::string("Fig. 5 (") + boundary +
                    "): avg intersecting tiles per Gaussian");
    table.set_header({"scene", "8x8", "16x16", "32x32", "64x64", "8x8/64x64"});
    for (const auto& scene : algo_scene_names()) {
      std::vector<double> row;
      for (const int tile : kTileSizes) row.push_back(g_tpg[boundary][scene][tile]);
      row.push_back(row.front() / row.back());
      table.add_row(scene, row, 2);
    }
    table.print();
    std::printf("\n");
  }
  std::printf("paper reference: max ratio 18.3x (AABB, playroom), 7.09x (Ellipse);\n"
              "tiles/Gaussian grows steeply as tiles shrink in both plots.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 5: tiles per Gaussian vs tile size");
  for (const Boundary b : {Boundary::kAabb, Boundary::kEllipse}) {
    for (const auto& scene : algo_scene_names()) {
      for (const int tile : kTileSizes) {
        benchmark::RegisterBenchmark(
            ("Fig5/" + std::string(to_string(b)) + "/" + scene + "/tile:" + std::to_string(tile))
                .c_str(),
            [scene, tile, b](benchmark::State& state) { run_case(state, scene, tile, b); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
