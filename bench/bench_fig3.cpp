// Fig. 3: per-stage runtime breakdown (preprocessing, sorting,
// rasterization) across tile sizes 8/16/32/64 for four scenes, with (a)
// AABB and (b) Ellipse boundaries. Absolute times are CPU-scale (the paper
// profiles an A6000); the *shape* — preprocessing/sorting shrink with tile
// size while rasterization grows — is the reproduced result.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "render/pipeline.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;
using benchutil::cached_scene;

constexpr std::array<int, 4> kTileSizes = {8, 16, 32, 64};

std::map<std::string, std::map<std::string, std::map<int, StageTimes>>> g_times;

void run_case(benchmark::State& state, const std::string& scene_name, int tile,
              Boundary boundary) {
  const Scene& scene = cached_scene(scene_name);
  RenderConfig config;
  config.tile_size = tile;
  config.boundary = boundary;
  StageTimes times;
  for (auto _ : state) {
    const RenderResult r = render_baseline(scene.cloud, scene.camera, config);
    benchmark::DoNotOptimize(r.counters.alpha_computations);
    times = r.times;
  }
  g_times[to_string(boundary)][scene_name][tile] = times;
  state.counters["pre_ms"] = times.preprocess_ms;
  state.counters["sort_ms"] = times.sort_ms;
  state.counters["raster_ms"] = times.raster_ms;
}

void print_tables() {
  for (const char* boundary : {"AABB", "Ellipse"}) {
    TextTable table(std::string("Fig. 3 (") + boundary +
                    "): stage runtime breakdown [ms, this CPU]");
    table.set_header({"scene", "tile", "preprocess", "sort", "raster", "total"});
    for (const auto& scene : algo_scene_names()) {
      for (const int tile : kTileSizes) {
        const StageTimes& t = g_times[boundary][scene][tile];
        table.add_row({scene, std::to_string(tile) + "x" + std::to_string(tile),
                       format_fixed(t.preprocess_ms, 2), format_fixed(t.sort_ms, 2),
                       format_fixed(t.raster_ms, 2), format_fixed(t.total_ms(), 2)});
      }
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "paper reference (A6000): preprocessing + sorting fall and rasterization rises\n"
      "with tile size; 16x16 is usually the fastest overall, occasionally 32x32.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 3: stage runtimes vs tile size");
  for (const Boundary b : {Boundary::kAabb, Boundary::kEllipse}) {
    for (const auto& scene : algo_scene_names()) {
      for (const int tile : kTileSizes) {
        benchmark::RegisterBenchmark(
            ("Fig3/" + std::string(to_string(b)) + "/" + scene + "/tile:" + std::to_string(tile))
                .c_str(),
            [scene, tile, b](benchmark::State& state) { run_case(state, scene, tile, b); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
