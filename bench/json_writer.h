// Minimal JSON writer shared by the bench drivers (run_all, bench_simd):
// enough structure for the BENCH_*.json records, no dependency. Tracks
// "first member" state so callers just emit key/values.
#pragma once

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace gstg::benchutil {

class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path) : file_(std::fopen(path.c_str(), "w")) {
    if (file_ == nullptr) throw std::runtime_error("bench: cannot open " + path);
  }
  ~JsonWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void open_object() { punctuate("{"); first_ = true; ++depth_; }
  void close_object() { --depth_; newline_indent(); std::fputs("}", file_); first_ = false; }
  void open_array(const std::string& key) { this->key(key); std::fputs("[", file_); first_ = true; ++depth_; }
  void close_array() { --depth_; newline_indent(); std::fputs("]", file_); first_ = false; }
  void open_object(const std::string& key) { this->key(key); std::fputs("{", file_); first_ = true; ++depth_; }

  void value(const std::string& key, const std::string& v) {
    this->key(key);
    std::fprintf(file_, "\"%s\"", escape(v).c_str());
  }
  void value(const std::string& key, double v) {
    this->key(key);
    // Bare inf/nan tokens are not JSON; emit null so the file stays parseable.
    if (std::isfinite(v)) {
      std::fprintf(file_, "%.6g", v);
    } else {
      std::fputs("null", file_);
    }
  }
  void value(const std::string& key, std::size_t v) {
    this->key(key);
    std::fprintf(file_, "%zu", v);
  }
  void value(const std::string& key, int v) {
    this->key(key);
    std::fprintf(file_, "%d", v);
  }
  void value_bool(const std::string& key, bool v) {
    this->key(key);
    std::fputs(v ? "true" : "false", file_);
  }

  void finish() {
    std::fputs("\n", file_);
    std::fclose(file_);
    file_ = nullptr;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  void punctuate(const char* open) {
    if (!first_ && depth_ > 0) std::fputs(",", file_);
    if (depth_ > 0) newline_indent();
    std::fputs(open, file_);
  }
  void key(const std::string& k) {
    if (!first_) std::fputs(",", file_);
    newline_indent();
    std::fprintf(file_, "\"%s\": ", escape(k).c_str());
    first_ = false;
  }
  void newline_indent() {
    std::fputs("\n", file_);
    for (int i = 0; i < depth_; ++i) std::fputs("  ", file_);
  }

  std::FILE* file_;
  bool first_ = true;
  int depth_ = 0;
};

}  // namespace gstg::benchutil
