// Fig. 15: normalised energy efficiency (frames per joule) of GS-TG vs the
// baseline accelerator and GSCore across six scenes plus the geometric
// mean, using the Table III power model and the DRAM pJ/byte model.
// Paper: GS-TG geomean 2.12x over the baseline, up to 2.97x (residence).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim_runner.h"

namespace {

using namespace gstg;
using benchutil::all_scene_names;
using benchutil::SceneSims;

std::map<std::string, SceneSims> g_sims;

void run_scene(benchmark::State& state, const std::string& scene_name) {
  for (auto _ : state) {
    g_sims[scene_name] = benchutil::simulate_scene(scene_name);
  }
  const SceneSims& s = g_sims[scene_name];
  state.counters["energy_eff_gstg"] = s.baseline.energy.total_j() / s.gstg.energy.total_j();
}

void print_table() {
  TextTable table("Fig. 15: energy efficiency normalised to the baseline accelerator");
  table.set_header({"scene", "Baseline", "GSCore", "GS-TG", "GS-TG uJ/frame", "DRAM share"});
  std::vector<double> gscore_eff, gstg_eff;
  for (const auto& scene : all_scene_names()) {
    const SceneSims& s = g_sims[scene];
    const double eff_gscore = s.baseline.energy.total_j() / s.gscore.energy.total_j();
    const double eff_gstg = s.baseline.energy.total_j() / s.gstg.energy.total_j();
    gscore_eff.push_back(eff_gscore);
    gstg_eff.push_back(eff_gstg);
    table.add_row({scene, "1.00", format_fixed(eff_gscore, 2), format_fixed(eff_gstg, 2),
                   format_fixed(s.gstg.energy.total_j() * 1e6, 2),
                   format_fixed(100.0 * s.gstg.energy.dram_j / s.gstg.energy.total_j(), 0) + "%"});
  }
  table.add_row({"geomean", "1.00", format_fixed(geometric_mean(gscore_eff), 2),
                 format_fixed(geometric_mean(gstg_eff), 2), "-", "-"});
  table.print();
  std::printf(
      "\npaper reference: GS-TG geomean 2.12x vs baseline, max 2.97x at residence.\n"
      "Savings come from shorter runtime plus group-shared feature fetches\n"
      "cutting DRAM traffic.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 15: accelerator energy efficiency, 6 scenes");
  for (const auto& scene : all_scene_names()) {
    benchmark::RegisterBenchmark(("Fig15/" + scene).c_str(),
                                 [scene](benchmark::State& state) { run_scene(state, scene); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
