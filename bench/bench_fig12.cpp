// Fig. 12: GS-TG speedup for boundary-method combinations, four scenes,
// normalised to the baseline with AABB. The x-axis boundary is used by the
// baseline's tile identification and by GS-TG's group identification; the
// bar colour is the boundary used in GS-TG's bitmask generation. Key paper
// findings: (1) Ellipse+Ellipse beats every baseline, (2) same-boundary
// GS-TG beats the same-boundary baseline, (3) grouping composes with any
// boundary method.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "render/pipeline.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;
using benchutil::cached_scene;

constexpr std::array<Boundary, 3> kBoundaries = {Boundary::kAabb, Boundary::kObb,
                                                 Boundary::kEllipse};

std::map<std::string, std::map<std::string, double>> g_ms;  // config -> scene -> ms

std::string base_key(Boundary b) { return std::string("Base+") + to_string(b); }
std::string ours_key(Boundary group, Boundary mask) {
  return std::string("Ours ") + to_string(group) + "+" + to_string(mask);
}

void run_baseline(benchmark::State& state, const std::string& scene_name, Boundary boundary) {
  const Scene& scene = cached_scene(scene_name);
  RenderConfig config;
  config.tile_size = 16;
  config.boundary = boundary;
  double ms = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    const RenderResult r = render_baseline(scene.cloud, scene.camera, config);
    benchmark::DoNotOptimize(r.counters.alpha_computations);
    ms += r.times.total_ms();
    ++iterations;
  }
  g_ms[base_key(boundary)][scene_name] = ms / iterations;
}

void run_ours(benchmark::State& state, const std::string& scene_name, Boundary group,
              Boundary mask) {
  const Scene& scene = cached_scene(scene_name);
  GsTgConfig config;  // 16+64 geometry from Fig. 11's winner
  config.group_boundary = group;
  config.mask_boundary = mask;
  double ms = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    const RenderResult r = render_gstg(scene.cloud, scene.camera, config);
    benchmark::DoNotOptimize(r.counters.alpha_computations);
    ms += r.times.total_ms();
    ++iterations;
  }
  g_ms[ours_key(group, mask)][scene_name] = ms / iterations;
}

void print_table() {
  TextTable table("Fig. 12: speedup vs baseline AABB (GPU-order, tile 16, group 64)");
  std::vector<std::string> header = {"config"};
  for (const auto& s : algo_scene_names()) header.push_back(s);
  table.set_header(header);
  auto emit = [&](const std::string& key) {
    std::vector<double> row;
    for (const auto& scene : algo_scene_names()) {
      row.push_back(g_ms[base_key(Boundary::kAabb)][scene] / g_ms[key][scene]);
    }
    table.add_row(key, row, 2);
  };
  for (const Boundary b : kBoundaries) emit(base_key(b));
  for (const Boundary group : kBoundaries) {
    for (const Boundary mask : kBoundaries) {
      GsTgConfig probe;
      probe.group_boundary = group;
      probe.mask_boundary = mask;
      if (probe.lossless_guaranteed()) emit(ours_key(group, mask));
    }
  }
  table.print();
  std::printf(
      "\npaper reference: Ellipse+Ellipse on top; each Ours(X+X) beats Base+X;\n"
      "combinations with any boundary method remain beneficial.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 12: boundary-method combinations");
  for (const auto& scene : algo_scene_names()) {
    for (const Boundary b : kBoundaries) {
      benchmark::RegisterBenchmark(
          ("Fig12/" + base_key(b) + "/" + scene).c_str(),
          [scene, b](benchmark::State& state) { run_baseline(state, scene, b); })
          ->Iterations(3)
          ->Unit(benchmark::kMillisecond);
    }
    for (const Boundary group : kBoundaries) {
      for (const Boundary mask : kBoundaries) {
        GsTgConfig probe;
        probe.group_boundary = group;
        probe.mask_boundary = mask;
        if (!probe.lossless_guaranteed()) continue;
        benchmark::RegisterBenchmark(
            ("Fig12/" + ours_key(group, mask) + "/" + scene).c_str(),
            [scene, group, mask](benchmark::State& state) {
              run_ours(state, scene, group, mask);
            })
            ->Iterations(3)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
