// bench_quality: the sort-cost-vs-quality frontier of the sortless pipeline.
// For every bench scene it renders the exact pipeline, the sortless pipeline
// (order-independent transmittance blending, zero group-sort pairs) and the
// kVerify audit, then reports what the sortless tier buys (sort pairs
// avoided, sort_ms removed) against what it costs (raster_ms delta,
// PSNR/SSIM vs the exact image). CI archives and gates BENCH_quality.json
// (scripts/check_bench.py --quality).
//
// Gates (exit 2 on failure, so CI's bench step goes red):
//  - quality: every scene's sortless PSNR/SSIM meets its committed floor
//    (render/quality.h) and the sortless run reports zero sort pairs;
//  - verify: the kVerify run ships an image bit-identical to pure kSortless,
//    its counters match, and its self-measured quality equals the one
//    measured here against the exact image.
// On a quality failure the worst-PSNR scene's exact/sortless pair is dumped
// as PPM into --out-dir (CI uploads them as the quality-diff artifact).
//
// Run:  ./bench_quality [--out-dir=.] [--scenes=train,truck] [--threads=N]
//                       [--repeat=3]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "json_writer.h"
#include "render/framebuffer.h"
#include "render/quality.h"
#include "render/rasterize.h"

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;
using benchutil::split_csv;

struct PipelineRun {
  RenderResult result;
  StageTimes best;  ///< per-stage minima across repeats
};

PipelineRun run_pipeline(const Scene& scene, GsTgConfig config, PipelineMode mode, int repeat) {
  config.pipeline = mode;
  PipelineRun r{render_gstg(scene.cloud, scene.camera, config), {}};
  r.best.sort_ms = r.result.times.sort_ms;
  r.best.raster_ms = r.result.times.raster_ms;
  for (int i = 1; i < repeat; ++i) {
    RenderResult result = render_gstg(scene.cloud, scene.camera, config);
    r.best.sort_ms = std::min(r.best.sort_ms, result.times.sort_ms);
    r.best.raster_ms = std::min(r.best.raster_ms, result.times.raster_ms);
    r.result = std::move(result);
  }
  return r;
}

std::string format_db(double psnr) {
  return std::isinf(psnr) ? std::string("inf") : format_fixed(psnr, 2);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "scenes", "threads", "repeat"});
    const std::string out_dir = args.get("out-dir", ".");
    const int repeat = args.get_int("repeat", 3);
    const std::size_t threads = args.get_size("threads", 0);
    std::vector<std::string> scenes = split_csv(args.get("scenes", ""));
    if (scenes.empty()) scenes = benchutil::algo_scene_names();

    benchutil::print_scale_banner("bench_quality: sortless pipeline sort-cost-vs-quality frontier");
    // The GSTG_PIPELINE ops override would collapse the explicit
    // exact/sortless/verify A/B below into one mode; the modes here are the
    // experiment.
    if (std::getenv("GSTG_PIPELINE") != nullptr) {
      std::fprintf(stderr,
                   "bench_quality: ignoring GSTG_PIPELINE — this driver compares explicit "
                   "pipeline modes\n");
      unsetenv("GSTG_PIPELINE");
    }

    GsTgConfig config;
    config.threads = threads;

    bool quality_ok = true;
    bool verify_ok = true;
    double worst_psnr = 1e300;
    std::string worst_scene;
    Framebuffer worst_exact{1, 1};
    Framebuffer worst_sortless{1, 1};

    JsonWriter json(out_dir + "/BENCH_quality.json");
    json.open_object();
    json.value("bench", "sortless_quality");
    const RunScale scale = run_scale_from_env();
    json.open_object("scale");
    json.value("resolution_divisor", scale.resolution_divisor);
    json.value("gaussian_divisor", scale.gaussian_divisor);
    json.close_object();
    json.value("depth_beta", kSortlessDepthBeta);
    json.open_array("scenes");

    TextTable table("sortless frontier (depth beta " + format_fixed(kSortlessDepthBeta, 1) + ")");
    table.set_header({"scene", "psnr dB", "floor", "ssim", "floor", "pairs avoided", "sort ms",
                      "raster ms Δ", "ok"});

    for (const std::string& name : scenes) {
      const Scene& scene = cached_scene(name);
      std::printf("bench_quality: %s (%zu gaussians, %dx%d)\n", name.c_str(), scene.cloud.size(),
                  scene.render_width, scene.render_height);

      const PipelineRun exact = run_pipeline(scene, config, PipelineMode::kExact, repeat);
      const PipelineRun sortless = run_pipeline(scene, config, PipelineMode::kSortless, repeat);
      const PipelineRun verify = run_pipeline(scene, config, PipelineMode::kVerify, 1);

      // Quality gate: the sortless image against the committed floor, and
      // the structural claim that the sortless path never sorts.
      const ImageQuality q = image_quality(exact.result.image, sortless.result.image);
      const QualityFloor floor = quality_floor(name);
      const bool no_sort = sortless.result.counters.sort_pairs == 0 &&
                           sortless.result.counters.sort_comparison_volume == 0.0;
      const bool scene_quality_ok = meets_floor(q, floor) && no_sort;
      if (!no_sort) {
        std::fprintf(stderr, "bench_quality: %s sortless run SORTED (%zu pairs)\n", name.c_str(),
                     sortless.result.counters.sort_pairs);
      }
      if (!meets_floor(q, floor)) {
        std::fprintf(stderr,
                     "bench_quality: %s below floor (psnr %.2f < %.2f or ssim %.4f < %.4f)\n",
                     name.c_str(), q.psnr, floor.min_psnr, q.ssim, floor.min_ssim);
      }

      // Verify gate: kVerify ships the sortless image (bit-identical, same
      // counters) and its self-measured quality matches the audit here —
      // i.e. its internal exact reference matched our exact render.
      const bool scene_verify_ok =
          max_abs_diff(verify.result.image, sortless.result.image) == 0.0f &&
          verify.result.counters.sort_pairs == sortless.result.counters.sort_pairs &&
          verify.result.counters.alpha_computations ==
              sortless.result.counters.alpha_computations &&
          verify.result.counters.blend_ops == sortless.result.counters.blend_ops &&
          verify.result.quality.measured && verify.result.quality.psnr == q.psnr &&
          verify.result.quality.ssim == q.ssim;
      if (!scene_verify_ok) {
        std::fprintf(stderr, "bench_quality: %s kVerify DIVERGED from pure kSortless\n",
                     name.c_str());
      }

      quality_ok = quality_ok && scene_quality_ok;
      verify_ok = verify_ok && scene_verify_ok;
      if (q.psnr < worst_psnr) {
        worst_psnr = q.psnr;
        worst_scene = name;
        worst_exact = exact.result.image;
        worst_sortless = sortless.result.image;
      }

      // The frontier: what the sortless tier saves vs what it costs.
      const std::size_t pairs_avoided = exact.result.counters.sort_pairs;
      const double sort_ms_removed = exact.best.sort_ms;
      const double raster_ms_delta = sortless.best.raster_ms - exact.best.raster_ms;

      table.add_row({name, format_db(q.psnr), format_fixed(floor.min_psnr, 1),
                     format_fixed(q.ssim, 4), format_fixed(floor.min_ssim, 2),
                     std::to_string(pairs_avoided), format_fixed(sort_ms_removed, 2),
                     format_fixed(raster_ms_delta, 2),
                     scene_quality_ok && scene_verify_ok ? "yes" : "NO"});

      json.open_object();
      json.value("scene", name);
      json.value("gaussians", scene.cloud.size());
      json.value("visible_gaussians", exact.result.counters.visible_gaussians);
      json.value("psnr", q.psnr);
      json.value("ssim", q.ssim);
      json.value("floor_psnr", floor.min_psnr);
      json.value("floor_ssim", floor.min_ssim);
      json.value("sort_pairs_avoided", pairs_avoided);
      json.value("sort_comparison_volume_avoided", exact.result.counters.sort_comparison_volume);
      json.value("sortless_sort_pairs", sortless.result.counters.sort_pairs);
      json.value("sortless_blend_ops", sortless.result.counters.blend_ops);
      json.value("exact_blend_ops", exact.result.counters.blend_ops);
      json.value("sort_ms_removed", sort_ms_removed);
      json.value("raster_ms_exact", exact.best.raster_ms);
      json.value("raster_ms_sortless", sortless.best.raster_ms);
      json.value("raster_ms_delta", raster_ms_delta);
      json.value_bool("quality_ok", scene_quality_ok);
      json.value_bool("verify_ok", scene_verify_ok);
      json.close_object();
    }
    json.close_array();
    json.value_bool("quality_ok", quality_ok);
    json.value_bool("verify_ok", verify_ok);
    json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
    json.close_object();
    json.finish();
    table.print();
    std::printf("bench_quality: wrote %s/BENCH_quality.json\n", out_dir.c_str());

    if (!quality_ok && !worst_scene.empty()) {
      // Debug artifact for the CI quality-diff upload: the worst pair as PPM
      // so a floor regression is inspectable without rerunning locally.
      const std::string exact_path = out_dir + "/quality_exact_" + worst_scene + ".ppm";
      const std::string sortless_path = out_dir + "/quality_sortless_" + worst_scene + ".ppm";
      worst_exact.write_ppm(exact_path);
      worst_sortless.write_ppm(sortless_path);
      std::fprintf(stderr, "bench_quality: dumped worst pair (%s, psnr %.2f) to %s and %s\n",
                   worst_scene.c_str(), worst_psnr, exact_path.c_str(), sortless_path.c_str());
    }
    // A floor miss is a quality regression and a verify divergence is a
    // correctness regression: fail the driver so CI's bench step goes red.
    return quality_ok && verify_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_quality: %s\n", e.what());
    return 1;
  }
}
