// Table III: the GS-TG hardware configuration (module areas and powers at
// 28nm / 1 GHz) as encoded in the simulator's energy model, with
// consistency checks, plus a micro-benchmark of the simulator itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.h"
#include "common/table.h"
#include "sim/accel.h"
#include "sim/workload.h"

namespace {

using namespace gstg;

FrameWorkload reference_workload() {
  FrameWorkload w;
  w.scene = "reference";
  w.input_gaussians = 100000;
  w.visible_gaussians = 80000;
  w.ident_tests = 400000;
  w.sorts.resize(512);
  w.bgm.resize(512);
  w.tiles.resize(8192);
  for (std::size_t g = 0; g < w.sorts.size(); ++g) {
    w.sorts[g].n = 500;
    w.bgm[g] = {500, 3000};
  }
  for (std::size_t t = 0; t < w.tiles.size(); ++t) {
    w.tiles[t] = {500, 120, 25000, 256, static_cast<std::uint32_t>(t % w.sorts.size())};
  }
  w.total_pixels = 8192 * 256;
  w.param_bytes = 10'000'000;
  w.feature_bytes = 5'000'000;
  w.list_bytes = 2'000'000;
  w.framebuffer_bytes = 6'300'000;
  return w;
}

void bm_simulate(benchmark::State& state) {
  const FrameWorkload w = reference_workload();
  const HwConfig hw;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_frame(w, gstg_pipeline_model(), hw));
  }
}
BENCHMARK(bm_simulate)->Unit(benchmark::kMicrosecond);

void print_table() {
  const HwConfig hw;
  TextTable table("Table III: hardware configuration (28nm, as modelled)");
  table.set_header({"module", "instances", "area [mm2]", "power [W]"});
  const auto row = [&](const char* name, const ModuleSpec& m) {
    table.add_row({name, std::to_string(m.instances), format_fixed(m.area_mm2, 3),
                   format_fixed(m.power_w, 3)});
  };
  row("PM", hw.pm);
  row("BGM", hw.bgm);
  row("GSM", hw.gsm);
  row("RM", hw.rm);
  row("Buffer (4x2x42KB)", hw.buffer);
  table.add_row({"Total", "-", format_fixed(hw.total_area_mm2(), 3),
                 format_fixed(hw.total_power_w(), 3)});
  table.print();

  std::printf("\noperating frequency: %.0f MHz\n", hw.frequency_hz / 1e6);
  std::printf("DRAM bandwidth: %.1f GB/s (%.1f B/cycle), %.0f pJ/byte\n",
              hw.dram_bytes_per_second / 1e9, hw.dram_bytes_per_cycle(), hw.dram_pj_per_byte);
  std::printf("datapath precision: fp16 (%zu bytes/scalar)\n", hw.bytes_per_scalar);
  std::printf("\nconsistency: total area %s 3.984 mm2, total power %s 1.063 W (paper Table III)\n",
              std::abs(hw.total_area_mm2() - 3.984) < 1e-9 ? "==" : "!=",
              std::abs(hw.total_power_w() - 1.063) < 1e-9 ? "==" : "!=");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Table III: hardware configuration");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
