// bench_binning: flat vs hierarchical binning A/B over the bench scenes.
// For every scene and boundary test it bins the preprocessed splats with
// both strategies, audits bit-identity (canonical per-cell (depth, index)
// order, the same comparison BinningMode::kVerify applies), and writes
// BENCH_binning.json — the boundary-test reduction trajectory CI archives
// and gates (scripts/check_bench.py --binning).
//
// Like run_all and bench_temporal, this only needs the project libraries,
// so it always builds. An identity or kVerify failure — or the reduction
// gate going negative on the largest scene — exits with code 2 so CI's
// bench step goes red.
//
// Run:  ./bench_binning [--out-dir=.] [--scenes=train,truck] [--threads=N]
//                       [--repeat=3] [--tile=16]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "common/table.h"
#include "common/timer.h"
#include "json_writer.h"
#include "render/binning.h"
#include "render/preprocess.h"
#include "render/sort_keys.h"

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;
using benchutil::split_csv;

/// The reduction bar on the largest scene: hierarchical must cut boundary
/// tests by at least this fraction vs flat under the default (Ellipse)
/// boundary, or the driver exits 2.
constexpr double kReductionGate = 0.20;

/// Canonical per-cell (depth, index) sort — the comparison kVerify uses —
/// so the two strategies' nondeterministic within-cell orders compare equal
/// exactly when the hit multisets are equal.
void canonicalize(BinnedSplats& bins, std::span<const ProjectedSplat> splats) {
  const auto less = [&](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t ka = pack_depth_index_key(splats[a].depth, splats[a].index);
    const std::uint64_t kb = pack_depth_index_key(splats[b].depth, splats[b].index);
    return ka != kb ? ka < kb : a < b;
  };
  for (int c = 0; c < bins.grid.cell_count(); ++c) {
    std::sort(bins.splat_ids.begin() + bins.offsets[c],
              bins.splat_ids.begin() + bins.offsets[c + 1], less);
  }
}

struct ModeRun {
  RenderCounters counters;
  BinnedSplats bins;
  double best_ms = 1e300;
};

ModeRun run_mode(std::span<const ProjectedSplat> splats, const CellGrid& grid, Boundary boundary,
                 std::size_t threads, BinningMode mode, int repeat) {
  ModeRun r;
  BinningScratch scratch;
  for (int i = 0; i < std::max(1, repeat); ++i) {
    RenderCounters counters;
    Timer timer;
    bin_splats_into(splats, grid, boundary, threads, counters, r.bins, scratch, mode);
    r.best_ms = std::min(r.best_ms, timer.lap_ms());
    r.counters = counters;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "scenes", "threads", "repeat", "tile"});
    const std::string out_dir = args.get("out-dir", ".");
    const int repeat = args.get_int("repeat", 3);
    const int tile = args.get_int("tile", 16);
    const std::size_t threads = args.get_size("threads", 0);
    std::vector<std::string> scenes = split_csv(args.get("scenes", ""));
    if (scenes.empty()) scenes = benchutil::algo_scene_names();

    benchutil::print_scale_banner("bench_binning: flat vs hierarchical coarse-to-fine binning");
    // The GSTG_BINNING ops override would collapse the explicit flat/hier
    // A/B below into one mode; this driver's modes are the experiment.
    if (std::getenv("GSTG_BINNING") != nullptr) {
      std::fprintf(stderr,
                   "bench_binning: ignoring GSTG_BINNING — this driver compares explicit "
                   "binning modes\n");
      unsetenv("GSTG_BINNING");
    }

    bool correctness_ok = true;
    bool reduction_ok = true;
    std::size_t largest_gaussians = 0;
    std::string largest_scene;
    for (const std::string& name : scenes) {
      const std::size_t n = cached_scene(name).cloud.size();
      if (n > largest_gaussians) {
        largest_gaussians = n;
        largest_scene = name;
      }
    }

    JsonWriter json(out_dir + "/BENCH_binning.json");
    json.open_object();
    json.value("bench", "binning_hierarchy");
    const RunScale scale = run_scale_from_env();
    json.open_object("scale");
    json.value("resolution_divisor", scale.resolution_divisor);
    json.value("gaussian_divisor", scale.gaussian_divisor);
    json.close_object();
    json.value("tile_size", tile);
    json.value("coarse_factor", kCoarseCellFactor);
    json.value("largest_scene", largest_scene);
    json.open_array("scenes");

    TextTable table("binning boundary-test reduction (tile " + std::to_string(tile) + ", coarse x" +
                    std::to_string(kCoarseCellFactor) + ")");
    table.set_header({"scene", "boundary", "tile pairs", "tests flat", "tests hier", "reduction",
                      "exact"});

    for (const std::string& name : scenes) {
      const Scene& scene = cached_scene(name);
      RenderConfig pre_config;
      pre_config.tile_size = tile;
      RenderCounters pre_counters;
      const std::vector<ProjectedSplat> splats =
          preprocess(scene.cloud, scene.camera, pre_config, pre_counters);
      const CellGrid grid =
          CellGrid::over_image(scene.camera.width(), scene.camera.height(), tile);
      std::printf("bench_binning: %s (%zu gaussians, %zu visible, %dx%d, %d cells)\n",
                  name.c_str(), scene.cloud.size(), splats.size(), scene.render_width,
                  scene.render_height, grid.cell_count());

      json.open_object();
      json.value("scene", name);
      json.value("gaussians", scene.cloud.size());
      json.value("visible_gaussians", splats.size());
      json.value("cells", grid.cell_count());
      json.open_array("boundaries");

      for (const Boundary b : {Boundary::kAabb, Boundary::kObb, Boundary::kEllipse}) {
        ModeRun flat = run_mode(splats, grid, b, threads, BinningMode::kFlat, repeat);
        ModeRun hier = run_mode(splats, grid, b, threads, BinningMode::kHierarchical, repeat);

        canonicalize(flat.bins, splats);
        canonicalize(hier.bins, splats);
        const bool identical = flat.bins.offsets == hier.bins.offsets &&
                               flat.bins.splat_ids == hier.bins.splat_ids;
        bool verify_ok = true;
        try {
          RenderCounters cv;
          BinnedSplats out;
          BinningScratch scratch;
          bin_splats_into(splats, grid, b, threads, cv, out, scratch, BinningMode::kVerify);
        } catch (const BinningError& e) {
          verify_ok = false;
          std::fprintf(stderr, "bench_binning: kVerify FAILED on %s/%s: %s\n", name.c_str(),
                       to_string(b), e.what());
        }
        if (!identical || !verify_ok) {
          correctness_ok = false;
          if (!identical) {
            std::fprintf(stderr, "bench_binning: HIERARCHICAL DIVERGENCE on %s/%s\n",
                         name.c_str(), to_string(b));
          }
        }

        const double tests_flat = static_cast<double>(flat.counters.boundary_tests);
        const double tests_hier = static_cast<double>(hier.counters.boundary_tests);
        const double reduction = tests_flat > 0.0 ? 1.0 - tests_hier / tests_flat : 0.0;
        if (name == largest_scene && b == Boundary::kEllipse && reduction < kReductionGate) {
          reduction_ok = false;
          std::fprintf(stderr,
                       "bench_binning: reduction gate FAILED on %s/Ellipse (%.1f%% < %.0f%%)\n",
                       name.c_str(), 100.0 * reduction, 100.0 * kReductionGate);
        }

        table.add_row({name, to_string(b), std::to_string(flat.counters.tile_pairs),
                       std::to_string(flat.counters.boundary_tests),
                       std::to_string(hier.counters.boundary_tests),
                       format_fixed(100.0 * reduction, 1) + "%",
                       identical && verify_ok ? "yes" : "NO"});

        json.open_object();
        json.value("boundary", to_string(b));
        json.value("tile_pairs", flat.counters.tile_pairs);
        json.value("boundary_tests_flat", flat.counters.boundary_tests);
        json.value("boundary_tests_hier", hier.counters.boundary_tests);
        json.value("coarse_pairs", hier.counters.coarse_pairs);
        json.value("splats_multi_tile", flat.counters.splats_multi_tile);
        json.value("test_reduction", reduction);
        json.value("flat_ms", flat.best_ms);
        json.value("hier_ms", hier.best_ms);
        json.value_bool("identical", identical);
        json.value_bool("verify_ok", verify_ok);
        json.close_object();
      }
      json.close_array();
      json.close_object();
    }
    json.close_array();
    json.value_bool("reduction_ok", reduction_ok);
    json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
    json.close_object();
    json.finish();
    table.print();
    std::printf("bench_binning: wrote %s/BENCH_binning.json\n", out_dir.c_str());
    // A flat/hierarchical divergence is a correctness regression, and the
    // reduction bar on the largest scene is the tentpole's acceptance
    // signal: fail the driver so CI's bench step goes red.
    return correctness_ok && reduction_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_binning: %s\n", e.what());
    return 1;
  }
}
