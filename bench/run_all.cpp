// run_all: one driver for the whole perf trajectory. Renders every requested
// scene with the baseline tile pipeline and with GS-TG (16+64, Ellipse),
// verifies the lossless claim on the way, optionally runs the three-design
// hardware simulation, and writes machine-readable BENCH_*.json files that
// CI archives so regressions are visible across PRs.
//
// Run:  ./run_all [--out-dir=.] [--repeat=3] [--scenes=train,truck]
//                 [--skip-sim] [--threads=N]
//
// Outputs:
//   BENCH_software.json  per-scene stage times + work counters, both pipelines
//   BENCH_hardware.json  per-scene cycles/fps/energy for baseline/GSCore/GS-TG
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/renderer.h"
#include "gaussian/compressed.h"
#include "json_writer.h"
#include "render/binning.h"
#include "render/framebuffer.h"
#include "render/pipeline.h"
#include "render/preprocess.h"
#include "render/simd_kernels.h"
#include "sim_runner.h"

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;
using benchutil::split_csv;

void write_header(JsonWriter& json, const char* kind) {
  const RunScale scale = run_scale_from_env();
  json.value("bench", kind);
  const std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  json.value("timestamp_utc", stamp);
  json.open_object("scale");
  json.value("resolution_divisor", scale.resolution_divisor);
  json.value("gaussian_divisor", scale.gaussian_divisor);
  json.close_object();
}

void write_counters(JsonWriter& json, const RenderCounters& c) {
  json.value("visible_gaussians", c.visible_gaussians);
  json.value("tile_pairs", c.tile_pairs);
  json.value("sort_pairs", c.sort_pairs);
  json.value("sort_comparison_volume", c.sort_comparison_volume);
  json.value("alpha_computations", c.alpha_computations);
  json.value("blend_ops", c.blend_ops);
  json.value("bitmask_tests", c.bitmask_tests);
  json.value("filter_checks", c.filter_checks);
}

void write_times(JsonWriter& json, const StageTimes& t) {
  json.value("preprocess_ms", t.preprocess_ms);
  json.value("bitmask_ms", t.bitmask_ms);
  json.value("sort_ms", t.sort_ms);
  json.value("raster_ms", t.raster_ms);
  json.value("total_ms", t.total_ms());
}

/// Best-of-N render so the JSON carries the least-noisy timing sample.
template <typename RenderFn>
RenderResult best_of(int repeat, const RenderFn& render) {
  RenderResult best = render();
  for (int i = 1; i < repeat; ++i) {
    RenderResult r = render();
    if (r.times.total_ms() < best.times.total_ms()) best = std::move(r);
  }
  return best;
}

/// Best-of-N wall-clock of an arbitrary action (milliseconds).
template <typename Fn>
double best_ms_of(int repeat, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < std::max(1, repeat); ++i) {
    Timer timer;
    fn();
    best = std::min(best, timer.lap_ms());
  }
  return best;
}

/// Isolated group-sort timing: the unsorted frame inputs are built once,
/// then each algorithm sorts a fresh copy. This is the acceptance signal
/// that the packed-key radix path is no slower than the comparison sort it
/// replaced.
struct GroupSortTiming {
  double comparison_ms = 0.0;
  double auto_ms = 0.0;
  double radix_ms = 0.0;
};

GroupSortTiming time_group_sort(const Scene& scene, int repeat, std::size_t threads) {
  GsTgConfig config;
  config.threads = threads;

  RenderCounters counters;
  const std::vector<ProjectedSplat> splats =
      preprocess(scene.cloud, scene.camera, config.render_config(), counters);
  const CellGrid group_grid =
      CellGrid::over_image(scene.camera.width(), scene.camera.height(), config.group_size);
  const CellGrid tile_grid =
      CellGrid::over_image(scene.camera.width(), scene.camera.height(), config.tile_size);
  const BinnedSplats bins = identify_groups(splats, group_grid, config, counters);
  const std::vector<TileMask> masks =
      generate_bitmasks(splats, bins, tile_grid, config, counters);

  const auto run = [&](SortAlgo algo) {
    SortScratch scratch;
    double best = 1e300;
    for (int i = 0; i < std::max(1, repeat); ++i) {
      BinnedSplats work = bins;  // copies stay outside the timed section
      std::vector<TileMask> work_masks = masks;
      RenderCounters c;
      Timer timer;
      sort_groups(work, work_masks, splats, threads, c, algo, &scratch);
      best = std::min(best, timer.lap_ms());
    }
    return best;
  };
  GroupSortTiming t;
  t.comparison_ms = run(SortAlgo::kComparison);
  t.auto_ms = run(SortAlgo::kAuto);
  t.radix_ms = run(SortAlgo::kRadix);
  return t;
}

/// Flat vs hierarchical binning A/B on the baseline tile grid: the
/// boundary-test reduction the coarse-to-fine pass delivers per scene.
/// bench_binning audits the same comparison in depth (bit-identity, all
/// three boundaries) and gates it; this is the per-scene summary line.
struct BinningReduction {
  std::size_t flat_tests = 0;
  std::size_t hier_tests = 0;
  std::size_t coarse_pairs = 0;
};

BinningReduction measure_binning(const Scene& scene, std::size_t threads) {
  RenderConfig config;
  config.tile_size = 16;
  config.boundary = Boundary::kEllipse;
  config.threads = threads;
  RenderCounters pre_counters;
  const std::vector<ProjectedSplat> splats =
      preprocess(scene.cloud, scene.camera, config, pre_counters);
  const CellGrid grid =
      CellGrid::over_image(scene.camera.width(), scene.camera.height(), config.tile_size);
  BinningReduction r;
  RenderCounters flat, hier;
  bin_splats(splats, grid, config.boundary, threads, flat, BinningMode::kFlat);
  bin_splats(splats, grid, config.boundary, threads, hier, BinningMode::kHierarchical);
  r.flat_tests = flat.boundary_tests;
  r.hier_tests = hier.boundary_tests;
  r.coarse_pairs = hier.coarse_pairs;
  return r;
}

bool run_software(const std::vector<std::string>& scenes, int repeat, std::size_t threads,
                  const std::string& path) {
  bool lossless_ok = true;
  JsonWriter json(path);
  json.open_object();
  write_header(json, "software_pipelines");
  json.open_array("scenes");
  for (const std::string& name : scenes) {
    const Scene& scene = cached_scene(name);
    std::printf("run_all: %s (%zu gaussians, %dx%d)\n", name.c_str(), scene.cloud.size(),
                scene.render_width, scene.render_height);

    RenderConfig baseline_config;
    baseline_config.tile_size = 16;
    baseline_config.boundary = Boundary::kEllipse;
    baseline_config.threads = threads;
    const RenderResult baseline = best_of(repeat, [&] {
      return render_baseline(scene.cloud, scene.camera, baseline_config);
    });

    GsTgConfig gstg_config;  // 16+64, Ellipse+Ellipse: the paper's default
    gstg_config.threads = threads;
    const RenderResult gstg = best_of(repeat, [&] {
      return render_gstg(scene.cloud, scene.camera, gstg_config);
    });

    const float diff = max_abs_diff(baseline.image, gstg.image);
    if (diff != 0.0f) {
      lossless_ok = false;
      std::fprintf(stderr, "run_all: LOSSLESS VIOLATION on %s (max diff %g)\n", name.c_str(),
                   static_cast<double>(diff));
    }

    json.open_object();
    json.value("scene", name);
    json.value("gaussians", scene.cloud.size());
    json.value("width", scene.render_width);
    json.value("height", scene.render_height);
    json.value("lossless_max_abs_diff", static_cast<double>(diff));
    json.open_object("baseline");
    write_times(json, baseline.times);
    write_counters(json, baseline.counters);
    json.close_object();
    json.open_object("gstg");
    write_times(json, gstg.times);
    write_counters(json, gstg.counters);
    json.close_object();
    json.open_object("ratios");
    json.value("speedup_gpu_order",
               gstg.times.total_ms() > 0.0 ? baseline.times.total_ms() / gstg.times.total_ms()
                                           : 0.0);
    json.value("sort_pair_reduction",
               static_cast<double>(baseline.counters.sort_pairs) /
                   static_cast<double>(gstg.counters.sort_pairs ? gstg.counters.sort_pairs : 1));
    json.close_object();

    // Isolated group-sort A/B: the default (kAuto) path must be no slower
    // than the comparison sort it replaced.
    const GroupSortTiming gs = time_group_sort(scene, repeat, threads);
    json.open_object("group_sort");
    json.value("comparison_ms", gs.comparison_ms);
    json.value("auto_ms", gs.auto_ms);
    json.value("radix_ms", gs.radix_ms);
    json.value("speedup_auto_vs_comparison",
               gs.auto_ms > 0.0 ? gs.comparison_ms / gs.auto_ms : 0.0);
    json.close_object();

    // Coarse-to-fine binning A/B: the boundary-test reduction hierarchical
    // binning delivers on this scene's tile grid (bench_binning gates it).
    const BinningReduction br = measure_binning(scene, threads);
    json.open_object("binning");
    json.value("boundary_tests_flat", br.flat_tests);
    json.value("boundary_tests_hier", br.hier_tests);
    json.value("coarse_pairs", br.coarse_pairs);
    json.value("test_reduction",
               br.flat_tests > 0
                   ? 1.0 - static_cast<double>(br.hier_tests) / static_cast<double>(br.flat_tests)
                   : 0.0);
    json.close_object();

    // Compressed residency A/B: the fp16 resident form halves the resident
    // Gaussian bytes, and the streamed decode-on-touch render must stay
    // bit-identical to the up-front decode (bench_dataset audits and gates
    // this in depth); this is the per-scene summary line.
    {
      const CompressedCloud compressed = CompressedCloud::encode(scene.cloud);
      GsTgConfig upfront_config;
      upfront_config.threads = threads;
      upfront_config.residency = ResidencyMode::kFloat32;
      GsTgConfig streamed_config = upfront_config;
      streamed_config.residency = ResidencyMode::kCompressed;
      const Renderer upfront(upfront_config);
      const Renderer streamed(streamed_config);
      FrameContext upfront_ctx, streamed_ctx;
      const double float32_ms = best_ms_of(repeat, [&] {
        upfront.render(compressed, scene.camera, upfront_ctx);
      });
      const double compressed_ms = best_ms_of(repeat, [&] {
        streamed.render(compressed, scene.camera, streamed_ctx);
      });
      const bool identical = max_abs_diff(upfront_ctx.image, streamed_ctx.image) == 0.0f;
      if (!identical) {
        lossless_ok = false;
        std::fprintf(stderr, "run_all: RESIDENCY MISMATCH on %s (streamed != up-front)\n",
                     name.c_str());
      }
      json.open_object("residency");
      json.value("resident_bytes", compressed.resident_bytes());
      json.value("float32_bytes", compressed.float32_bytes());
      json.value("compression_ratio",
                 compressed.resident_bytes() > 0
                     ? static_cast<double>(compressed.float32_bytes()) /
                           static_cast<double>(compressed.resident_bytes())
                     : 0.0);
      json.value("float32_render_ms", float32_ms);
      json.value("compressed_render_ms", compressed_ms);
      json.value_bool("identical_to_upfront", identical);
      json.close_object();
    }

    // Batched rendering over an orbit: bit-identity against the sequential
    // loop is part of the correctness gate; the wall-clock ratio is the
    // view-level-parallelism payoff.
    {
      const int views = 4;
      const auto cameras = orbit_cameras(scene, views);
      GsTgConfig batch_config;
      batch_config.threads = 1;  // parallelism across views, not inside frames
      double sequential_ms = 0.0;
      std::vector<RenderResult> sequential;
      sequential.reserve(cameras.size());
      {
        Timer timer;
        for (const Camera& camera : cameras) {
          sequential.push_back(render_gstg(scene.cloud, camera, batch_config));
        }
        sequential_ms = timer.lap_ms();
      }
      const BatchRenderResult batch = render_batch(scene.cloud, cameras, batch_config);
      bool identical = true;
      for (std::size_t v = 0; v < cameras.size(); ++v) {
        if (max_abs_diff(sequential[v].image, batch.images[v]) != 0.0f) identical = false;
      }
      if (!identical) {
        lossless_ok = false;
        std::fprintf(stderr, "run_all: BATCH MISMATCH on %s (batch != sequential)\n",
                     name.c_str());
      }
      json.open_object("batch");
      json.value("views", views);
      json.value("sequential_ms", sequential_ms);
      json.value("batch_wall_ms", batch.wall_ms);
      json.value("speedup", batch.wall_ms > 0.0 ? sequential_ms / batch.wall_ms : 0.0);
      json.value_bool("identical_to_sequential", identical);
      json.close_object();
    }

    // SIMD backend A/B: every compiled backend renders the GS-TG pipeline in
    // exact and fast-exp mode. Exact mode must be bit-identical to the
    // scalar backend (part of the correctness gate); the widest-vs-scalar
    // rasterize-stage ratio is this PR's acceptance speedup.
    {
      GsTgConfig scalar_config;
      scalar_config.threads = threads;
      scalar_config.simd = SimdPolicy{SimdBackend::kScalar, ExpMode::kExact};
      const RenderResult scalar_exact = best_of(repeat, [&] {
        return render_gstg(scene.cloud, scene.camera, scalar_config);
      });

      json.open_object("simd");
      json.value("widest", to_string(widest_verified_backend()));
      double widest_exact_raster = scalar_exact.times.raster_ms;
      double widest_exact_pre = scalar_exact.times.preprocess_ms;
      double widest_fast_raster = scalar_exact.times.raster_ms;
      json.open_array("backends");
      for (const SimdBackend backend : available_simd_backends()) {
        GsTgConfig config;
        config.threads = threads;
        config.simd = SimdPolicy{backend, ExpMode::kExact};
        // The scalar/exact reference render doubles as that backend's sample.
        const RenderResult exact = backend == SimdBackend::kScalar
                                       ? scalar_exact
                                       : best_of(repeat, [&] {
                                           return render_gstg(scene.cloud, scene.camera, config);
                                         });
        config.simd.exp_mode = ExpMode::kFast;
        const RenderResult fast = best_of(repeat, [&] {
          return render_gstg(scene.cloud, scene.camera, config);
        });

        const bool identical = max_abs_diff(scalar_exact.image, exact.image) == 0.0f;
        if (!identical) {
          lossless_ok = false;
          std::fprintf(stderr, "run_all: SIMD EXACT-MODE MISMATCH on %s (backend %s)\n",
                       name.c_str(), to_string(backend));
        }
        if (backend == widest_verified_backend()) {
          widest_exact_raster = exact.times.raster_ms;
          widest_exact_pre = exact.times.preprocess_ms;
          widest_fast_raster = fast.times.raster_ms;
        }

        json.open_object();
        json.value("backend", to_string(backend));
        json.value("lane_width", simd_kernels(backend).lane_width);
        json.value("exact_preprocess_ms", exact.times.preprocess_ms);
        json.value("exact_raster_ms", exact.times.raster_ms);
        json.value_bool("exact_identical_to_scalar", identical);
        json.value("fast_preprocess_ms", fast.times.preprocess_ms);
        json.value("fast_raster_ms", fast.times.raster_ms);
        json.value("fast_max_abs_diff",
                   static_cast<double>(max_abs_diff(scalar_exact.image, fast.image)));
        json.close_object();
      }
      json.close_array();
      json.value("speedup_raster_exact_widest_vs_scalar",
                 widest_exact_raster > 0.0 ? scalar_exact.times.raster_ms / widest_exact_raster
                                           : 0.0);
      json.value("speedup_raster_fast_widest_vs_scalar",
                 widest_fast_raster > 0.0 ? scalar_exact.times.raster_ms / widest_fast_raster
                                          : 0.0);
      json.value("speedup_preprocess_exact_widest_vs_scalar",
                 widest_exact_pre > 0.0
                     ? scalar_exact.times.preprocess_ms / widest_exact_pre
                     : 0.0);
      json.close_object();
      std::printf(
          "run_all: %s simd widest=%s raster speedup exact %.2fx fast %.2fx\n", name.c_str(),
          to_string(widest_verified_backend()),
          widest_exact_raster > 0.0 ? scalar_exact.times.raster_ms / widest_exact_raster : 0.0,
          widest_fast_raster > 0.0 ? scalar_exact.times.raster_ms / widest_fast_raster : 0.0);
    }
    json.close_object();
  }
  json.close_array();
  json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
  json.close_object();
  json.finish();
  std::printf("run_all: wrote %s\n", path.c_str());
  return lossless_ok;
}

void write_report(JsonWriter& json, const SimReport& r) {
  json.value("total_cycles", r.total_cycles);
  json.value("fps", r.fps);
  json.value("bottleneck", r.bottleneck);
  json.value("dram_bytes", r.dram_bytes);
  json.value("energy_j", r.energy.total_j());
  json.value("frames_per_joule", r.frames_per_joule());
}

void run_hardware(const std::vector<std::string>& scenes, const std::string& path) {
  JsonWriter json(path);
  json.open_object();
  write_header(json, "hardware_sim");
  json.open_array("scenes");
  for (const std::string& name : scenes) {
    std::printf("run_all: simulating %s (baseline / GSCore / GS-TG)\n", name.c_str());
    const benchutil::SceneSims sims = benchutil::simulate_scene(name);
    json.open_object();
    json.value("scene", name);
    json.open_object("baseline");
    write_report(json, sims.baseline);
    json.close_object();
    json.open_object("gscore");
    write_report(json, sims.gscore);
    json.close_object();
    json.open_object("gstg");
    write_report(json, sims.gstg);
    json.close_object();
    json.open_object("ratios");
    json.value("speedup_vs_baseline", sims.gstg.fps / (sims.baseline.fps > 0.0 ? sims.baseline.fps : 1.0));
    json.value("speedup_vs_gscore", sims.gstg.fps / (sims.gscore.fps > 0.0 ? sims.gscore.fps : 1.0));
    json.close_object();
    json.close_object();
  }
  json.close_array();
  json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
  json.close_object();
  json.finish();
  std::printf("run_all: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "repeat", "scenes", "skip-sim", "threads"});
    const std::string out_dir = args.get("out-dir", ".");
    const int repeat = args.get_int("repeat", 3);
    const std::size_t threads = args.get_size("threads", 0);
    std::vector<std::string> scenes =
        split_csv(args.get("scenes", ""));
    if (scenes.empty()) scenes = benchutil::algo_scene_names();

    benchutil::print_scale_banner("run_all: software + hardware sweep");
    const bool lossless_ok =
        run_software(scenes, repeat, threads, out_dir + "/BENCH_software.json");
    if (!args.has("skip-sim")) {
      run_hardware(scenes, out_dir + "/BENCH_hardware.json");
    }
    // A lossless violation is a correctness regression, not a perf data
    // point: fail the driver so CI's bench step goes red.
    return lossless_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_all: %s\n", e.what());
    return 1;
  }
}
