// Fig. 13: stage-wise runtime breakdown for the Train scene — baseline
// (Ellipse) at 16/32/64 tiles vs GS-TG (Ellipse+Ellipse, 16+64), GPU-order
// execution. GS-TG's sorting matches the 64x64 baseline while its
// rasterization matches the 16x16 baseline; on a GPU the bitmask
// generation cannot hide under sorting, so it lands in preprocessing (the
// paper's "Ours" preprocessing bar being taller than the baseline's).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "render/pipeline.h"

namespace {

using namespace gstg;
using benchutil::cached_scene;

std::map<std::string, StageTimes> g_times;

void run_baseline(benchmark::State& state, int tile) {
  const Scene& scene = cached_scene("train");
  RenderConfig config;
  config.tile_size = tile;
  config.boundary = Boundary::kEllipse;
  for (auto _ : state) {
    const RenderResult r = render_baseline(scene.cloud, scene.camera, config);
    benchmark::DoNotOptimize(r.counters.alpha_computations);
    g_times[std::to_string(tile) + "x" + std::to_string(tile)] = r.times;
  }
}

void run_ours(benchmark::State& state) {
  const Scene& scene = cached_scene("train");
  GsTgConfig config;  // 16+64, Ellipse+Ellipse
  for (auto _ : state) {
    const RenderResult r = render_gstg(scene.cloud, scene.camera, config);
    benchmark::DoNotOptimize(r.counters.alpha_computations);
    StageTimes t = r.times;
    // GPU order: bitmask generation is serialized into preprocessing.
    t.preprocess_ms += t.bitmask_ms;
    t.bitmask_ms = 0.0;
    g_times["Ours(16+64)"] = t;
  }
}

void print_table() {
  TextTable table("Fig. 13: Train stage breakdown [ms, this CPU], Ellipse boundary");
  table.set_header({"config", "preprocess", "sort", "raster", "total"});
  for (const char* key : {"16x16", "32x32", "64x64", "Ours(16+64)"}) {
    const StageTimes& t = g_times[key];
    table.add_row({key, format_fixed(t.preprocess_ms, 2), format_fixed(t.sort_ms, 2),
                   format_fixed(t.raster_ms, 2), format_fixed(t.total_ms(), 2)});
  }
  table.print();
  std::printf(
      "\npaper reference: Ours sorts like 64x64, rasterizes like 16x16; GPU-order\n"
      "preprocessing of Ours exceeds the baseline because bitmask generation\n"
      "cannot overlap sorting on SIMT hardware (resolved by the accelerator).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 13: Train stage breakdown");
  for (const int tile : {16, 32, 64}) {
    benchmark::RegisterBenchmark(("Fig13/baseline/tile:" + std::to_string(tile)).c_str(),
                                 [tile](benchmark::State& state) { run_baseline(state, tile); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("Fig13/ours", run_ours)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
