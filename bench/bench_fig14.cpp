// Fig. 14: normalised speedup of the GS-TG accelerator vs the baseline
// accelerator (conventional pipeline, Ellipse boundary, same hardware) and
// the GSCore model, across all six scenes plus the geometric mean, from
// the cycle-level simulator. Paper: GS-TG geomean 1.33x over the baseline,
// up to 1.58x (residence); up to 1.54x over GSCore.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim_runner.h"

namespace {

using namespace gstg;
using benchutil::all_scene_names;
using benchutil::SceneSims;

std::map<std::string, SceneSims> g_sims;

void run_scene(benchmark::State& state, const std::string& scene_name) {
  for (auto _ : state) {
    g_sims[scene_name] = benchutil::simulate_scene(scene_name);
  }
  const SceneSims& s = g_sims[scene_name];
  state.counters["speedup_gstg"] = s.baseline.total_cycles / s.gstg.total_cycles;
  state.counters["speedup_gscore"] = s.baseline.total_cycles / s.gscore.total_cycles;
}

void print_table() {
  TextTable table("Fig. 14: speedup normalised to the baseline accelerator");
  table.set_header({"scene", "Baseline", "GSCore", "GS-TG", "GS-TG cycles", "bottleneck"});
  std::vector<double> gscore_speedups, gstg_speedups;
  for (const auto& scene : all_scene_names()) {
    const SceneSims& s = g_sims[scene];
    const double sp_gscore = s.baseline.total_cycles / s.gscore.total_cycles;
    const double sp_gstg = s.baseline.total_cycles / s.gstg.total_cycles;
    gscore_speedups.push_back(sp_gscore);
    gstg_speedups.push_back(sp_gstg);
    table.add_row({scene, "1.00", format_fixed(sp_gscore, 2), format_fixed(sp_gstg, 2),
                   format_fixed(s.gstg.total_cycles, 0), s.gstg.bottleneck});
  }
  table.add_row({"geomean", "1.00", format_fixed(geometric_mean(gscore_speedups), 2),
                 format_fixed(geometric_mean(gstg_speedups), 2), "-", "-"});
  table.print();
  std::printf(
      "\npaper reference: GS-TG geomean 1.33x vs baseline, max 1.58x at residence;\n"
      "GS-TG up to 1.54x vs GSCore. Larger scenes benefit more (scaled runs\n"
      "compress list lengths, so bench-scale gains sit below paper scale).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("Fig. 14: accelerator speedup, 6 scenes");
  for (const auto& scene : all_scene_names()) {
    benchmark::RegisterBenchmark(("Fig14/" + scene).c_str(),
                                 [scene](benchmark::State& state) { run_scene(state, scene); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
