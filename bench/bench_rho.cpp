// Footprint-extent ablation (extension; DESIGN.md section 6).
//
// The paper follows the original 3D-GS and bounds each Gaussian with the
// 3-sigma rule (rho = 9); FlashGS bounds it with the opacity-aware level
// rho = 2 ln(255 sigma), below which alpha cannot reach 1/255. This bench
// compares the two extents on the GS-TG pipeline: pair counts, sort volume
// and rasterization workload, plus the image deviation (the opacity-aware
// bound is exact by construction; 3-sigma can clip visible contributions of
// near-opaque splats).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "render/metrics.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;

struct RhoResult {
  std::size_t pairs_3sigma = 0;
  std::size_t pairs_opacity = 0;
  std::size_t alpha_3sigma = 0;
  std::size_t alpha_opacity = 0;
  float image_diff = 0.0f;
};

std::map<std::string, RhoResult> g_results;

void run_scene(benchmark::State& state, const std::string& scene_name) {
  for (auto _ : state) {
    const Scene scene = generate_scene(scene_name);
    GsTgConfig three_sigma;  // 16+64, Ellipse+Ellipse, rho = 9
    GsTgConfig opacity_aware = three_sigma;
    opacity_aware.opacity_aware_rho = true;

    const RenderResult a = render_gstg(scene.cloud, scene.camera, three_sigma);
    const RenderResult b = render_gstg(scene.cloud, scene.camera, opacity_aware);

    RhoResult r;
    r.pairs_3sigma = a.counters.sort_pairs;
    r.pairs_opacity = b.counters.sort_pairs;
    r.alpha_3sigma = a.counters.alpha_computations;
    r.alpha_opacity = b.counters.alpha_computations;
    r.image_diff = max_abs_diff(a.image, b.image);
    g_results[scene_name] = r;
    benchmark::DoNotOptimize(r.pairs_3sigma);
  }
}

void print_table() {
  TextTable table("footprint extent: 3-sigma (paper) vs opacity-aware (FlashGS)");
  table.set_header({"scene", "pairs 3s", "pairs op", "ratio", "alpha 3s", "alpha op",
                    "max|diff|"});
  for (const auto& scene : algo_scene_names()) {
    const RhoResult& r = g_results[scene];
    table.add_row({scene, std::to_string(r.pairs_3sigma), std::to_string(r.pairs_opacity),
                   format_fixed(static_cast<double>(r.pairs_opacity) /
                                    static_cast<double>(r.pairs_3sigma), 3),
                   std::to_string(r.alpha_3sigma), std::to_string(r.alpha_opacity),
                   format_fixed(r.image_diff, 4)});
  }
  table.print();
  std::printf(
      "\ninterpretation: the opacity-aware extent trims translucent splats'\n"
      "footprints (fewer pairs / alpha evaluations) while near-opaque splats\n"
      "grow slightly beyond 3-sigma; the image difference stays within the\n"
      "sub-1/255 band either bound permits. Both extents compose with GS-TG.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("footprint-extent ablation (extension)");
  for (const auto& scene : algo_scene_names()) {
    benchmark::RegisterBenchmark(("Rho/" + scene).c_str(),
                                 [scene](benchmark::State& state) { run_scene(state, scene); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
