// bench_telemetry: what the telemetry layer costs and that it changes
// nothing. Renders a fixed scene single-threaded (machine-independent span
// counts) with tracing off and on, best-of-repeats on the instrumented
// stages (sort + raster), then exports the trace and validates its shape.
// CI archives and gates BENCH_telemetry.json (scripts/check_bench.py
// --telemetry) and keeps the exported trace as an artifact.
//
// Gates (exit 2 on failure, so CI's bench step goes red):
//  - overhead: best-of traced sort_ms + raster_ms within the committed
//    limit (3%) of the untraced best — the "leave the spans in" bar;
//  - dropped: the run fits the rings, zero events dropped;
//  - determinism: image and counters bit-identical with tracing on;
//  - structure: the exported trace carries spans for every pipeline stage
//    (preprocess, binning, sort_groups, bitmask, raster).
//
// Run:  ./bench_telemetry [--out-dir=.] [--scene=train] [--frames=16]
//                         [--repeat=5]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "core/renderer.h"
#include "json_writer.h"
#include "render/framebuffer.h"
#include "telemetry/trace.h"

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;

constexpr double kOverheadLimit = 0.03;  // the acceptance bar: < 3% on sort+raster

/// Sum of the per-frame best-of sort+raster across `frames` renders,
/// minimised over `repeat` passes (per-stage minima, like the other bench
/// drivers, so the JSON carries the least-noisy sample).
double timed_pass(const Renderer& renderer, const GaussianCloud& cloud, const Camera& camera,
                  FrameContext& ctx, int frames, int repeat) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    double total = 0.0;
    for (int f = 0; f < frames; ++f) {
      renderer.render(cloud, camera, ctx);
      total += ctx.times.sort_ms + ctx.times.raster_ms;
    }
    if (r == 0 || total < best) best = total;
  }
  return best;
}

bool counters_equal(const RenderCounters& a, const RenderCounters& b) {
  return a.visible_gaussians == b.visible_gaussians && a.tile_pairs == b.tile_pairs &&
         a.sort_pairs == b.sort_pairs && a.bitmask_tests == b.bitmask_tests &&
         a.filter_checks == b.filter_checks && a.alpha_computations == b.alpha_computations &&
         a.blend_ops == b.blend_ops && a.total_pixels == b.total_pixels;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::string::size_type at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "scene", "frames", "repeat"});
    const std::string out_dir = args.get("out-dir", ".");
    const std::string scene_name = args.get("scene", "train");
    const int frames = args.get_int("frames", 16);
    const int repeat = args.get_int("repeat", 5);
    if (frames < 1 || repeat < 1) throw std::invalid_argument("--frames/--repeat must be >= 1");

    benchutil::print_scale_banner("bench_telemetry: tracing overhead + trace structure");

    const Scene& scene = cached_scene(scene_name);
    GsTgConfig config;
    config.threads = 1;  // one ring, deterministic span counts
    const Renderer renderer(config);
    FrameContext ctx;

    // Tracing OFF (stop explicitly: GSTG_TRACE in the environment would
    // otherwise autostart the collector and skew the plain pass).
    telemetry::TraceSession::global().stop();
    renderer.render(scene.cloud, scene.camera, ctx);  // warm buffers
    renderer.render(scene.cloud, scene.camera, ctx);
    const double plain_ms =
        timed_pass(renderer, scene.cloud, scene.camera, ctx, frames, repeat);
    const Framebuffer plain_image = ctx.image;
    const RenderCounters plain_counters = ctx.counters;

    // Tracing ON: one session covers every traced frame, so the recorded
    // event count is a pure function of (scale, frames, repeat).
    telemetry::TraceOptions options;
    options.process_name = "bench_telemetry";
    telemetry::TraceSession::global().start(options);
    const double traced_ms =
        timed_pass(renderer, scene.cloud, scene.camera, ctx, frames, repeat);
    telemetry::TraceSession::global().stop();
    const telemetry::TraceStats stats = telemetry::TraceSession::global().stats();

    const bool deterministic = max_abs_diff(plain_image, ctx.image) == 0.0f &&
                               counters_equal(plain_counters, ctx.counters);
    const bool dropped_ok = stats.dropped == 0;
    const double overhead_ratio =
        plain_ms > 0.0 ? std::max(0.0, traced_ms / plain_ms - 1.0) : 0.0;
    const bool overhead_ok = overhead_ratio < kOverheadLimit;

    // Export and validate the trace's structure: every pipeline stage must
    // appear as matched B spans on the one render thread.
    const std::string trace_path = out_dir + "/BENCH_telemetry_trace.json";
    const std::size_t written = telemetry::TraceSession::global().write(trace_path);
    std::string trace_json;
    {
      std::ifstream in(trace_path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      trace_json = buf.str();
    }
    const char* kStages[] = {"preprocess", "binning", "sort_groups", "bitmask", "raster"};
    bool stage_spans_ok = true;
    std::vector<std::pair<std::string, std::size_t>> stage_counts;
    for (const char* stage : kStages) {
      const std::size_t n = count_occurrences(
          trace_json, "\"name\": \"" + std::string(stage) + "\", \"ph\": \"B\"");
      stage_counts.emplace_back(stage, n);
      if (n == 0) stage_spans_ok = false;
    }

    std::printf("sort+raster best-of-%d over %d frames: %.3f ms plain, %.3f ms traced "
                "(+%.2f%%, limit %.0f%%) -> %s\n",
                repeat, frames, plain_ms, traced_ms, 100.0 * overhead_ratio,
                100.0 * kOverheadLimit, overhead_ok ? "ok" : "OVER");
    std::printf("events: %zu recorded, %zu dropped | trace: %zu events -> %s\n",
                stats.recorded, stats.dropped, written, trace_path.c_str());
    std::printf("determinism (image+counters traced vs plain): %s\n",
                deterministic ? "bit-identical" : "DIVERGED");

    JsonWriter json(out_dir + "/BENCH_telemetry.json");
    json.open_object();
    json.value("bench", std::string("telemetry_overhead"));
    const RunScale scale = run_scale_from_env();
    json.open_object("scale");
    json.value("resolution_divisor", scale.resolution_divisor);
    json.value("gaussian_divisor", scale.gaussian_divisor);
    json.close_object();
    json.value("scene", scene_name);
    json.value("frames", frames);
    json.value("repeat", repeat);
    json.value("plain_sort_raster_ms", plain_ms);
    json.value("traced_sort_raster_ms", traced_ms);
    json.value("overhead_ratio", overhead_ratio);
    json.value("overhead_limit", kOverheadLimit);
    json.value_bool("overhead_ok", overhead_ok);
    json.value("events_recorded", stats.recorded);
    json.value("events_dropped", stats.dropped);
    json.value_bool("dropped_ok", dropped_ok);
    json.value_bool("deterministic", deterministic);
    json.value("trace_events_written", written);
    json.open_object("stage_spans");
    for (const auto& [stage, n] : stage_counts) json.value(stage, n);
    json.close_object();
    json.value_bool("stage_spans_ok", stage_spans_ok);
    json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
    json.close_object();
    json.finish();
    std::printf("bench_telemetry: wrote %s/BENCH_telemetry.json\n", out_dir.c_str());

    if (!(overhead_ok && dropped_ok && deterministic && stage_spans_ok)) {
      std::fprintf(stderr, "bench_telemetry: GATE FAILURE\n");
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_telemetry: error: %s\n", e.what());
    return 1;
  }
}
