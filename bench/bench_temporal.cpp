// bench_temporal: frame-sequence driver for the temporal renderer. Renders
// a guided-tour sampling (move legs + hold frames) of the orbit and
// flythrough camera paths per scene, in kOff and kReuse modes, audits the
// reuse with kVerify plus per-frame bit-identity against the one-shot
// renderer, and writes BENCH_temporal.json — the reuse-rate / sorts-avoided
// trajectory CI archives and gates (scripts/check_bench.py --temporal).
//
// Like run_all and bench_simd, this only needs the project libraries, so it
// always builds. A verify mismatch or an image divergence exits with code 2
// so CI's bench step goes red.
//
// Run:  ./bench_temporal [--out-dir=.] [--scenes=train,truck] [--threads=N]
//                        [--hold=2] [--move=2]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "json_writer.h"
#include "render/framebuffer.h"
#include "temporal/camera_path.h"
#include "temporal/temporal_renderer.h"

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;
using benchutil::split_csv;

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "scenes", "threads", "hold", "move"});
    const std::string out_dir = args.get("out-dir", ".");
    const int hold = args.get_int("hold", 2);
    const int move = args.get_int("move", 2);
    GsTgConfig base_config;
    base_config.threads = args.get_size("threads", 0);
    std::vector<std::string> scenes = split_csv(args.get("scenes", ""));
    if (scenes.empty()) scenes = benchutil::algo_scene_names();

    benchutil::print_scale_banner("bench_temporal: cross-frame group-sort reuse");
    // The GSTG_TEMPORAL ops override would collapse the explicit
    // kOff/kReuse/kVerify A/B below into one mode and record a junk
    // baseline; this driver's modes are the experiment, so drop it.
    if (std::getenv("GSTG_TEMPORAL") != nullptr) {
      std::fprintf(stderr,
                   "bench_temporal: ignoring GSTG_TEMPORAL — this driver compares explicit "
                   "temporal modes\n");
      unsetenv("GSTG_TEMPORAL");
    }

    bool correctness_ok = true;
    JsonWriter json(out_dir + "/BENCH_temporal.json");
    json.open_object();
    json.value("bench", "temporal_reuse");
    const RunScale scale = run_scale_from_env();
    json.open_object("scale");
    json.value("resolution_divisor", scale.resolution_divisor);
    json.value("gaussian_divisor", scale.gaussian_divisor);
    json.close_object();
    json.value("hold_frames", hold);
    json.value("move_frames", move);
    json.open_array("scenes");

    TextTable table("temporal reuse (tour sampling: hold " + std::to_string(hold) + ", move " +
                    std::to_string(move) + ")");
    table.set_header({"scene", "path", "frames", "reuse rate", "sorts avoided",
                      "volume reduction", "exact"});

    for (const std::string& name : scenes) {
      const Scene& scene = cached_scene(name);
      std::printf("bench_temporal: %s (%zu gaussians, %dx%d)\n", name.c_str(),
                  scene.cloud.size(), scene.render_width, scene.render_height);

      json.open_object();
      json.value("scene", name);
      json.value("gaussians", scene.cloud.size());
      json.open_array("paths");

      const CameraPath paths[] = {orbit_path(scene, 0.25f, 4), flythrough_path(scene)};
      for (const CameraPath& path : paths) {
        const FrameSequence sequence = tour_frames(path, move, hold);
        const std::string kind = &path == &paths[0] ? "orbit" : "flythrough";

        GsTgConfig off = base_config;
        off.temporal = TemporalMode::kOff;
        GsTgConfig reuse = base_config;
        reuse.temporal = TemporalMode::kReuse;
        GsTgConfig verify = base_config;
        verify.temporal = TemporalMode::kVerify;

        // Each mode's images are diffed against the kOff reference and
        // dropped immediately, bounding peak memory to two sequences (at
        // paper scale a sequence of framebuffers runs into the hundreds of
        // megabytes).
        const TemporalSequenceResult r_off = render_sequence(scene.cloud, sequence, off);
        const auto identical_to_off = [&](std::vector<Framebuffer>& images) {
          bool same = true;
          for (std::size_t f = 0; f < sequence.frame_count(); ++f) {
            same = same && max_abs_diff(r_off.images[f], images[f]) == 0.0f;
          }
          images.clear();
          images.shrink_to_fit();
          return same;
        };
        TemporalSequenceResult r_reuse = render_sequence(scene.cloud, sequence, reuse);
        bool identical = identical_to_off(r_reuse.images);
        TemporalSequenceResult r_verify = render_sequence(scene.cloud, sequence, verify);
        identical = identical_to_off(r_verify.images) && identical;
        const bool verify_ok = r_verify.total_stats.verify_mismatches == 0;
        if (!identical || !verify_ok) {
          correctness_ok = false;
          std::fprintf(stderr, "bench_temporal: REUSE DIVERGENCE on %s/%s (%s)\n", name.c_str(),
                       kind.c_str(), !verify_ok ? "verify mismatch" : "image diff");
        }

        const TemporalStats& stats = r_reuse.total_stats;
        const double volume_off = r_off.total_counters.sort_comparison_volume;
        const double volume_reuse = r_reuse.total_counters.sort_comparison_volume;
        const double volume_reduction = volume_reuse > 0.0 ? volume_off / volume_reuse : 0.0;
        table.add_row({name, kind, std::to_string(sequence.frame_count()),
                       format_fixed(100.0 * stats.reuse_rate(), 1) + "%",
                       format_fixed(100.0 * stats.sorts_avoided_ratio(), 1) + "%",
                       format_fixed(volume_reduction, 2) + "x",
                       identical && verify_ok ? "yes" : "NO"});

        json.open_object();
        json.value("path", kind);
        json.value("frames", sequence.frame_count());
        json.value("groups_total", stats.groups_total);
        json.value("groups_trivial", stats.groups_trivial);
        json.value("groups_reused", stats.groups_reused);
        json.value("groups_patched", stats.groups_patched);
        json.value("groups_resorted", stats.groups_resorted);
        json.value("groups_evicted", stats.groups_evicted);
        json.value("pairs_reused", stats.pairs_reused);
        json.value("pairs_sorted", stats.pairs_sorted);
        json.value("reuse_rate", stats.reuse_rate());
        json.value("sorts_avoided", stats.sorts_avoided_ratio());
        json.value("sort_volume_off", volume_off);
        json.value("sort_volume_reuse", volume_reuse);
        json.value("sort_volume_reduction", volume_reduction);
        json.value("wall_ms_off", r_off.wall_ms);
        json.value("wall_ms_reuse", r_reuse.wall_ms);
        json.value_bool("verify_ok", verify_ok);
        json.value_bool("identical_to_off", identical);
        json.close_object();
      }
      json.close_array();
      json.close_object();
    }
    json.close_array();
    json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
    json.close_object();
    json.finish();
    table.print();
    std::printf("bench_temporal: wrote %s/BENCH_temporal.json\n", out_dir.c_str());
    // A reuse divergence is a correctness regression: fail the driver so
    // CI's bench step goes red.
    return correctness_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_temporal: %s\n", e.what());
    return 1;
  }
}
