// Shared infrastructure for the benchmark binaries: per-process scene cache
// (scenes are deterministic, so generating once per binary is sound) and
// small helpers for the paper-shaped output tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/runconfig.h"
#include "scene/scene.h"

namespace gstg::benchutil {

/// Scenes used by the algorithm-evaluation figures (paper section VI-B).
inline const std::vector<std::string>& algo_scene_names() {
  static const std::vector<std::string> names = {"train", "truck", "drjohnson", "playroom"};
  return names;
}

/// All six scenes (hardware evaluation, Figs. 14/15).
inline const std::vector<std::string>& all_scene_names() {
  static const std::vector<std::string> names = {"train",    "truck",  "drjohnson",
                                                 "playroom", "rubble", "residence"};
  return names;
}

/// Generates each scene at most once per process at the env-selected scale.
inline const Scene& cached_scene(const std::string& name) {
  static std::map<std::string, Scene> cache;
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  return cache.emplace(name, generate_scene(name)).first->second;
}

/// Comma-separated list -> items (empty fields dropped), for --scenes=...
/// flags. Shared by the JSON drivers (run_all, bench_simd, bench_temporal).
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = (comma == std::string::npos) ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Peak resident set size of this process in bytes, or 0 when unavailable.
/// Primary source is getrusage (ru_maxrss: kilobytes on Linux, bytes on
/// macOS); Linux falls back to VmHWM in /proc/self/status when getrusage
/// reports nothing. Recorded as `peak_rss_bytes` in every bench JSON — the
/// memory half of the full-scale-scene readiness question (ROADMAP item 1).
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
  }
#endif
#if defined(__linux__)
  // Fallback: VmHWM ("high water mark") from /proc/self/status, in kB.
  if (std::FILE* status = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0 &&
          std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb)) == 1) {
        break;
      }
    }
    std::fclose(status);
    if (kb > 0) return kb * 1024u;
  }
#endif
  return 0;
}

/// Banner describing the workload scale, printed by every bench binary so
/// recorded outputs are self-describing.
inline void print_scale_banner(const char* what) {
  const RunScale scale = run_scale_from_env();
  std::printf("# %s | scale: resolution /%d, Gaussians /%d%s (set GSTG_SCALE=full for paper scale)\n",
              what, scale.resolution_divisor, scale.gaussian_divisor,
              scale.is_full() ? " [paper scale]" : "");
}

}  // namespace gstg::benchutil
