// Batched multi-view rendering: persistent FrameContext reuse and
// view-level parallelism (core/renderer.h) against the one-shot
// render_gstg loop, plus the group-sort algorithm A/B. These are the
// serving-path numbers — a multi-user deployment renders exactly like the
// "reused"/"batch" rows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/renderer.h"

namespace {

using namespace gstg;
using benchutil::algo_scene_names;
using benchutil::cached_scene;

constexpr int kViews = 4;

std::map<std::string, std::map<std::string, double>> g_ms;  // mode -> scene -> ms

std::vector<Camera> scene_orbit(const Scene& scene) { return orbit_cameras(scene, kViews); }

// One-shot loop: a fresh pipeline (and fresh allocations) per view.
void run_oneshot(benchmark::State& state, const std::string& scene_name) {
  const Scene& scene = cached_scene(scene_name);
  const auto cameras = scene_orbit(scene);
  GsTgConfig config;
  double ms = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    Timer timer;
    for (const Camera& camera : cameras) {
      const RenderResult r = render_gstg(scene.cloud, camera, config);
      benchmark::DoNotOptimize(r.counters.alpha_computations);
    }
    ms += timer.lap_ms();
    ++iterations;
  }
  g_ms["oneshot"][scene_name] = ms / iterations;
}

// Persistent context, sequential views: the steady-state allocation-free
// path with intra-frame threading only.
void run_reused(benchmark::State& state, const std::string& scene_name) {
  const Scene& scene = cached_scene(scene_name);
  const auto cameras = scene_orbit(scene);
  GsTgConfig config;
  const Renderer renderer(config);
  FrameContext ctx;
  double ms = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    Timer timer;
    for (const Camera& camera : cameras) {
      renderer.render(scene.cloud, camera, ctx);
      benchmark::DoNotOptimize(ctx.counters.alpha_computations);
    }
    ms += timer.lap_ms();
    ++iterations;
  }
  g_ms["reused"][scene_name] = ms / iterations;
}

// render_batch: view-level parallelism, one context per view worker.
void run_batch(benchmark::State& state, const std::string& scene_name) {
  const Scene& scene = cached_scene(scene_name);
  const auto cameras = scene_orbit(scene);
  GsTgConfig config;
  config.threads = 1;  // the parallelism is across views here
  double ms = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    const BatchRenderResult r = render_batch(scene.cloud, cameras, config);
    benchmark::DoNotOptimize(r.total.alpha_computations);
    ms += r.wall_ms;
    ++iterations;
  }
  g_ms["batch"][scene_name] = ms / iterations;
}

void print_table() {
  TextTable table("Batched rendering: 4-view orbit, ms per batch (lower is better)");
  std::vector<std::string> header = {"mode"};
  for (const auto& s : algo_scene_names()) header.push_back(s);
  table.set_header(header);
  for (const char* mode : {"oneshot", "reused", "batch"}) {
    std::vector<double> row;
    for (const auto& scene : algo_scene_names()) row.push_back(g_ms[mode][scene]);
    table.add_row(mode, row, 2);
  }
  table.print();
  std::printf("\n'reused' isolates allocation/scratch reuse; 'batch' adds view-level "
              "parallelism (intra-frame threads pinned to 1).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  gstg::benchutil::print_scale_banner("batched multi-view rendering");
  for (const auto& scene : algo_scene_names()) {
    benchmark::RegisterBenchmark(
        ("Batch/oneshot/" + scene).c_str(),
        [scene](benchmark::State& state) { run_oneshot(state, scene); })
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Batch/reused/" + scene).c_str(),
        [scene](benchmark::State& state) { run_reused(state, scene); })
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Batch/batch/" + scene).c_str(),
        [scene](benchmark::State& state) { run_batch(state, scene); })
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
