// bench_dataset: real-scene ingestion + compressed-residency trajectory.
// Loads the committed mini-dataset fixtures (COLMAP binary/text,
// transforms.json) through the format-sniffing load_scene entry point,
// round-trips every bench scene through a PLY checkpoint to time the
// loader on realistic cloud sizes, then measures the fp16 resident form:
// encode cost, resident bytes vs the float32 SoA, the streamed
// decode-on-touch render vs the up-front-decode render, and the
// ResidencyMode::kVerify audit. Writes BENCH_dataset.json — the record CI
// archives and gates (scripts/check_bench.py --dataset).
//
// Like run_all and bench_binning, this only needs the project libraries,
// so it always builds. A verify failure, a streamed/up-front image
// divergence, or the compression gate (resident bytes must be at least 2x
// smaller than float32) exits with code 2 so CI's bench step goes red.
//
// Run:  ./bench_dataset [--out-dir=.] [--scenes=train,truck] [--repeat=3]
//                       [--threads=N] [--data-dir=tests/data]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.h"
#include "common/cli.h"
#include "common/runconfig.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/renderer.h"
#include "dataset/load_scene.h"
#include "gaussian/compressed.h"
#include "gaussian/ply_io.h"
#include "json_writer.h"
#include "render/framebuffer.h"

#ifndef GSTG_DATASET_FIXTURE_DIR
#define GSTG_DATASET_FIXTURE_DIR "tests/data"
#endif

namespace {

using namespace gstg;
using benchutil::JsonWriter;
using benchutil::cached_scene;
using benchutil::split_csv;

/// The residency bar: the fp16 form must make the resident Gaussian state
/// at least this many times smaller than the float32 SoA, on every scene.
constexpr double kCompressionGate = 2.0;

/// Best-of-N wall-clock of an action (milliseconds).
template <typename Fn>
double best_ms_of(int repeat, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < std::max(1, repeat); ++i) {
    Timer timer;
    fn();
    best = std::min(best, timer.lap_ms());
  }
  return best;
}

/// The committed loader fixtures, one per on-disk serialisation. Paths are
/// relative to --data-dir (default: the source-tree tests/data).
struct Fixture {
  const char* name;
  const char* relative_path;
  const char* expected_source;
};

constexpr Fixture kFixtures[] = {
    {"colmap_binary", "colmap_mini/sparse/0", "colmap-binary"},
    {"colmap_text", "colmap_mini_text", "colmap-text"},
    {"transforms", "transforms_mini.json", "transforms"},
};

GsTgConfig config_with(ResidencyMode residency, std::size_t threads) {
  GsTgConfig config;
  config.threads = threads;
  config.residency = residency;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out-dir", "scenes", "repeat", "threads", "data-dir"});
    const std::string out_dir = args.get("out-dir", ".");
    const int repeat = args.get_int("repeat", 3);
    const std::size_t threads = args.get_size("threads", 0);
    const std::string data_dir = args.get("data-dir", GSTG_DATASET_FIXTURE_DIR);
    std::vector<std::string> scenes = split_csv(args.get("scenes", ""));
    if (scenes.empty()) scenes = benchutil::algo_scene_names();

    benchutil::print_scale_banner("bench_dataset: scene ingestion + compressed residency");
    // The env override would collapse the explicit float32/compressed A/B
    // below into one mode; this driver's modes are the experiment.
    if (std::getenv("GSTG_RESIDENCY") != nullptr) {
      std::fprintf(stderr,
                   "bench_dataset: ignoring GSTG_RESIDENCY — this driver compares explicit "
                   "residency modes\n");
      unsetenv("GSTG_RESIDENCY");
    }

    bool fixtures_ok = true;
    bool compression_ok = true;
    bool verify_ok = true;

    JsonWriter json(out_dir + "/BENCH_dataset.json");
    json.open_object();
    json.value("bench", "dataset_residency");
    const RunScale scale = run_scale_from_env();
    json.open_object("scale");
    json.value("resolution_divisor", scale.resolution_divisor);
    json.value("gaussian_divisor", scale.gaussian_divisor);
    json.close_object();

    // --- Loader fixtures: every serialisation through load_scene. -------
    json.open_array("fixtures");
    for (const Fixture& fixture : kFixtures) {
      const std::string path = data_dir + "/" + fixture.relative_path;
      LoadedScene loaded = load_scene(path);  // throws on any parse failure
      if (loaded.source != fixture.expected_source) {
        fixtures_ok = false;
        std::fprintf(stderr, "bench_dataset: %s sniffed as '%s', want '%s'\n", fixture.name,
                     loaded.source.c_str(), fixture.expected_source);
      }
      const double load_ms = best_ms_of(repeat, [&] { loaded = load_scene(path); });
      std::printf("bench_dataset: fixture %s (%s, %zu gaussians, %zu cameras) %.3f ms\n",
                  fixture.name, loaded.source.c_str(), loaded.cloud.size(),
                  loaded.cameras.size(), load_ms);
      json.open_object();
      json.value("name", std::string(fixture.name));
      json.value("source", loaded.source);
      json.value("gaussians", loaded.cloud.size());
      json.value("cameras", loaded.cameras.size());
      json.value("load_ms", load_ms);
      json.close_object();
    }
    json.close_array();

    // --- Bench scenes: PLY ingestion + residency A/B. -------------------
    json.open_array("scenes");
    TextTable table("dataset ingestion + fp16 residency (threads " +
                    (threads == 0 ? std::string("auto") : std::to_string(threads)) + ")");
    table.set_header({"scene", "gaussians", "load ms", "encode ms", "resident", "ratio",
                      "fp32 ms", "fp16 ms", "overhead", "verify"});

    for (const std::string& name : scenes) {
      const Scene& scene = cached_scene(name);
      std::printf("bench_dataset: %s (%zu gaussians, %dx%d)\n", name.c_str(),
                  scene.cloud.size(), scene.render_width, scene.render_height);

      // Checkpoint round-trip: the loader timed on a realistic cloud. The
      // read must reproduce the written cloud exactly (PLY stores the same
      // float32 parameters), so the timed loads also audit the round-trip.
      const std::string ply_path =
          (std::filesystem::temp_directory_path() / ("gstg_bench_" + name + ".ply")).string();
      write_gaussian_ply_file(ply_path, scene.cloud);
      const std::size_t ply_bytes = std::filesystem::file_size(ply_path);
      LoadedScene loaded = load_scene(ply_path);
      const double load_ms = best_ms_of(repeat, [&] { loaded = load_scene(ply_path); });
      std::filesystem::remove(ply_path);
      if (loaded.source != "ply" || loaded.cloud.size() != scene.cloud.size() ||
          loaded.cloud.positions() != scene.cloud.positions() ||
          loaded.cloud.sh_data() != scene.cloud.sh_data()) {
        fixtures_ok = false;
        std::fprintf(stderr, "bench_dataset: PLY ROUND-TRIP MISMATCH on %s\n", name.c_str());
      }

      // Resident-form footprint and the compression gate.
      CompressedCloud compressed = CompressedCloud::encode(scene.cloud);
      const double encode_ms =
          best_ms_of(repeat, [&] { compressed = CompressedCloud::encode(scene.cloud); });
      const std::size_t resident = compressed.resident_bytes();
      const std::size_t float32 = compressed.float32_bytes();
      const double ratio =
          resident > 0 ? static_cast<double>(float32) / static_cast<double>(resident) : 0.0;
      if (ratio < kCompressionGate) {
        compression_ok = false;
        std::fprintf(stderr, "bench_dataset: compression gate FAILED on %s (%.2fx < %.1fx)\n",
                     name.c_str(), ratio, kCompressionGate);
      }

      // Residency A/B: up-front decode vs streamed decode-on-touch, then
      // the in-process kVerify audit. The streamed image must be
      // bit-identical to the up-front image — that is the exactness
      // contract, not a tolerance.
      const Renderer upfront(config_with(ResidencyMode::kFloat32, threads));
      const Renderer streamed(config_with(ResidencyMode::kCompressed, threads));
      FrameContext upfront_ctx, streamed_ctx;
      const double float32_ms =
          best_ms_of(repeat, [&] { upfront.render(compressed, scene.camera, upfront_ctx); });
      const double compressed_ms =
          best_ms_of(repeat, [&] { streamed.render(compressed, scene.camera, streamed_ctx); });
      const double overhead = float32_ms > 0.0 ? compressed_ms / float32_ms : 0.0;

      bool scene_verify_ok =
          max_abs_diff(upfront_ctx.image, streamed_ctx.image) == 0.0f;
      if (!scene_verify_ok) {
        std::fprintf(stderr, "bench_dataset: STREAMED/UP-FRONT DIVERGENCE on %s\n", name.c_str());
      }
      try {
        FrameContext verify_ctx;
        Renderer(config_with(ResidencyMode::kVerify, threads))
            .render(compressed, scene.camera, verify_ctx);
      } catch (const ResidencyError& e) {
        scene_verify_ok = false;
        std::fprintf(stderr, "bench_dataset: kVerify FAILED on %s: %s\n", name.c_str(), e.what());
      }
      if (!scene_verify_ok) verify_ok = false;

      table.add_row({name, std::to_string(scene.cloud.size()), format_fixed(load_ms, 2),
                     format_fixed(encode_ms, 2), std::to_string(resident),
                     format_fixed(ratio, 2) + "x", format_fixed(float32_ms, 2),
                     format_fixed(compressed_ms, 2), format_fixed(overhead, 2) + "x",
                     scene_verify_ok ? "yes" : "NO"});

      json.open_object();
      json.value("scene", name);
      json.value("gaussians", scene.cloud.size());
      json.value("sh_degree", scene.cloud.sh_degree());
      json.value("ply_bytes", ply_bytes);
      json.value("load_ms", load_ms);
      json.value("encode_ms", encode_ms);
      json.value("resident_bytes", resident);
      json.value("float32_bytes", float32);
      json.value("compression_ratio", ratio);
      json.value("float32_render_ms", float32_ms);
      json.value("compressed_render_ms", compressed_ms);
      json.value("decode_overhead", overhead);
      json.value_bool("verify_ok", scene_verify_ok);
      json.close_object();
    }
    json.close_array();
    json.value_bool("fixtures_ok", fixtures_ok);
    json.value_bool("compression_ok", compression_ok);
    json.value_bool("verify_ok", verify_ok);
    json.value("peak_rss_bytes", benchutil::peak_rss_bytes());
    json.close_object();
    json.finish();
    table.print();
    std::printf("bench_dataset: wrote %s/BENCH_dataset.json\n", out_dir.c_str());
    // A fixture mis-sniff, a round-trip mismatch, a verify failure or a
    // compression shortfall is a correctness regression, not a perf data
    // point: fail the driver so CI's bench step goes red.
    return fixtures_ok && compression_ok && verify_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_dataset: %s\n", e.what());
    return 1;
  }
}
