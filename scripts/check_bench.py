#!/usr/bin/env python3
"""Perf-regression gate: compares a fresh run_all BENCH_software.json against
the committed baseline (bench/baseline/BENCH_software.json) and fails when a
tracked quantity drifts by more than the tolerance (default +/-15%).

What is compared, and why:

  * Work counters (visible_gaussians, tile_pairs, sort_pairs,
    sort_comparison_volume, alpha_computations, blend_ops, bitmask_tests,
    filter_checks) for both pipelines of every scene. These are
    machine-independent at a fixed GSTG_SCALE — they are pure functions of
    the code — so drift means the rendering workload itself changed: the
    perf signal that survives CI-runner noise.
  * Workload ratios (sort_pair_reduction) — the paper's headline
    reduction must not silently erode.
  * Correctness flags (lossless_max_abs_diff == 0,
    batch.identical_to_sequential, every simd backend's
    exact_identical_to_scalar) — these are hard failures regardless of
    tolerance.

  * Temporal reuse ratios (--temporal/--temporal-baseline pair of
    BENCH_temporal.json files): per scene and camera path, the reuse rate,
    sorts-avoided ratio, and sort-volume reduction of the cross-frame
    group-sort cache must stay within tolerance of the committed baseline,
    a sorts-avoided ratio that was positive must stay positive, and the
    kVerify / bit-identity flags are hard failures.

  * Binning records (--binning/--binning-baseline pair of
    BENCH_binning.json files): per scene and boundary method, the flat and
    hierarchical boundary-test counts, the coarse CSR volume, and the
    test-reduction ratio are machine-independent and must stay within
    tolerance; the flat-vs-hierarchical bit-identity and kVerify flags, and
    the fresh run's reduction_ok gate (>= 20% fewer boundary tests on the
    largest scene), are hard failures.

  * Render-service records (--service/--service-baseline pair of
    BENCH_service.json files): per scene, the request/cache totals and the
    per-session reuse-pair ratio of the fixed multi-client workload are
    deterministic and must stay within tolerance; the bit-identity,
    verify-gate, and typed-rejection flags are hard failures. Queue/batch
    depths and the 1 -> 4 client throughput scaling depend on timing and
    core count, so they are recorded but only compared under --check-times.

  * Dataset/residency records (--dataset/--dataset-baseline pair of
    BENCH_dataset.json files): per loader fixture, the sniffed source
    format and the ingested gaussian/camera counts are pure functions of
    the committed fixture bytes; per scene, the cloud size, checkpoint
    bytes, resident-form bytes and the fp16-vs-float32 compression ratio
    are machine-independent and must stay within tolerance. The fresh
    run's fixtures_ok / compression_ok (resident bytes >= 2x smaller) /
    verify_ok (streamed decode bit-identical to up-front decode) flags are
    hard failures. Load/encode/render wall-clocks are compared only under
    --check-times.

  * Sortless-quality records (--quality/--quality-baseline pair of
    BENCH_quality.json files): per scene, the sort pairs avoided and blend-op
    counts are machine-independent and must stay within tolerance, and the
    PSNR/SSIM of the sortless image against the exact one must not drift
    (they are deterministic at a fixed scale). The fresh run's top-level and
    per-scene quality_ok (committed PSNR/SSIM floor) and verify_ok (kVerify
    bit-identical to pure kSortless) flags, and sortless sort_pairs == 0,
    are hard failures. sort_ms_removed / raster_ms_* are compared only
    under --check-times.

  * Telemetry records (--telemetry/--telemetry-baseline pair of
    BENCH_telemetry.json files): the recorded/exported event counts and the
    per-stage span counts of the fixed single-threaded run are
    machine-independent and must stay within tolerance; the fresh run's
    overhead_ok (tracing cost on sort+raster under the committed 3% limit),
    dropped_ok (zero ring overflow), deterministic (bit-identical image and
    counters with tracing on), and stage_spans_ok flags are hard failures.
    The raw plain/traced wall-clocks and the overhead ratio itself are
    compared only under --check-times.

Wall-clock fields (*_ms, speedups derived from them) are skipped by default:
absolute times are machine-dependent and CI runners are noisy. Pass
--check-times for same-machine comparisons (e.g. refreshing the baseline
locally and eyeballing the diff).

Usage:
  check_bench.py <fresh BENCH_software.json> <baseline BENCH_software.json>
                 [--tolerance=0.15] [--check-times]
                 [--temporal=<fresh BENCH_temporal.json>]
                 [--temporal-baseline=<baseline BENCH_temporal.json>]
                 [--service=<fresh BENCH_service.json>]
                 [--service-baseline=<baseline BENCH_service.json>]
                 [--binning=<fresh BENCH_binning.json>]
                 [--binning-baseline=<baseline BENCH_binning.json>]
                 [--dataset=<fresh BENCH_dataset.json>]
                 [--dataset-baseline=<baseline BENCH_dataset.json>]
                 [--quality=<fresh BENCH_quality.json>]
                 [--quality-baseline=<baseline BENCH_quality.json>]
                 [--telemetry=<fresh BENCH_telemetry.json>]
                 [--telemetry-baseline=<baseline BENCH_telemetry.json>]

Baseline refresh procedure: see bench/README.md ("Perf-regression gate").
"""

import json
import sys

SERVICE_COUNTER_KEYS = [
    "frames_per_client",
    "requests_completed",
    "requests_failed",
    "cache_misses",
    "reuse_pairs",
    "sorted_pairs",
]
SERVICE_RATIO_KEYS = ["reuse_pair_ratio"]
SERVICE_TIME_KEYS = [
    "sequential_ms",
    "wall_ms_1client",
    "wall_ms_4client",
    "throughput_fps_1client",
    "throughput_fps_4client",
    "scaling_1_to_4",
]

BINNING_COUNTER_KEYS = [
    "tile_pairs",
    "boundary_tests_flat",
    "boundary_tests_hier",
    "coarse_pairs",
    "splats_multi_tile",
]
BINNING_RATIO_KEYS = ["test_reduction"]

DATASET_FIXTURE_KEYS = ["gaussians", "cameras"]
DATASET_COUNTER_KEYS = [
    "gaussians",
    "sh_degree",
    "ply_bytes",
    "resident_bytes",
    "float32_bytes",
]
DATASET_RATIO_KEYS = ["compression_ratio"]
DATASET_TIME_KEYS = [
    "load_ms",
    "encode_ms",
    "float32_render_ms",
    "compressed_render_ms",
    "decode_overhead",
]

QUALITY_COUNTER_KEYS = [
    "visible_gaussians",
    "sort_pairs_avoided",
    "sort_comparison_volume_avoided",
    "sortless_blend_ops",
    "exact_blend_ops",
]
QUALITY_RATIO_KEYS = ["psnr", "ssim"]
QUALITY_TIME_KEYS = [
    "sort_ms_removed",
    "raster_ms_exact",
    "raster_ms_sortless",
    "raster_ms_delta",
]

TELEMETRY_COUNTER_KEYS = [
    "frames",
    "repeat",
    "events_recorded",
    "trace_events_written",
]
TELEMETRY_TIME_KEYS = [
    "plain_sort_raster_ms",
    "traced_sort_raster_ms",
    "overhead_ratio",
]

TEMPORAL_COUNTER_KEYS = [
    "groups_total",
    "groups_reused",
    "groups_patched",
    "groups_resorted",
    "pairs_reused",
    "pairs_sorted",
]
TEMPORAL_RATIO_KEYS = ["reuse_rate", "sorts_avoided", "sort_volume_reduction"]

COUNTER_KEYS = [
    "visible_gaussians",
    "tile_pairs",
    "sort_pairs",
    "sort_comparison_volume",
    "alpha_computations",
    "blend_ops",
    "bitmask_tests",
    "filter_checks",
]
RATIO_KEYS = ["sort_pair_reduction"]
TIME_SUFFIX = "_ms"


def rel_diff(new, old):
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return abs(new - old) / abs(old)


class Gate:
    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.failures = []
        self.checked = 0

    def check(self, where, key, new, old):
        self.checked += 1
        d = rel_diff(new, old)
        if d > self.tolerance:
            self.failures.append(
                f"{where}.{key}: {new} vs baseline {old} ({d * 100.0:.1f}% > "
                f"{self.tolerance * 100.0:.0f}%)"
            )

    def require(self, where, condition, message):
        self.checked += 1
        if not condition:
            self.failures.append(f"{where}: {message}")


def compare_section(gate, where, new, old, keys):
    for key in keys:
        if key in old:
            if key not in new:
                gate.require(where, False, f"missing field '{key}' in fresh output")
            else:
                gate.check(where, key, new[key], old[key])


def compare_times(gate, where, new, old):
    for key, value in old.items():
        if key.endswith(TIME_SUFFIX) and isinstance(value, (int, float)):
            if isinstance(new.get(key), (int, float)):
                gate.check(where, key, new[key], value)


def compare_temporal(gate, fresh, baseline):
    """Gates a fresh BENCH_temporal.json against the committed baseline."""
    if fresh.get("scale", {}) != baseline.get("scale", {}):
        gate.require(
            "temporal",
            False,
            f"scale mismatch (fresh {fresh.get('scale')} vs baseline {baseline.get('scale')})",
        )
        return
    fresh_scenes = {s["scene"]: s for s in fresh.get("scenes", [])}
    for scene in baseline.get("scenes", []):
        name = scene["scene"]
        if name not in fresh_scenes:
            gate.require(f"temporal.{name}", False, "scene missing from fresh output")
            continue
        fresh_paths = {p["path"]: p for p in fresh_scenes[name].get("paths", [])}
        for base_path in scene.get("paths", []):
            kind = base_path["path"]
            where = f"temporal.{name}.{kind}"
            if kind not in fresh_paths:
                gate.require(where, False, "path missing from fresh output")
                continue
            new = fresh_paths[kind]
            compare_section(gate, where, new, base_path, TEMPORAL_COUNTER_KEYS)
            compare_section(gate, where, new, base_path, TEMPORAL_RATIO_KEYS)
            if base_path.get("sorts_avoided", 0) > 0:
                gate.require(
                    where,
                    new.get("sorts_avoided", 0) > 0,
                    "sorts-avoided ratio dropped to zero (cross-frame reuse broke)",
                )
            gate.require(
                where,
                new.get("verify_ok") in (True, "true"),
                "kVerify found a reused order that is not bit-identical to sorting",
            )
            gate.require(
                where,
                new.get("identical_to_off") in (True, "true"),
                "temporal output diverged from the per-frame renderer",
            )


def compare_binning(gate, fresh, baseline):
    """Gates a fresh BENCH_binning.json against the committed baseline."""
    if fresh.get("scale", {}) != baseline.get("scale", {}):
        gate.require(
            "binning",
            False,
            f"scale mismatch (fresh {fresh.get('scale')} vs baseline {baseline.get('scale')})",
        )
        return
    gate.require(
        "binning",
        fresh.get("reduction_ok") in (True, "true"),
        "hierarchical binning no longer cuts boundary tests by >= 20% on the largest scene",
    )
    fresh_scenes = {s["scene"]: s for s in fresh.get("scenes", [])}
    for scene in baseline.get("scenes", []):
        name = scene["scene"]
        if name not in fresh_scenes:
            gate.require(f"binning.{name}", False, "scene missing from fresh output")
            continue
        fresh_bounds = {b["boundary"]: b for b in fresh_scenes[name].get("boundaries", [])}
        for base_bound in scene.get("boundaries", []):
            kind = base_bound["boundary"]
            where = f"binning.{name}.{kind}"
            if kind not in fresh_bounds:
                gate.require(where, False, "boundary method missing from fresh output")
                continue
            new = fresh_bounds[kind]
            compare_section(gate, where, new, base_bound, BINNING_COUNTER_KEYS)
            compare_section(gate, where, new, base_bound, BINNING_RATIO_KEYS)
            gate.require(
                where,
                new.get("identical") in (True, "true"),
                "hierarchical binning diverged from flat binning (hit sets differ)",
            )
            gate.require(
                where,
                new.get("verify_ok") in (True, "true"),
                "kVerify found a hierarchical CSR that is not bit-identical to flat",
            )


def compare_dataset(gate, fresh, baseline, check_times):
    """Gates a fresh BENCH_dataset.json against the committed baseline."""
    if fresh.get("scale", {}) != baseline.get("scale", {}):
        gate.require(
            "dataset",
            False,
            f"scale mismatch (fresh {fresh.get('scale')} vs baseline {baseline.get('scale')})",
        )
        return
    gate.require(
        "dataset",
        fresh.get("fixtures_ok") in (True, "true"),
        "a loader fixture was mis-sniffed or a PLY round-trip did not reproduce the cloud",
    )
    gate.require(
        "dataset",
        fresh.get("compression_ok") in (True, "true"),
        "the fp16 resident form is no longer >= 2x smaller than the float32 SoA",
    )
    gate.require(
        "dataset",
        fresh.get("verify_ok") in (True, "true"),
        "the streamed decode render is not bit-identical to the up-front decode render",
    )
    fresh_fixtures = {f["name"]: f for f in fresh.get("fixtures", [])}
    for fixture in baseline.get("fixtures", []):
        name = fixture["name"]
        where = f"dataset.fixture.{name}"
        if name not in fresh_fixtures:
            gate.require(where, False, "fixture missing from fresh output")
            continue
        new = fresh_fixtures[name]
        gate.require(
            where,
            new.get("source") == fixture.get("source"),
            f"sniffed source changed ({new.get('source')} vs {fixture.get('source')})",
        )
        compare_section(gate, where, new, fixture, DATASET_FIXTURE_KEYS)
        if check_times:
            compare_section(gate, where, new, fixture, ["load_ms"])
    fresh_scenes = {s["scene"]: s for s in fresh.get("scenes", [])}
    for scene in baseline.get("scenes", []):
        name = scene["scene"]
        where = f"dataset.{name}"
        if name not in fresh_scenes:
            gate.require(where, False, "scene missing from fresh output")
            continue
        new = fresh_scenes[name]
        compare_section(gate, where, new, scene, DATASET_COUNTER_KEYS)
        compare_section(gate, where, new, scene, DATASET_RATIO_KEYS)
        if check_times:
            compare_section(gate, where, new, scene, DATASET_TIME_KEYS)
        gate.require(
            where,
            new.get("verify_ok") in (True, "true"),
            "kVerify failed or the streamed image diverged on this scene",
        )


def compare_quality(gate, fresh, baseline, check_times):
    """Gates a fresh BENCH_quality.json against the committed baseline."""
    if fresh.get("scale", {}) != baseline.get("scale", {}):
        gate.require(
            "quality",
            False,
            f"scale mismatch (fresh {fresh.get('scale')} vs baseline {baseline.get('scale')})",
        )
        return
    gate.require(
        "quality",
        fresh.get("quality_ok") in (True, "true"),
        "a scene's sortless PSNR/SSIM fell below the committed floor",
    )
    gate.require(
        "quality",
        fresh.get("verify_ok") in (True, "true"),
        "the kVerify pipeline diverged from pure kSortless",
    )
    fresh_scenes = {s["scene"]: s for s in fresh.get("scenes", [])}
    for scene in baseline.get("scenes", []):
        name = scene["scene"]
        where = f"quality.{name}"
        if name not in fresh_scenes:
            gate.require(where, False, "scene missing from fresh output")
            continue
        new = fresh_scenes[name]
        compare_section(gate, where, new, scene, QUALITY_COUNTER_KEYS)
        compare_section(gate, where, new, scene, QUALITY_RATIO_KEYS)
        if check_times:
            compare_section(gate, where, new, scene, QUALITY_TIME_KEYS)
        gate.require(
            where,
            new.get("sortless_sort_pairs", 1) == 0,
            f"sortless run sorted {new.get('sortless_sort_pairs')} pairs (must be 0)",
        )
        gate.require(
            where,
            new.get("quality_ok") in (True, "true"),
            "sortless PSNR/SSIM fell below this scene's committed floor",
        )
        gate.require(
            where,
            new.get("verify_ok") in (True, "true"),
            "kVerify output or counters diverged from pure kSortless on this scene",
        )


def compare_telemetry(gate, fresh, baseline, check_times):
    """Gates a fresh BENCH_telemetry.json against the committed baseline."""
    if fresh.get("scale", {}) != baseline.get("scale", {}):
        gate.require(
            "telemetry",
            False,
            f"scale mismatch (fresh {fresh.get('scale')} vs baseline {baseline.get('scale')})",
        )
        return
    # Hard flags: the binary computed them on the fresh machine, so they are
    # authoritative regardless of tolerance.
    gate.require(
        "telemetry",
        fresh.get("overhead_ok") in (True, "true"),
        f"tracing overhead {fresh.get('overhead_ratio')} exceeded the committed "
        f"limit {fresh.get('overhead_limit')} on sort+raster",
    )
    gate.require(
        "telemetry",
        fresh.get("dropped_ok") in (True, "true"),
        f"trace rings dropped {fresh.get('events_dropped')} events "
        "(the run must fit the default capacity)",
    )
    gate.require(
        "telemetry",
        fresh.get("deterministic") in (True, "true"),
        "image or counters diverged with tracing enabled",
    )
    gate.require(
        "telemetry",
        fresh.get("stage_spans_ok") in (True, "true"),
        "a pipeline stage emitted no spans into the exported trace",
    )
    # Span counts are machine-independent at a fixed scale (single-threaded
    # run): drift means instrumentation was added/removed or a stage stopped
    # executing.
    compare_section(gate, "telemetry", fresh, baseline, TELEMETRY_COUNTER_KEYS)
    fresh_spans = fresh.get("stage_spans", {})
    for stage, count in baseline.get("stage_spans", {}).items():
        if stage not in fresh_spans:
            gate.require("telemetry.stage_spans", False, f"stage '{stage}' missing")
        else:
            gate.check("telemetry.stage_spans", stage, fresh_spans[stage], count)
    if check_times:
        compare_section(gate, "telemetry", fresh, baseline, TELEMETRY_TIME_KEYS)


def compare_service(gate, fresh, baseline, check_times):
    """Gates a fresh BENCH_service.json against the committed baseline."""
    if fresh.get("scale", {}) != baseline.get("scale", {}):
        gate.require(
            "service",
            False,
            f"scale mismatch (fresh {fresh.get('scale')} vs baseline {baseline.get('scale')})",
        )
        return
    fresh_scenes = {s["scene"]: s for s in fresh.get("scenes", [])}
    for scene in baseline.get("scenes", []):
        name = scene["scene"]
        where = f"service.{name}"
        if name not in fresh_scenes:
            gate.require(where, False, "scene missing from fresh output")
            continue
        new = fresh_scenes[name]
        compare_section(gate, where, new, scene, SERVICE_COUNTER_KEYS)
        compare_section(gate, where, new, scene, SERVICE_RATIO_KEYS)
        if check_times:
            compare_section(gate, where, new, scene, SERVICE_TIME_KEYS)
        gate.require(
            where,
            new.get("identical_to_sequential") in (True, "true"),
            "concurrent service output diverged from per-request sequential render_gstg",
        )
        gate.require(
            where,
            new.get("verify_ok") in (True, "true"),
            "the verify gate found a response that is not bit-identical to render_gstg",
        )
        gate.require(
            where,
            new.get("malformed_rejected") in (True, "true"),
            "a malformed request was not rejected with a typed error",
        )
        # The 1 -> 4 client scaling bar (> 1.5x) is judged by the fresh run
        # itself wherever the machine has >= 4 cores to express it.
        if new.get("scaling_gate_active") in (True, "true"):
            gate.require(
                where,
                new.get("scaling_ok") in (True, "true"),
                "1->4 client throughput scaling fell below 1.5x on a >=4-core machine",
            )


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2:
        print(__doc__)
        return 1
    tolerance = 0.15
    check_times = False
    temporal_fresh_path = None
    temporal_baseline_path = None
    service_fresh_path = None
    service_baseline_path = None
    binning_fresh_path = None
    binning_baseline_path = None
    dataset_fresh_path = None
    dataset_baseline_path = None
    quality_fresh_path = None
    quality_baseline_path = None
    telemetry_fresh_path = None
    telemetry_baseline_path = None
    for opt in opts:
        if opt.startswith("--tolerance="):
            tolerance = float(opt.split("=", 1)[1])
        elif opt == "--check-times":
            check_times = True
        elif opt.startswith("--temporal="):
            temporal_fresh_path = opt.split("=", 1)[1]
        elif opt.startswith("--temporal-baseline="):
            temporal_baseline_path = opt.split("=", 1)[1]
        elif opt.startswith("--service="):
            service_fresh_path = opt.split("=", 1)[1]
        elif opt.startswith("--service-baseline="):
            service_baseline_path = opt.split("=", 1)[1]
        elif opt.startswith("--binning="):
            binning_fresh_path = opt.split("=", 1)[1]
        elif opt.startswith("--binning-baseline="):
            binning_baseline_path = opt.split("=", 1)[1]
        elif opt.startswith("--dataset="):
            dataset_fresh_path = opt.split("=", 1)[1]
        elif opt.startswith("--dataset-baseline="):
            dataset_baseline_path = opt.split("=", 1)[1]
        elif opt.startswith("--quality="):
            quality_fresh_path = opt.split("=", 1)[1]
        elif opt.startswith("--quality-baseline="):
            quality_baseline_path = opt.split("=", 1)[1]
        elif opt.startswith("--telemetry-baseline="):
            telemetry_baseline_path = opt.split("=", 1)[1]
        elif opt.startswith("--telemetry="):
            telemetry_fresh_path = opt.split("=", 1)[1]
        else:
            print(f"check_bench: unknown option {opt}")
            return 1
    if (temporal_fresh_path is None) != (temporal_baseline_path is None):
        print("check_bench: --temporal and --temporal-baseline must be given together")
        return 1
    if (service_fresh_path is None) != (service_baseline_path is None):
        print("check_bench: --service and --service-baseline must be given together")
        return 1
    if (binning_fresh_path is None) != (binning_baseline_path is None):
        print("check_bench: --binning and --binning-baseline must be given together")
        return 1
    if (dataset_fresh_path is None) != (dataset_baseline_path is None):
        print("check_bench: --dataset and --dataset-baseline must be given together")
        return 1
    if (quality_fresh_path is None) != (quality_baseline_path is None):
        print("check_bench: --quality and --quality-baseline must be given together")
        return 1
    if (telemetry_fresh_path is None) != (telemetry_baseline_path is None):
        print("check_bench: --telemetry and --telemetry-baseline must be given together")
        return 1

    with open(args[0]) as f:
        fresh = json.load(f)
    with open(args[1]) as f:
        baseline = json.load(f)

    gate = Gate(tolerance)

    fresh_scale = fresh.get("scale", {})
    base_scale = baseline.get("scale", {})
    if fresh_scale != base_scale:
        print(
            f"check_bench: FAIL — scale mismatch (fresh {fresh_scale} vs baseline "
            f"{base_scale}); run with the baseline's GSTG_SCALE"
        )
        return 1

    fresh_scenes = {s["scene"]: s for s in fresh.get("scenes", [])}
    base_scenes = {s["scene"]: s for s in baseline.get("scenes", [])}
    missing = sorted(set(base_scenes) - set(fresh_scenes))
    if missing:
        print(f"check_bench: FAIL — scenes missing from fresh output: {missing}")
        return 1
    extra = sorted(set(fresh_scenes) - set(base_scenes))
    if extra:
        print(
            f"check_bench: note — scenes not in baseline (unchecked): {extra}; "
            "refresh the baseline to cover them (bench/README.md)"
        )

    for name, base in sorted(base_scenes.items()):
        new = fresh_scenes[name]
        gate.require(
            name,
            new.get("lossless_max_abs_diff", 1) == 0,
            f"lossless violation (max diff {new.get('lossless_max_abs_diff')})",
        )
        for section in ("baseline", "gstg"):
            if section in base:
                compare_section(
                    gate, f"{name}.{section}", new.get(section, {}), base[section], COUNTER_KEYS
                )
                if check_times:
                    compare_times(gate, f"{name}.{section}", new.get(section, {}), base[section])
        if "ratios" in base:
            compare_section(gate, f"{name}.ratios", new.get("ratios", {}), base["ratios"], RATIO_KEYS)
        # Correctness sections are required from the baseline's side: a fresh
        # output that stops emitting them must fail, not silently skip the gate.
        if "batch" in base:
            gate.require(f"{name}.batch", "batch" in new, "batch section missing from fresh output")
        if "batch" in new:
            gate.require(
                f"{name}.batch",
                new["batch"].get("identical_to_sequential") in (True, "true"),
                "batch output diverged from sequential rendering",
            )
        if "residency" in new:
            gate.require(
                f"{name}.residency",
                new["residency"].get("identical_to_upfront") in (True, "true"),
                "streamed compressed-residency render diverged from up-front decode",
            )
        if "simd" in base:
            gate.require(
                f"{name}.simd",
                bool(new.get("simd", {}).get("backends")),
                "simd section missing or empty in fresh output",
            )
        for backend in new.get("simd", {}).get("backends", []):
            gate.require(
                f"{name}.simd.{backend.get('backend')}",
                backend.get("exact_identical_to_scalar") in (True, "true"),
                "exact-mode framebuffer diverged from the scalar backend",
            )

    if temporal_fresh_path is not None:
        with open(temporal_fresh_path) as f:
            temporal_fresh = json.load(f)
        with open(temporal_baseline_path) as f:
            temporal_baseline = json.load(f)
        compare_temporal(gate, temporal_fresh, temporal_baseline)

    if service_fresh_path is not None:
        with open(service_fresh_path) as f:
            service_fresh = json.load(f)
        with open(service_baseline_path) as f:
            service_baseline = json.load(f)
        compare_service(gate, service_fresh, service_baseline, check_times)

    if binning_fresh_path is not None:
        with open(binning_fresh_path) as f:
            binning_fresh = json.load(f)
        with open(binning_baseline_path) as f:
            binning_baseline = json.load(f)
        compare_binning(gate, binning_fresh, binning_baseline)

    if dataset_fresh_path is not None:
        with open(dataset_fresh_path) as f:
            dataset_fresh = json.load(f)
        with open(dataset_baseline_path) as f:
            dataset_baseline = json.load(f)
        compare_dataset(gate, dataset_fresh, dataset_baseline, check_times)

    if quality_fresh_path is not None:
        with open(quality_fresh_path) as f:
            quality_fresh = json.load(f)
        with open(quality_baseline_path) as f:
            quality_baseline = json.load(f)
        compare_quality(gate, quality_fresh, quality_baseline, check_times)

    if telemetry_fresh_path is not None:
        with open(telemetry_fresh_path) as f:
            telemetry_fresh = json.load(f)
        with open(telemetry_baseline_path) as f:
            telemetry_baseline = json.load(f)
        compare_telemetry(gate, telemetry_fresh, telemetry_baseline, check_times)

    if gate.failures:
        print(f"check_bench: FAIL — {len(gate.failures)} violation(s), {gate.checked} checks:")
        for f in gate.failures:
            print(f"  {f}")
        print("If the change is intentional, refresh the baseline (bench/README.md).")
        return 1
    print(
        f"check_bench: OK ({gate.checked} checks within {tolerance * 100.0:.0f}% across "
        f"{len(base_scenes)} scenes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
