#!/usr/bin/env python3
"""Tests for scripts/check_bench.py — the perf-regression gate.

Each test builds synthetic BENCH_*.json documents, writes them to a temp
directory, runs check_bench.py as a subprocess (the same way CI invokes it)
and asserts on the exit code and the violation text. Covers: the identity
run, the +/-15% counter tolerance (both sides), --tolerance, hard
correctness flags (lossless, batch/simd/residency identity, temporal /
binning / dataset / quality / telemetry / service gates), scale mismatch,
missing scenes/fields, wall-clock skipping vs --check-times, and CLI
contract errors (unpaired section flags, unknown options).

Run directly (python3 scripts/test_check_bench.py) or via CTest
(check_bench_selftest).
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_BENCH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench.py")

SCALE = {"name": "small", "width": 320, "height": 180}


def software_doc():
    """A minimal but fully featured BENCH_software.json."""
    counters = {
        "visible_gaussians": 1000,
        "tile_pairs": 5000,
        "sort_pairs": 4000,
        "sort_comparison_volume": 40000.0,
        "alpha_computations": 120000,
        "blend_ops": 90000,
        "bitmask_tests": 0,
        "filter_checks": 0,
        "render_ms": 12.5,
    }
    gstg = dict(counters)
    gstg.update(sort_pairs=1500, bitmask_tests=2500, filter_checks=800, render_ms=8.0)
    scene = {
        "scene": "orbit",
        "lossless_max_abs_diff": 0,
        "baseline": counters,
        "gstg": gstg,
        "ratios": {"sort_pair_reduction": 0.625},
        "batch": {"identical_to_sequential": True},
        "residency": {"identical_to_upfront": True},
        "simd": {
            "backends": [
                {"backend": "scalar", "exact_identical_to_scalar": True},
                {"backend": "avx2", "exact_identical_to_scalar": True},
            ]
        },
    }
    return {"scale": dict(SCALE), "scenes": [scene]}


def temporal_doc():
    path = {
        "path": "orbit_slow",
        "groups_total": 900,
        "groups_reused": 700,
        "groups_patched": 100,
        "groups_resorted": 100,
        "pairs_reused": 30000,
        "pairs_sorted": 5000,
        "reuse_rate": 0.78,
        "sorts_avoided": 0.77,
        "sort_volume_reduction": 0.85,
        "verify_ok": True,
        "identical_to_off": True,
    }
    return {"scale": dict(SCALE), "scenes": [{"scene": "orbit", "paths": [path]}]}


def binning_doc():
    bound = {
        "boundary": "obb",
        "tile_pairs": 5000,
        "boundary_tests_flat": 20000,
        "boundary_tests_hier": 9000,
        "coarse_pairs": 1200,
        "splats_multi_tile": 400,
        "test_reduction": 0.55,
        "identical": True,
        "verify_ok": True,
    }
    return {
        "scale": dict(SCALE),
        "reduction_ok": True,
        "scenes": [{"scene": "orbit", "boundaries": [bound]}],
    }


def dataset_doc():
    return {
        "scale": dict(SCALE),
        "fixtures_ok": True,
        "compression_ok": True,
        "verify_ok": True,
        "fixtures": [
            {"name": "tiny_ply", "source": "ply_binary", "gaussians": 64, "cameras": 2,
             "load_ms": 1.0}
        ],
        "scenes": [
            {
                "scene": "orbit",
                "gaussians": 1000,
                "sh_degree": 0,
                "ply_bytes": 59000,
                "resident_bytes": 28000,
                "float32_bytes": 60000,
                "compression_ratio": 2.14,
                "verify_ok": True,
                "load_ms": 3.0,
            }
        ],
    }


def quality_doc():
    return {
        "scale": dict(SCALE),
        "quality_ok": True,
        "verify_ok": True,
        "scenes": [
            {
                "scene": "orbit",
                "visible_gaussians": 1000,
                "sort_pairs_avoided": 4000,
                "sort_comparison_volume_avoided": 40000.0,
                "sortless_blend_ops": 91000,
                "exact_blend_ops": 90000,
                "psnr": 41.5,
                "ssim": 0.995,
                "sortless_sort_pairs": 0,
                "quality_ok": True,
                "verify_ok": True,
                "sort_ms_removed": 2.5,
            }
        ],
    }


def telemetry_doc():
    return {
        "scale": dict(SCALE),
        "overhead_ok": True,
        "dropped_ok": True,
        "deterministic": True,
        "stage_spans_ok": True,
        "frames": 8,
        "repeat": 3,
        "events_recorded": 4200,
        "trace_events_written": 4200,
        "events_dropped": 0,
        "overhead_ratio": 0.01,
        "overhead_limit": 0.03,
        "stage_spans": {"preprocess": 8, "binning": 8, "sort": 8, "raster": 8},
        "plain_sort_raster_ms": 10.0,
        "traced_sort_raster_ms": 10.1,
    }


def service_doc():
    return {
        "scale": dict(SCALE),
        "scenes": [
            {
                "scene": "orbit",
                "frames_per_client": 16,
                "requests_completed": 64,
                "requests_failed": 0,
                "cache_misses": 1,
                "reuse_pairs": 20000,
                "sorted_pairs": 5000,
                "reuse_pair_ratio": 0.8,
                "identical_to_sequential": True,
                "verify_ok": True,
                "malformed_rejected": True,
                "scaling_gate_active": True,
                "scaling_ok": True,
                "wall_ms_4client": 40.0,
            }
        ],
    }


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="check_bench_test_")
        self.dir = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, doc):
        path = os.path.join(self.dir, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_gate(self, fresh, baseline, *extra, fresh_name="fresh.json",
                 base_name="base.json"):
        cmd = [sys.executable, CHECK_BENCH, self.write(fresh_name, fresh),
               self.write(base_name, baseline), *extra]
        return subprocess.run(cmd, capture_output=True, text=True)

    def assert_fails(self, result, *needles):
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        for needle in needles:
            self.assertIn(needle, result.stdout)

    # ---- the software gate --------------------------------------------

    def test_identical_passes(self):
        doc = software_doc()
        result = self.run_gate(doc, copy.deepcopy(doc))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("check_bench: OK", result.stdout)

    def test_counter_drift_beyond_tolerance_fails(self):
        fresh = software_doc()
        fresh["scenes"][0]["gstg"]["sort_pairs"] = 2000  # +33% vs 1500
        self.assert_fails(self.run_gate(fresh, software_doc()),
                          "orbit.gstg.sort_pairs")

    def test_counter_drift_within_tolerance_passes(self):
        fresh = software_doc()
        fresh["scenes"][0]["gstg"]["sort_pairs"] = 1600  # +6.7%
        self.assertEqual(self.run_gate(fresh, software_doc()).returncode, 0)

    def test_tolerance_option_tightens_the_gate(self):
        fresh = software_doc()
        fresh["scenes"][0]["gstg"]["sort_pairs"] = 1600
        self.assert_fails(
            self.run_gate(fresh, software_doc(), "--tolerance=0.05"),
            "orbit.gstg.sort_pairs")

    def test_drift_from_zero_is_infinite(self):
        fresh = software_doc()
        fresh["scenes"][0]["baseline"]["bitmask_tests"] = 7  # baseline has 0
        self.assert_fails(self.run_gate(fresh, software_doc()),
                          "orbit.baseline.bitmask_tests")

    def test_ratio_drift_fails(self):
        fresh = software_doc()
        fresh["scenes"][0]["ratios"]["sort_pair_reduction"] = 0.3
        self.assert_fails(self.run_gate(fresh, software_doc()),
                          "orbit.ratios.sort_pair_reduction")

    def test_lossless_violation_is_a_hard_failure(self):
        fresh = software_doc()
        fresh["scenes"][0]["lossless_max_abs_diff"] = 2
        self.assert_fails(self.run_gate(fresh, software_doc()), "lossless violation")

    def test_batch_divergence_fails(self):
        fresh = software_doc()
        fresh["scenes"][0]["batch"]["identical_to_sequential"] = False
        self.assert_fails(self.run_gate(fresh, software_doc()),
                          "batch output diverged")

    def test_missing_batch_section_fails(self):
        fresh = software_doc()
        del fresh["scenes"][0]["batch"]
        self.assert_fails(self.run_gate(fresh, software_doc()),
                          "batch section missing")

    def test_simd_backend_divergence_fails(self):
        fresh = software_doc()
        fresh["scenes"][0]["simd"]["backends"][1]["exact_identical_to_scalar"] = False
        self.assert_fails(self.run_gate(fresh, software_doc()), "simd.avx2")

    def test_residency_divergence_fails(self):
        fresh = software_doc()
        fresh["scenes"][0]["residency"]["identical_to_upfront"] = False
        self.assert_fails(self.run_gate(fresh, software_doc()),
                          "streamed compressed-residency render diverged")

    def test_missing_scene_fails(self):
        fresh = software_doc()
        fresh["scenes"] = []
        self.assert_fails(self.run_gate(fresh, software_doc()), "scenes missing")

    def test_extra_scene_is_noted_but_passes(self):
        fresh = software_doc()
        extra = copy.deepcopy(fresh["scenes"][0])
        extra["scene"] = "flyby"
        fresh["scenes"].append(extra)
        result = self.run_gate(fresh, software_doc())
        self.assertEqual(result.returncode, 0)
        self.assertIn("not in baseline", result.stdout)

    def test_scale_mismatch_fails(self):
        fresh = software_doc()
        fresh["scale"]["name"] = "full"
        self.assert_fails(self.run_gate(fresh, software_doc()), "scale mismatch")

    def test_missing_counter_field_fails(self):
        fresh = software_doc()
        del fresh["scenes"][0]["gstg"]["blend_ops"]
        self.assert_fails(self.run_gate(fresh, software_doc()),
                          "missing field 'blend_ops'")

    def test_times_skipped_by_default_but_gated_with_check_times(self):
        fresh = software_doc()
        fresh["scenes"][0]["gstg"]["render_ms"] = 80.0  # 10x slower
        self.assertEqual(self.run_gate(fresh, software_doc()).returncode, 0)
        self.assert_fails(
            self.run_gate(fresh, software_doc(), "--check-times"),
            "orbit.gstg.render_ms")

    # ---- CLI contract -------------------------------------------------

    def test_unpaired_section_flag_fails(self):
        doc = software_doc()
        temporal = self.write("t.json", temporal_doc())
        result = self.run_gate(doc, copy.deepcopy(doc), f"--temporal={temporal}")
        self.assert_fails(result, "--temporal and --temporal-baseline")

    def test_unknown_option_fails(self):
        doc = software_doc()
        self.assert_fails(self.run_gate(doc, copy.deepcopy(doc), "--frobnicate"),
                          "unknown option")

    def test_missing_positional_args_usage(self):
        result = subprocess.run([sys.executable, CHECK_BENCH],
                                capture_output=True, text=True)
        self.assertEqual(result.returncode, 1)
        self.assertIn("Usage:", result.stdout)

    # ---- section gates ------------------------------------------------

    def section_gate(self, flag, fresh_doc, base_doc, *extra):
        sw = software_doc()
        fresh = self.write(f"{flag}_fresh.json", fresh_doc)
        base = self.write(f"{flag}_base.json", base_doc)
        return self.run_gate(sw, copy.deepcopy(sw),
                             f"--{flag}={fresh}", f"--{flag}-baseline={base}", *extra)

    def test_temporal_identical_passes(self):
        result = self.section_gate("temporal", temporal_doc(), temporal_doc())
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_temporal_reuse_drift_fails(self):
        fresh = temporal_doc()
        fresh["scenes"][0]["paths"][0]["reuse_rate"] = 0.4
        self.assert_fails(self.section_gate("temporal", fresh, temporal_doc()),
                          "temporal.orbit.orbit_slow.reuse_rate")

    def test_temporal_verify_flag_fails(self):
        fresh = temporal_doc()
        fresh["scenes"][0]["paths"][0]["verify_ok"] = False
        self.assert_fails(self.section_gate("temporal", fresh, temporal_doc()),
                          "kVerify")

    def test_temporal_sorts_avoided_collapse_fails(self):
        fresh = temporal_doc()
        base = temporal_doc()
        # Drift the fresh ratio to zero while keeping the baseline positive;
        # widen the tolerance so only the positivity gate can fire.
        fresh["scenes"][0]["paths"][0]["sorts_avoided"] = 0
        self.assert_fails(
            self.section_gate("temporal", fresh, base, "--tolerance=10.0"),
            "sorts-avoided ratio dropped to zero")

    def test_binning_reduction_gate_fails(self):
        fresh = binning_doc()
        fresh["reduction_ok"] = False
        self.assert_fails(self.section_gate("binning", fresh, binning_doc()),
                          "no longer cuts boundary tests")

    def test_binning_identity_flag_fails(self):
        fresh = binning_doc()
        fresh["scenes"][0]["boundaries"][0]["identical"] = False
        self.assert_fails(self.section_gate("binning", fresh, binning_doc()),
                          "hierarchical binning diverged")

    def test_binning_counter_drift_fails(self):
        fresh = binning_doc()
        fresh["scenes"][0]["boundaries"][0]["boundary_tests_hier"] = 15000
        self.assert_fails(self.section_gate("binning", fresh, binning_doc()),
                          "binning.orbit.obb.boundary_tests_hier")

    def test_binning_scale_mismatch_fails(self):
        fresh = binning_doc()
        fresh["scale"] = {"name": "full"}
        self.assert_fails(self.section_gate("binning", fresh, binning_doc()),
                          "scale mismatch")

    def test_dataset_compression_gate_fails(self):
        fresh = dataset_doc()
        fresh["compression_ok"] = False
        self.assert_fails(self.section_gate("dataset", fresh, dataset_doc()),
                          "no longer >= 2x smaller")

    def test_dataset_sniffed_source_change_fails(self):
        fresh = dataset_doc()
        fresh["fixtures"][0]["source"] = "ply_ascii"
        self.assert_fails(self.section_gate("dataset", fresh, dataset_doc()),
                          "sniffed source changed")

    def test_quality_floor_gate_fails(self):
        fresh = quality_doc()
        fresh["quality_ok"] = False
        self.assert_fails(self.section_gate("quality", fresh, quality_doc()),
                          "PSNR/SSIM fell below")

    def test_quality_sortless_sorted_pairs_fails(self):
        fresh = quality_doc()
        fresh["scenes"][0]["sortless_sort_pairs"] = 123
        self.assert_fails(self.section_gate("quality", fresh, quality_doc()),
                          "sortless run sorted 123 pairs")

    def test_telemetry_overhead_gate_fails(self):
        fresh = telemetry_doc()
        fresh["overhead_ok"] = False
        self.assert_fails(self.section_gate("telemetry", fresh, telemetry_doc()),
                          "tracing overhead")

    def test_telemetry_stage_span_drift_fails(self):
        fresh = telemetry_doc()
        fresh["stage_spans"]["sort"] = 0
        self.assert_fails(self.section_gate("telemetry", fresh, telemetry_doc()),
                          "telemetry.stage_spans.sort")

    def test_telemetry_times_only_under_check_times(self):
        fresh = telemetry_doc()
        fresh["traced_sort_raster_ms"] = 99.0
        self.assertEqual(
            self.section_gate("telemetry", fresh, telemetry_doc()).returncode, 0)
        self.assert_fails(
            self.section_gate("telemetry", fresh, telemetry_doc(), "--check-times"),
            "telemetry.traced_sort_raster_ms")

    def test_service_malformed_rejection_gate_fails(self):
        fresh = service_doc()
        fresh["scenes"][0]["malformed_rejected"] = False
        self.assert_fails(self.section_gate("service", fresh, service_doc()),
                          "malformed request was not rejected")

    def test_service_times_skipped_by_default(self):
        fresh = service_doc()
        fresh["scenes"][0]["wall_ms_4client"] = 4000.0
        self.assertEqual(
            self.section_gate("service", fresh, service_doc()).returncode, 0)

    def test_service_counter_drift_fails(self):
        fresh = service_doc()
        fresh["scenes"][0]["reuse_pairs"] = 10000
        self.assert_fails(self.section_gate("service", fresh, service_doc()),
                          "service.orbit.reuse_pairs")


if __name__ == "__main__":
    unittest.main(verbosity=2)
