#!/usr/bin/env python3
"""Regenerates the committed golden dataset fixtures under tests/data/.

The fixtures are tiny but real: a COLMAP sparse model (binary and text
serialisations with identical logical content) and a 2-frame NeRF-synthetic
transforms.json. tests/dataset/test_dataset_golden.cpp pins exact values
from these files, so regeneration must stay byte-stable: everything below
is deterministic, and floating-point values are chosen to be exactly
representable or written at full precision.

Usage: python3 scripts/make_test_fixtures.py
"""

import json
import os
import struct

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DATA = os.path.join(ROOT, "tests", "data")

# Logical model, shared by the binary and text writers ----------------------

# (camera_id, model_name, model_id, width, height, params)
CAMERAS = [
    (1, "PINHOLE", 1, 640, 480, [500.0, 505.0, 320.0, 240.0]),
    (2, "SIMPLE_PINHOLE", 0, 320, 240, [300.0, 160.0, 120.0]),
]

# 30-degree rotation about +y, written at full double precision.
COS15 = 0.9659258262890683
SIN15 = 0.25881904510252074

# (image_id, qvec wxyz, tvec, camera_id, name, points2D [(x, y, point3d_id)])
IMAGES = [
    (10, (1.0, 0.0, 0.0, 0.0), (0.0, 0.0, 4.0), 1, "frame_000.png",
     [(10.5, 20.25, 7), (30.0, 40.0, -1)]),
    (11, (COS15, 0.0, SIN15, 0.0), (0.5, -0.25, 4.5), 2, "frame_001.png", []),
    (12, (0.5, 0.5, 0.5, 0.5), (-1.0, 0.125, 3.75), 1, "frame_002.png",
     [(5.0, 6.0, -1)]),
]


def make_points():
    """12 SfM points on an exactly-representable lattice."""
    points = []
    for i in range(12):
        xyz = (0.25 * i - 1.5, 0.5 * (i % 3) - 0.5, 0.25 * (i % 4) + 2.0)
        rgb = ((10 * i) % 256, (17 * i + 5) % 256, (23 * i + 11) % 256)
        track = [(10, i), (11, i)] if i % 2 == 0 else []
        points.append((i + 1, xyz, rgb, 0.5, track))
    return points


POINTS = make_points()

# Binary serialisation (COLMAP src/base/reconstruction.cc) ------------------


def write_cameras_bin(path):
    with open(path, "wb") as f:
        f.write(struct.pack("<Q", len(CAMERAS)))
        for cam_id, _, model_id, width, height, params in CAMERAS:
            f.write(struct.pack("<IiQQ", cam_id, model_id, width, height))
            f.write(struct.pack(f"<{len(params)}d", *params))


def write_images_bin(path):
    with open(path, "wb") as f:
        f.write(struct.pack("<Q", len(IMAGES)))
        for image_id, qvec, tvec, cam_id, name, points2d in IMAGES:
            f.write(struct.pack("<I", image_id))
            f.write(struct.pack("<4d", *qvec))
            f.write(struct.pack("<3d", *tvec))
            f.write(struct.pack("<I", cam_id))
            f.write(name.encode() + b"\x00")
            f.write(struct.pack("<Q", len(points2d)))
            for x, y, p3d in points2d:
                f.write(struct.pack("<ddq", x, y, p3d))


def write_points_bin(path):
    with open(path, "wb") as f:
        f.write(struct.pack("<Q", len(POINTS)))
        for p3d_id, xyz, rgb, error, track in POINTS:
            f.write(struct.pack("<Q", p3d_id))
            f.write(struct.pack("<3d", *xyz))
            f.write(struct.pack("<3B", *rgb))
            f.write(struct.pack("<d", error))
            f.write(struct.pack("<Q", len(track)))
            for image_id, p2d_idx in track:
                f.write(struct.pack("<II", image_id, p2d_idx))


# Text serialisation --------------------------------------------------------


def fmt(value):
    """Full-precision decimal that round-trips to the same double."""
    return repr(float(value))


def write_cameras_txt(path):
    with open(path, "w") as f:
        f.write("# Camera list: CAMERA_ID, MODEL, WIDTH, HEIGHT, PARAMS[]\n")
        for cam_id, model, _, width, height, params in CAMERAS:
            f.write(f"{cam_id} {model} {width} {height} "
                    + " ".join(fmt(p) for p in params) + "\n")


def write_images_txt(path):
    with open(path, "w") as f:
        f.write("# Image list: IMAGE_ID, QW, QX, QY, QZ, TX, TY, TZ, CAMERA_ID, NAME\n")
        f.write("#   then POINTS2D[] as (X, Y, POINT3D_ID)\n")
        for image_id, qvec, tvec, cam_id, name, points2d in IMAGES:
            f.write(f"{image_id} " + " ".join(fmt(v) for v in qvec) + " "
                    + " ".join(fmt(v) for v in tvec) + f" {cam_id} {name}\n")
            f.write(" ".join(f"{fmt(x)} {fmt(y)} {p3d}" for x, y, p3d in points2d)
                    + "\n")


def write_points_txt(path):
    with open(path, "w") as f:
        f.write("# 3D point list: POINT3D_ID, X, Y, Z, R, G, B, ERROR, "
                "TRACK[] as (IMAGE_ID, POINT2D_IDX)\n")
        for p3d_id, xyz, rgb, error, track in POINTS:
            f.write(f"{p3d_id} " + " ".join(fmt(v) for v in xyz) + " "
                    + " ".join(str(c) for c in rgb) + f" {fmt(error)}"
                    + "".join(f" {i} {j}" for i, j in track) + "\n")


# transforms.json -----------------------------------------------------------


def write_transforms(path):
    doc = {
        "camera_angle_x": 0.6911112070083618,
        "w": 400,
        "h": 300,
        "frames": [
            {
                "file_path": "./train/r_0",
                "transform_matrix": [
                    [1.0, 0.0, 0.0, 0.0],
                    [0.0, 1.0, 0.0, 0.0],
                    [0.0, 0.0, 1.0, 4.0],
                    [0.0, 0.0, 0.0, 1.0],
                ],
            },
            {
                "file_path": "./train/r_1",
                "transform_matrix": [
                    [0.0, 0.0, 1.0, 4.0],
                    [0.0, 1.0, 0.0, 0.0],
                    [-1.0, 0.0, 0.0, 0.0],
                    [0.0, 0.0, 0.0, 1.0],
                ],
            },
        ],
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main():
    colmap_bin = os.path.join(DATA, "colmap_mini", "sparse", "0")
    colmap_txt = os.path.join(DATA, "colmap_mini_text")
    os.makedirs(colmap_bin, exist_ok=True)
    os.makedirs(colmap_txt, exist_ok=True)

    write_cameras_bin(os.path.join(colmap_bin, "cameras.bin"))
    write_images_bin(os.path.join(colmap_bin, "images.bin"))
    write_points_bin(os.path.join(colmap_bin, "points3D.bin"))

    write_cameras_txt(os.path.join(colmap_txt, "cameras.txt"))
    write_images_txt(os.path.join(colmap_txt, "images.txt"))
    write_points_txt(os.path.join(colmap_txt, "points3D.txt"))

    write_transforms(os.path.join(DATA, "transforms_mini.json"))
    print(f"fixtures written under {DATA}")


if __name__ == "__main__":
    main()
