#!/usr/bin/env python3
"""Structural validator for GSTG_TRACE output (Chrome trace-event JSON).

Checks that an exported trace is well-formed enough to trust in Perfetto and
in the CI artifact:

  * the file parses as JSON and carries a traceEvents array;
  * every event has a known phase (B, E, b, e, C, i, M), a name, and a
    pid/tid;
  * every (pid, tid) that emits events also carries thread_name metadata,
    and the pid carries process_name metadata;
  * timestamps are non-negative, and per (pid, tid) the B/E stream is
    properly nested: every E matches the name of the innermost open B,
    no E without an open B, nothing left open at the end;
  * per (pid, tid) the B/E timestamp sequence is monotonically
    non-decreasing (spans are exported begin-sorted with explicit closes);
  * async 'b'/'e' pairs (queue waits, which overlap scoped spans freely)
    match on (cat, id, name): every 'e' closes an open 'b' with the same
    key, ts(e) >= ts(b), and nothing is left open;
  * --require=<name> (repeatable, or comma-separated): at least one span
    with that name exists somewhere in the trace — CI uses it to assert
    the four pipeline stages and the service queue-wait spans survived.

Usage:
  check_trace.py <trace.json> [--require=preprocess,binning,...] [--quiet]

Exit codes: 0 valid, 1 structural violation or missing required span,
2 unreadable/unparseable input.
"""

import json
import sys


def fail(messages):
    for m in messages:
        print(f"check_trace: {m}")
    print("check_trace: FAILED")
    return 1


def main(argv):
    paths = [a for a in argv[1:] if not a.startswith("--")]
    required = []
    quiet = False
    for opt in argv[1:]:
        if not opt.startswith("--"):
            continue
        if opt.startswith("--require="):
            required.extend(x for x in opt.split("=", 1)[1].split(",") if x)
        elif opt == "--quiet":
            quiet = True
        else:
            print(f"check_trace: unknown option {opt}")
            return 2
    if len(paths) != 1:
        print(__doc__)
        return 2

    try:
        with open(paths[0]) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot read {paths[0]}: {e}")
        return 2

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail([f"{paths[0]}: no traceEvents array (or empty)"])

    errors = []
    named_processes = set()   # pids with process_name metadata
    named_threads = set()     # (pid, tid) with thread_name metadata
    seen_threads = set()      # (pid, tid) that emitted B/E/C/i events
    open_stacks = {}          # (pid, tid) -> list of open B names
    last_ts = {}              # (pid, tid) -> last B/E timestamp
    open_async = {}           # (cat, id, name) -> begin ts of open 'b'
    span_names = set()
    counts = {"B": 0, "E": 0, "b": 0, "e": 0, "C": 0, "i": 0, "M": 0}

    for n, e in enumerate(events):
        ph = e.get("ph")
        name = e.get("name")
        pid = e.get("pid")
        if ph not in counts:
            errors.append(f"event {n}: unknown phase {ph!r}")
            continue
        counts[ph] += 1
        if not name:
            errors.append(f"event {n}: missing name")
            continue
        if pid is None:
            errors.append(f"event {n} ({name}): missing pid")
            continue

        if ph == "M":
            if name == "process_name":
                named_processes.add(pid)
            elif name == "thread_name":
                named_threads.add((pid, e.get("tid")))
            continue

        tid = e.get("tid")
        if tid is None:
            errors.append(f"event {n} ({name}): missing tid")
            continue
        key = (pid, tid)
        seen_threads.add(key)

        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {n} ({name}): bad ts {ts!r}")
            continue

        if ph in ("b", "e"):
            # Async pairs are keyed by (cat, id, name), not by thread
            # nesting — a queue wait begins on the client thread while the
            # worker is mid-render, so it may overlap scoped spans.
            akey = (e.get("cat"), e.get("id"), name)
            if akey[1] is None:
                errors.append(f"event {n} ({name}): async event without id")
            elif ph == "b":
                if akey in open_async:
                    errors.append(f"event {n} ({name}): duplicate async id {akey[1]}")
                else:
                    open_async[akey] = ts
                    span_names.add(name)
            else:
                if akey not in open_async:
                    errors.append(f"event {n}: e '{name}' id {akey[1]} with no open b")
                elif ts < open_async[akey]:
                    errors.append(
                        f"event {n} ({name}): async end ts {ts} before begin "
                        f"{open_async[akey]}"
                    )
                    del open_async[akey]
                else:
                    del open_async[akey]
        elif ph in ("B", "E"):
            if ts < last_ts.get(key, 0.0):
                errors.append(
                    f"event {n} ({name}): ts {ts} goes backwards on tid {tid} "
                    f"(last {last_ts[key]})"
                )
            last_ts[key] = ts
            stack = open_stacks.setdefault(key, [])
            if ph == "B":
                stack.append(name)
                span_names.add(name)
            else:
                if not stack:
                    errors.append(f"event {n}: E '{name}' with no open span on tid {tid}")
                elif stack[-1] != name:
                    errors.append(
                        f"event {n}: E '{name}' does not match open span "
                        f"'{stack[-1]}' on tid {tid}"
                    )
                else:
                    stack.pop()

    for key, stack in open_stacks.items():
        if stack:
            errors.append(f"tid {key[1]}: {len(stack)} span(s) left open: {stack}")
    if counts["B"] != counts["E"]:
        errors.append(f"unmatched span events: {counts['B']} B vs {counts['E']} E")
    for akey, begin_ts in open_async.items():
        errors.append(f"async span '{akey[2]}' id {akey[1]} left open (b at {begin_ts})")
    if counts["b"] != counts["e"]:
        errors.append(f"unmatched async events: {counts['b']} b vs {counts['e']} e")
    for key in sorted(seen_threads):
        if key not in named_threads:
            errors.append(f"pid {key[0]} tid {key[1]} emits events but has no thread_name")
        if key[0] not in named_processes:
            errors.append(f"pid {key[0]} emits events but has no process_name")
    for name in required:
        if name not in span_names:
            errors.append(f"required span '{name}' not found in trace")

    if errors:
        return fail(errors[:50])
    if not quiet:
        print(
            f"check_trace: OK ({counts['B']} spans, {counts['b']} async spans, "
            f"{counts['C']} counter samples, {counts['i']} instants across "
            f"{len(seen_threads)} thread(s); "
            f"span names: {', '.join(sorted(span_names))})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
