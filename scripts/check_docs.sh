#!/usr/bin/env bash
# Documentation consistency gate, run by CI's docs job and registered as a
# CTest test (label: docs). Three checks:
#   1. Every relative markdown link in README.md, docs/*.md, bench/README.md
#      resolves to an existing file or directory.
#   2. docs/CONFIG.md mentions every field of GsTgConfig (and RenderConfig),
#      so the config reference cannot silently rot.
#   3. Every GSTG_* environment variable parsed in common/runconfig.cpp has
#      a row in docs/CONFIG.md, so new env knobs cannot ship undocumented.
#   4. No rendered image output (*.ppm) is tracked by git — PPMs are build
#      products (quickstart, bench quality diffs) and belong in .gitignore.
#   5. Every lint rule ID in tools/lint/gstg_lint.py has a matching section
#      in docs/ARCHITECTURE.md, so the invariant catalogue cannot rot.
set -u

cd "$(dirname "$0")/.." || exit 1
fail=0

# --- 1. relative links resolve -------------------------------------------
docs="README.md bench/README.md"
for f in docs/*.md; do docs="$docs $f"; done

for doc in $docs; do
  [ -f "$doc" ] || { echo "MISSING DOC: $doc"; fail=1; continue; }
  dir=$(dirname "$doc")
  # Markdown inline links: capture the (...) target, keep relative ones.
  links=$(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"            # strip anchors
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK in $doc: $link"
      fail=1
    fi
  done
done

# --- 2. CONFIG.md covers every config field ------------------------------
check_fields() {
  header=$1
  struct=$2
  # Field names: lines like "  <type> <name> = ...;" or "  <type> <name>;"
  # at member indentation (exactly two spaces — deeper lines are method
  # bodies), ignoring comments and functions.
  fields=$(awk "/^struct $struct /,/^};/" "$header" \
    | grep -v '^\s*//' \
    | grep -E '^  [A-Za-z_][A-Za-z0-9_:<>]*\s+[a-z_][a-z0-9_]*\s*(=[^;]*)?;' \
    | sed -E 's/^  [A-Za-z_][A-Za-z0-9_:<>]*\s+([a-z_][a-z0-9_]*).*/\1/')
  if [ -z "$fields" ]; then
    echo "NO FIELDS FOUND for $struct in $header (check_docs.sh pattern broke?)"
    fail=1
    return
  fi
  for field in $fields; do
    if ! grep -q "\`$field\`" docs/CONFIG.md; then
      echo "UNDOCUMENTED FIELD: $struct::$field missing from docs/CONFIG.md"
      fail=1
    fi
  done
}

check_fields src/core/gstg_config.h GsTgConfig
check_fields src/render/types.h RenderConfig
check_fields src/service/render_service.h ServiceConfig

# --- 3. CONFIG.md covers every GSTG_* env var parsed by runconfig --------
# runconfig.cpp is where environment parsing lives; string literals like
# "GSTG_PIPELINE" are the knobs. (Callers pass further names to the generic
# env_positive_size helper, so scan every source file for literals.)
env_vars=$(grep -rhoE '"GSTG_[A-Z0-9_]+"' src/ | tr -d '"' | sort -u)
if [ -z "$env_vars" ]; then
  echo "NO GSTG_* ENV VARS FOUND in src/ (check_docs.sh pattern broke?)"
  fail=1
fi
for var in $env_vars; do
  if ! grep -q "$var" docs/CONFIG.md; then
    echo "UNDOCUMENTED ENV VAR: $var missing from docs/CONFIG.md"
    fail=1
  fi
done

# --- 4. no tracked *.ppm build products ----------------------------------
if command -v git >/dev/null 2>&1 && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  tracked_ppm=$(git ls-files -- '*.ppm')
  if [ -n "$tracked_ppm" ]; then
    echo "TRACKED BUILD PRODUCT: $tracked_ppm (PPM images are outputs; git rm them)"
    fail=1
  fi
fi

# --- 5. ARCHITECTURE.md documents every lint rule ------------------------
if [ -f tools/lint/gstg_lint.py ]; then
  rule_ids=$(grep -oE '^\s+"R[0-9]+":' tools/lint/gstg_lint.py | grep -oE 'R[0-9]+' | sort -u)
  if [ -z "$rule_ids" ]; then
    echo "NO LINT RULES FOUND in tools/lint/gstg_lint.py (check_docs.sh pattern broke?)"
    fail=1
  fi
  for rule in $rule_ids; do
    if ! grep -qE "\b$rule\b" docs/ARCHITECTURE.md; then
      echo "UNDOCUMENTED LINT RULE: $rule missing from docs/ARCHITECTURE.md"
      fail=1
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK (links resolve, config fields + lint rules documented, no tracked PPMs)"
