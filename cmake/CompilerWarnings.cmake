# Defines gstg::warnings, an INTERFACE target carrying the project-wide
# warning flags. Linked PRIVATE by every gstg target so the flags never leak
# into fetched third-party builds (googletest/benchmark compile with their
# own settings).
add_library(gstg_warnings INTERFACE)
add_library(gstg::warnings ALIAS gstg_warnings)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(gstg_warnings INTERFACE
    -Wall
    -Wextra
    -Wshadow
    -Wnon-virtual-dtor
    -Wcast-align
    -Wunused
    -Woverloaded-virtual
    -Wnull-dereference
    -Wdouble-promotion
    -Wimplicit-fallthrough)
  if(GSTG_WARNINGS_AS_ERRORS)
    target_compile_options(gstg_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(gstg_warnings INTERFACE /W4 /permissive-)
  if(GSTG_WARNINGS_AS_ERRORS)
    target_compile_options(gstg_warnings INTERFACE /WX)
  endif()
endif()
