# Defines gstg::sanitizers, an INTERFACE target that turns on ASan + UBSan
# when GSTG_SANITIZE is set. Linked PUBLIC through the layer libraries so
# every test/bench/example executable inherits the instrumented runtime.
add_library(gstg_sanitizers INTERFACE)
add_library(gstg::sanitizers ALIAS gstg_sanitizers)

if(GSTG_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(gstg_sanitizers INTERFACE
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
    target_link_options(gstg_sanitizers INTERFACE -fsanitize=address,undefined)
  else()
    message(WARNING "GSTG_SANITIZE requested but not supported for ${CMAKE_CXX_COMPILER_ID}")
  endif()
endif()
