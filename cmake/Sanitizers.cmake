# Defines gstg::sanitizers, an INTERFACE target that turns on ASan + UBSan
# when GSTG_SANITIZE is set, or TSan when GSTG_SANITIZE_THREAD is set (the
# two are mutually exclusive — TSan cannot be combined with ASan). Linked
# PUBLIC through the layer libraries so every test/bench/example executable
# inherits the instrumented runtime.
add_library(gstg_sanitizers INTERFACE)
add_library(gstg::sanitizers ALIAS gstg_sanitizers)

if(GSTG_SANITIZE AND GSTG_SANITIZE_THREAD)
  message(FATAL_ERROR "GSTG_SANITIZE and GSTG_SANITIZE_THREAD are mutually exclusive")
endif()

if(GSTG_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(gstg_sanitizers INTERFACE
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
    target_link_options(gstg_sanitizers INTERFACE -fsanitize=address,undefined)
  else()
    message(WARNING "GSTG_SANITIZE requested but not supported for ${CMAKE_CXX_COMPILER_ID}")
  endif()
endif()

if(GSTG_SANITIZE_THREAD)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(gstg_sanitizers INTERFACE
      -fsanitize=thread
      -fno-omit-frame-pointer)
    target_link_options(gstg_sanitizers INTERFACE -fsanitize=thread)
  else()
    message(WARNING "GSTG_SANITIZE_THREAD requested but not supported for ${CMAKE_CXX_COMPILER_ID}")
  endif()
endif()
