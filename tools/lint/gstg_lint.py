#!/usr/bin/env python3
"""gstg-lint: static enforcement of the GS-TG codebase's standing invariants.

The rules encode contracts that otherwise only fail at runtime, on the right
input, under the right sanitizer (see docs/ARCHITECTURE.md, "Static analysis
& lint"):

  R1  no-alloc-in-hot-path     No unconditional heap allocation reachable
                               from a function annotated GSTG_HOT_NOALLOC
                               (common/annotations.h). Capacity-bounded
                               operations on caller-owned scratch
                               (resize/assign/push_back into warmed vectors)
                               are the codebase's amortised-zero idiom and
                               are allowed; allocations inside a `throw`
                               statement are cold-path and allowed.
  R2  unclamped-float-cast     No static_cast to an integer type from a
                               float-ish expression in src/geometry or
                               src/render unless the expression clamps
                               (std::clamp / a clamped_* helper) or the cast
                               lives in the shared helper header
                               geometry/clamped_cast.h. The raw cast is UB
                               outside the target's range and degenerate
                               conics produce exactly such values.
  R3  untyped-throw            No raw `throw std::runtime_error` /
                               `throw std::logic_error` anywhere in src/;
                               client-causable failures throw the layer's
                               typed error (PlyError, DatasetError,
                               BinningError, ResidencyError, TelemetryError,
                               SceneError, FramebufferError, ...). Deriving
                               a typed error FROM std::runtime_error is the
                               approved pattern; std::invalid_argument and
                               friends remain legal for precondition errors.
  R4  unregistered-env-var     Every "GSTG_*" string literal in src/ must be
                               registered in kGstgEnvVars
                               (common/runconfig.h) and documented in
                               docs/CONFIG.md.
  R5  banned-api               No naked mutex .lock()/.unlock() and no
                               rand()/srand() in src/service or the hot TUs
                               (src/render, src/core, common/parallel.h);
                               no std::function in the hot TUs (type-erased
                               calls have no place in render kernels).

Engines:
  * syntax (always available) — a self-contained C++ tokenizer/scanner; the
    reference implementation every environment can run (CI, the dev
    container, pre-commit). No third-party dependencies.
  * clang (used when the libclang Python bindings are importable) — refines
    R2/R3 with real AST type information from the CMake-exported
    compile_commands.json. Any internal failure falls back to the syntax
    engine with a warning: rules always run.

Suppressions (justification is mandatory; an empty one is itself an error):
  // gstg-lint: allow(R1): <why this line is exempt>
  // gstg-lint: boundary(R1): <why R1 traversal stops at the next function>

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

RULES = {
    "R1": "no-alloc-in-hot-path",
    "R2": "unclamped-float-cast",
    "R3": "untyped-throw",
    "R4": "unregistered-env-var",
    "R5": "banned-api",
}

# R2 scope: directories whose float->int casts must clamp.
R2_DIRS = ("src/geometry", "src/render")
# The shared clamped helpers: the one place the raw (pre-clamped) cast lives.
R2_EXEMPT_FILES = ("src/geometry/clamped_cast.h",)

# R5 scopes. Hot TUs additionally ban std::function (type erasure allocates
# and indirect-calls in kernels); the service layer keeps std::function for
# its cache-loader API but must use RAII lock guards like everyone else.
R5_SERVICE_DIRS = ("src/service",)
R5_HOT_DIRS = ("src/render", "src/core")
R5_HOT_FILES = ("src/common/parallel.h",)

CPP_KEYWORDS = frozenset(
    """alignas alignof asm auto bool break case catch char class co_await co_return co_yield
    const consteval constexpr constinit const_cast continue decltype default delete do double
    dynamic_cast else enum explicit export extern false float for friend goto if inline int long
    mutable namespace new noexcept nullptr operator private protected public register
    reinterpret_cast requires return short signed sizeof static static_assert static_cast struct
    switch template this thread_local throw true try typedef typeid typename union unsigned using
    virtual void volatile wchar_t while""".split()
)

OWNING_CONTAINERS = (
    "vector string wstring u8string u16string u32string basic_string deque list forward_list map "
    "set multimap multiset unordered_map unordered_set unordered_multimap unordered_multiset "
    "stringstream ostringstream istringstream function any"
).split()

INT_TARGET_RE = re.compile(
    r"\b(?:int|short|long|char|unsigned|signed|size_t|ptrdiff_t|streamsize|"
    r"u?int(?:8|16|32|64)(?:_t)?|u?int_fast(?:8|16|32|64)_t)\b"
)
FLOAT_TARGET_RE = re.compile(r"\b(?:float|double)\b")
FLOAT_LITERAL_RE = re.compile(r"(?<![\w.])(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?f?\b")
FLOAT_CALL_RE = re.compile(
    r"\b(?:std::)?(?:floor|ceil|round|trunc|rint|nearbyint|sqrt|exp|exp2|expm1|log|log2|log10|"
    r"pow|fabs|fmod|hypot|sin|cos|tan|atan2?)\s*\("
)
CLAMP_IN_EXPR_RE = re.compile(r"\b(?:std::)?clamp\b|\bclamped_\w+\s*\(")

SUPPRESS_RE = re.compile(
    r"gstg-lint:\s*(allow|boundary)\s*\(\s*([A-Z0-9,\s]+)\s*\)\s*(?::\s*(.*))?$"
)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def as_dict(self):
        return {
            "rule": self.rule,
            "name": RULES.get(self.rule, self.rule),
            "file": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}/{RULES.get(self.rule, '?')}] {self.message}"


class Suppression:
    __slots__ = ("kind", "rules", "line", "justification", "used")

    def __init__(self, kind, rules, line, justification):
        self.kind = kind  # "allow" | "boundary"
        self.rules = rules
        self.line = line
        self.justification = justification
        self.used = False


class SourceFile:
    """One scanned file: comment/string-blanked text plus extracted facts.

    `clean` has every comment and string/char literal replaced by spaces of
    equal length, so offsets and line numbers match the original exactly and
    downstream regexes cannot match into literals.
    """

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.text = text
        self.clean, self.literals, self.suppressions = _scan(text)
        self.line_starts = _line_starts(text)
        self.functions = []  # populated by extract_functions

    def line_of(self, offset):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def allow_at(self, rule, line):
        """Returns the matching allow-suppression for (rule, line), if any.

        A suppression comment covers its own line; a comment alone on a line
        covers the following line as well.
        """
        for s in self.suppressions:
            if s.kind != "allow" or rule not in s.rules:
                continue
            if s.line == line or s.line + 1 == line:
                return s
        return None


def _line_starts(text):
    starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def _scan(text):
    """Single pass splitting code from comments/literals.

    Returns (clean_text, [(offset, literal_content)], [Suppression]).
    Handles //, /* */, "..." (with escapes), '...', and R"delim(...)delim".
    """
    out = list(text)
    literals = []
    suppressions = []
    i, n = 0, len(text)
    line = 1

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            if end == -1:
                end = n
            comment = text[i:end]
            m = SUPPRESS_RE.search(comment.strip())
            if m:
                rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
                suppressions.append(Suppression(m.group(1), rules, line, (m.group(3) or "").strip()))
            blank(i, end)
            i = end
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            start_line = line
            body = text[i:end]
            m = SUPPRESS_RE.search(body.replace("*/", "").strip())
            if m:
                rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
                suppressions.append(
                    Suppression(m.group(1), rules, start_line, (m.group(3) or "").strip())
                )
            line += body.count("\n")
            blank(i, end)
            i = end
            continue
        if ch == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\\s]{0,16})\(', text[i:])
            if m:
                delim = m.group(1)
                close = text.find(")" + delim + '"', i + m.end())
                close = n if close == -1 else close + len(delim) + 2
                literals.append((i, text[i + m.end() : close - len(delim) - 2]))
                line += text.count("\n", i, close)
                blank(i, close)
                i = close
                continue
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j, n - 1)
            if quote == '"':
                literals.append((i, text[i + 1 : j]))
            blank(i, j + 1)
            i = j + 1
            continue
        i += 1
    return "".join(out), literals, suppressions


class FunctionDef:
    __slots__ = ("name", "qual", "file", "line", "params_span", "body_span", "annotated", "boundary")

    def __init__(self, name, qual, file, line, params_span, body_span, annotated, boundary):
        self.name = name
        self.qual = qual
        self.file = file
        self.line = line
        self.params_span = params_span  # (open_paren, close_paren) offsets
        self.body_span = body_span  # (open_brace, close_brace) offsets or None
        self.annotated = annotated
        self.boundary = boundary  # set of rules whose traversal stops here


IDENT_CALL_RE = re.compile(r"\b([A-Za-z_][\w]*(?:\s*::\s*[A-Za-z_][\w]*)*)\s*\(")


def _match_forward(text, start, open_ch, close_ch):
    """Offset just past the balanced close for the open bracket at `start`."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def extract_functions(sf: SourceFile):
    """Finds function definitions and annotated declarations in clean text.

    Heuristic single-pass scanner: a candidate is `name(`, at a position not
    inside an already-recorded function body, whose parameter list is
    followed (modulo const/noexcept/ref-qualifiers, trailing return types
    and ctor init lists) by `{` (definition) or `;` (declaration).
    """
    clean = sf.clean
    n = len(clean)
    covered_end = -1  # byte offset: end of the last recorded body
    boundaries = [s for s in sf.suppressions if s.kind == "boundary"]

    for m in IDENT_CALL_RE.finditer(clean):
        start = m.start()
        if start < covered_end:
            continue  # inside a previous function's body: a call, not a def
        qual = re.sub(r"\s+", "", m.group(1))
        name = qual.split("::")[-1]
        if name in CPP_KEYWORDS:
            continue
        # A member call (`x.fn(`, `p->fn(`) is never a definition.
        k = start - 1
        while k >= 0 and clean[k] in " \t\n":
            k -= 1
        if k >= 0 and (clean[k] == "." or (clean[k] == ">" and k > 0 and clean[k - 1] == "-")):
            continue
        open_paren = m.end() - 1
        close = _match_forward(clean, open_paren, "(", ")")
        # Skim what follows the parameter list.
        i = close
        body_span = None
        is_decl = False
        while i < n:
            while i < n and clean[i] in " \t\n":
                i += 1
            if i >= n:
                break
            c = clean[i]
            if c == "{":
                body_end = _match_forward(clean, i, "{", "}")
                body_span = (i, body_end)
                break
            if c == ";":
                is_decl = True
                break
            rest = clean[i:]
            kw = re.match(r"(const|noexcept|override|final|mutable|&&?|throw)\b", rest)
            if kw:
                i += kw.end()
                if i < n:
                    while i < n and clean[i] in " \t\n":
                        i += 1
                    if i < n and clean[i] == "(" and kw.group(1) in ("noexcept", "throw"):
                        i = _match_forward(clean, i, "(", ")")
                continue
            if rest.startswith("->"):
                # Trailing return type: scan to the `{` or `;` that ends it.
                i += 2
                while i < n and clean[i] not in "{;":
                    if clean[i] == "(":
                        i = _match_forward(clean, i, "(", ")")
                    else:
                        i += 1
                continue
            if c == ":":
                # Constructor initializer list: skip member(...)/{...} groups.
                i += 1
                while i < n and clean[i] != "{":
                    if clean[i] == "(":
                        i = _match_forward(clean, i, "(", ")")
                    elif clean[i] == ";":
                        break
                    else:
                        i += 1
                continue
            break  # anything else: expression context, not a function header
        if body_span is None and not is_decl:
            continue
        # Annotation: look back to the start of this declaration.
        decl_start = max(clean.rfind(";", 0, start), clean.rfind("}", 0, start), clean.rfind("{", 0, start))
        prefix = clean[decl_start + 1 : start]
        annotated = "GSTG_HOT_NOALLOC" in prefix
        line = sf.line_of(start)
        boundary_rules = set()
        for b in boundaries:
            # A boundary comment governs the next function that starts on or
            # after its line (within a small window, so a stray comment can't
            # silently neuter a distant function).
            if b.line <= line <= b.line + 10:
                boundary_rules |= b.rules
                b.used = True
        fn = FunctionDef(
            name, qual, sf, line, (open_paren, close), body_span, annotated, boundary_rules
        )
        sf.functions.append(fn)
        if body_span is not None:
            covered_end = body_span[1]


def _throw_spans(clean):
    """[start, end) spans of throw statements (throw ... ;) — cold paths."""
    spans = []
    for m in re.finditer(r"\bthrow\b", clean):
        i = m.end()
        depth = 0
        n = len(clean)
        while i < n:
            c = clean[i]
            if c in "([":
                depth += 1
            elif c in ")]":
                depth -= 1
            elif c == ";" and depth <= 0:
                break
            elif c == "}" and depth <= 0:
                break
            i += 1
        spans.append((m.start(), i))
    return spans


def _in_spans(pos, spans):
    return any(a <= pos < b for a, b in spans)


ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b(?!\s*\[)"), "operator new"),
    (re.compile(r"\bnew\s*\["), "operator new[]"),
    (re.compile(r"\b(?:std::)?(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\("), "malloc-family call"),
    (re.compile(r"\b(?:std::)?make_(?:unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string (allocates the result)"),
]
_CONTAINER_ALT = "|".join(OWNING_CONTAINERS)
LOCAL_CONTAINER_RE = re.compile(
    r"(?<![\w:])(?:const\s+)?(?:std\s*::\s*)(" + _CONTAINER_ALT + r")\b"
)


def _local_container_decls(clean, span):
    """Offsets of owning-container object declarations inside `span`.

    Flags `std::vector<T> x;` / `std::string s = ...;` (a fresh owning
    object: unconditional allocation risk) but not references, pointers, or
    nested type mentions (`std::vector<T>& ref`, `std::vector<T>::iterator`).
    """
    hits = []
    a, b = span
    for m in LOCAL_CONTAINER_RE.finditer(clean, a, b):
        i = m.end()
        n = b
        while i < n and clean[i] in " \t\n":
            i += 1
        if i < n and clean[i] == "<":
            depth = 0
            while i < n:
                if clean[i] == "<":
                    depth += 1
                elif clean[i] == ">":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
        while i < n and clean[i] in " \t\n":
            i += 1
        if i < n and clean[i] in "&*":
            continue  # reference/pointer: not an owning object
        if clean[i : i + 2] == "::":
            continue  # nested type name, not an object declaration
        ident = re.match(r"[A-Za-z_]\w*", clean[i:n])
        if not ident:
            continue
        j = i + ident.end()
        while j < n and clean[j] in " \t\n":
            j += 1
        if j < n and clean[j] in ";=({":
            hits.append((m.start(), f"local std::{m.group(1)} object '{ident.group(0)}'"))
    return hits


def check_r1(files, findings, fixture_mode):
    # The name-joined call graph deliberately excludes out-of-class member
    # definitions (`X::fn`) unless annotated directly: an unqualified call in
    # a free hot function cannot reach them, and overload-set name collisions
    # (e.g. a member to_string vs the runconfig mode to_string) would
    # otherwise produce phantom edges.
    defs_by_name = {}
    hot_names = set()
    for sf in files:
        for fn in sf.functions:
            if "::" not in fn.qual or fn.annotated:
                defs_by_name.setdefault(fn.name, []).append(fn)
            if fn.annotated:
                hot_names.add(fn.name)

    # BFS over the name-joined call graph from the annotated roots.
    visited = {}
    queue = [(name, name) for name in sorted(hot_names)]
    while queue:
        name, root = queue.pop(0)
        if name in visited:
            continue
        visited[name] = root
        for fn in defs_by_name.get(name, []):
            if "R1" in fn.boundary or fn.body_span is None:
                continue
            a, b = fn.body_span
            body = fn.file.clean[a:b]
            throws = _throw_spans(body)
            for m in IDENT_CALL_RE.finditer(body):
                if _in_spans(m.start(), throws):
                    continue  # calls while throwing are cold-path by definition
                k = m.start() - 1
                while k >= 0 and body[k] in " \t\n":
                    k -= 1
                if k >= 0 and (body[k] == "." or (body[k] == ">" and k > 0 and body[k - 1] == "-")):
                    continue  # member call: outside the name-joined graph
                segments = re.sub(r"\s+", "", m.group(1)).split("::")
                if len(segments) > 1 and (segments[0] == "std" or segments[:2] == ["", "std"]):
                    continue  # a std:: call never joins to a project function
                callee = segments[-1]
                if callee in CPP_KEYWORDS or callee == name:
                    continue
                if callee in defs_by_name and callee not in visited:
                    queue.append((callee, root))

    for name, root in sorted(visited.items()):
        for fn in defs_by_name.get(name, []):
            if fn.body_span is None or "R1" in fn.boundary:
                continue
            sf = fn.file
            a, b = fn.body_span
            throws = _throw_spans(sf.clean[a:b])
            hits = []
            for pat, what in ALLOC_PATTERNS:
                for m in pat.finditer(sf.clean, a, b):
                    hits.append((m.start(), what))
            hits.extend((off, what) for off, what in _local_container_decls(sf.clean, (a, b)))
            via = "" if root == name else f" (reachable from GSTG_HOT_NOALLOC root '{root}')"
            for off, what in sorted(hits):
                if _in_spans(off - a, throws):
                    continue  # allocation while throwing: cold path
                line = sf.line_of(off)
                sup = sf.allow_at("R1", line)
                if sup:
                    sup.used = True
                    if not sup.justification:
                        findings.append(
                            Finding("R1", sf.rel, line, "suppression without justification")
                        )
                    continue
                findings.append(
                    Finding(
                        "R1",
                        sf.rel,
                        line,
                        f"{what} in hot function '{fn.qual}'{via}",
                    )
                )


def _top_level(expr):
    """`expr` with parenthesized subexpressions removed (parens kept).

    `depth_bits(depth) + bias` -> `depth_bits() + bias`: the float argument
    of a nested call does not make the cast source float.
    """
    out = []
    depth = 0
    for c in expr:
        if c == "(":
            if depth == 0:
                out.append(c)
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                out.append(c)
        elif depth == 0:
            out.append(c)
    return "".join(out)


def check_r2(files, findings, fixture_mode):
    for sf in files:
        in_scope = fixture_mode or any(sf.rel.startswith(d) for d in R2_DIRS)
        if not in_scope or sf.rel in R2_EXEMPT_FILES:
            continue
        clean = sf.clean
        for m in re.finditer(r"\bstatic_cast\s*<([^<>]*)>\s*\(", clean):
            target = m.group(1)
            if FLOAT_TARGET_RE.search(target) or not INT_TARGET_RE.search(target):
                continue
            open_paren = m.end() - 1
            close = _match_forward(clean, open_paren, "(", ")")
            expr = clean[open_paren + 1 : close - 1]
            if CLAMP_IN_EXPR_RE.search(expr):
                continue
            # Only the expression's TOP-LEVEL terms decide float-ishness: in
            # `static_cast<u64>(depth_bits(depth))` the float `depth` is an
            # argument of a nested call whose return type is what the cast
            # sees, so nested parenthesized subexpressions are stripped first.
            top = _top_level(expr)
            floatish = bool(FLOAT_LITERAL_RE.search(top)) or bool(FLOAT_CALL_RE.search(top))
            if not floatish:
                # Identifier declared float/double in the enclosing function?
                enclosing = None
                for fn in sf.functions:
                    if fn.body_span and fn.body_span[0] <= m.start() < fn.body_span[1]:
                        enclosing = fn
                        break
                if enclosing:
                    pa, pb = enclosing.params_span
                    scope_text = clean[pa:pb] + clean[enclosing.body_span[0] : m.start()]
                    float_vars = set(
                        d.group(2)
                        for d in re.finditer(r"\b(?:const\s+)?(float|double)[&\s]+(\w+)", scope_text)
                    )
                    idents = set(re.findall(r"[A-Za-z_]\w*", top))
                    floatish = bool(float_vars & idents)
            if not floatish:
                continue
            line = sf.line_of(m.start())
            sup = sf.allow_at("R2", line)
            if sup:
                sup.used = True
                if not sup.justification:
                    findings.append(Finding("R2", sf.rel, line, "suppression without justification"))
                continue
            findings.append(
                Finding(
                    "R2",
                    sf.rel,
                    line,
                    f"unclamped static_cast<{target.strip()}> from a float expression; "
                    "clamp in the expression or use geometry/clamped_cast.h",
                )
            )


def check_r3(files, findings, fixture_mode):
    for sf in files:
        for m in re.finditer(r"\bthrow\s+std\s*::\s*(runtime_error|logic_error)\s*[({]", sf.clean):
            line = sf.line_of(m.start())
            sup = sf.allow_at("R3", line)
            if sup:
                sup.used = True
                if not sup.justification:
                    findings.append(Finding("R3", sf.rel, line, "suppression without justification"))
                continue
            findings.append(
                Finding(
                    "R3",
                    sf.rel,
                    line,
                    f"raw `throw std::{m.group(1)}`; throw the layer's typed error "
                    "(derive it from std::runtime_error, see telemetry/error.h for the pattern)",
                )
            )


def load_env_registry(repo_root):
    path = os.path.join(repo_root, "src", "common", "runconfig.h")
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return None
    m = re.search(r"kGstgEnvVars\[\]\s*=\s*\{(.*?)\};", text, re.S)
    if not m:
        return None
    return set(re.findall(r'"(GSTG_[A-Z0-9_]+)"', m.group(1)))


def check_r4(files, findings, repo_root, fixture_mode):
    registry = load_env_registry(repo_root)
    config_md = ""
    try:
        with open(os.path.join(repo_root, "docs", "CONFIG.md"), encoding="utf-8") as f:
            config_md = f.read()
    except OSError:
        pass
    for sf in files:
        if sf.rel.endswith("src/common/runconfig.h") or sf.rel == "src/common/runconfig.h":
            continue  # the registry itself
        for off, content in sf.literals:
            if not re.fullmatch(r"GSTG_[A-Z0-9_]+", content):
                continue
            line = sf.line_of(off)
            sup = sf.allow_at("R4", line)
            if sup:
                sup.used = True
                if not sup.justification:
                    findings.append(Finding("R4", sf.rel, line, "suppression without justification"))
                continue
            if registry is None:
                findings.append(
                    Finding("R4", sf.rel, line, "kGstgEnvVars registry not found in common/runconfig.h")
                )
                continue
            if content not in registry:
                findings.append(
                    Finding(
                        "R4",
                        sf.rel,
                        line,
                        f'"{content}" is not registered in kGstgEnvVars (common/runconfig.h)',
                    )
                )
            elif not re.search(r"\b" + re.escape(content) + r"\b", config_md):
                findings.append(
                    Finding("R4", sf.rel, line, f'"{content}" is not documented in docs/CONFIG.md')
                )


R5_COMMON = [
    (re.compile(r"(?:\.|->)\s*lock\s*\(\s*\)"), "naked mutex lock(); use std::lock_guard/std::scoped_lock"),
    (re.compile(r"(?:\.|->)\s*unlock\s*\(\s*\)"), "naked mutex unlock(); use RAII lock guards"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\("), "rand()/srand(); use common/rng.h"),
]
R5_HOT_ONLY = [
    (re.compile(r"\bstd\s*::\s*function\b"), "std::function in a hot TU (type erasure allocates; use a template parameter)"),
]


def check_r5(files, findings, fixture_mode):
    for sf in files:
        service = any(sf.rel.startswith(d) for d in R5_SERVICE_DIRS)
        hot = any(sf.rel.startswith(d) for d in R5_HOT_DIRS) or sf.rel in R5_HOT_FILES
        if fixture_mode:
            service = hot = True
        if not (service or hot):
            continue
        patterns = list(R5_COMMON) + (R5_HOT_ONLY if hot else [])
        for pat, what in patterns:
            for m in pat.finditer(sf.clean):
                line = sf.line_of(m.start())
                sup = sf.allow_at("R5", line)
                if sup:
                    sup.used = True
                    if not sup.justification:
                        findings.append(Finding("R5", sf.rel, line, "suppression without justification"))
                    continue
                findings.append(Finding("R5", sf.rel, line, what))


def collect_files(repo_root, build_dir, explicit_paths):
    """The scan set: explicit paths, or src/ sources + compile_commands TUs."""
    paths = []
    if explicit_paths:
        paths = [os.path.abspath(p) for p in explicit_paths]
    else:
        for ext in ("h", "inl", "cpp", "cc", "cxx"):
            paths.extend(glob.glob(os.path.join(repo_root, "src", "**", f"*.{ext}"), recursive=True))
        if build_dir:
            cc_path = os.path.join(build_dir, "compile_commands.json")
            if os.path.exists(cc_path):
                with open(cc_path, encoding="utf-8") as f:
                    for entry in json.load(f):
                        p = os.path.normpath(
                            os.path.join(entry.get("directory", ""), entry["file"])
                        )
                        src_root = os.path.join(repo_root, "src") + os.sep
                        if p.startswith(src_root):
                            paths.append(p)
            else:
                print(f"gstg-lint: note: no compile_commands.json under {build_dir} "
                      "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON); scanning src/ globs",
                      file=sys.stderr)
    seen = set()
    files = []
    for p in sorted(paths):
        p = os.path.normpath(p)
        if p in seen or not os.path.isfile(p):
            continue
        seen.add(p)
        rel = os.path.relpath(p, repo_root)
        with open(p, encoding="utf-8", errors="replace") as f:
            sf = SourceFile(p, rel, f.read())
        extract_functions(sf)
        files.append(sf)
    return files


def run_rules(files, rules, repo_root, fixture_mode):
    findings = []
    if "R1" in rules:
        check_r1(files, findings, fixture_mode)
    if "R2" in rules:
        check_r2(files, findings, fixture_mode)
    if "R3" in rules:
        check_r3(files, findings, fixture_mode)
    if "R4" in rules:
        check_r4(files, findings, repo_root, fixture_mode)
    if "R5" in rules:
        check_r5(files, findings, fixture_mode)
    # Unused suppressions are stale annotations: surface them so they cannot
    # rot in place and silently exempt future code.
    if not fixture_mode:
        for sf in files:
            for s in sf.suppressions:
                if s.kind == "allow" and not s.used and s.rules & rules:
                    findings.append(
                        Finding(
                            sorted(s.rules)[0],
                            sf.rel,
                            s.line,
                            "unused gstg-lint suppression (nothing to suppress here — delete it)",
                        )
                    )
    return findings


# --------------------------------------------------------------------------
# Optional libclang refinement. The syntax engine above is the reference
# implementation; when the clang Python bindings are importable the R2/R3
# checks are re-derived from real AST type information (fewer heuristics:
# member accesses with float type, typedef'd integers). Any failure inside
# this path falls back to the syntax results with a warning — rules run
# regardless of the environment.
# --------------------------------------------------------------------------


def try_clang_engine(repo_root, build_dir, files, rules):
    import clang.cindex as ci  # noqa: F401  (ImportError handled by caller)

    cc_path = os.path.join(build_dir or "", "compile_commands.json")
    if not os.path.exists(cc_path):
        raise RuntimeError("clang engine needs compile_commands.json (--build-dir)")
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)

    index = ci.Index.create()
    findings = []
    seen_files = set()
    int_kinds = {
        ci.TypeKind.INT, ci.TypeKind.UINT, ci.TypeKind.LONG, ci.TypeKind.ULONG,
        ci.TypeKind.LONGLONG, ci.TypeKind.ULONGLONG, ci.TypeKind.SHORT, ci.TypeKind.USHORT,
        ci.TypeKind.CHAR_U, ci.TypeKind.CHAR_S, ci.TypeKind.UCHAR, ci.TypeKind.SCHAR,
    }
    float_kinds = {ci.TypeKind.FLOAT, ci.TypeKind.DOUBLE, ci.TypeKind.LONGDOUBLE}
    by_rel = {sf.rel: sf for sf in files}

    def rel_of(location):
        if location.file is None:
            return None
        p = os.path.normpath(str(location.file))
        if not p.startswith(repo_root + os.sep):
            return None
        return os.path.relpath(p, repo_root)

    def visit(cursor):
        rel = rel_of(cursor.location)
        if rel is not None:
            if "R2" in rules and cursor.kind == ci.CursorKind.CXX_STATIC_CAST_EXPR:
                if any(rel.startswith(d) for d in R2_DIRS) and rel not in R2_EXEMPT_FILES:
                    target = cursor.type.get_canonical()
                    kids = list(cursor.get_children())
                    src = kids[-1].type.get_canonical() if kids else None
                    if target.kind in int_kinds and src is not None and src.kind in float_kinds:
                        sf = by_rel.get(rel)
                        line = cursor.location.line
                        ext = cursor.extent
                        text = ""
                        if sf is not None and ext.start.offset is not None:
                            text = sf.text[ext.start.offset : ext.end.offset]
                        if not CLAMP_IN_EXPR_RE.search(text):
                            sup = sf.allow_at("R2", line) if sf else None
                            if sup:
                                sup.used = True
                            else:
                                findings.append(
                                    Finding("R2", rel, line,
                                            f"unclamped static_cast<{cursor.type.spelling}> from "
                                            f"{src.spelling} (clang AST); clamp in the expression "
                                            "or use geometry/clamped_cast.h"))
            if "R3" in rules and cursor.kind == ci.CursorKind.CXX_THROW_EXPR:
                kids = list(cursor.get_children())
                if kids:
                    t = kids[0].type.get_canonical().spelling
                    if t in ("std::runtime_error", "std::logic_error"):
                        sf = by_rel.get(rel)
                        line = cursor.location.line
                        sup = sf.allow_at("R3", line) if sf else None
                        if sup:
                            sup.used = True
                        else:
                            findings.append(
                                Finding("R3", rel, line,
                                        f"raw `throw {t}` (clang AST); throw the layer's typed error"))
            seen_files.add(rel)
        for child in cursor.get_children():
            visit(child)

    for entry in entries:
        path = os.path.normpath(os.path.join(entry.get("directory", ""), entry["file"]))
        if not path.startswith(os.path.join(repo_root, "src") + os.sep):
            continue
        args = entry["arguments"] if "arguments" in entry else entry["command"].split()
        # Drop the compiler argv[0], the input file, and output options.
        filtered = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", path, entry["file"]):
                continue
            if a == "-o":
                skip = True
                continue
            filtered.append(a)
        tu = index.parse(path, args=filtered)
        fatal = [d for d in tu.diagnostics if d.severity >= ci.Diagnostic.Fatal]
        if fatal:
            raise RuntimeError(f"clang failed to parse {path}: {fatal[0].spelling}")
        visit(tu.cursor)
    return findings, seen_files


def self_test(repo_root, engine):
    fixture_dir = os.path.join(repo_root, "tests", "lint", "fixtures")
    fixture_files = sorted(glob.glob(os.path.join(fixture_dir, "r[0-9]_*.cpp")))
    if not fixture_files:
        print(f"gstg-lint: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    failures = []
    for path in fixture_files:
        base = os.path.basename(path)
        m = re.match(r"(r\d)_.*_(fail|pass)\.cpp$", base)
        if not m:
            failures.append(f"{base}: fixture name must be rN_<desc>_(fail|pass).cpp")
            continue
        rule, expect = m.group(1).upper(), m.group(2)
        files = collect_files(repo_root, None, [path])
        findings = run_rules(files, set(RULES), repo_root, fixture_mode=True)
        rule_hits = [f for f in findings if f.rule == rule]
        if expect == "fail" and not rule_hits:
            failures.append(f"{base}: expected a {rule} finding, got none "
                            f"(other findings: {[f.render() for f in findings]})")
        elif expect == "pass" and findings:
            failures.append(f"{base}: expected clean, got: " +
                            "; ".join(f.render() for f in findings))
        else:
            print(f"  ok {base}: {rule} {expect} "
                  f"({len(rule_hits)} finding(s))" if expect == "fail" else f"  ok {base}: clean")
    if failures:
        print("gstg-lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"gstg-lint self-test passed ({len(fixture_files)} fixtures)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="gstg_lint.py", description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="*", help="explicit files to scan (default: src/ tree)")
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json (TU list + clang engine)")
    parser.add_argument("--rules", default=",".join(sorted(RULES)),
                        help="comma-separated rule ids to enable (default: all)")
    parser.add_argument("--engine", choices=("auto", "clang", "syntax"), default="auto")
    parser.add_argument("--report", default=None, help="write a JSON report here")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="run the tests/lint/fixtures corpus and verify trip/pass expectations")
    parser.add_argument("--fixture-mode", action="store_true",
                        help="treat explicit paths as in-scope for every rule (fixtures)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}")
        return 0

    repo_root = os.path.abspath(args.repo_root)
    if args.self_test:
        return self_test(repo_root, args.engine)

    rules = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"gstg-lint: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    files = collect_files(repo_root, args.build_dir, args.paths)
    findings = run_rules(files, rules, repo_root, args.fixture_mode)
    engine_used = "syntax"

    if args.engine in ("auto", "clang") and not args.paths:
        try:
            clang_findings, clang_files = try_clang_engine(repo_root, args.build_dir, files, rules)
            # AST facts replace the heuristic R2/R3 findings for covered files.
            findings = [
                f for f in findings
                if not (f.rule in ("R2", "R3") and f.path in clang_files)
            ] + clang_findings
            engine_used = "clang+syntax"
        except ImportError:
            if args.engine == "clang":
                print("gstg-lint: clang engine requested but the libclang Python bindings "
                      "are not importable (install python3-clang)", file=sys.stderr)
                return 2
            # auto: the syntax engine result stands.
        except Exception as e:  # fail open to the reference engine
            msg = f"gstg-lint: warning: clang engine failed ({e}); using syntax engine results"
            if args.engine == "clang":
                print(msg.replace("warning", "error"), file=sys.stderr)
                return 2
            print(msg, file=sys.stderr)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())

    if args.report:
        report = {
            "engine": engine_used,
            "files_scanned": len(files),
            "rules": sorted(rules),
            "findings": [f.as_dict() for f in findings],
        }
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    if findings:
        print(f"gstg-lint: {len(findings)} finding(s) across {len(files)} files", file=sys.stderr)
        return 1
    print(f"gstg-lint: clean ({len(files)} files, rules {', '.join(sorted(rules))}, "
          f"engine {engine_used})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
