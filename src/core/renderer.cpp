#include "core/renderer.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/runconfig.h"
#include "common/timer.h"

namespace gstg {

Renderer::Renderer(const GsTgConfig& config) : config_(config) {
  config_.binning = binning_mode_from_env(config.binning);
  config_.validate();
}

void Renderer::render(const GaussianCloud& cloud, const Camera& camera,
                      FrameContext& ctx) const {
  ctx.times = {};
  ctx.counters = {};
  Timer timer;

  // Preprocessing: features + culling + group identification. Group
  // identification is bin_splats at group granularity (identify_groups);
  // the scratch-reusing form keeps the steady state allocation-free.
  preprocess_into(cloud, camera, config_.render_config(), ctx.counters, ctx.splats,
                  ctx.preprocess);
  ctx.frame.config = config_;
  ctx.frame.tile_grid = CellGrid::over_image(camera.width(), camera.height(), config_.tile_size);
  ctx.frame.group_grid =
      CellGrid::over_image(camera.width(), camera.height(), config_.group_size);
  bin_splats_into(ctx.splats, ctx.frame.group_grid, config_.group_boundary, config_.threads,
                  ctx.counters, ctx.frame.group_bins, ctx.binning, config_.binning);
  ctx.times.preprocess_ms = timer.lap_ms();

  // Bitmask generation (sequential here; overlapped with sorting in HW).
  generate_bitmasks_into(ctx.splats, ctx.frame.group_bins, ctx.frame.tile_grid, config_,
                         ctx.counters, ctx.frame.masks);
  ctx.times.bitmask_ms = timer.lap_ms();

  // Group-wise sorting.
  sort_groups(ctx.frame.group_bins, ctx.frame.masks, ctx.splats, config_.threads, ctx.counters,
              config_.sort_algo, &ctx.sort);
  ctx.times.sort_ms = timer.lap_ms();

  // Tile-wise rasterization with bitmask filtering.
  ctx.image.resize(camera.width(), camera.height());
  rasterize_grouped(ctx.frame, ctx.splats, ctx.image, config_.threads, ctx.counters,
                    &ctx.raster);
  ctx.times.raster_ms = timer.lap_ms();
}

BatchRenderResult render_batch(const GaussianCloud& cloud, std::span<const Camera> cameras,
                               const GsTgConfig& config, const BatchOptions& options) {
  const Renderer renderer(config);
  const std::size_t n = cameras.size();

  BatchRenderResult result;
  result.images.reserve(n);
  for (const Camera& camera : cameras) {
    result.images.emplace_back(camera.width(), camera.height());
  }
  result.times.resize(n);
  result.counters.resize(n);

  Timer timer;
  std::size_t workers = options.view_threads == 0
                            ? std::min<std::size_t>(n, worker_thread_count())
                            : std::min<std::size_t>(n, options.view_threads);
  if (workers <= 1) {
    FrameContext ctx;
    for (std::size_t i = 0; i < n; ++i) {
      renderer.render(cloud, cameras[i], ctx);
      result.images[i] = ctx.image;
      result.times[i] = ctx.times;
      result.counters[i] = ctx.counters;
    }
  } else {
    // One FrameContext per view worker; the shared cursor hands out frames
    // dynamically so a heavy view does not stall the tail of the batch.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        FrameContext ctx;
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          renderer.render(cloud, cameras[i], ctx);
          result.images[i] = ctx.image;
          result.times[i] = ctx.times;
          result.counters[i] = ctx.counters;
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  result.wall_ms = timer.lap_ms();

  for (const RenderCounters& c : result.counters) result.total.merge(c);
  return result;
}

}  // namespace gstg
