#include "core/renderer.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <string>
#include <thread>

#include "common/runconfig.h"
#include "telemetry/trace.h"

namespace gstg {

Renderer::Renderer(const GsTgConfig& config) : config_(config) {
  config_.binning = binning_mode_from_env(config.binning);
  config_.residency = residency_mode_from_env(config.residency);
  config_.pipeline = pipeline_mode_from_env(config.pipeline);
  config_.validate();
  telemetry::ensure_started_from_env();
  if (config_.trace) telemetry::ensure_collecting();
}

void Renderer::render(const GaussianCloud& cloud, const Camera& camera,
                      FrameContext& ctx) const {
  GSTG_SPAN("frame");
  ctx.times = {};
  ctx.counters = {};
  ctx.quality = {};
  Timer timer;

  {
    // Preprocessing: features + culling. The scratch-reusing form keeps the
    // steady state allocation-free.
    GSTG_SPAN("preprocess");
    preprocess_into(cloud, camera, config_.render_config(), ctx.counters, ctx.splats,
                    ctx.preprocess);
  }
  finish_frame(camera, ctx, timer);
}

namespace {

bool bits_equal(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

/// Bit-exact splat comparison (operator== on floats would conflate -0/0 and
/// reject NaN == NaN; the residency audit wants representation equality).
bool splats_identical(const ProjectedSplat& a, const ProjectedSplat& b) {
  return bits_equal(a.center.x, b.center.x) && bits_equal(a.center.y, b.center.y) &&
         bits_equal(a.cov.xx, b.cov.xx) && bits_equal(a.cov.xy, b.cov.xy) &&
         bits_equal(a.cov.yy, b.cov.yy) && bits_equal(a.conic.xx, b.conic.xx) &&
         bits_equal(a.conic.xy, b.conic.xy) && bits_equal(a.conic.yy, b.conic.yy) &&
         bits_equal(a.depth, b.depth) && bits_equal(a.opacity, b.opacity) &&
         bits_equal(a.rgb.x, b.rgb.x) && bits_equal(a.rgb.y, b.rgb.y) &&
         bits_equal(a.rgb.z, b.rgb.z) && bits_equal(a.rho, b.rho) && a.index == b.index;
}

}  // namespace

void Renderer::render(const CompressedCloud& cloud, const Camera& camera,
                      FrameContext& ctx) const {
  GSTG_SPAN("frame");
  ctx.times = {};
  ctx.counters = {};
  ctx.quality = {};
  Timer timer;
  const RenderConfig rc = config_.render_config();

  {
    GSTG_SPAN("preprocess");
    switch (config_.residency) {
    case ResidencyMode::kFloat32:
      cloud.decode_range(0, cloud.size(), ctx.decoded);
      preprocess_into(ctx.decoded, camera, rc, ctx.counters, ctx.splats, ctx.preprocess);
      break;
    case ResidencyMode::kCompressed:
      preprocess_compressed_into(cloud, camera, rc, ctx.counters, ctx.splats, ctx.preprocess,
                                 ctx.decode);
      break;
    case ResidencyMode::kVerify: {
      // Streamed run (the one whose products the frame keeps) plus the
      // up-front-decode reference run into separate scratch; the audit
      // demands representation-level equality of the splat streams. The
      // downstream stages are deterministic functions of the splat stream,
      // so this equality is image equality.
      preprocess_compressed_into(cloud, camera, rc, ctx.counters, ctx.splats, ctx.preprocess,
                                 ctx.decode);
      cloud.decode_range(0, cloud.size(), ctx.decoded);
      RenderCounters reference;
      preprocess_into(ctx.decoded, camera, rc, reference, ctx.verify_splats,
                      ctx.verify_preprocess);
      if (reference.input_gaussians != ctx.counters.input_gaussians ||
          reference.visible_gaussians != ctx.counters.visible_gaussians) {
        throw ResidencyError("verify: streamed preprocess counters diverge (visible " +
                             std::to_string(ctx.counters.visible_gaussians) + " vs " +
                             std::to_string(reference.visible_gaussians) + ")");
      }
      if (ctx.splats.size() != ctx.verify_splats.size()) {
        throw ResidencyError("verify: streamed survivor count " +
                             std::to_string(ctx.splats.size()) + " != up-front count " +
                             std::to_string(ctx.verify_splats.size()));
      }
      for (std::size_t i = 0; i < ctx.splats.size(); ++i) {
        if (!splats_identical(ctx.splats[i], ctx.verify_splats[i])) {
          throw ResidencyError("verify: splat " + std::to_string(i) +
                               " (cloud index " + std::to_string(ctx.splats[i].index) +
                               ") differs between streamed and up-front decode");
        }
      }
      break;
    }
    }
  }
  finish_frame(camera, ctx, timer);
}

void Renderer::finish_frame(const Camera& camera, FrameContext& ctx, Timer& timer) const {
  // Group identification is bin_splats at group granularity
  // (identify_groups); charged to the preprocessing stage like the paper.
  ctx.frame.config = config_;
  ctx.frame.tile_grid = CellGrid::over_image(camera.width(), camera.height(), config_.tile_size);
  ctx.frame.group_grid =
      CellGrid::over_image(camera.width(), camera.height(), config_.group_size);
  {
    GSTG_SPAN("binning");
    bin_splats_into(ctx.splats, ctx.frame.group_grid, config_.group_boundary, config_.threads,
                    ctx.counters, ctx.frame.group_bins, ctx.binning, config_.binning);
  }
  ctx.times.preprocess_ms = timer.lap_ms();

  {
    // Bitmask generation (sequential here; overlapped with sorting in HW).
    GSTG_SPAN("bitmask");
    generate_bitmasks_into(ctx.splats, ctx.frame.group_bins, ctx.frame.tile_grid, config_,
                           ctx.counters, ctx.frame.masks);
  }
  ctx.times.bitmask_ms = timer.lap_ms();

  if (config_.pipeline != PipelineMode::kExact) {
    finish_sortless_stages(config_, camera, ctx, timer);
    return;
  }

  {
    // Group-wise sorting.
    GSTG_SPAN("sort_groups");
    sort_groups(ctx.frame.group_bins, ctx.frame.masks, ctx.splats, config_.threads, ctx.counters,
                config_.sort_algo, &ctx.sort);
  }
  ctx.times.sort_ms = timer.lap_ms();

  {
    // Tile-wise rasterization with bitmask filtering.
    GSTG_SPAN("raster");
    ctx.image.resize(camera.width(), camera.height());
    rasterize_grouped(ctx.frame, ctx.splats, ctx.image, config_.threads, ctx.counters,
                      &ctx.raster);
  }
  ctx.times.raster_ms = timer.lap_ms();
}

void finish_sortless_stages(const GsTgConfig& config, const Camera& camera, FrameContext& ctx,
                            Timer& timer) {
  // No group sort runs; the raw bin order feeds the order-independent
  // kernel directly (its output is invariant under any reordering).
  ctx.times.sort_ms = timer.lap_ms();

  {
    GSTG_SPAN("raster");
    ctx.image.resize(camera.width(), camera.height());
    rasterize_grouped_sortless(ctx.frame, ctx.splats, ctx.image, config.threads, ctx.counters,
                               &ctx.raster);
  }
  ctx.times.raster_ms = timer.lap_ms();

  if (config.pipeline == PipelineMode::kVerify) {
    // Quality audit: sort the bins and render the exact reference. Audit
    // work is charged to a discarded counter record — ctx.counters (and
    // ctx.image, already flushed above) match a pure kSortless frame, and
    // the audit time stays out of the per-stage attribution.
    GSTG_SPAN("quality_audit");
    RenderCounters audit;
    sort_groups(ctx.frame.group_bins, ctx.frame.masks, ctx.splats, config.threads, audit,
                config.sort_algo, &ctx.sort);
    ctx.verify_image.resize(camera.width(), camera.height());
    rasterize_grouped(ctx.frame, ctx.splats, ctx.verify_image, config.threads, audit,
                      &ctx.raster);
    ctx.quality = image_quality(ctx.verify_image, ctx.image);
  }
}

BatchRenderResult render_batch(const GaussianCloud& cloud, std::span<const Camera> cameras,
                               const GsTgConfig& config, const BatchOptions& options) {
  const Renderer renderer(config);
  const std::size_t n = cameras.size();

  BatchRenderResult result;
  result.images.reserve(n);
  for (const Camera& camera : cameras) {
    result.images.emplace_back(camera.width(), camera.height());
  }
  result.times.resize(n);
  result.counters.resize(n);

  Timer timer;
  std::size_t workers = options.view_threads == 0
                            ? std::min<std::size_t>(n, worker_thread_count())
                            : std::min<std::size_t>(n, options.view_threads);
  if (workers <= 1) {
    FrameContext ctx;
    for (std::size_t i = 0; i < n; ++i) {
      renderer.render(cloud, cameras[i], ctx);
      result.images[i] = ctx.image;
      result.times[i] = ctx.times;
      result.counters[i] = ctx.counters;
    }
  } else {
    // One FrameContext per view worker; the shared cursor hands out frames
    // dynamically so a heavy view does not stall the tail of the batch.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        FrameContext ctx;
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          renderer.render(cloud, cameras[i], ctx);
          result.images[i] = ctx.image;
          result.times[i] = ctx.times;
          result.counters[i] = ctx.counters;
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  result.wall_ms = timer.lap_ms();

  for (const RenderCounters& c : result.counters) result.total.merge(c);
  return result;
}

}  // namespace gstg
