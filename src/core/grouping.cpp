#include "core/grouping.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "render/rasterize.h"
#include "render/simd_kernels.h"
#include "telemetry/trace.h"

namespace gstg {

BinnedSplats identify_groups(std::span<const ProjectedSplat> splats, const CellGrid& group_grid,
                             const GsTgConfig& config, RenderCounters& counters) {
  config.validate();
  return bin_splats(splats, group_grid, config.group_boundary, config.threads, counters,
                    config.binning);
}

std::vector<TileMask> generate_bitmasks(std::span<const ProjectedSplat> splats,
                                        const BinnedSplats& group_bins,
                                        const CellGrid& tile_grid, const GsTgConfig& config,
                                        RenderCounters& counters) {
  std::vector<TileMask> masks;
  generate_bitmasks_into(splats, group_bins, tile_grid, config, counters, masks);
  return masks;
}

void generate_bitmasks_into(std::span<const ProjectedSplat> splats,
                            const BinnedSplats& group_bins, const CellGrid& tile_grid,
                            const GsTgConfig& config, RenderCounters& counters,
                            std::vector<TileMask>& masks) {
  config.validate();
  const CellGrid& group_grid = group_bins.grid;
  const int r = config.tiles_per_side();
  masks.assign(group_bins.splat_ids.size(), 0);

  std::atomic<std::size_t> tests{0};

  const std::size_t groups = static_cast<std::size_t>(group_grid.cell_count());
  parallel_for_chunks(0, groups, [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::size_t local_tests = 0;
    for (std::size_t g = lo; g < hi; ++g) {
      const int gx = static_cast<int>(g) % group_grid.cells_x;
      const int gy = static_cast<int>(g) / group_grid.cells_x;
      // Global tile-index window covered by this group, clipped to the grid.
      const int tx_lo = gx * r;
      const int ty_lo = gy * r;
      const int tx_hi = std::min(tile_grid.cells_x, tx_lo + r);
      const int ty_hi = std::min(tile_grid.cells_y, ty_lo + r);

      for (std::uint32_t e = group_bins.offsets[g]; e < group_bins.offsets[g + 1]; ++e) {
        const ProjectedSplat& s = splats[group_bins.splat_ids[e]];
        // Restrict to the splat's AABB candidate range — the same candidate
        // enumeration baseline binning uses, so hit sets match exactly.
        const TileRange cand = candidate_cells(s, tile_grid);
        const int x0 = std::max(tx_lo, cand.tx0);
        const int x1 = std::min(tx_hi, cand.tx1);
        const int y0 = std::max(ty_lo, cand.ty0);
        const int y1 = std::min(ty_hi, cand.ty1);
        if (x0 >= x1 || y0 >= y1) continue;

        TileMask mask = 0;
        if (config.mask_boundary == Boundary::kAabb) {
          for (int ty = y0; ty < y1; ++ty) {
            for (int tx = x0; tx < x1; ++tx) {
              ++local_tests;
              mask |= TileMask{1} << mask_bit_index(tx - tx_lo, ty - ty_lo, r);
            }
          }
        } else {
          const Ellipse footprint = s.footprint();
          const Obb obb = Obb::from_ellipse(footprint);
          for (int ty = y0; ty < y1; ++ty) {
            for (int tx = x0; tx < x1; ++tx) {
              const Rect rect = tile_rect(tx, ty, tile_grid.cell_size, tile_grid.image_width,
                                          tile_grid.image_height);
              ++local_tests;
              const bool hit = config.mask_boundary == Boundary::kObb
                                   ? obb_intersects(obb, rect)
                                   : ellipse_intersects(footprint, rect);
              if (hit) mask |= TileMask{1} << mask_bit_index(tx - tx_lo, ty - ty_lo, r);
            }
          }
        }
        masks[e] = mask;
      }
    }
    tests.fetch_add(local_tests, std::memory_order_relaxed);
  }, config.threads);

  counters.bitmask_tests += tests.load();
}

void sort_group_entries(std::uint32_t* ids, TileMask* masks, std::size_t n,
                        std::span<const ProjectedSplat> splats, SortAlgo algo, int key_bits,
                        int index_bits, SortWorkerScratch& ws) {
  ws.pairs += n;
  if (n <= 1) return;

  // Packed (depth_bits, index) keys order exactly as the old comparator.
  // The value half carries the id (high 32) plus the entry's original
  // position (low 32), which gathers the mask from the snapshot in ws.keys
  // after the sort.
  if (ws.items.size() < n) ws.items.resize(n);
  if (ws.keys.size() < n) ws.keys.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t id = ids[k];
    ws.items[k] = {pack_depth_index_key(splats[id].depth, splats[id].index, index_bits),
                   (static_cast<std::uint64_t>(id) << 32) | k};
    ws.keys[k] = masks[k];
  }
  if (use_radix_sort(algo, n)) {
    radix_sort_pairs(ws.items, ws.items_tmp, n, key_bits);
    ws.volume += static_cast<double>(n) * radix_pass_count(key_bits);
  } else {
    std::sort(ws.items.begin(), ws.items.begin() + static_cast<std::ptrdiff_t>(n),
              [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
    ws.volume += static_cast<double>(n) * std::log2(static_cast<double>(n));
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t value = ws.items[k].value;
    ids[k] = static_cast<std::uint32_t>(value >> 32);
    masks[k] = ws.keys[static_cast<std::uint32_t>(value)];
  }
}

void sort_groups(BinnedSplats& group_bins, std::vector<TileMask>& masks,
                 std::span<const ProjectedSplat> splats, std::size_t threads,
                 RenderCounters& counters, SortAlgo algo, SortScratch* scratch) {
  if (masks.size() != group_bins.splat_ids.size()) {
    throw std::invalid_argument("sort_groups: mask array size mismatch");
  }
  const std::size_t groups = static_cast<std::size_t>(group_bins.grid.cell_count());

  // Per-worker accumulator slots sized from the exact worker count so
  // indices can never alias (the double merge order stays fixed).
  const std::size_t workers = planned_worker_count(groups, threads);
  SortScratch local_scratch;
  SortScratch& s = scratch != nullptr ? *scratch : local_scratch;
  s.prepare(workers);

  // Compact the key's index half to its true width so the radix path runs
  // the minimum number of passes (depth always needs its full 32 bits).
  std::uint32_t max_index = 0;
  for (const ProjectedSplat& splat : splats) max_index = std::max(max_index, splat.index);
  const int key_bits = depth_index_key_bits(max_index);
  const int index_bits = key_bits - 32;

  parallel_for_chunks(0, groups, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    GSTG_SPAN("sort_groups_chunk");
    SortWorkerScratch& ws = s.workers[worker];
    for (std::size_t g = lo; g < hi; ++g) {
      const std::uint32_t begin = group_bins.offsets[g];
      const std::uint32_t end = group_bins.offsets[g + 1];
      sort_group_entries(group_bins.splat_ids.data() + begin, masks.data() + begin, end - begin,
                         splats, algo, key_bits, index_bits, ws);
    }
  }, threads);

  for (std::size_t w = 0; w < workers; ++w) {
    counters.sort_comparison_volume += s.workers[w].volume;
    counters.sort_pairs += s.workers[w].pairs;
  }
}

namespace {

/// Shared tile loop of the exact and sortless grouped rasterizers: the
/// bitmask AND-filter per tile, then `raster_tile(worker, filtered, x0, y0,
/// x1, y1)` — the only stage the two paths differ in.
template <typename TileFn>
void rasterize_grouped_impl(const GroupedFrame& frame, Framebuffer& fb, std::size_t threads,
                            RenderCounters& counters, RasterScratch* scratch,
                            TileFn&& raster_tile) {
  const CellGrid& tile_grid = frame.tile_grid;
  const CellGrid& group_grid = frame.group_grid;
  const int r = frame.config.tiles_per_side();
  const std::size_t tiles = static_cast<std::size_t>(tile_grid.cell_count());

  // Per-worker reusable buffers sized from the exact worker count. The
  // stats are plain integers, so they merge through atomics.
  const std::size_t workers = planned_worker_count(tiles, threads);
  RasterScratch local_scratch;
  RasterScratch& rs = scratch != nullptr ? *scratch : local_scratch;
  if (rs.workers.size() < workers) rs.workers.resize(workers);

  struct WorkerStats {
    TileRasterStats raster;
    std::size_t filter_checks = 0;
  };
  std::atomic<std::size_t> alpha{0}, blends{0}, exits{0}, list_work{0}, pixels{0}, checks{0};

  parallel_for_chunks(0, tiles, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    GSTG_SPAN("raster_chunk");
    WorkerStats local;
    RasterScratch::Worker& wk = rs.workers[worker];
    std::vector<std::uint32_t>& filtered = wk.filtered;
    for (std::size_t t = lo; t < hi; ++t) {
      const int tx = static_cast<int>(t) % tile_grid.cells_x;
      const int ty = static_cast<int>(t) / tile_grid.cells_x;
      const int gx = tx / r;
      const int gy = ty / r;
      const std::size_t g = static_cast<std::size_t>(group_grid.cell_index(gx, gy));
      const TileMask location =
          TileMask{1} << mask_bit_index(tx - gx * r, ty - gy * r, r);

      // The RM's filter: AND each entry's bitmask with the tile location.
      filtered.clear();
      const std::uint32_t begin = frame.group_bins.offsets[g];
      const std::uint32_t end = frame.group_bins.offsets[g + 1];
      local.filter_checks += end - begin;
      for (std::uint32_t e = begin; e < end; ++e) {
        if (frame.masks[e] & location) filtered.push_back(frame.group_bins.splat_ids[e]);
      }

      const int x0 = tx * tile_grid.cell_size;
      const int y0 = ty * tile_grid.cell_size;
      const int x1 = std::min(x0 + tile_grid.cell_size, tile_grid.image_width);
      const int y1 = std::min(y0 + tile_grid.cell_size, tile_grid.image_height);
      local.raster.accumulate(raster_tile(wk, filtered, x0, y0, x1, y1));
    }
    alpha.fetch_add(local.raster.alpha_computations, std::memory_order_relaxed);
    blends.fetch_add(local.raster.blend_ops, std::memory_order_relaxed);
    exits.fetch_add(local.raster.early_exit_pixels, std::memory_order_relaxed);
    list_work.fetch_add(local.raster.pixel_list_work, std::memory_order_relaxed);
    pixels.fetch_add(local.raster.pixels, std::memory_order_relaxed);
    checks.fetch_add(local.filter_checks, std::memory_order_relaxed);
  }, threads);

  counters.alpha_computations += alpha.load();
  counters.blend_ops += blends.load();
  counters.early_exit_pixels += exits.load();
  counters.pixel_list_work += list_work.load();
  counters.total_pixels += pixels.load();
  counters.filter_checks += checks.load();
}

}  // namespace

void rasterize_grouped(const GroupedFrame& frame, std::span<const ProjectedSplat> splats,
                       Framebuffer& fb, std::size_t threads, RenderCounters& counters,
                       RasterScratch* scratch) {
  // Backend resolution happens once per frame; every tile kernel call then
  // dispatches on a concrete backend (no env reads in the hot loop).
  const SimdPolicy simd{resolve_simd_backend(frame.config.simd.backend),
                        frame.config.simd.exp_mode};
  rasterize_grouped_impl(frame, fb, threads, counters, scratch,
                         [&](RasterScratch::Worker& wk, std::span<const std::uint32_t> filtered,
                             int x0, int y0, int x1, int y1) {
                           return rasterize_tile(splats, filtered, x0, y0, x1, y1, fb, wk.tile,
                                                 simd);
                         });
}

void rasterize_grouped_sortless(const GroupedFrame& frame,
                                std::span<const ProjectedSplat> splats, Framebuffer& fb,
                                std::size_t threads, RenderCounters& counters,
                                RasterScratch* scratch) {
  const SimdPolicy simd{resolve_simd_backend(frame.config.simd.backend),
                        frame.config.simd.exp_mode};
  rasterize_grouped_impl(frame, fb, threads, counters, scratch,
                         [&](RasterScratch::Worker& wk, std::span<const std::uint32_t> filtered,
                             int x0, int y0, int x1, int y1) {
                           return rasterize_tile_sortless(splats, filtered, x0, y0, x1, y1, fb,
                                                          wk.sortless, simd);
                         });
}

}  // namespace gstg
