#include "core/grouping.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "render/rasterize.h"

namespace gstg {

BinnedSplats identify_groups(std::span<const ProjectedSplat> splats, const CellGrid& group_grid,
                             const GsTgConfig& config, RenderCounters& counters) {
  config.validate();
  return bin_splats(splats, group_grid, config.group_boundary, config.threads, counters);
}

std::vector<TileMask> generate_bitmasks(std::span<const ProjectedSplat> splats,
                                        const BinnedSplats& group_bins,
                                        const CellGrid& tile_grid, const GsTgConfig& config,
                                        RenderCounters& counters) {
  config.validate();
  const CellGrid& group_grid = group_bins.grid;
  const int r = config.tiles_per_side();
  std::vector<TileMask> masks(group_bins.splat_ids.size(), 0);

  constexpr std::size_t kMaxWorkers = 256;
  std::vector<std::size_t> tests_per_worker(kMaxWorkers, 0);

  const std::size_t groups = static_cast<std::size_t>(group_grid.cell_count());
  parallel_for_chunks(0, groups, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    std::size_t local_tests = 0;
    for (std::size_t g = lo; g < hi; ++g) {
      const int gx = static_cast<int>(g) % group_grid.cells_x;
      const int gy = static_cast<int>(g) / group_grid.cells_x;
      // Global tile-index window covered by this group, clipped to the grid.
      const int tx_lo = gx * r;
      const int ty_lo = gy * r;
      const int tx_hi = std::min(tile_grid.cells_x, tx_lo + r);
      const int ty_hi = std::min(tile_grid.cells_y, ty_lo + r);

      for (std::uint32_t e = group_bins.offsets[g]; e < group_bins.offsets[g + 1]; ++e) {
        const ProjectedSplat& s = splats[group_bins.splat_ids[e]];
        // Restrict to the splat's AABB candidate range — the same candidate
        // enumeration baseline binning uses, so hit sets match exactly.
        const TileRange cand = candidate_cells(s, tile_grid);
        const int x0 = std::max(tx_lo, cand.tx0);
        const int x1 = std::min(tx_hi, cand.tx1);
        const int y0 = std::max(ty_lo, cand.ty0);
        const int y1 = std::min(ty_hi, cand.ty1);
        if (x0 >= x1 || y0 >= y1) continue;

        TileMask mask = 0;
        if (config.mask_boundary == Boundary::kAabb) {
          for (int ty = y0; ty < y1; ++ty) {
            for (int tx = x0; tx < x1; ++tx) {
              ++local_tests;
              mask |= TileMask{1} << mask_bit_index(tx - tx_lo, ty - ty_lo, r);
            }
          }
        } else {
          const Ellipse footprint = s.footprint();
          const Obb obb = Obb::from_ellipse(footprint);
          for (int ty = y0; ty < y1; ++ty) {
            for (int tx = x0; tx < x1; ++tx) {
              const Rect rect = tile_rect(tx, ty, tile_grid.cell_size, tile_grid.image_width,
                                          tile_grid.image_height);
              ++local_tests;
              const bool hit = config.mask_boundary == Boundary::kObb
                                   ? obb_intersects(obb, rect)
                                   : ellipse_intersects(footprint, rect);
              if (hit) mask |= TileMask{1} << mask_bit_index(tx - tx_lo, ty - ty_lo, r);
            }
          }
        }
        masks[e] = mask;
      }
    }
    tests_per_worker[worker % kMaxWorkers] += local_tests;
  }, config.threads);

  for (const std::size_t t : tests_per_worker) counters.bitmask_tests += t;
  return masks;
}

void sort_groups(BinnedSplats& group_bins, std::vector<TileMask>& masks,
                 std::span<const ProjectedSplat> splats, std::size_t threads,
                 RenderCounters& counters) {
  if (masks.size() != group_bins.splat_ids.size()) {
    throw std::invalid_argument("sort_groups: mask array size mismatch");
  }
  const std::size_t groups = static_cast<std::size_t>(group_bins.grid.cell_count());

  constexpr std::size_t kMaxWorkers = 256;
  std::vector<double> volume_per_worker(kMaxWorkers, 0.0);
  std::vector<std::size_t> pairs_per_worker(kMaxWorkers, 0);

  parallel_for_chunks(0, groups, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    std::vector<std::pair<std::uint32_t, TileMask>> scratch;
    double local_volume = 0.0;
    std::size_t local_pairs = 0;
    for (std::size_t g = lo; g < hi; ++g) {
      const std::uint32_t begin = group_bins.offsets[g];
      const std::uint32_t end = group_bins.offsets[g + 1];
      const std::size_t n = end - begin;
      local_pairs += n;
      if (n <= 1) continue;
      scratch.clear();
      scratch.reserve(n);
      for (std::uint32_t e = begin; e < end; ++e) {
        scratch.emplace_back(group_bins.splat_ids[e], masks[e]);
      }
      std::sort(scratch.begin(), scratch.end(), [&](const auto& a, const auto& b) {
        const float da = splats[a.first].depth, db = splats[b.first].depth;
        if (da != db) return da < db;
        return splats[a.first].index < splats[b.first].index;
      });
      for (std::size_t k = 0; k < n; ++k) {
        group_bins.splat_ids[begin + k] = scratch[k].first;
        masks[begin + k] = scratch[k].second;
      }
      local_volume += static_cast<double>(n) * std::log2(static_cast<double>(n));
    }
    volume_per_worker[worker % kMaxWorkers] += local_volume;
    pairs_per_worker[worker % kMaxWorkers] += local_pairs;
  }, threads);

  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    counters.sort_comparison_volume += volume_per_worker[w];
    counters.sort_pairs += pairs_per_worker[w];
  }
}

void rasterize_grouped(const GroupedFrame& frame, std::span<const ProjectedSplat> splats,
                       Framebuffer& fb, std::size_t threads, RenderCounters& counters) {
  const CellGrid& tile_grid = frame.tile_grid;
  const CellGrid& group_grid = frame.group_grid;
  const int r = frame.config.tiles_per_side();
  const std::size_t tiles = static_cast<std::size_t>(tile_grid.cell_count());

  constexpr std::size_t kMaxWorkers = 256;
  struct WorkerStats {
    TileRasterStats raster;
    std::size_t filter_checks = 0;
  };
  std::vector<WorkerStats> per_worker(kMaxWorkers);

  parallel_for_chunks(0, tiles, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    WorkerStats local;
    std::vector<std::uint32_t> filtered;
    for (std::size_t t = lo; t < hi; ++t) {
      const int tx = static_cast<int>(t) % tile_grid.cells_x;
      const int ty = static_cast<int>(t) / tile_grid.cells_x;
      const int gx = tx / r;
      const int gy = ty / r;
      const std::size_t g = static_cast<std::size_t>(group_grid.cell_index(gx, gy));
      const TileMask location =
          TileMask{1} << mask_bit_index(tx - gx * r, ty - gy * r, r);

      // The RM's filter: AND each entry's bitmask with the tile location.
      filtered.clear();
      const std::uint32_t begin = frame.group_bins.offsets[g];
      const std::uint32_t end = frame.group_bins.offsets[g + 1];
      local.filter_checks += end - begin;
      for (std::uint32_t e = begin; e < end; ++e) {
        if (frame.masks[e] & location) filtered.push_back(frame.group_bins.splat_ids[e]);
      }

      const int x0 = tx * tile_grid.cell_size;
      const int y0 = ty * tile_grid.cell_size;
      const int x1 = std::min(x0 + tile_grid.cell_size, tile_grid.image_width);
      const int y1 = std::min(y0 + tile_grid.cell_size, tile_grid.image_height);
      const TileRasterStats s = rasterize_tile(splats, filtered, x0, y0, x1, y1, fb);
      local.raster.alpha_computations += s.alpha_computations;
      local.raster.blend_ops += s.blend_ops;
      local.raster.early_exit_pixels += s.early_exit_pixels;
      local.raster.pixel_list_work += s.pixel_list_work;
      local.raster.pixels += s.pixels;
    }
    WorkerStats& slot = per_worker[worker % kMaxWorkers];
    slot.raster.alpha_computations += local.raster.alpha_computations;
    slot.raster.blend_ops += local.raster.blend_ops;
    slot.raster.early_exit_pixels += local.raster.early_exit_pixels;
    slot.raster.pixel_list_work += local.raster.pixel_list_work;
    slot.raster.pixels += local.raster.pixels;
    slot.filter_checks += local.filter_checks;
  }, threads);

  for (const WorkerStats& s : per_worker) {
    counters.alpha_computations += s.raster.alpha_computations;
    counters.blend_ops += s.raster.blend_ops;
    counters.early_exit_pixels += s.raster.early_exit_pixels;
    counters.pixel_list_work += s.raster.pixel_list_work;
    counters.total_pixels += s.raster.pixels;
    counters.filter_checks += s.filter_checks;
  }
}

}  // namespace gstg
