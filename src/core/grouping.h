// The GS-TG tile-grouping stages (paper section IV-B):
//   group identification -> bitmask generation -> group-wise sorting
//   -> bitmask-filtered tile-wise rasterization.
// Each stage is exposed separately so tests can probe invariants and the
// cycle-level simulator can consume the intermediate data.
#pragma once

#include <span>
#include <vector>

#include "common/annotations.h"
#include "core/gstg_config.h"
#include "render/binning.h"
#include "render/framebuffer.h"
#include "render/rasterize.h"
#include "render/sort_keys.h"
#include "render/types.h"

namespace gstg {

/// Intermediate state of a GS-TG frame after grouping/sorting: the group
/// grid, per-group depth-sorted splat lists, and the per-entry tile
/// bitmasks (parallel to group_bins.splat_ids).
struct GroupedFrame {
  GsTgConfig config;
  CellGrid tile_grid;
  CellGrid group_grid;
  BinnedSplats group_bins;
  std::vector<TileMask> masks;
};

/// Group identification: bins splats at group granularity with the group
/// boundary method. Counter semantics match baseline binning, but at group
/// scale — tile_pairs then measures the *sorting* volume GS-TG pays.
BinnedSplats identify_groups(std::span<const ProjectedSplat> splats, const CellGrid& group_grid,
                             const GsTgConfig& config, RenderCounters& counters);

/// Bitmask generation: for every (group, splat) entry, marks which small
/// tiles inside the group the splat's footprint touches, using the mask
/// boundary method. Tests are restricted to the splat's AABB candidate
/// range, mirroring baseline binning, so the effective per-tile hit set is
/// identical to a baseline run with the same boundary (the lossless
/// property). Updates counters.bitmask_tests.
std::vector<TileMask> generate_bitmasks(std::span<const ProjectedSplat> splats,
                                        const BinnedSplats& group_bins,
                                        const CellGrid& tile_grid, const GsTgConfig& config,
                                        RenderCounters& counters);

/// generate_bitmasks() into a caller-owned mask vector (resized in place).
GSTG_HOT_NOALLOC
void generate_bitmasks_into(std::span<const ProjectedSplat> splats,
                            const BinnedSplats& group_bins, const CellGrid& tile_grid,
                            const GsTgConfig& config, RenderCounters& counters,
                            std::vector<TileMask>& masks);

/// Group-wise sorting: orders each group's (splat, mask) entries by
/// (depth, index). A filtered subsequence is then automatically in the same
/// order as the baseline's per-tile sorted list. `algo` selects comparison
/// or packed-key radix sorting per group (identical orderings; see
/// render/sort_keys.h) and `scratch` reuses one SortScratch across frames
/// (nullptr = self-contained call).
GSTG_HOT_NOALLOC
void sort_groups(BinnedSplats& group_bins, std::vector<TileMask>& masks,
                 std::span<const ProjectedSplat> splats, std::size_t threads,
                 RenderCounters& counters, SortAlgo algo = SortAlgo::kAuto,
                 SortScratch* scratch = nullptr);

/// Sorts one group's entry range ids[0..n) / masks[0..n) in place by the
/// packed (depth, index) key — the single per-group sort both sort_groups
/// and the temporal renderer's fallback path call, so a re-sorted group is
/// bit-identical whichever caller ran it. Accounts the group into
/// ws.pairs / ws.volume exactly as sort_groups always has (pairs for every
/// entry, volume only when n >= 2). `key_bits`/`index_bits` come from
/// depth_index_key_bits over the frame's maximum splat index.
GSTG_HOT_NOALLOC
void sort_group_entries(std::uint32_t* ids, TileMask* masks, std::size_t n,
                        std::span<const ProjectedSplat> splats, SortAlgo algo, int key_bits,
                        int index_bits, SortWorkerScratch& ws);

/// Reusable per-worker rasterization buffers for rasterize_grouped and
/// rasterize_grouped_sortless: the bitmask-filtered id list plus the
/// blending scratch of both tile kernels (exact and sortless).
struct RasterScratch {
  struct Worker {
    std::vector<std::uint32_t> filtered;
    TileRasterScratch tile;
    SortlessRasterScratch sortless;
  };
  std::vector<Worker> workers;
};

/// Tile-wise rasterization over group-sorted lists: per tile, gathers the
/// entries whose bitmask covers the tile (the RM's AND-filter) and runs the
/// shared tile rasterizer. Updates counters.filter_checks plus the usual
/// rasterization counters. `scratch` reuses per-worker buffers across
/// frames (nullptr = self-contained call).
GSTG_HOT_NOALLOC
void rasterize_grouped(const GroupedFrame& frame, std::span<const ProjectedSplat> splats,
                       Framebuffer& fb, std::size_t threads, RenderCounters& counters,
                       RasterScratch* scratch = nullptr);

/// rasterize_grouped() with the sortless (order-independent transmittance)
/// tile kernel: the same bitmask AND-filter per tile, but the filtered list
/// is blended WITHOUT sort_groups having run — the kSortless/kVerify
/// pipelines (common/runconfig.h). The blended image is bit-identical
/// regardless of entry order, so it does not matter whether the frame's
/// bins are raw (kSortless) or happen to be sorted (the kVerify audit).
GSTG_HOT_NOALLOC
void rasterize_grouped_sortless(const GroupedFrame& frame,
                                std::span<const ProjectedSplat> splats, Framebuffer& fb,
                                std::size_t threads, RenderCounters& counters,
                                RasterScratch* scratch = nullptr);

/// Local-tile bit index inside a group (row-major over the group's tiles).
constexpr int mask_bit_index(int local_tx, int local_ty, int tiles_per_side) {
  return local_ty * tiles_per_side + local_tx;
}

}  // namespace gstg
