// Persistent GS-TG renderer: the servable, allocation-free steady-state
// form of the one-shot pipeline in core/pipeline.h.
//
// A FrameContext owns every per-frame product and scratch buffer (projected
// splats, group CSR lists, tile bitmasks, sort keys, blending buffers,
// framebuffer). Rendering through a reused context produces bit-identical
// images to independent render_gstg() calls while allocating nothing once
// the buffers have warmed up to the workload — the execution model a
// multi-user rendering service needs (persistent device buffers in the GPU
// rasterizers this mirrors).
//
// render_batch() adds view-level parallelism on top of the existing
// intra-frame threading: a small pool of workers, each with its own
// FrameContext, drains the camera list. Frames are independent, so the
// batch output is bit-identical to the sequential loop.
#pragma once

#include <span>
#include <vector>

#include "camera/camera.h"
#include "common/timer.h"
#include "core/grouping.h"
#include "core/pipeline.h"
#include "gaussian/cloud.h"
#include "gaussian/compressed.h"
#include "render/preprocess.h"

namespace gstg {

/// All per-frame state of one GS-TG render, reusable across frames. The
/// stage products (splats, frame, image, counters, times) are valid after
/// Renderer::render returns; the scratch members are implementation
/// buffers.
struct FrameContext {
  // Stage products.
  std::vector<ProjectedSplat> splats;
  GroupedFrame frame;
  Framebuffer image{1, 1};
  StageTimes times;
  RenderCounters counters;
  /// PipelineMode::kVerify only: the exact reference image of the frame and
  /// the PSNR/SSIM of the shipped sortless image against it
  /// (quality.measured stays false under kExact / kSortless).
  Framebuffer verify_image{1, 1};
  ImageQuality quality;

  // Reused stage scratch.
  PreprocessScratch preprocess;
  BinningScratch binning;
  SortScratch sort;
  RasterScratch raster;

  // Compressed-residency scratch (render(CompressedCloud) overload only).
  // `decoded` holds the full float32 form under kFloat32/kVerify; the
  // verify pair backs the up-front-decode reference run under kVerify.
  DecodeScratch decode;
  GaussianCloud decoded;
  std::vector<ProjectedSplat> verify_splats;
  PreprocessScratch verify_preprocess;
};

/// A persistent renderer bound to one validated configuration. Stateless
/// across calls apart from the config, so one Renderer may be shared by
/// many threads as long as each thread renders into its own FrameContext.
class Renderer {
 public:
  /// Validates and captures the configuration (throws std::invalid_argument
  /// on an invalid one, like render_gstg).
  explicit Renderer(const GsTgConfig& config);

  [[nodiscard]] const GsTgConfig& config() const { return config_; }

  /// Renders the cloud from `camera` into `ctx`, reusing every buffer the
  /// context already holds. ctx.image / ctx.times / ctx.counters carry the
  /// result — identical to render_gstg(cloud, camera, config()).
  void render(const GaussianCloud& cloud, const Camera& camera, FrameContext& ctx) const;

  /// Renders from the fp16-resident form under config().residency:
  ///  - kCompressed: streamed block decode through ctx.decode — the float32
  ///    form of the whole cloud never exists;
  ///  - kFloat32: decodes the whole cloud into ctx.decoded first (the
  ///    reference execution of the same resident data);
  ///  - kVerify: runs both preprocesses and throws ResidencyError unless
  ///    the streamed splat stream is bit-identical to the up-front one
  ///    (downstream stages are deterministic in the splat stream, so splat
  ///    equality is image equality).
  /// Every mode produces the image render(cloud.decode(), camera, ctx)
  /// would — bit-identical across modes, threads and SIMD backends.
  void render(const CompressedCloud& cloud, const Camera& camera, FrameContext& ctx) const;

 private:
  void finish_frame(const Camera& camera, FrameContext& ctx, Timer& timer) const;

  GsTgConfig config_;
};

/// Shared post-bitmask stages of a frame under a non-exact pipeline
/// (kSortless / kVerify), used by Renderer and TemporalRenderer: no group
/// sort runs — the raw (unsorted) bins feed the order-independent tile
/// kernel directly, so ctx.counters reports zero sort_pairs. Under kVerify
/// the audit additionally sorts the bins, renders the exact reference into
/// ctx.verify_image and fills ctx.quality; audit work is charged to a
/// discarded counter record so ctx.counters (and ctx.image — the sortless
/// kernel is order-independent bit-for-bit) match a pure kSortless run.
void finish_sortless_stages(const GsTgConfig& config, const Camera& camera, FrameContext& ctx,
                            Timer& timer);

/// Batch rendering options.
struct BatchOptions {
  /// Concurrent view workers (0 = min(view count, worker_thread_count())).
  /// Each worker renders whole frames with the config's intra-frame thread
  /// setting; prefer view_threads * config.threads <= core count.
  std::size_t view_threads = 0;
};

/// Result of render_batch: per-view outputs in camera order plus the merged
/// counters and the batch wall-clock.
struct BatchRenderResult {
  std::vector<Framebuffer> images;
  std::vector<StageTimes> times;
  std::vector<RenderCounters> counters;
  RenderCounters total;
  double wall_ms = 0.0;
};

/// Renders every camera view of `cloud` under one config. Output images are
/// bit-identical to N independent render_gstg() calls; view workers reuse
/// one FrameContext each, so steady-state frames allocate only the returned
/// image copies.
BatchRenderResult render_batch(const GaussianCloud& cloud, std::span<const Camera> cameras,
                               const GsTgConfig& config, const BatchOptions& options = {});

}  // namespace gstg
