// End-to-end GS-TG rendering pipeline (paper Fig. 9): sorting happens at
// group (large-tile) granularity, rasterization at small-tile granularity
// via per-Gaussian bitmasks — lossless with respect to the baseline.
#pragma once

#include <vector>

#include "camera/camera.h"
#include "core/grouping.h"
#include "gaussian/cloud.h"
#include "render/pipeline.h"

namespace gstg {

/// Runs the full GS-TG pipeline. StageTimes attribution:
///   preprocess_ms = features + culling + group identification
///   bitmask_ms    = bitmask generation (GPU execution runs it sequentially;
///                   the accelerator overlaps it with sorting — the cycle
///                   simulator models that, see sim/)
///   sort_ms       = group-wise sorting
///   raster_ms     = bitmask filtering + tile-wise rasterization
RenderResult render_gstg(const GaussianCloud& cloud, const Camera& camera,
                         const GsTgConfig& config);

/// Stage products of a GS-TG frame, for tests and the accelerator
/// simulator: the projected splats and the sorted, masked group lists.
struct GsTgFrameData {
  std::vector<ProjectedSplat> splats;
  GroupedFrame frame;
  RenderCounters counters;
};

/// Runs preprocessing through group sorting (no rasterization) and returns
/// the intermediate data.
GsTgFrameData build_gstg_frame(const GaussianCloud& cloud, const Camera& camera,
                               const GsTgConfig& config);

}  // namespace gstg
