// GS-TG pipeline configuration: tile/group geometry and the boundary
// methods of the two identification steps (paper sections IV-B and VI-B).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/runconfig.h"
#include "geometry/intersect.h"
#include "render/sort_keys.h"
#include "render/types.h"

namespace gstg {

/// Per-Gaussian tile bitmask within a group. The hardware uses 16 bits
/// (4x4 tiles per group, the 16+64 configuration); the software pipeline
/// supports up to 64 tiles per group to cover the Fig. 11 sweep (8+64).
using TileMask = std::uint64_t;

struct GsTgConfig {
  int tile_size = 16;
  int group_size = 64;
  /// Boundary method of the group identification step.
  Boundary group_boundary = Boundary::kEllipse;
  /// Boundary method of the per-tile bitmask generation step.
  Boundary mask_boundary = Boundary::kEllipse;
  /// Opacity-aware footprint extent (FlashGS-style) instead of 3-sigma.
  bool opacity_aware_rho = false;
  /// Group-sort algorithm: packed-key radix, comparison sort, or kAuto
  /// (radix above the cutoff). All choices order identically.
  SortAlgo sort_algo = SortAlgo::kAuto;
  /// SIMD kernel policy for preprocess/rasterize (see common/simd.h): kAuto
  /// backend resolves to the widest verified one (GSTG_SIMD overrides);
  /// exact exponential mode (the default) keeps bit-identity with scalar.
  SimdPolicy simd;
  /// Cross-frame group-sort reuse mode of the temporal renderer
  /// (src/temporal/temporal_renderer.h; GSTG_TEMPORAL overrides). kOff by
  /// default so the one-shot and batch paths are untouched; every mode is
  /// pixel-exact — reuse only happens when the cached order is provably the
  /// sorted order, and kVerify re-sorts to audit that proof.
  TemporalMode temporal = TemporalMode::kOff;
  /// Tile/group identification strategy (render/binning.h; GSTG_BINNING
  /// overrides): flat, hierarchical coarse→fine, kAuto (hierarchical on
  /// large grids — the default), or kVerify (hierarchical audited
  /// bit-identical against flat). Applies to both the group identification
  /// pass and the baseline comparison runs render_config() feeds; every
  /// mode produces identical hit sets, so the lossless gate is unaffected.
  BinningMode binning = BinningMode::kAuto;
  /// Resident-form policy of the compressed render path — only consulted by
  /// Renderer::render(const CompressedCloud&, ...) (GSTG_RESIDENCY
  /// overrides): kCompressed (the default) streams fp16 blocks through
  /// per-worker decode scratch, kFloat32 decodes the whole cloud up front,
  /// and kVerify runs both preprocesses and throws ResidencyError unless
  /// the streamed splat stream is bit-identical to the up-front one.
  ResidencyMode residency = ResidencyMode::kCompressed;
  /// Blending discipline (common/runconfig.h; GSTG_PIPELINE overrides):
  /// kExact (the default) keeps the depth-sorted, bit-identical pipeline;
  /// kSortless skips group sorting entirely and blends with
  /// order-independent transmittance — intentionally lossy, gated on a
  /// PSNR/SSIM floor (bench_quality) instead of the lossless gate; kVerify
  /// ships the sortless image and also renders the exact reference,
  /// reporting per-frame quality (FrameContext::quality).
  PipelineMode pipeline = PipelineMode::kExact;
  std::size_t threads = 0;  ///< 0 = auto
  /// Starts the process-global trace collector (src/telemetry/trace.h) when
  /// a Renderer is constructed with this config. GSTG_TRACE=<path> does the
  /// same from the environment and additionally names the JSON written at
  /// process exit; with only `trace` set, the caller drains via
  /// telemetry::TraceSession::global().write(path). Tracing is
  /// observational: counters and images are bit-identical either way.
  bool trace = false;

  /// The RenderConfig this GS-TG config implies for the stages shared with
  /// the baseline pipeline (preprocessing, per-tile sorting in comparison
  /// runs). The single mapping keeps the one-shot and persistent renderers
  /// from drifting apart.
  [[nodiscard]] RenderConfig render_config() const {
    RenderConfig rc;
    rc.tile_size = tile_size;
    rc.boundary = mask_boundary;
    rc.opacity_aware_rho = opacity_aware_rho;
    rc.sort_algo = sort_algo;
    rc.simd = simd;
    rc.binning = binning;
    rc.pipeline = pipeline;
    rc.threads = threads;
    return rc;
  }

  /// Tiles per group side; group_size must be a positive multiple of
  /// tile_size so small tiles align perfectly inside groups (paper Fig. 8b —
  /// the alignment that makes the method lossless).
  [[nodiscard]] int tiles_per_side() const { return group_size / tile_size; }
  [[nodiscard]] int tiles_per_group() const { return tiles_per_side() * tiles_per_side(); }

  void validate() const {
    if (tile_size <= 0 || group_size <= 0) {
      throw std::invalid_argument("GsTgConfig: sizes must be positive");
    }
    if (group_size % tile_size != 0) {
      throw std::invalid_argument(
          "GsTgConfig: group_size must be a multiple of tile_size (tile alignment)");
    }
    if (tiles_per_group() > 64) {
      throw std::invalid_argument("GsTgConfig: more than 64 tiles per group (bitmask overflow)");
    }
    if (pipeline != PipelineMode::kExact && temporal == TemporalMode::kVerify) {
      // Temporal kVerify audits that a reused group order is still the exact
      // sorted order — meaningless when the sortless pipeline never sorts.
      throw std::invalid_argument(
          "GsTgConfig: temporal kVerify requires the exact pipeline "
          "(sortless blending never sorts, so there is no order to audit)");
    }
  }

  /// True when the (group, mask) boundary pair guarantees pixel-exact
  /// equality with the baseline using `mask_boundary` tiles. Requires every
  /// tile-level hit to imply a group-level hit: the mask shape must be
  /// contained in the group shape (Ellipse ⊆ OBB ⊆ ... see core/pipeline.cpp
  /// notes). All combinations the paper evaluates satisfy this.
  [[nodiscard]] bool lossless_guaranteed() const {
    const auto rank = [](Boundary b) {
      switch (b) {
        case Boundary::kAabb:
          return 0;  // loosest
        case Boundary::kObb:
          return 1;
        case Boundary::kEllipse:
          return 2;  // tightest
      }
      return 0;
    };
    return rank(mask_boundary) >= rank(group_boundary);
  }
};

}  // namespace gstg
