#include "core/pipeline.h"

#include "common/timer.h"
#include "core/renderer.h"
#include "render/preprocess.h"

namespace gstg {

RenderResult render_gstg(const GaussianCloud& cloud, const Camera& camera,
                         const GsTgConfig& config) {
  // One-shot form of the persistent renderer (core/renderer.h): a fresh
  // FrameContext per call, so the two paths are the same code and stay
  // bit-identical by construction.
  const Renderer renderer(config);
  FrameContext ctx;
  renderer.render(cloud, camera, ctx);
  return RenderResult{std::move(ctx.image), ctx.times, ctx.counters, ctx.quality};
}

GsTgFrameData build_gstg_frame(const GaussianCloud& cloud, const Camera& camera,
                               const GsTgConfig& config) {
  config.validate();
  GsTgFrameData data;
  data.splats = preprocess(cloud, camera, config.render_config(), data.counters);
  data.frame.config = config;
  data.frame.tile_grid = CellGrid::over_image(camera.width(), camera.height(), config.tile_size);
  data.frame.group_grid = CellGrid::over_image(camera.width(), camera.height(), config.group_size);
  data.frame.group_bins = identify_groups(data.splats, data.frame.group_grid, config, data.counters);
  data.frame.masks = generate_bitmasks(data.splats, data.frame.group_bins, data.frame.tile_grid,
                                       config, data.counters);
  sort_groups(data.frame.group_bins, data.frame.masks, data.splats, config.threads, data.counters,
              config.sort_algo);
  return data;
}

}  // namespace gstg
