#include "core/pipeline.h"

#include "common/timer.h"
#include "render/preprocess.h"

namespace gstg {

namespace {

RenderConfig to_render_config(const GsTgConfig& config) {
  RenderConfig rc;
  rc.tile_size = config.tile_size;
  rc.boundary = config.mask_boundary;
  rc.opacity_aware_rho = config.opacity_aware_rho;
  rc.threads = config.threads;
  return rc;
}

}  // namespace

RenderResult render_gstg(const GaussianCloud& cloud, const Camera& camera,
                         const GsTgConfig& config) {
  config.validate();
  RenderResult result{Framebuffer(camera.width(), camera.height()), {}, {}};
  Timer timer;

  // Preprocessing: features + culling + group identification.
  const RenderConfig rc = to_render_config(config);
  const std::vector<ProjectedSplat> splats = preprocess(cloud, camera, rc, result.counters);
  GroupedFrame frame;
  frame.config = config;
  frame.tile_grid = CellGrid::over_image(camera.width(), camera.height(), config.tile_size);
  frame.group_grid = CellGrid::over_image(camera.width(), camera.height(), config.group_size);
  frame.group_bins = identify_groups(splats, frame.group_grid, config, result.counters);
  result.times.preprocess_ms = timer.lap_ms();

  // Bitmask generation (sequential here; overlapped with sorting in HW).
  frame.masks =
      generate_bitmasks(splats, frame.group_bins, frame.tile_grid, config, result.counters);
  result.times.bitmask_ms = timer.lap_ms();

  // Group-wise sorting.
  sort_groups(frame.group_bins, frame.masks, splats, config.threads, result.counters);
  result.times.sort_ms = timer.lap_ms();

  // Tile-wise rasterization with bitmask filtering.
  rasterize_grouped(frame, splats, result.image, config.threads, result.counters);
  result.times.raster_ms = timer.lap_ms();

  return result;
}

GsTgFrameData build_gstg_frame(const GaussianCloud& cloud, const Camera& camera,
                               const GsTgConfig& config) {
  config.validate();
  GsTgFrameData data;
  const RenderConfig rc = to_render_config(config);
  data.splats = preprocess(cloud, camera, rc, data.counters);
  data.frame.config = config;
  data.frame.tile_grid = CellGrid::over_image(camera.width(), camera.height(), config.tile_size);
  data.frame.group_grid = CellGrid::over_image(camera.width(), camera.height(), config.group_size);
  data.frame.group_bins = identify_groups(data.splats, data.frame.group_grid, config, data.counters);
  data.frame.masks = generate_bitmasks(data.splats, data.frame.group_bins, data.frame.tile_grid,
                                       config, data.counters);
  sort_groups(data.frame.group_bins, data.frame.masks, data.splats, config.threads, data.counters);
  return data;
}

}  // namespace gstg
