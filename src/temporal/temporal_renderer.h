// Temporal renderer: the frame-sequence serving layer. Consecutive cameras
// of a flythrough produce nearly identical per-group depth orders, so most
// of the per-frame group sorting GS-TG already reduced is *still* redundant
// across frames. TemporalRenderer wraps the persistent renderer's frame
// stages with a cross-frame group-sort cache:
//
//   per group, keep the previous frame's sorted order as original cloud
//   indices; on the new frame, split the group's entries into *stayers*
//   (already in the cached list) and *joiners*. An O(n) validity walk
//   checks that the stayers, taken in cached order, are still strictly
//   increasing under the new (depth, index) packed keys — keys are unique
//   within a group, so a strictly increasing sequence IS sorted. Then the
//   joiners (usually a handful of boundary crossers) go through the shared
//   per-group sort (core/grouping.h) and a two-way merge by key produces
//   the group's order; splats that left the group simply drop out of the
//   walk. Unique keys make the sorted order unique, so the merged result is
//   bit-identical to a full per-frame sort — exact by construction, not
//   approximately. Only when the stayer order itself broke (depth
//   inversions under the new view) does the whole group fall back to the
//   full sort.
//
// TemporalMode::kVerify audits that argument at runtime: every reused order
// is re-sorted and compared bit-for-bit (mismatches are counted and the
// sorted result wins). kOff degenerates to Renderer::render.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/renderer.h"
#include "render/metrics.h"
#include "temporal/camera_path.h"

namespace gstg {

/// Previous frame's group-sort snapshot: per group, the sorted entry list
/// as original cloud indices (ProjectedSplat::index — stable across frames,
/// unlike positions in the per-frame splat vector).
struct GroupSortCache {
  bool valid = false;
  int cells_x = 0;  ///< group grid the snapshot belongs to
  int cells_y = 0;
  std::size_t cloud_size = 0;
  std::vector<std::uint32_t> offsets;          ///< cell_count + 1
  std::vector<std::uint32_t> sorted_cloud_ids; ///< per entry, in sorted order
};

/// Reusable per-worker buffers of the temporal sort stage. The cloud-sized
/// stamp/entry maps give the O(n) membership check; the epoch counter makes
/// one pair of maps serve every group a worker visits without clearing.
struct TemporalScratch {
  struct Worker {
    SortWorkerScratch sort;
    SortWorkerScratch aux;  ///< kVerify joiner sorts (accounting discarded)
    std::vector<std::uint32_t> stamp;     ///< per cloud index: epoch of last marking
    std::vector<std::uint32_t> entry_of;  ///< per cloud index: entry position when stamped
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> stayer_ids;  ///< staged stayers, cached order
    std::vector<TileMask> stayer_masks;
    std::vector<std::uint64_t> stayer_keys;
    std::vector<std::uint32_t> joiner_ids;  ///< staged joiners, sorted before the merge
    std::vector<TileMask> joiner_masks;
    std::vector<std::uint32_t> verify_ids;  ///< kVerify: independent re-sort input
    std::vector<TileMask> verify_masks;
    TemporalStats stats;
  };
  std::vector<Worker> workers;
};

/// A persistent renderer with the cross-frame group-sort cache. Unlike
/// core/renderer.h's Renderer it is stateful (the cache belongs to one
/// frame sequence), so use one TemporalRenderer per camera stream; frames
/// must be rendered in sequence order for reuse to mean anything.
///
/// Every temporal mode is pixel-exact: output images and all RenderCounters
/// except sort_comparison_volume match render_gstg on the same frame
/// exactly (reused groups perform no sort, so kReuse reports less sorting
/// work — that reduction is the point; kVerify re-sorts everything and
/// therefore matches render_gstg's counters bit-for-bit).
///
/// Under a non-exact GsTgConfig::pipeline (kSortless / kVerify) nothing
/// sorts, so the cross-frame cache is bypassed cleanly: it is never
/// snapshotted or consulted, TemporalStats stay zero, and frames match the
/// plain Renderer's sortless output bit-for-bit. Combining a sortless
/// pipeline with temporal kVerify is rejected by GsTgConfig::validate().
class TemporalRenderer {
 public:
  /// Validates the configuration and resolves the temporal mode: the
  /// GSTG_TEMPORAL environment override wins over config.temporal.
  explicit TemporalRenderer(const GsTgConfig& config);

  [[nodiscard]] const GsTgConfig& config() const { return config_; }
  [[nodiscard]] TemporalMode mode() const { return config_.temporal; }

  /// Renders one frame into `ctx` (same contract as Renderer::render) and
  /// updates the cache, last_frame() and total() statistics.
  void render(const GaussianCloud& cloud, const Camera& camera, FrameContext& ctx);

  /// Reuse statistics of the most recent frame / of every frame rendered
  /// since construction (or the last invalidate()).
  [[nodiscard]] const TemporalStats& last_frame() const { return last_; }
  [[nodiscard]] const TemporalStats& total() const { return total_; }

  /// Drops the cache and zeroes total(): the next frame sorts every group
  /// (a "cold" frame). Use when switching to an unrelated camera stream.
  void invalidate();

 private:
  void temporal_sort(std::span<const ProjectedSplat> splats, FrameContext& ctx);
  void snapshot_cache(const GroupedFrame& frame, std::span<const ProjectedSplat> splats,
                      std::size_t cloud_size);

  GsTgConfig config_;
  GroupSortCache cache_;
  TemporalScratch scratch_;
  TemporalStats last_;
  TemporalStats total_;
};

/// One frame sequence rendered through a TemporalRenderer: per-frame
/// outputs plus the merged counters and reuse statistics. `images` is empty
/// when the sequence was rendered with keep_images = false.
struct TemporalSequenceResult {
  std::vector<Framebuffer> images;
  std::vector<StageTimes> times;
  std::vector<RenderCounters> counters;
  std::vector<TemporalStats> frame_stats;
  RenderCounters total_counters;
  TemporalStats total_stats;
  double wall_ms = 0.0;
};

/// Renders every camera in order through one TemporalRenderer and reused
/// FrameContext (frames of a sequence are causally dependent through the
/// cache, so this path is sequential — view parallelism belongs to
/// render_batch's independent-frame model). keep_images = false skips the
/// per-frame framebuffer copies — retaining them is O(frames × image)
/// memory, gigabytes for a long paper-scale sequence — while counters,
/// times and reuse statistics are still recorded per frame.
TemporalSequenceResult render_sequence(const GaussianCloud& cloud,
                                       std::span<const Camera> cameras,
                                       const GsTgConfig& config, bool keep_images = true);

/// render_sequence over a named FrameSequence.
TemporalSequenceResult render_sequence(const GaussianCloud& cloud, const FrameSequence& sequence,
                                       const GsTgConfig& config, bool keep_images = true);

}  // namespace gstg
