// Camera paths and frame sequences: the first-class multi-frame workload
// layer of the temporal subsystem. A CameraPath is a list of keyframe poses
// (eye + world->camera orientation quaternion) with piecewise-linear eye
// interpolation and shortest-arc slerp on orientation; a FrameSequence is a
// path sampled at a frame count. Both are pure functions of their inputs —
// sampling the same path twice, at any RunScale, yields bit-identical poses
// (only the intrinsics change with resolution), which is what lets the
// flythrough workloads, benches, and temporal-reuse tests agree on the
// exact camera trajectory.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "camera/camera.h"
#include "geometry/quaternion.h"
#include "scene/scene.h"

namespace gstg {

/// Shared intrinsics of every frame sampled from a path (square pixels,
/// principal point at the centre — the Camera::from_fov model).
struct CameraIntrinsics {
  int width = 0;
  int height = 0;
  float fov_x = 1.2f;  ///< horizontal field of view, radians
};

/// One keyframe pose: camera centre in world space plus the world->camera
/// rotation as a unit quaternion (slerp-friendly form of the look_at
/// rotation block).
struct CameraKeyframe {
  Vec3 eye;
  Quat orientation;
};

/// Keyframe looking from `eye` toward `target` (OpenCV convention, same as
/// camera/camera.h's look_at).
CameraKeyframe keyframe_look_at(Vec3 eye, Vec3 target, Vec3 up_hint = {0.0f, -1.0f, 0.0f});

/// The Camera a keyframe pose describes under the given intrinsics.
Camera keyframe_camera(const CameraKeyframe& key, const CameraIntrinsics& intrinsics);

/// A sampled camera path: named so bench/test records are self-describing,
/// carrying one Camera per frame.
struct FrameSequence {
  std::string name;
  std::vector<Camera> cameras;

  [[nodiscard]] std::size_t frame_count() const { return cameras.size(); }
  [[nodiscard]] std::span<const Camera> views() const { return cameras; }
};

/// An interpolatable sequence of keyframe poses under fixed intrinsics.
/// Sampling is deterministic and endpoint-exact: t = 0 and t = 1 reproduce
/// the first and last keyframe pose bit-for-bit.
class CameraPath {
 public:
  /// Throws std::invalid_argument on an empty keyframe list or degenerate
  /// intrinsics.
  CameraPath(std::string name, CameraIntrinsics intrinsics, std::vector<CameraKeyframe> keys);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CameraIntrinsics& intrinsics() const { return intrinsics_; }
  [[nodiscard]] std::size_t keyframe_count() const { return keys_.size(); }
  [[nodiscard]] const CameraKeyframe& keyframe(std::size_t i) const { return keys_[i]; }

  /// Pose at t in [0, 1] (clamped): linear eye interpolation + shortest-arc
  /// slerp between the surrounding keyframes.
  [[nodiscard]] CameraKeyframe pose(float t) const;

  /// Camera at t under the path intrinsics.
  [[nodiscard]] Camera sample(float t) const;

  /// `count` frames at uniform parameters (endpoints exact; count == 1
  /// samples t = 0). Throws std::invalid_argument for count <= 0.
  [[nodiscard]] FrameSequence frames(int count) const;

  /// Keyframes on a circular orbit of `arc_turns` revolutions (1 = full
  /// circle) around `focus`, starting at `eye0` and keeping its height;
  /// every keyframe looks at the focus. `keyframes` >= 2 poses are placed
  /// uniformly along the arc.
  static CameraPath orbit(std::string name, CameraIntrinsics intrinsics, Vec3 focus, Vec3 eye0,
                          float arc_turns = 1.0f, int keyframes = 16);

 private:
  std::string name_;
  CameraIntrinsics intrinsics_;
  std::vector<CameraKeyframe> keys_;
};

/// Tour sampling: `hold_frames` identical frames at every keyframe pose
/// with `move_frames` interpolated frames strictly between consecutive
/// keyframes — the stop-and-look motion profile of guided tours and
/// user-driven navigation (total frames: K·hold + (K−1)·move). Hold frames
/// repeat the exact keyframe camera, which is where cross-frame sort reuse
/// pays; move frames carry genuine motion. Throws std::invalid_argument
/// when hold_frames < 1 or move_frames < 0.
FrameSequence tour_frames(const CameraPath& path, int move_frames, int hold_frames);

/// Orbit path around the scene's evaluation viewpoint — the CameraPath form
/// of scene/scene.h's orbit_cameras loop. Poses depend only on the scene's
/// focus and evaluation eye (both RunScale-invariant); intrinsics follow
/// the scene's render resolution.
CameraPath orbit_path(const Scene& scene, float arc_turns = 1.0f, int keyframes = 16);

/// Open orbit for uniform N-frame sampling: arc (N−1)/N with one keyframe
/// per frame, so CameraPath::frames(N) yields N *distinct* poses exactly on
/// the circle at the angular spacing 2π·i/N — what orbit_cameras produced
/// (a closed orbit would duplicate the first pose as the last frame).
CameraPath open_orbit_path(const Scene& scene, int frames);

/// Gentle dolly toward the scene focus with a lateral sweep — the
/// flythrough workload: consecutive frames see slowly-shifting depth
/// orders, the coherence the temporal renderer exploits. Deterministic per
/// scene, RunScale-invariant poses.
CameraPath flythrough_path(const Scene& scene);

}  // namespace gstg
