#include "temporal/temporal_renderer.h"

#include <algorithm>
#include <limits>

#include "common/parallel.h"
#include "common/timer.h"
#include "telemetry/trace.h"

namespace gstg {

namespace {

/// Sizes the per-worker slots for this frame and zeroes the accumulators.
/// The cloud-sized stamp/entry maps are (re)allocated only when the cloud
/// size changes, so steady-state frames allocate nothing.
void prepare_scratch(TemporalScratch& scratch, std::size_t workers, std::size_t cloud_size) {
  if (scratch.workers.size() < workers) scratch.workers.resize(workers);
  for (TemporalScratch::Worker& w : scratch.workers) {
    w.sort.volume = 0.0;
    w.sort.pairs = 0;
    w.stats = {};
    if (w.stamp.size() != cloud_size) {
      w.stamp.assign(cloud_size, 0);
      w.entry_of.resize(cloud_size);
      w.epoch = 0;
    }
  }
}

}  // namespace

TemporalRenderer::TemporalRenderer(const GsTgConfig& config) : config_(config) {
  config_.temporal = temporal_mode_from_env(config.temporal);
  config_.binning = binning_mode_from_env(config.binning);
  config_.pipeline = pipeline_mode_from_env(config.pipeline);
  config_.validate();
  telemetry::ensure_started_from_env();
  if (config_.trace) telemetry::ensure_collecting();
}

void TemporalRenderer::invalidate() {
  cache_.valid = false;
  last_ = {};
  total_ = {};
}

void TemporalRenderer::render(const GaussianCloud& cloud, const Camera& camera,
                              FrameContext& ctx) {
  GSTG_SPAN("frame");
  ctx.times = {};
  ctx.counters = {};
  ctx.quality = {};
  Timer timer;

  {
    // The non-sort stages are exactly the persistent renderer's: same
    // functions, same scratch reuse, same counters.
    GSTG_SPAN("preprocess");
    preprocess_into(cloud, camera, config_.render_config(), ctx.counters, ctx.splats,
                    ctx.preprocess);
  }
  ctx.frame.config = config_;
  ctx.frame.tile_grid = CellGrid::over_image(camera.width(), camera.height(), config_.tile_size);
  ctx.frame.group_grid =
      CellGrid::over_image(camera.width(), camera.height(), config_.group_size);
  {
    GSTG_SPAN("binning");
    bin_splats_into(ctx.splats, ctx.frame.group_grid, config_.group_boundary, config_.threads,
                    ctx.counters, ctx.frame.group_bins, ctx.binning, config_.binning);
  }
  ctx.times.preprocess_ms = timer.lap_ms();

  {
    GSTG_SPAN("bitmask");
    generate_bitmasks_into(ctx.splats, ctx.frame.group_bins, ctx.frame.tile_grid, config_,
                           ctx.counters, ctx.frame.masks);
  }
  ctx.times.bitmask_ms = timer.lap_ms();

  if (config_.pipeline != PipelineMode::kExact) {
    // Sortless bypasses the group-sort cache cleanly: nothing sorts, so
    // there is no order to snapshot, reuse, or audit — the cache is never
    // touched and every TemporalStats field stays zero (frames excepted).
    last_ = {};
    last_.frames = 1;
    total_.merge(last_);
    finish_sortless_stages(config_, camera, ctx, timer);
    return;
  }

  // Group ordering: reuse the cached cross-frame order where provably
  // valid, sort the rest; then snapshot the (now sorted) lists for the next
  // frame.
  last_ = {};
  {
    GSTG_SPAN("temporal_sort");
    temporal_sort(ctx.splats, ctx);
  }
  if (config_.temporal != TemporalMode::kOff) {
    GSTG_SPAN("snapshot_cache");
    snapshot_cache(ctx.frame, ctx.splats, cloud.size());
  }
  last_.frames = 1;
  total_.merge(last_);
  ctx.times.sort_ms = timer.lap_ms();

  {
    GSTG_SPAN("raster");
    ctx.image.resize(camera.width(), camera.height());
    rasterize_grouped(ctx.frame, ctx.splats, ctx.image, config_.threads, ctx.counters,
                      &ctx.raster);
  }
  ctx.times.raster_ms = timer.lap_ms();
}

void TemporalRenderer::temporal_sort(std::span<const ProjectedSplat> splats, FrameContext& ctx) {
  BinnedSplats& bins = ctx.frame.group_bins;
  std::vector<TileMask>& masks = ctx.frame.masks;
  const CellGrid& grid = ctx.frame.group_grid;
  const std::size_t groups = static_cast<std::size_t>(grid.cell_count());
  // Counters were reset at frame start, so this is exactly cloud.size() —
  // the bound on ProjectedSplat::index the stamp/entry maps are sized to.
  const std::size_t cloud_size = ctx.counters.input_gaussians;

  const bool warm = config_.temporal != TemporalMode::kOff && cache_.valid &&
                    cache_.cells_x == grid.cells_x && cache_.cells_y == grid.cells_y &&
                    cache_.cloud_size == cloud_size;

  if (!warm) {
    // Cold frame (or kOff): the plain per-frame group sort, plus the group
    // census so reuse rates have their denominator from frame 0 on.
    sort_groups(bins, masks, splats, config_.threads, ctx.counters, config_.sort_algo,
                &ctx.sort);
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t n = bins.offsets[g + 1] - bins.offsets[g];
      if (n == 0) continue;
      ++last_.groups_total;
      if (n <= 1) {
        ++last_.groups_trivial;
      } else {
        ++last_.groups_resorted;
        last_.pairs_sorted += n;
      }
    }
    return;
  }

  // Same key compaction as sort_groups, so fallback sorts order identically.
  std::uint32_t max_index = 0;
  for (const ProjectedSplat& splat : splats) max_index = std::max(max_index, splat.index);
  const int key_bits = depth_index_key_bits(max_index);
  const int index_bits = key_bits - 32;
  const bool verify = config_.temporal == TemporalMode::kVerify;

  const std::size_t workers = planned_worker_count(groups, config_.threads);
  prepare_scratch(scratch_, workers, cloud_size);

  parallel_for_chunks(0, groups, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    GSTG_SPAN("temporal_cache_walk");
    TemporalScratch::Worker& ws = scratch_.workers[worker];
    for (std::size_t g = lo; g < hi; ++g) {
      const std::uint32_t begin = bins.offsets[g];
      const std::uint32_t end = bins.offsets[g + 1];
      const std::size_t n = end - begin;
      if (n == 0) continue;
      ++ws.stats.groups_total;
      if (n <= 1) {
        ++ws.stats.groups_trivial;
        ws.sort.pairs += n;
        continue;
      }

      // Membership marking: two epochs per examined group (new entries get
      // epoch, stayers are promoted to epoch + 1) keep the cloud-sized maps
      // valid without clearing between groups.
      if (ws.epoch >= std::numeric_limits<std::uint32_t>::max() - 2) {
        std::fill(ws.stamp.begin(), ws.stamp.end(), 0u);
        ws.epoch = 0;
      }
      const std::uint32_t fresh = ++ws.epoch;   // marks entries of this frame
      const std::uint32_t stayer = ++ws.epoch;  // marks entries also in the cache
      for (std::uint32_t e = begin; e < end; ++e) {
        const std::uint32_t ci = splats[bins.splat_ids[e]].index;
        ws.stamp[ci] = fresh;
        ws.entry_of[ci] = e;
      }

      if (ws.stayer_ids.size() < n) {
        ws.stayer_ids.resize(n);
        ws.stayer_masks.resize(n);
        ws.stayer_keys.resize(n);
      }

      // Validity walk along the cached order: splats that left the group
      // drop out; the remaining stayers must be strictly increasing under
      // the new packed keys. Keys are unique per group, so a strictly
      // increasing subsequence is exactly sorted.
      const std::uint32_t cached_begin = cache_.offsets[g];
      const std::uint32_t cached_end = cache_.offsets[g + 1];
      bool order_ok = true;
      std::size_t stayers = 0;
      std::uint64_t prev_key = 0;
      for (std::uint32_t c = cached_begin; c < cached_end; ++c) {
        const std::uint32_t ci = cache_.sorted_cloud_ids[c];
        if (ws.stamp[ci] != fresh) continue;  // left the group (or already seen)
        const std::uint32_t e = ws.entry_of[ci];
        const std::uint32_t id = bins.splat_ids[e];
        const std::uint64_t key = pack_depth_index_key(splats[id].depth, splats[id].index);
        if (stayers != 0 && key <= prev_key) {
          order_ok = false;  // depth inversion under the new view
          break;
        }
        prev_key = key;
        ws.stamp[ci] = stayer;
        ws.stayer_ids[stayers] = id;
        ws.stayer_masks[stayers] = masks[e];
        ws.stayer_keys[stayers] = key;
        ++stayers;
      }

      // Membership churn is only knowable when the walk completed (an
      // order break truncates it, leaving the stayer count meaningless);
      // a group with no stayers at all has nothing to reuse — sorting all
      // its entries "as joiners" would be a full sort in disguise, so it
      // takes the fallback path and honest accounting.
      if (order_ok &&
          (stayers != n || cached_end - cached_begin != n)) {
        ++ws.stats.groups_evicted;
      }
      if (!order_ok || stayers == 0) {
        sort_group_entries(bins.splat_ids.data() + begin, masks.data() + begin, n, splats,
                           config_.sort_algo, key_bits, index_bits, ws.sort);
        ++ws.stats.groups_resorted;
        ws.stats.pairs_sorted += n;
        continue;
      }

      // Gather and sort the joiners (entries not promoted to `stayer`).
      const std::size_t joiners = n - stayers;
      if (ws.joiner_ids.size() < joiners) {
        ws.joiner_ids.resize(joiners);
        ws.joiner_masks.resize(joiners);
      }
      std::size_t j = 0;
      for (std::uint32_t e = begin; e < end && j < joiners; ++e) {
        const std::uint32_t ci = splats[bins.splat_ids[e]].index;
        if (ws.stamp[ci] == stayer) continue;
        ws.joiner_ids[j] = bins.splat_ids[e];
        ws.joiner_masks[j] = masks[e];
        ++j;
      }
      if (verify) {
        // The verify full sort below carries the counter accounting, so the
        // joiner sort goes through the throwaway scratch — kVerify's
        // sort_pairs/volume match a plain per-frame run exactly.
        sort_group_entries(ws.joiner_ids.data(), ws.joiner_masks.data(), joiners, splats,
                           config_.sort_algo, key_bits, index_bits, ws.aux);
      } else {
        sort_group_entries(ws.joiner_ids.data(), ws.joiner_masks.data(), joiners, splats,
                           config_.sort_algo, key_bits, index_bits, ws.sort);
        ws.sort.pairs += stayers;  // sort_pairs counts all entries, sorted or reused
      }

      if (verify && ws.verify_ids.size() < n) {
        ws.verify_ids.resize(n);
        ws.verify_masks.resize(n);
      }
      if (verify) {
        // Audit snapshot of the unsorted entries, taken before the merge
        // overwrites them.
        std::copy(bins.splat_ids.begin() + begin, bins.splat_ids.begin() + end,
                  ws.verify_ids.begin());
        std::copy(masks.begin() + begin, masks.begin() + end, ws.verify_masks.begin());
      }

      // Two-way merge by key into the group's range. Keys are unique, so
      // this is THE sorted order — bit-identical to a full sort. The
      // current joiner's key is packed once per cursor advance, not per
      // output step.
      std::size_t si = 0;
      std::size_t ji = 0;
      std::uint64_t jkey = 0;
      if (joiners != 0) {
        jkey = pack_depth_index_key(splats[ws.joiner_ids[0]].depth,
                                    splats[ws.joiner_ids[0]].index);
      }
      for (std::uint32_t e = begin; e < end; ++e) {
        const bool take_stayer =
            si < stayers && (ji >= joiners || ws.stayer_keys[si] < jkey);
        if (take_stayer) {
          bins.splat_ids[e] = ws.stayer_ids[si];
          masks[e] = ws.stayer_masks[si];
          ++si;
        } else {
          bins.splat_ids[e] = ws.joiner_ids[ji];
          masks[e] = ws.joiner_masks[ji];
          ++ji;
          if (ji < joiners) {
            jkey = pack_depth_index_key(splats[ws.joiner_ids[ji]].depth,
                                        splats[ws.joiner_ids[ji]].index);
          }
        }
      }

      if (verify) {
        sort_group_entries(ws.verify_ids.data(), ws.verify_masks.data(), n, splats,
                           config_.sort_algo, key_bits, index_bits, ws.sort);
        const bool identical = std::equal(ws.verify_ids.begin(), ws.verify_ids.begin() + n,
                                          bins.splat_ids.begin() + begin) &&
                               std::equal(ws.verify_masks.begin(), ws.verify_masks.begin() + n,
                                          masks.begin() + begin);
        if (!identical) {
          ++ws.stats.verify_mismatches;
          // Correctness wins: ship the freshly sorted order.
          std::copy_n(ws.verify_ids.begin(), n, bins.splat_ids.begin() + begin);
          std::copy_n(ws.verify_masks.begin(), n, masks.begin() + begin);
        }
      }

      if (joiners == 0) {
        ++ws.stats.groups_reused;
      } else {
        ++ws.stats.groups_patched;
      }
      ws.stats.pairs_reused += stayers;
      ws.stats.pairs_sorted += joiners;
    }
  }, config_.threads);

  // Deterministic merges, worker order fixed (same contract as sort_groups).
  for (std::size_t w = 0; w < workers; ++w) {
    ctx.counters.sort_comparison_volume += scratch_.workers[w].sort.volume;
    ctx.counters.sort_pairs += scratch_.workers[w].sort.pairs;
    last_.merge(scratch_.workers[w].stats);
  }
}

void TemporalRenderer::snapshot_cache(const GroupedFrame& frame,
                                      std::span<const ProjectedSplat> splats,
                                      std::size_t cloud_size) {
  const BinnedSplats& bins = frame.group_bins;
  cache_.offsets = bins.offsets;
  cache_.sorted_cloud_ids.resize(bins.splat_ids.size());
  parallel_for_chunks(0, bins.splat_ids.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t e = lo; e < hi; ++e) {
      cache_.sorted_cloud_ids[e] = splats[bins.splat_ids[e]].index;
    }
  }, config_.threads);
  cache_.cells_x = frame.group_grid.cells_x;
  cache_.cells_y = frame.group_grid.cells_y;
  cache_.cloud_size = cloud_size;
  cache_.valid = true;
}

TemporalSequenceResult render_sequence(const GaussianCloud& cloud,
                                       std::span<const Camera> cameras,
                                       const GsTgConfig& config, bool keep_images) {
  TemporalRenderer renderer(config);
  const std::size_t n = cameras.size();

  TemporalSequenceResult result;
  if (keep_images) result.images.reserve(n);
  result.times.resize(n);
  result.counters.resize(n);
  result.frame_stats.resize(n);

  Timer timer;
  FrameContext ctx;
  for (std::size_t f = 0; f < n; ++f) {
    renderer.render(cloud, cameras[f], ctx);
    if (keep_images) result.images.push_back(ctx.image);
    result.times[f] = ctx.times;
    result.counters[f] = ctx.counters;
    result.frame_stats[f] = renderer.last_frame();
    result.total_counters.merge(ctx.counters);
  }
  result.wall_ms = timer.lap_ms();
  result.total_stats = renderer.total();
  return result;
}

TemporalSequenceResult render_sequence(const GaussianCloud& cloud, const FrameSequence& sequence,
                                       const GsTgConfig& config, bool keep_images) {
  return render_sequence(cloud, sequence.views(), config, keep_images);
}

}  // namespace gstg
