#include "temporal/camera_path.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace gstg {

namespace {

constexpr float kPi = 3.14159265358979323846f;

void validate_intrinsics(const CameraIntrinsics& intrinsics) {
  if (intrinsics.width <= 0 || intrinsics.height <= 0) {
    throw std::invalid_argument("CameraPath: non-positive image size");
  }
  if (!(intrinsics.fov_x > 0.0f) || intrinsics.fov_x >= 3.14159f) {
    throw std::invalid_argument("CameraPath: field of view out of range");
  }
}

/// Intrinsics of an existing camera (fov recovered from fx).
CameraIntrinsics intrinsics_of(const Camera& camera) {
  return {camera.width(), camera.height(), 2.0f * std::atan(camera.tan_half_fov_x())};
}

}  // namespace

CameraKeyframe keyframe_look_at(Vec3 eye, Vec3 target, Vec3 up_hint) {
  const Mat3 r = look_at(eye, target, up_hint).rotation_block();
  // from_basis expects the matrix columns; rotation_matrix(q) then
  // reproduces r, so keyframe_camera inverts this conversion exactly up to
  // quaternion round-off.
  return {eye, from_basis({r.m[0][0], r.m[1][0], r.m[2][0]}, {r.m[0][1], r.m[1][1], r.m[2][1]},
                          {r.m[0][2], r.m[1][2], r.m[2][2]})};
}

Camera keyframe_camera(const CameraKeyframe& key, const CameraIntrinsics& intrinsics) {
  const Mat3 r = rotation_matrix(key.orientation);
  Mat4 m = Mat4::identity();
  for (int row = 0; row < 3; ++row) {
    const Vec3 axis{r.m[row][0], r.m[row][1], r.m[row][2]};
    m.m[row] = {axis.x, axis.y, axis.z, -dot(axis, key.eye)};
  }
  return Camera::from_fov(intrinsics.width, intrinsics.height, intrinsics.fov_x, m);
}

CameraPath::CameraPath(std::string name, CameraIntrinsics intrinsics,
                       std::vector<CameraKeyframe> keys)
    : name_(std::move(name)), intrinsics_(intrinsics), keys_(std::move(keys)) {
  validate_intrinsics(intrinsics_);
  if (keys_.empty()) {
    throw std::invalid_argument("CameraPath: at least one keyframe required");
  }
}

CameraKeyframe CameraPath::pose(float t) const {
  if (keys_.size() == 1) return keys_.front();
  t = std::clamp(t, 0.0f, 1.0f);
  const float s = t * static_cast<float>(keys_.size() - 1);
  const std::size_t i = static_cast<std::size_t>(s);
  if (i >= keys_.size() - 1) return keys_.back();  // t == 1: exact endpoint
  const float u = s - static_cast<float>(i);
  if (u == 0.0f) return keys_[i];  // on a keyframe: exact pose
  const CameraKeyframe& a = keys_[i];
  const CameraKeyframe& b = keys_[i + 1];
  return {a.eye + (b.eye - a.eye) * u, slerp(a.orientation, b.orientation, u)};
}

Camera CameraPath::sample(float t) const { return keyframe_camera(pose(t), intrinsics_); }

FrameSequence CameraPath::frames(int count) const {
  if (count <= 0) {
    throw std::invalid_argument("CameraPath::frames: count must be positive");
  }
  FrameSequence sequence;
  sequence.name = name_;
  sequence.cameras.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const float t =
        count == 1 ? 0.0f : static_cast<float>(i) / static_cast<float>(count - 1);
    sequence.cameras.push_back(sample(t));
  }
  return sequence;
}

FrameSequence tour_frames(const CameraPath& path, int move_frames, int hold_frames) {
  if (hold_frames < 1 || move_frames < 0) {
    throw std::invalid_argument("tour_frames: hold_frames >= 1 and move_frames >= 0 required");
  }
  const std::size_t legs = path.keyframe_count() - 1;
  FrameSequence sequence;
  sequence.name = path.name() + "-tour";
  sequence.cameras.reserve(path.keyframe_count() * static_cast<std::size_t>(hold_frames) +
                           legs * static_cast<std::size_t>(move_frames));
  for (std::size_t k = 0; k < path.keyframe_count(); ++k) {
    const Camera at_key = keyframe_camera(path.keyframe(k), path.intrinsics());
    for (int h = 0; h < hold_frames; ++h) sequence.cameras.push_back(at_key);
    if (k + 1 < path.keyframe_count()) {
      const float t0 = legs == 0 ? 0.0f : static_cast<float>(k) / static_cast<float>(legs);
      const float leg = legs == 0 ? 0.0f : 1.0f / static_cast<float>(legs);
      for (int m = 1; m <= move_frames; ++m) {
        const float u = static_cast<float>(m) / static_cast<float>(move_frames + 1);
        sequence.cameras.push_back(path.sample(t0 + u * leg));
      }
    }
  }
  return sequence;
}

CameraPath CameraPath::orbit(std::string name, CameraIntrinsics intrinsics, Vec3 focus,
                             Vec3 eye0, float arc_turns, int keyframes) {
  if (keyframes < 2) {
    throw std::invalid_argument("CameraPath::orbit: at least two keyframes required");
  }
  const Vec3 offset = eye0 - focus;
  const float radius = std::sqrt(offset.x * offset.x + offset.z * offset.z);
  const float base_angle = std::atan2(offset.z, offset.x);
  std::vector<CameraKeyframe> keys;
  keys.reserve(static_cast<std::size_t>(keyframes));
  for (int k = 0; k < keyframes; ++k) {
    const float angle = base_angle + 2.0f * kPi * arc_turns * static_cast<float>(k) /
                                         static_cast<float>(keyframes - 1);
    const Vec3 eye{focus.x + radius * std::cos(angle), eye0.y,
                   focus.z + radius * std::sin(angle)};
    keys.push_back(keyframe_look_at(eye, focus));
  }
  return CameraPath(std::move(name), intrinsics, std::move(keys));
}

CameraPath orbit_path(const Scene& scene, float arc_turns, int keyframes) {
  return CameraPath::orbit(scene.info.name + "-orbit", intrinsics_of(scene.camera), scene.focus,
                           scene.camera.position(), arc_turns, keyframes);
}

CameraPath open_orbit_path(const Scene& scene, int frames) {
  const int keyframes = std::max(frames, 2);
  return orbit_path(scene, 1.0f - 1.0f / static_cast<float>(keyframes), keyframes);
}

CameraPath flythrough_path(const Scene& scene) {
  const Vec3 focus = scene.focus;
  const Vec3 eye0 = scene.camera.position();
  const Vec3 offset = eye0 - focus;
  const float reach = length(offset);

  // Dolly toward the focus while yawing around it and gently bobbing; all
  // parameters are relative to the evaluation pose, so keyframes are
  // identical at every RunScale.
  const auto swing = [&](float scale, float yaw, float lift) {
    const float c = std::cos(yaw);
    const float s = std::sin(yaw);
    const Vec3 rotated{offset.x * c - offset.z * s, offset.y, offset.x * s + offset.z * c};
    return focus + rotated * scale + Vec3{0.0f, lift * reach, 0.0f};
  };
  std::vector<CameraKeyframe> keys = {
      keyframe_look_at(swing(1.00f, 0.00f, 0.000f), focus),
      keyframe_look_at(swing(0.86f, 0.10f, 0.020f), focus),
      keyframe_look_at(swing(0.74f, 0.19f, 0.034f), focus),
      keyframe_look_at(swing(0.63f, 0.27f, 0.030f), focus),
      keyframe_look_at(swing(0.55f, 0.33f, 0.015f), focus),
  };
  return CameraPath(scene.info.name + "-flythrough", intrinsics_of(scene.camera),
                    std::move(keys));
}

}  // namespace gstg
