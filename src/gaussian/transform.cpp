#include "gaussian/transform.h"

#include <stdexcept>

namespace gstg {

namespace {

/// Hamilton product r = a * b.
Quat multiply(const Quat& a, const Quat& b) {
  return {a.w * b.w - a.x * b.x - a.y * b.y - a.z * b.z,
          a.w * b.x + a.x * b.w + a.y * b.z - a.z * b.y,
          a.w * b.y - a.x * b.z + a.y * b.w + a.z * b.x,
          a.w * b.z + a.x * b.y - a.y * b.x + a.z * b.w};
}

}  // namespace

void apply_rigid_transform(GaussianCloud& cloud, const Quat& rotation, Vec3 translation) {
  const Quat r = normalized(rotation);
  const Mat3 rm = rotation_matrix(r);
  for (Vec3& p : cloud.positions()) {
    p = rm * p + translation;
  }
  for (Quat& q : cloud.rotations()) {
    q = normalized(multiply(r, q));
  }
}

void apply_uniform_scale(GaussianCloud& cloud, float factor) {
  if (!(factor > 0.0f)) {
    throw std::invalid_argument("apply_uniform_scale: factor must be positive");
  }
  for (Vec3& p : cloud.positions()) p = p * factor;
  for (Vec3& s : cloud.scales()) s = s * factor;
}

void concatenate(GaussianCloud& cloud, const GaussianCloud& extra) {
  if (cloud.sh_degree() != extra.sh_degree()) {
    throw std::invalid_argument("concatenate: SH degree mismatch");
  }
  cloud.reserve(cloud.size() + extra.size());
  for (std::size_t i = 0; i < extra.size(); ++i) {
    cloud.add(extra.position(i), extra.scale(i), extra.rotation(i), extra.opacity(i),
              extra.sh(i));
  }
}

std::size_t prune_by_opacity(GaussianCloud& cloud, float threshold) {
  const std::size_t n = cloud.size();
  const std::size_t sh_stride = cloud.sh_floats_per_gaussian();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cloud.opacity(i) < threshold) continue;
    if (kept != i) {
      cloud.positions()[kept] = cloud.positions()[i];
      cloud.scales()[kept] = cloud.scales()[i];
      cloud.rotations()[kept] = cloud.rotations()[i];
      cloud.opacities()[kept] = cloud.opacities()[i];
      for (std::size_t k = 0; k < sh_stride; ++k) {
        cloud.sh_data()[kept * sh_stride + k] = cloud.sh_data()[i * sh_stride + k];
      }
    }
    ++kept;
  }
  cloud.positions().resize(kept);
  cloud.scales().resize(kept);
  cloud.rotations().resize(kept);
  cloud.opacities().resize(kept);
  cloud.sh_data().resize(kept * sh_stride);
  return n - kept;
}

}  // namespace gstg
