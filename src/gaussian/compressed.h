// Compressed resident representation of a GaussianCloud: every parameter
// stored as IEEE binary16 (common/half.h), structure-of-arrays.
//
// At full scale the resident Gaussian state — not the per-frame math — is
// what blows up memory footprint and bandwidth (the storage framing of the
// 129FPS Full-HD accelerator paper, PAPERS.md). This form halves the
// resident bytes and pairs with decode-on-touch in the preprocess stage
// (render/preprocess.h): fixed-size blocks are decoded into per-worker
// scratch as the projection kernels stream over them, so the float32 form
// of the whole cloud never exists at steady state.
//
// Exactness contract: decode is the exact fp16 -> fp32 widening, so
//   decode(encode(cloud)) == quantize_cloud_to_fp16(cloud)   (value-wise)
// and rendering the streamed decode is bit-identical to rendering the
// up-front decode — ResidencyMode::kVerify asserts exactly that.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/half.h"
#include "gaussian/cloud.h"

namespace gstg {

/// Typed error for a compressed-residency audit failure: a streamed-decode
/// render that is not bit-identical to the up-front-decode render under
/// ResidencyMode::kVerify. Derives from std::runtime_error so generic catch
/// sites keep working while the service can map it to a typed response.
class ResidencyError : public std::runtime_error {
 public:
  explicit ResidencyError(const std::string& message)
      : std::runtime_error("residency: " + message) {}
};

/// fp16 structure-of-arrays resident form of a GaussianCloud. Encoding
/// rounds every parameter through binary16 (round-to-nearest-even; NaN/Inf
/// and subnormals follow the Half conversion, which is exhaustively
/// tested); decoding widens exactly. Parameter layout matches the
/// accelerator DRAM model: position(3) + scale(3) + rotation(4) +
/// opacity(1) + SH.
class CompressedCloud {
 public:
  CompressedCloud() = default;

  /// Rounds every parameter of `cloud` through fp16. The source cloud is
  /// not modified (unlike quantize_cloud_to_fp16).
  static CompressedCloud encode(const GaussianCloud& cloud);

  [[nodiscard]] std::size_t size() const { return opacity_.size(); }
  [[nodiscard]] bool empty() const { return opacity_.empty(); }
  [[nodiscard]] int sh_degree() const { return sh_degree_; }
  [[nodiscard]] std::size_t sh_floats_per_gaussian() const {
    return 3 * sh_coeff_count(sh_degree_);
  }

  /// Decodes Gaussians [lo, hi) into `out` at local indices [0, hi - lo).
  /// `out` is resized (its vector capacities persist across calls, so a
  /// warmed-up scratch cloud decodes without allocating) and rebuilt with
  /// this cloud's SH degree if it differs. Requires lo <= hi <= size().
  void decode_range(std::size_t lo, std::size_t hi, GaussianCloud& out) const;

  /// Decodes the whole cloud (the up-front form kFloat32/kVerify render).
  [[nodiscard]] GaussianCloud decode() const;

  /// Resident payload bytes of this form: 2 bytes per stored scalar.
  [[nodiscard]] std::size_t resident_bytes() const {
    return size() * (11 + sh_floats_per_gaussian()) * sizeof(std::uint16_t);
  }
  /// Resident payload bytes the float32 SoA needs for the same cloud.
  [[nodiscard]] std::size_t float32_bytes() const {
    return size() * (11 + sh_floats_per_gaussian()) * sizeof(float);
  }

  /// Raw component access (tests; the decode loops stay inside the class).
  [[nodiscard]] Half position_x(std::size_t i) const { return px_[i]; }
  [[nodiscard]] Half opacity(std::size_t i) const { return opacity_[i]; }

 private:
  int sh_degree_ = 0;
  std::vector<Half> px_, py_, pz_;
  std::vector<Half> sx_, sy_, sz_;
  std::vector<Half> qw_, qx_, qy_, qz_;
  std::vector<Half> opacity_;
  std::vector<Half> sh_;  // flattened [i][channel][coeff], as in GaussianCloud
};

}  // namespace gstg
