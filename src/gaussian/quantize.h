// fp32 -> fp16 model quantisation pass.
//
// Section VI-A: "to improve the throughput and area efficiency of GS-TG, the
// models trained in 32-bit floating point are converted to 16-bit floating
// point." This pass rounds every Gaussian parameter through IEEE binary16
// so the simulator and renderer see exactly the values an fp16 datapath
// would.
#pragma once

#include "gaussian/cloud.h"

namespace gstg {

/// Statistics of a quantisation pass (max absolute rounding error per
/// parameter group), useful for the fp16-fidelity extension experiment.
struct QuantizeReport {
  float max_position_error = 0.0f;
  float max_scale_rel_error = 0.0f;
  float max_opacity_error = 0.0f;
  float max_sh_error = 0.0f;
};

/// Rounds all parameters of `cloud` through fp16 in place and reports the
/// introduced error.
QuantizeReport quantize_cloud_to_fp16(GaussianCloud& cloud);

}  // namespace gstg
