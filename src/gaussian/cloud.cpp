#include "gaussian/cloud.h"

#include <stdexcept>

namespace gstg {

GaussianCloud::GaussianCloud(int sh_degree) : sh_degree_(sh_degree) {
  if (sh_degree < 0 || sh_degree > kMaxShDegree) {
    throw std::invalid_argument("GaussianCloud: SH degree out of range");
  }
}

void GaussianCloud::reserve(std::size_t n) {
  positions_.reserve(n);
  scales_.reserve(n);
  rotations_.reserve(n);
  opacities_.reserve(n);
  sh_.reserve(n * sh_floats_per_gaussian());
}

void GaussianCloud::add(Vec3 position, Vec3 scale, Quat rotation, float opacity,
                        std::span<const float> sh) {
  if (sh.size() != sh_floats_per_gaussian()) {
    throw std::invalid_argument("GaussianCloud::add: SH size mismatch");
  }
  if (!(scale.x > 0.0f && scale.y > 0.0f && scale.z > 0.0f)) {
    throw std::invalid_argument("GaussianCloud::add: scale must be positive");
  }
  if (!(opacity >= 0.0f && opacity <= 1.0f)) {
    throw std::invalid_argument("GaussianCloud::add: opacity must be in [0,1]");
  }
  positions_.push_back(position);
  scales_.push_back(scale);
  rotations_.push_back(normalized(rotation));
  opacities_.push_back(opacity);
  sh_.insert(sh_.end(), sh.begin(), sh.end());
}

void GaussianCloud::add_solid(Vec3 position, Vec3 scale, Quat rotation, float opacity, Vec3 rgb) {
  std::vector<float> sh(sh_floats_per_gaussian(), 0.0f);
  const std::size_t n = sh_coeff_count(sh_degree_);
  // Invert colour = 0.5 + c0 * Y0: c0 = (rgb - 0.5) / Y0.
  constexpr float kY0 = 0.28209479177387814f;
  sh[0 * n] = (rgb.x - 0.5f) / kY0;
  sh[1 * n] = (rgb.y - 0.5f) / kY0;
  sh[2 * n] = (rgb.z - 0.5f) / kY0;
  add(position, scale, rotation, opacity, sh);
}

Mat3 GaussianCloud::covariance3d(std::size_t i) const {
  const Mat3 r = rotation_matrix(rotations_[i]);
  const Vec3 s = scales_[i];
  // M = R * diag(s); cov = M * M^T.
  Mat3 m = r;
  for (int row = 0; row < 3; ++row) {
    m.m[row][0] *= s.x;
    m.m[row][1] *= s.y;
    m.m[row][2] *= s.z;
  }
  return m * m.transposed();
}

}  // namespace gstg
