#include "gaussian/compressed.h"

namespace gstg {

CompressedCloud CompressedCloud::encode(const GaussianCloud& cloud) {
  const std::size_t n = cloud.size();
  CompressedCloud out;
  out.sh_degree_ = cloud.sh_degree();
  out.px_.reserve(n);
  out.py_.reserve(n);
  out.pz_.reserve(n);
  out.sx_.reserve(n);
  out.sy_.reserve(n);
  out.sz_.reserve(n);
  out.qw_.reserve(n);
  out.qx_.reserve(n);
  out.qy_.reserve(n);
  out.qz_.reserve(n);
  out.opacity_.reserve(n);
  out.sh_.reserve(n * cloud.sh_floats_per_gaussian());
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 p = cloud.position(i);
    out.px_.emplace_back(p.x);
    out.py_.emplace_back(p.y);
    out.pz_.emplace_back(p.z);
    const Vec3 s = cloud.scale(i);
    out.sx_.emplace_back(s.x);
    out.sy_.emplace_back(s.y);
    out.sz_.emplace_back(s.z);
    const Quat q = cloud.rotation(i);
    out.qw_.emplace_back(q.w);
    out.qx_.emplace_back(q.x);
    out.qy_.emplace_back(q.y);
    out.qz_.emplace_back(q.z);
    out.opacity_.emplace_back(cloud.opacity(i));
  }
  for (const float c : cloud.sh_data()) out.sh_.emplace_back(c);
  return out;
}

void CompressedCloud::decode_range(std::size_t lo, std::size_t hi, GaussianCloud& out) const {
  if (lo > hi || hi > size()) {
    throw std::out_of_range("CompressedCloud::decode_range: [" + std::to_string(lo) + ", " +
                            std::to_string(hi) + ") outside [0, " + std::to_string(size()) + ")");
  }
  if (out.sh_degree() != sh_degree_) out = GaussianCloud(sh_degree_);
  const std::size_t n = hi - lo;
  const std::size_t sh_stride = sh_floats_per_gaussian();

  // Written through the mutable SoA accessors (like the quantisation pass):
  // resize keeps capacity, so a warmed-up scratch cloud never allocates.
  std::vector<Vec3>& positions = out.positions();
  std::vector<Vec3>& scales = out.scales();
  std::vector<Quat>& rotations = out.rotations();
  std::vector<float>& opacities = out.opacities();
  std::vector<float>& sh = out.sh_data();
  positions.resize(n);
  scales.resize(n);
  rotations.resize(n);
  opacities.resize(n);
  sh.resize(n * sh_stride);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = lo + i;
    positions[i] = {px_[src].to_float(), py_[src].to_float(), pz_[src].to_float()};
    scales[i] = {sx_[src].to_float(), sy_[src].to_float(), sz_[src].to_float()};
    rotations[i] = {qw_[src].to_float(), qx_[src].to_float(), qy_[src].to_float(),
                    qz_[src].to_float()};
    opacities[i] = opacity_[src].to_float();
  }
  const Half* sh_src = sh_.data() + lo * sh_stride;
  for (std::size_t k = 0; k < n * sh_stride; ++k) sh[k] = sh_src[k].to_float();
}

GaussianCloud CompressedCloud::decode() const {
  GaussianCloud out(sh_degree_);
  decode_range(0, size(), out);
  return out;
}

}  // namespace gstg
