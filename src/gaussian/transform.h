// Cloud-level editing operations a downstream user needs to compose and
// prepare scenes: rigid transforms, uniform scaling, concatenation and
// opacity pruning (the training-free compression baseline the paper's
// related-work section contrasts against).
#pragma once

#include "gaussian/cloud.h"
#include "geometry/mat.h"
#include "geometry/quaternion.h"

namespace gstg {

/// Applies a rigid transform (rotation then translation) to every Gaussian:
/// positions move, orientations compose, scales are untouched. SH
/// coefficients above degree 0 encode view dependence in world axes; they
/// are left as-is (exact for degree 0, approximate otherwise — documented
/// library behaviour matching common 3D-GS editors).
void apply_rigid_transform(GaussianCloud& cloud, const Quat& rotation, Vec3 translation);

/// Uniformly scales the scene about the origin: positions and scales
/// multiply by `factor` (> 0).
void apply_uniform_scale(GaussianCloud& cloud, float factor);

/// Appends all Gaussians of `extra` to `cloud`. Throws std::invalid_argument
/// on SH degree mismatch.
void concatenate(GaussianCloud& cloud, const GaussianCloud& extra);

/// Removes Gaussians with opacity below `threshold`; returns the number
/// removed. This is the pruning baseline (LightGaussian-style) — lossy,
/// unlike GS-TG.
std::size_t prune_by_opacity(GaussianCloud& cloud, float threshold);

}  // namespace gstg
