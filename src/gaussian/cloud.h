// Structure-of-arrays Gaussian cloud: the scene representation consumed by
// every renderer and by the accelerator simulator.
//
// Values are stored *activated* (scales after exp, opacity after sigmoid),
// i.e. ready for rendering; the PLY reader/writer applies the activations at
// the file boundary, matching how the 3D-GS reference code treats checkpoint
// parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/mat.h"
#include "geometry/quaternion.h"
#include "geometry/vec.h"
#include "gaussian/sh.h"

namespace gstg {

class GaussianCloud {
 public:
  explicit GaussianCloud(int sh_degree = kMaxShDegree);

  [[nodiscard]] std::size_t size() const { return positions_.size(); }
  [[nodiscard]] bool empty() const { return positions_.empty(); }
  [[nodiscard]] int sh_degree() const { return sh_degree_; }
  /// Floats of SH data per Gaussian: 3 channels x (degree+1)^2.
  [[nodiscard]] std::size_t sh_floats_per_gaussian() const {
    return 3 * sh_coeff_count(sh_degree_);
  }

  void reserve(std::size_t n);

  /// Appends one Gaussian. `sh` must contain sh_floats_per_gaussian()
  /// values laid out channel-major ([r coeffs..., g coeffs..., b coeffs...]).
  /// Throws std::invalid_argument on size mismatch or non-positive scale.
  void add(Vec3 position, Vec3 scale, Quat rotation, float opacity, std::span<const float> sh);

  /// Convenience for tests/examples: constant colour (DC term only derived
  /// from an RGB value in [0,1]; higher-order coefficients zero).
  void add_solid(Vec3 position, Vec3 scale, Quat rotation, float opacity, Vec3 rgb);

  [[nodiscard]] Vec3 position(std::size_t i) const { return positions_[i]; }
  [[nodiscard]] Vec3 scale(std::size_t i) const { return scales_[i]; }
  [[nodiscard]] Quat rotation(std::size_t i) const { return rotations_[i]; }
  [[nodiscard]] float opacity(std::size_t i) const { return opacities_[i]; }
  [[nodiscard]] std::span<const float> sh(std::size_t i) const {
    return {sh_.data() + i * sh_floats_per_gaussian(), sh_floats_per_gaussian()};
  }

  /// World-space 3D covariance R S S^T R^T of Gaussian i.
  [[nodiscard]] Mat3 covariance3d(std::size_t i) const;

  /// Mutable access used by the quantisation pass.
  std::vector<Vec3>& positions() { return positions_; }
  std::vector<Vec3>& scales() { return scales_; }
  std::vector<Quat>& rotations() { return rotations_; }
  std::vector<float>& opacities() { return opacities_; }
  std::vector<float>& sh_data() { return sh_; }
  [[nodiscard]] const std::vector<Vec3>& positions() const { return positions_; }
  [[nodiscard]] const std::vector<Vec3>& scales() const { return scales_; }
  [[nodiscard]] const std::vector<Quat>& rotations() const { return rotations_; }
  [[nodiscard]] const std::vector<float>& opacities() const { return opacities_; }
  [[nodiscard]] const std::vector<float>& sh_data() const { return sh_; }

  /// Bytes a Gaussian's parameters occupy in the accelerator's DRAM layout
  /// at the given precision (4 = fp32, 2 = fp16): position(3) + scale(3) +
  /// rotation(4) + opacity(1) + SH. Used by the DRAM traffic model.
  [[nodiscard]] std::size_t bytes_per_gaussian(std::size_t bytes_per_scalar) const {
    return (3 + 3 + 4 + 1 + sh_floats_per_gaussian()) * bytes_per_scalar;
  }

 private:
  int sh_degree_;
  std::vector<Vec3> positions_;
  std::vector<Vec3> scales_;
  std::vector<Quat> rotations_;
  std::vector<float> opacities_;
  std::vector<float> sh_;  // flattened [i][channel][coeff]
};

}  // namespace gstg
