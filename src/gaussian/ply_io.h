// Reader/writer for the 3D-GS checkpoint PLY layout (binary little-endian,
// one vertex element with properties x,y,z,nx,ny,nz,f_dc_*,f_rest_*,opacity,
// scale_*,rot_*). This lets users load real pretrained scenes in place of
// the synthetic recipes.
//
// Activations applied on load (inverted on save), as in the reference code:
//   scale   = exp(scale_raw)
//   opacity = sigmoid(opacity_raw)
//   rotation normalised
// SH layout note: the checkpoint stores f_rest interleaved coefficient-major
// (all of coeff 1's RGB, then coeff 2's RGB, ...); GaussianCloud stores
// channel-major. The reader converts.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "gaussian/cloud.h"

namespace gstg {

/// Typed error for every PLY parse/read/write failure: malformed or garbled
/// headers, unsupported formats, truncated payloads, and size overflows.
/// Derives from std::runtime_error so existing catch sites keep working,
/// while service-layer callers can map PLY failures to a typed client error
/// instead of a generic internal one.
class PlyError : public std::runtime_error {
 public:
  explicit PlyError(const std::string& message) : std::runtime_error("PLY: " + message) {}
};

/// Parses a 3D-GS PLY from a stream. Throws PlyError on malformed headers
/// (including garbled element/property/format lines — a count that fails to
/// parse is an error, never an empty cloud), unsupported formats, truncated
/// vertex data (the payload must deliver exactly vertex_count * stride
/// floats), or a vertex_count * stride size that overflows.
GaussianCloud read_gaussian_ply(std::istream& in);
GaussianCloud read_gaussian_ply_file(const std::string& path);

/// Writes the cloud in the same layout (inverse activations applied).
void write_gaussian_ply(std::ostream& out, const GaussianCloud& cloud);
void write_gaussian_ply_file(const std::string& path, const GaussianCloud& cloud);

}  // namespace gstg
