// Reader/writer for the 3D-GS checkpoint PLY layout (binary little-endian,
// one vertex element with properties x,y,z,nx,ny,nz,f_dc_*,f_rest_*,opacity,
// scale_*,rot_*). This lets users load real pretrained scenes in place of
// the synthetic recipes.
//
// Activations applied on load (inverted on save), as in the reference code:
//   scale   = exp(scale_raw)
//   opacity = sigmoid(opacity_raw)
//   rotation normalised
// SH layout note: the checkpoint stores f_rest interleaved coefficient-major
// (all of coeff 1's RGB, then coeff 2's RGB, ...); GaussianCloud stores
// channel-major. The reader converts.
#pragma once

#include <iosfwd>
#include <string>

#include "gaussian/cloud.h"

namespace gstg {

/// Parses a 3D-GS PLY from a stream. Throws std::runtime_error on malformed
/// headers, unsupported formats, or truncated data.
GaussianCloud read_gaussian_ply(std::istream& in);
GaussianCloud read_gaussian_ply_file(const std::string& path);

/// Writes the cloud in the same layout (inverse activations applied).
void write_gaussian_ply(std::ostream& out, const GaussianCloud& cloud);
void write_gaussian_ply_file(const std::string& path, const GaussianCloud& cloud);

}  // namespace gstg
