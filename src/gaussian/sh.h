// Real spherical harmonics evaluation, degrees 0..3, matching the 3D-GS
// reference implementation: colour = 0.5 + sum_l sum_m c_{lm} * Y_{lm}(dir),
// clamped to be non-negative.
#pragma once

#include <cstddef>
#include <span>

#include "geometry/vec.h"

namespace gstg {

/// Number of SH basis functions for a given degree: (degree+1)^2.
constexpr std::size_t sh_coeff_count(int degree) {
  return static_cast<std::size_t>((degree + 1) * (degree + 1));
}

inline constexpr int kMaxShDegree = 3;
inline constexpr std::size_t kMaxShCoeffs = 16;  // (3+1)^2

/// Evaluates the SH basis functions Y_0..Y_{(deg+1)^2-1} at unit direction
/// `dir` into `out` (size must be >= sh_coeff_count(degree)).
void eval_sh_basis(int degree, Vec3 dir, std::span<float> out);

/// Evaluates an RGB colour from per-channel coefficient arrays laid out as
/// coeffs[channel * n + i] (n = sh_coeff_count(degree)). `dir` must be a unit
/// vector (the viewing direction from camera to splat). Result is offset by
/// +0.5 and clamped at zero, as in the reference implementation.
Vec3 eval_sh_color(int degree, std::span<const float> coeffs, Vec3 dir);

}  // namespace gstg
