#include "gaussian/sh.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gstg {

namespace {

// Hard-coded real SH constants, identical to the 3D-GS reference renderer.
constexpr float kSh0 = 0.28209479177387814f;
constexpr float kSh1 = 0.4886025119029199f;
constexpr float kSh2[] = {1.0925484305920792f, -1.0925484305920792f, 0.31539156525252005f,
                          -1.0925484305920792f, 0.5462742152960396f};
constexpr float kSh3[] = {-0.5900435899266435f, 2.890611442640554f,  -0.4570457994644658f,
                          0.3731763325901154f,  -0.4570457994644658f, 1.445305721320277f,
                          -0.5900435899266435f};

}  // namespace

void eval_sh_basis(int degree, Vec3 dir, std::span<float> out) {
  if (degree < 0 || degree > kMaxShDegree) {
    throw std::invalid_argument("eval_sh_basis: degree out of range");
  }
  if (out.size() < sh_coeff_count(degree)) {
    throw std::invalid_argument("eval_sh_basis: output span too small");
  }
  const float x = dir.x, y = dir.y, z = dir.z;

  out[0] = kSh0;
  if (degree < 1) return;

  out[1] = -kSh1 * y;
  out[2] = kSh1 * z;
  out[3] = -kSh1 * x;
  if (degree < 2) return;

  const float xx = x * x, yy = y * y, zz = z * z;
  const float xy = x * y, yz = y * z, xz = x * z;
  out[4] = kSh2[0] * xy;
  out[5] = kSh2[1] * yz;
  out[6] = kSh2[2] * (2.0f * zz - xx - yy);
  out[7] = kSh2[3] * xz;
  out[8] = kSh2[4] * (xx - yy);
  if (degree < 3) return;

  out[9] = kSh3[0] * y * (3.0f * xx - yy);
  out[10] = kSh3[1] * xy * z;
  out[11] = kSh3[2] * y * (4.0f * zz - xx - yy);
  out[12] = kSh3[3] * z * (2.0f * zz - 3.0f * xx - 3.0f * yy);
  out[13] = kSh3[4] * x * (4.0f * zz - xx - yy);
  out[14] = kSh3[5] * z * (xx - yy);
  out[15] = kSh3[6] * x * (xx - 3.0f * yy);
}

Vec3 eval_sh_color(int degree, std::span<const float> coeffs, Vec3 dir) {
  const std::size_t n = sh_coeff_count(degree);
  if (coeffs.size() < 3 * n) {
    throw std::invalid_argument("eval_sh_color: coefficient span too small");
  }
  float basis[kMaxShCoeffs];
  eval_sh_basis(degree, dir, std::span<float>(basis, kMaxShCoeffs));

  Vec3 rgb{0.0f, 0.0f, 0.0f};
  for (std::size_t i = 0; i < n; ++i) {
    rgb.x += coeffs[0 * n + i] * basis[i];
    rgb.y += coeffs[1 * n + i] * basis[i];
    rgb.z += coeffs[2 * n + i] * basis[i];
  }
  rgb = rgb + Vec3{0.5f, 0.5f, 0.5f};
  return {std::max(0.0f, rgb.x), std::max(0.0f, rgb.y), std::max(0.0f, rgb.z)};
}

}  // namespace gstg
