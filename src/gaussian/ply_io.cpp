#include "gaussian/ply_io.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gstg {

namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float logit(float p) {
  const float clamped = std::clamp(p, 1e-7f, 1.0f - 1e-7f);
  return std::log(clamped / (1.0f - clamped));
}

struct PlyHeader {
  std::size_t vertex_count = 0;
  std::vector<std::string> properties;  // in file order, all float32
};

PlyHeader parse_header(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "ply") {
    throw PlyError("missing magic");
  }
  PlyHeader header;
  bool in_vertex_element = false;
  bool format_ok = false;
  while (std::getline(in, line)) {
    // Tolerate trailing carriage returns from files written on Windows.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream ss(line);
    std::string word;
    ss >> word;
    if (word == "format") {
      std::string fmt;
      if (!(ss >> fmt)) {
        throw PlyError("garbled format line '" + line + "'");
      }
      if (fmt != "binary_little_endian") {
        throw PlyError("only binary_little_endian is supported");
      }
      format_ok = true;
    } else if (word == "element") {
      // Extraction must succeed for both tokens and consume the whole line:
      // a garbled count ("element vertex abc", a missing count, a count
      // that overflows std::size_t) would otherwise leave count == 0 and
      // silently parse the file as an empty cloud, and a partially-parsed
      // one ("element vertex 8x12", "element vertex 8.5") would silently
      // truncate to the leading digits.
      std::string name, trailing;
      std::size_t count = 0;
      if (!(ss >> name >> count) || (ss >> trailing)) {
        throw PlyError("garbled element line '" + line + "'");
      }
      if (name == "vertex") {
        header.vertex_count = count;
        in_vertex_element = true;
      } else {
        in_vertex_element = false;
      }
    } else if (word == "property" && in_vertex_element) {
      std::string type, name, trailing;
      if (!(ss >> type >> name) || (ss >> trailing)) {
        throw PlyError("garbled property line '" + line + "'");
      }
      if (type != "float" && type != "float32") {
        throw PlyError("non-float vertex property '" + name + "'");
      }
      header.properties.push_back(name);
    } else if (word == "end_header") {
      if (!format_ok) throw PlyError("missing format line");
      return header;
    }
  }
  throw PlyError("missing end_header");
}

int sh_degree_from_rest_count(std::size_t rest_count) {
  // f_rest holds 3 * ((deg+1)^2 - 1) floats.
  for (int deg = 0; deg <= kMaxShDegree; ++deg) {
    if (rest_count == 3 * (sh_coeff_count(deg) - 1)) return deg;
  }
  throw PlyError("f_rest count does not match any SH degree <= 3");
}

}  // namespace

GaussianCloud read_gaussian_ply(std::istream& in) {
  const PlyHeader header = parse_header(in);

  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < header.properties.size(); ++i) {
    index[header.properties[i]] = i;
  }
  auto require = [&](const std::string& name) -> std::size_t {
    const auto it = index.find(name);
    if (it == index.end()) throw PlyError("missing property " + name);
    return it->second;
  };

  const std::size_t ix = require("x"), iy = require("y"), iz = require("z");
  const std::size_t idc0 = require("f_dc_0"), idc1 = require("f_dc_1"), idc2 = require("f_dc_2");
  const std::size_t iop = require("opacity");
  const std::size_t is0 = require("scale_0"), is1 = require("scale_1"), is2 = require("scale_2");
  const std::size_t ir0 = require("rot_0"), ir1 = require("rot_1"), ir2 = require("rot_2"),
                    ir3 = require("rot_3");

  std::size_t rest_count = 0;
  while (index.count("f_rest_" + std::to_string(rest_count)) != 0) ++rest_count;
  const int degree = sh_degree_from_rest_count(rest_count);
  const std::size_t n_coeff = sh_coeff_count(degree);

  // The payload size is attacker-controlled (vertex_count and the property
  // list both come from the header): guard the vertex_count * stride *
  // sizeof(float) computation against overflow before trusting it anywhere.
  const std::size_t stride = header.properties.size();
  const std::size_t max_size = std::numeric_limits<std::size_t>::max();
  if (stride > max_size / sizeof(float)) {
    throw PlyError("property count overflows the row size");
  }
  const std::size_t row_bytes = stride * sizeof(float);
  if (row_bytes > 0 && header.vertex_count > max_size / row_bytes) {
    throw PlyError("vertex_count * stride payload size overflows (" +
                   std::to_string(header.vertex_count) + " rows of " +
                   std::to_string(row_bytes) + " bytes)");
  }

  GaussianCloud cloud(degree);
  // Reserve from the header only up to a sanity cap: a malicious count with
  // a tiny payload must die on the truncation check below, not on a
  // multi-terabyte up-front allocation.
  constexpr std::size_t kReserveCap = std::size_t{1} << 20;
  cloud.reserve(std::min(header.vertex_count, kReserveCap));

  std::vector<float> row(stride);
  std::vector<float> sh(3 * n_coeff);

  for (std::size_t v = 0; v < header.vertex_count; ++v) {
    in.read(reinterpret_cast<char*>(row.data()), static_cast<std::streamsize>(row_bytes));
    // A short read leaves the stream failed with gcount() < row_bytes;
    // verify both so a truncated file errors instead of rendering whatever
    // bytes happened to arrive.
    if (!in || static_cast<std::size_t>(in.gcount()) != row_bytes) {
      throw PlyError("truncated vertex data at row " + std::to_string(v) + " of " +
                     std::to_string(header.vertex_count) + " (got " +
                     std::to_string(in.gcount()) + " of " + std::to_string(row_bytes) +
                     " bytes)");
    }
    const Vec3 pos{row[ix], row[iy], row[iz]};
    const Vec3 scale{std::exp(row[is0]), std::exp(row[is1]), std::exp(row[is2])};
    const Quat rot{row[ir0], row[ir1], row[ir2], row[ir3]};
    const float opacity = sigmoid(row[iop]);

    // DC per channel, then rest: file order is coefficient-major
    // (f_rest_k, k = channel-major within the reference exporter: actually
    // the exporter flattens [coeff][channel] after transpose; we follow the
    // INRIA layout where f_rest is grouped per channel).
    sh.assign(3 * n_coeff, 0.0f);
    sh[0 * n_coeff] = row[idc0];
    sh[1 * n_coeff] = row[idc1];
    sh[2 * n_coeff] = row[idc2];
    const std::size_t rest_per_channel = n_coeff - 1;
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t k = 0; k < rest_per_channel; ++k) {
        const std::size_t file_idx = require("f_rest_" + std::to_string(c * rest_per_channel + k));
        sh[c * n_coeff + 1 + k] = row[file_idx];
      }
    }
    cloud.add(pos, scale, rot, opacity, sh);
  }
  return cloud;
}

GaussianCloud read_gaussian_ply_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PlyError("cannot open " + path);
  return read_gaussian_ply(in);
}

void write_gaussian_ply(std::ostream& out, const GaussianCloud& cloud) {
  const std::size_t n_coeff = sh_coeff_count(cloud.sh_degree());
  const std::size_t rest_per_channel = n_coeff - 1;

  out << "ply\nformat binary_little_endian 1.0\n";
  out << "element vertex " << cloud.size() << "\n";
  const char* base[] = {"x", "y", "z", "nx", "ny", "nz", "f_dc_0", "f_dc_1", "f_dc_2"};
  for (const char* p : base) out << "property float " << p << "\n";
  for (std::size_t i = 0; i < 3 * rest_per_channel; ++i) {
    out << "property float f_rest_" << i << "\n";
  }
  out << "property float opacity\n";
  for (int i = 0; i < 3; ++i) out << "property float scale_" << i << "\n";
  for (int i = 0; i < 4; ++i) out << "property float rot_" << i << "\n";
  out << "end_header\n";

  std::vector<float> row;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    row.clear();
    const Vec3 p = cloud.position(i);
    row.insert(row.end(), {p.x, p.y, p.z, 0.0f, 0.0f, 0.0f});
    const auto sh = cloud.sh(i);
    row.insert(row.end(), {sh[0 * n_coeff], sh[1 * n_coeff], sh[2 * n_coeff]});
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t k = 0; k < rest_per_channel; ++k) {
        row.push_back(sh[c * n_coeff + 1 + k]);
      }
    }
    row.push_back(logit(cloud.opacity(i)));
    const Vec3 s = cloud.scale(i);
    row.insert(row.end(), {std::log(s.x), std::log(s.y), std::log(s.z)});
    const Quat q = cloud.rotation(i);
    row.insert(row.end(), {q.w, q.x, q.y, q.z});
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  if (!out) throw PlyError("write failure");
}

void write_gaussian_ply_file(const std::string& path, const GaussianCloud& cloud) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw PlyError("cannot open " + path + " for writing");
  write_gaussian_ply(out, cloud);
}

}  // namespace gstg
