#include "gaussian/quantize.h"

#include <cmath>

#include "common/half.h"

namespace gstg {

namespace {

float round_track(float value, float& max_abs_err) {
  const float q = quantize_to_half(value);
  max_abs_err = std::max(max_abs_err, std::fabs(q - value));
  return q;
}

}  // namespace

QuantizeReport quantize_cloud_to_fp16(GaussianCloud& cloud) {
  QuantizeReport report;

  for (Vec3& p : cloud.positions()) {
    p.x = round_track(p.x, report.max_position_error);
    p.y = round_track(p.y, report.max_position_error);
    p.z = round_track(p.z, report.max_position_error);
  }
  for (Vec3& s : cloud.scales()) {
    // Track relative error for scales: their magnitudes span decades.
    for (float* component : {&s.x, &s.y, &s.z}) {
      const float before = *component;
      *component = quantize_to_half(before);
      if (before != 0.0f) {
        report.max_scale_rel_error =
            std::max(report.max_scale_rel_error, std::fabs(*component - before) / std::fabs(before));
      }
    }
  }
  for (Quat& q : cloud.rotations()) {
    float unused = 0.0f;
    q.w = round_track(q.w, unused);
    q.x = round_track(q.x, unused);
    q.y = round_track(q.y, unused);
    q.z = round_track(q.z, unused);
    q = normalized(q);
  }
  for (float& o : cloud.opacities()) {
    o = round_track(o, report.max_opacity_error);
    // fp16 rounding can nudge past 1.0 representation-wise; clamp to domain.
    if (o > 1.0f) o = 1.0f;
    if (o < 0.0f) o = 0.0f;
  }
  for (float& c : cloud.sh_data()) {
    c = round_track(c, report.max_sh_error);
  }
  return report;
}

}  // namespace gstg
