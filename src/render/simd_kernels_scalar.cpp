// Scalar (lane width 1) kernel backend: the bit-identity reference every
// wider backend is verified against. Compiled with -ffp-contract=off like
// all kernel TUs so its arithmetic matches the wider lanes op for op.
#include "render/simd_kernels.h"

#define GSTG_SIMD_NS simd_scalar
#define GSTG_SIMD_WIDTH 1
#include "render/simd_kernels.inl"
