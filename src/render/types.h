// Shared types for the software rendering pipelines: configuration, the
// projected splat record, per-stage timings, and the operation counters that
// back the paper's profiling figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/runconfig.h"
#include "common/simd.h"
#include "geometry/ellipse.h"
#include "geometry/intersect.h"
#include "geometry/sym2.h"
#include "geometry/vec.h"
#include "render/sort_keys.h"

namespace gstg {

/// Rendering thresholds from the 3D-GS reference implementation (paper II-B).
inline constexpr float kAlphaThreshold = 1.0f / 255.0f;       ///< skip blending below this
inline constexpr float kTransmittanceThreshold = 1.0e-4f;     ///< early-exit when T drops below
inline constexpr float kAlphaClamp = 0.99f;                   ///< max per-splat alpha

/// Baseline renderer configuration.
struct RenderConfig {
  int tile_size = 16;
  Boundary boundary = Boundary::kEllipse;
  /// When true, each splat's extent rho is 2 ln(255 sigma) instead of the
  /// 3-sigma rule — the opacity-aware bound FlashGS introduced.
  bool opacity_aware_rho = false;
  /// Per-tile sort algorithm (kAuto = radix for long lists, comparison for
  /// short ones; every choice produces the identical ordering).
  SortAlgo sort_algo = SortAlgo::kAuto;
  /// SIMD kernel policy for the preprocess/rasterize hot paths: backend
  /// (kAuto = widest verified, overridable via GSTG_SIMD) and exponential
  /// mode (kExact keeps bit-identity with the scalar path, the default).
  SimdPolicy simd;
  /// Tile-identification strategy (render/binning.h; GSTG_BINNING
  /// overrides): flat single-level binning, the hierarchical coarse→fine
  /// pass, kAuto (hierarchical on large grids — the default), or kVerify
  /// (hierarchical audited bit-identical against flat). Every mode
  /// produces identical per-cell hit sets.
  BinningMode binning = BinningMode::kAuto;
  /// Blending discipline (common/runconfig.h; GSTG_PIPELINE overrides):
  /// kExact depth-sorts per tile, kSortless skips the per-tile sort and
  /// blends with order-independent transmittance (lossy, quality-gated),
  /// kVerify ships the sortless image and reports PSNR/SSIM vs exact.
  PipelineMode pipeline = PipelineMode::kExact;
  /// Worker threads (0 = auto).
  std::size_t threads = 0;
};

/// One culled, projected Gaussian ready for binning and rasterization.
struct ProjectedSplat {
  Vec2 center;       ///< pixel-space mean (2D_XY)
  Sym2 cov;          ///< screen-space covariance (2D_Cov)
  Sym2 conic;        ///< inverse covariance
  float depth = 0;   ///< view-space z (D)
  float opacity = 0; ///< sigma
  Vec3 rgb;          ///< view-dependent colour (G_RGB)
  float rho = 9.0f;  ///< footprint contour level
  std::uint32_t index = 0;  ///< original index in the cloud

  [[nodiscard]] Ellipse footprint() const {
    Ellipse e;
    e.center = center;
    e.cov = cov;
    e.conic = conic;
    e.rho = rho;
    return e;
  }
};

/// Wall-clock per-stage timings (milliseconds). The paper's three-stage
/// split: preprocessing = feature computation + culling + tile (or group)
/// identification; sorting; rasterization. GS-TG adds bitmask generation,
/// reported separately and attributed per execution model (see core/).
struct StageTimes {
  double preprocess_ms = 0.0;
  double sort_ms = 0.0;
  double raster_ms = 0.0;
  double bitmask_ms = 0.0;  ///< GS-TG only

  [[nodiscard]] double total_ms() const {
    return preprocess_ms + sort_ms + raster_ms + bitmask_ms;
  }
};

/// Operation counters backing Table I and Figs. 5/7/13.
struct RenderCounters {
  std::size_t input_gaussians = 0;
  std::size_t visible_gaussians = 0;   ///< after frustum culling
  std::size_t boundary_tests = 0;      ///< tile/group-rect intersection tests
  std::size_t tile_pairs = 0;          ///< Σ over splats of intersected tiles
  /// (splat, coarse-cell) records emitted by hierarchical binning — the
  /// intermediate CSR volume of the two-level pass (zero when binning flat).
  std::size_t coarse_pairs = 0;
  std::size_t splats_multi_tile = 0;   ///< visible splats hitting >= 2 tiles
  std::size_t sort_pairs = 0;          ///< total entries across per-tile/group sort lists
  /// Sorting-work proxy: comparison sorts account a list of n entries as
  /// n * log2(n); radix paths (per-list or global) account n * passes with
  /// 8-bit digits. Well-defined for either algorithm so the paper's
  /// workload-reduction ratios compare like against like.
  double sort_comparison_volume = 0;
  /// Alpha evaluations actually performed: (pixel, splat) pairs whose quad
  /// passed the in-range guard 0 <= q <= 2 ln(255 sigma). Out-of-footprint
  /// pairs are excluded (they never reach the exp/blend datapath), matching
  /// the paper's Fig. 7 per-pixel workload definition.
  std::size_t alpha_computations = 0;
  std::size_t blend_ops = 0;           ///< alpha >= 1/255 blends
  std::size_t early_exit_pixels = 0;   ///< pixels that hit the transmittance exit
  std::size_t pixel_list_work = 0;     ///< Σ over pixels of their tile's list length
  std::size_t total_pixels = 0;
  // GS-TG-specific work counters (zero for the baseline pipeline):
  std::size_t bitmask_tests = 0;   ///< per-(splat, small-tile) boundary tests in bitmask gen
  std::size_t filter_checks = 0;   ///< bitmask AND filter checks in tile rasterization

  /// Fig. 5 metric: average number of intersected tiles per visible Gaussian.
  [[nodiscard]] double tiles_per_gaussian() const {
    return visible_gaussians ? static_cast<double>(tile_pairs) / static_cast<double>(visible_gaussians)
                             : 0.0;
  }
  /// Table I metric: share of visible Gaussians appearing in >= 2 tiles.
  [[nodiscard]] double shared_gaussian_percent() const {
    return visible_gaussians ? 100.0 * static_cast<double>(splats_multi_tile) /
                                   static_cast<double>(visible_gaussians)
                             : 0.0;
  }
  /// Fig. 7 metric: average per-pixel Gaussian workload (list length seen by
  /// each pixel, before alpha skipping / early exit).
  [[nodiscard]] double gaussians_per_pixel() const {
    return total_pixels ? static_cast<double>(pixel_list_work) / static_cast<double>(total_pixels)
                        : 0.0;
  }

  void merge(const RenderCounters& other) {
    input_gaussians += other.input_gaussians;
    visible_gaussians += other.visible_gaussians;
    boundary_tests += other.boundary_tests;
    tile_pairs += other.tile_pairs;
    coarse_pairs += other.coarse_pairs;
    splats_multi_tile += other.splats_multi_tile;
    sort_pairs += other.sort_pairs;
    sort_comparison_volume += other.sort_comparison_volume;
    alpha_computations += other.alpha_computations;
    blend_ops += other.blend_ops;
    early_exit_pixels += other.early_exit_pixels;
    pixel_list_work += other.pixel_list_work;
    total_pixels += other.total_pixels;
    bitmask_tests += other.bitmask_tests;
    filter_checks += other.filter_checks;
  }
};

}  // namespace gstg
