#include "render/sort.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"

namespace gstg {

void sort_cell_lists(BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                     std::size_t threads, RenderCounters& counters) {
  const std::size_t cells = static_cast<std::size_t>(bins.grid.cell_count());

  // Per-worker accumulators (workers get distinct indices from
  // parallel_for_chunks, so the slots never alias).
  constexpr std::size_t kMaxWorkers = 256;
  std::vector<double> volume_per_worker(kMaxWorkers, 0.0);
  std::vector<std::size_t> pairs_per_worker(kMaxWorkers, 0);

  parallel_for_chunks(0, cells, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    double local_volume = 0.0;
    std::size_t local_pairs = 0;
    for (std::size_t c = lo; c < hi; ++c) {
      auto* begin = bins.splat_ids.data() + bins.offsets[c];
      auto* end = bins.splat_ids.data() + bins.offsets[c + 1];
      const std::size_t n = static_cast<std::size_t>(end - begin);
      if (n > 1) {
        std::sort(begin, end, [&](std::uint32_t a, std::uint32_t b) {
          const float da = splats[a].depth, db = splats[b].depth;
          if (da != db) return da < db;
          return splats[a].index < splats[b].index;
        });
        local_volume += static_cast<double>(n) * std::log2(static_cast<double>(n));
      }
      local_pairs += n;
    }
    volume_per_worker[worker % kMaxWorkers] += local_volume;
    pairs_per_worker[worker % kMaxWorkers] += local_pairs;
  }, threads);

  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    counters.sort_comparison_volume += volume_per_worker[w];
    counters.sort_pairs += pairs_per_worker[w];
  }
}

}  // namespace gstg
