#include "render/sort.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"

namespace gstg {

void sort_cell_lists(BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                     std::size_t threads, RenderCounters& counters, SortAlgo algo,
                     SortScratch* scratch) {
  const std::size_t cells = static_cast<std::size_t>(bins.grid.cell_count());

  // Per-worker accumulators sized from the exact worker count, so a worker
  // index can never alias another slot (doubles must merge in a fixed order
  // for determinism; the integer totals ride along in the same slots).
  const std::size_t workers = planned_worker_count(cells, threads);
  SortScratch local_scratch;
  SortScratch& s = scratch != nullptr ? *scratch : local_scratch;
  s.prepare(workers);

  // Compact the key's index half to its true width so the radix path runs
  // the minimum number of passes (depth always needs its full 32 bits).
  std::uint32_t max_index = 0;
  for (const ProjectedSplat& splat : splats) max_index = std::max(max_index, splat.index);
  const int key_bits = depth_index_key_bits(max_index);
  const int index_bits = key_bits - 32;

  parallel_for_chunks(0, cells, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    SortWorkerScratch& ws = s.workers[worker];
    for (std::size_t c = lo; c < hi; ++c) {
      const std::uint32_t begin = bins.offsets[c];
      const std::uint32_t end = bins.offsets[c + 1];
      const std::size_t n = end - begin;
      ws.pairs += n;
      if (n <= 1) continue;

      // Packed (depth_bits, index) keys order exactly as the comparator
      // below; the id payload rides along in the value half.
      if (ws.items.size() < n) ws.items.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t id = bins.splat_ids[begin + k];
        ws.items[k] = {pack_depth_index_key(splats[id].depth, splats[id].index, index_bits),
                       id};
      }
      if (use_radix_sort(algo, n)) {
        radix_sort_pairs(ws.items, ws.items_tmp, n, key_bits);
        ws.volume += static_cast<double>(n) * radix_pass_count(key_bits);
      } else {
        std::sort(ws.items.begin(), ws.items.begin() + static_cast<std::ptrdiff_t>(n),
                  [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
        ws.volume += static_cast<double>(n) * std::log2(static_cast<double>(n));
      }
      for (std::size_t k = 0; k < n; ++k) {
        bins.splat_ids[begin + k] = static_cast<std::uint32_t>(ws.items[k].value);
      }
    }
  }, threads);

  for (std::size_t w = 0; w < workers; ++w) {
    counters.sort_comparison_volume += s.workers[w].volume;
    counters.sort_pairs += s.workers[w].pairs;
  }
}

}  // namespace gstg
