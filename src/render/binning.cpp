#include "render/binning.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"

namespace gstg {

CellGrid CellGrid::over_image(int image_width, int image_height, int cell_size) {
  if (image_width <= 0 || image_height <= 0 || cell_size <= 0) {
    throw std::invalid_argument("CellGrid: non-positive dimensions");
  }
  CellGrid g;
  g.cell_size = cell_size;
  g.image_width = image_width;
  g.image_height = image_height;
  g.cells_x = (image_width + cell_size - 1) / cell_size;
  g.cells_y = (image_height + cell_size - 1) / cell_size;
  return g;
}

TileRange candidate_cells(const ProjectedSplat& splat, const CellGrid& grid) {
  const Rect box = splat.footprint().aabb();
  TileRange r;
  r.tx0 = std::max(0, static_cast<int>(std::floor(box.x0 / static_cast<float>(grid.cell_size))));
  r.ty0 = std::max(0, static_cast<int>(std::floor(box.y0 / static_cast<float>(grid.cell_size))));
  r.tx1 = std::min(grid.cells_x,
                   static_cast<int>(std::floor(box.x1 / static_cast<float>(grid.cell_size))) + 1);
  r.ty1 = std::min(grid.cells_y,
                   static_cast<int>(std::floor(box.y1 / static_cast<float>(grid.cell_size))) + 1);
  return r;
}

BinnedSplats bin_splats(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                        Boundary boundary, std::size_t threads, RenderCounters& counters) {
  BinnedSplats out;
  BinningScratch scratch;
  bin_splats_into(splats, grid, boundary, threads, counters, out, scratch);
  return out;
}

void bin_splats_into(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                     Boundary boundary, std::size_t threads, RenderCounters& counters,
                     BinnedSplats& out, BinningScratch& scratch) {
  out.grid = grid;
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());

  // Pass 1: per-cell counts (and counter updates). The reusable plain-int
  // scratch array is raced on through std::atomic_ref.
  std::vector<std::uint32_t>& cell_counts = scratch.cell_counts;
  cell_counts.assign(cells, 0);
  std::atomic<std::size_t> tests{0}, pairs{0}, multi{0};

  parallel_for_chunks(0, splats.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::size_t local_tests = 0, local_pairs = 0, local_multi = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t hits = 0;
      local_tests += for_each_hit_cell(splats[i], grid, boundary, [&](int cell) {
        std::atomic_ref<std::uint32_t>(cell_counts[static_cast<std::size_t>(cell)])
            .fetch_add(1, std::memory_order_relaxed);
        ++hits;
      });
      local_pairs += hits;
      if (hits >= 2) ++local_multi;
    }
    tests.fetch_add(local_tests, std::memory_order_relaxed);
    pairs.fetch_add(local_pairs, std::memory_order_relaxed);
    multi.fetch_add(local_multi, std::memory_order_relaxed);
  }, threads);

  counters.boundary_tests += tests.load();
  counters.tile_pairs += pairs.load();
  counters.splats_multi_tile += multi.load();

  // Prefix sum into CSR offsets; the count array then becomes the scatter
  // cursors (initialised to each cell's base offset).
  out.offsets.resize(cells + 1);
  std::uint32_t running = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    out.offsets[c] = running;
    running += cell_counts[c];
    cell_counts[c] = out.offsets[c];
  }
  out.offsets[cells] = running;
  out.splat_ids.resize(running);

  // Pass 2: scatter. Within-cell order is nondeterministic here, but every
  // consumer sorts by (depth, index) first, so results are deterministic.
  parallel_for_chunks(0, splats.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) {
      for_each_hit_cell(splats[i], grid, boundary, [&](int cell) {
        const std::uint32_t slot =
            std::atomic_ref<std::uint32_t>(cell_counts[static_cast<std::size_t>(cell)])
                .fetch_add(1, std::memory_order_relaxed);
        out.splat_ids[slot] = static_cast<std::uint32_t>(i);
      });
    }
  }, threads);
}

}  // namespace gstg
