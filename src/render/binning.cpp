#include "render/binning.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/parallel.h"
#include "geometry/clamped_cast.h"

namespace gstg {

namespace {

/// Candidate range of an AABB, clipped to the grid. Any NaN coordinate
/// makes the validity comparison fail and yields the empty range; an
/// infinite but ordered box (huge rho) covers the full grid.
TileRange range_of_box(const Rect& box, const CellGrid& grid) {
  if (!(box.x0 <= box.x1) || !(box.y0 <= box.y1)) return {};
  const float cs = static_cast<float>(grid.cell_size);
  TileRange r;
  r.tx0 = clamped_cell_floor(box.x0, cs, grid.cells_x, 0);
  r.ty0 = clamped_cell_floor(box.y0, cs, grid.cells_y, 0);
  r.tx1 = clamped_cell_floor(box.x1, cs, grid.cells_x, 1);
  r.ty1 = clamped_cell_floor(box.y1, cs, grid.cells_y, 1);
  return r;
}

/// Per-splat footprint classification of the hierarchical pass.
enum SplatKind : std::uint8_t {
  kEmptyKind = 0,    ///< no candidate cells (culled, off-screen, NaN box)
  kSingleHit = 1,    ///< AABB provably inside one fine cell: hit, no test
  kGeneralKind = 2,  ///< everything else: boundary-tested per level
};

/// True when the splat's AABB sits entirely inside the single fine cell of
/// its (1×1, unclipped) candidate range — then the cell rectangle contains
/// the footprint center, which makes all three boundary tests succeed
/// unconditionally (AABB/OBB always; Ellipse because the rect-contains-
/// center branch of min_mahalanobis_sq_on_rect returns 0 ≤ rho, hence the
/// rho >= 0 requirement), so the test can be skipped without changing the
/// hit set.
bool is_single_cell_hit(const Rect& box, const TileRange& range, const CellGrid& grid,
                        float rho) {
  return range.tx1 - range.tx0 == 1 && range.ty1 - range.ty0 == 1 &&
         box.x0 >= 0.0f && box.y0 >= 0.0f &&
         box.x1 <= static_cast<float>(grid.image_width) &&
         box.y1 <= static_cast<float>(grid.image_height) && rho >= 0.0f;
}

/// Coarse-cell range covering a fine-cell range (both clipped to their
/// grids, which tile the same image).
TileRange coarse_range_of(const TileRange& fine, int factor) {
  TileRange r;
  r.tx0 = fine.tx0 / factor;
  r.ty0 = fine.ty0 / factor;
  r.tx1 = static_cast<int>((static_cast<long long>(fine.tx1) + factor - 1) / factor);
  r.ty1 = static_cast<int>((static_cast<long long>(fine.ty1) + factor - 1) / factor);
  return r;
}

void flat_bin_splats_into(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                          Boundary boundary, std::size_t threads, RenderCounters& counters,
                          BinnedSplats& out, std::vector<std::uint32_t>& cell_counts) {
  out.grid = grid;
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());

  // Pass 1: per-cell counts (and counter updates). The reusable plain-int
  // scratch array is raced on through std::atomic_ref.
  cell_counts.assign(cells, 0);
  std::atomic<std::size_t> tests{0}, pairs{0}, multi{0};

  parallel_for_chunks(0, splats.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::size_t local_tests = 0, local_pairs = 0, local_multi = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t hits = 0;
      local_tests += for_each_hit_cell(splats[i], grid, boundary, [&](int cell) {
        std::atomic_ref<std::uint32_t>(cell_counts[static_cast<std::size_t>(cell)])
            .fetch_add(1, std::memory_order_relaxed);
        ++hits;
      });
      local_pairs += hits;
      if (hits >= 2) ++local_multi;
    }
    tests.fetch_add(local_tests, std::memory_order_relaxed);
    pairs.fetch_add(local_pairs, std::memory_order_relaxed);
    multi.fetch_add(local_multi, std::memory_order_relaxed);
  }, threads);

  counters.boundary_tests += tests.load();
  counters.tile_pairs += pairs.load();
  counters.splats_multi_tile += multi.load();

  // Overflow-checked prefix sum into CSR offsets; the count array then
  // becomes the scatter cursors (initialised to each cell's base offset).
  const std::uint32_t total = csr_offsets_from_counts(cell_counts, out.offsets);
  out.splat_ids.resize(total);
  std::copy_n(out.offsets.begin(), cells, cell_counts.begin());

  // Pass 2: scatter. Within-cell order is nondeterministic here, but every
  // consumer sorts by (depth, index) first, so results are deterministic.
  parallel_for_chunks(0, splats.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) {
      for_each_hit_cell(splats[i], grid, boundary, [&](int cell) {
        const std::uint32_t slot =
            std::atomic_ref<std::uint32_t>(cell_counts[static_cast<std::size_t>(cell)])
                .fetch_add(1, std::memory_order_relaxed);
        out.splat_ids[slot] = static_cast<std::uint32_t>(i);
      });
    }
  }, threads);
}

/// Three-way verdict of one coarse-rect boundary evaluation.
enum class CoarseClass : std::uint8_t { kMiss, kPartial, kContained };

/// Rect fully inside the OBB: all four corners project within both half
/// extents (exact for a convex box). Any NaN in the OBB fails the corner
/// comparisons and falls back to the intersection verdict.
CoarseClass classify_obb_rect(const Obb& obb, const Rect& rect) {
  const auto inside = [&](float x, float y) {
    const Vec2 d{x - obb.center.x, y - obb.center.y};
    return std::fabs(dot(d, obb.axis1)) <= obb.half1 &&
           std::fabs(dot(d, obb.axis2)) <= obb.half2;
  };
  if (inside(rect.x0, rect.y0) && inside(rect.x1, rect.y0) && inside(rect.x0, rect.y1) &&
      inside(rect.x1, rect.y1)) {
    return CoarseClass::kContained;
  }
  return obb_intersects(obb, rect) ? CoarseClass::kPartial : CoarseClass::kMiss;
}

/// Rect fully inside the ellipse: with a PSD conic the Mahalanobis
/// quadratic is convex, so its maximum over the rect sits at a corner —
/// four corner evaluations bound the whole cell. A non-PSD or non-finite
/// conic (degenerate covariance) skips the containment claim and falls
/// back to the intersection verdict, which keeps the classification
/// consistent with the flat per-cell test for every adversarial input.
CoarseClass classify_ellipse_rect(const Ellipse& e, const Rect& rect) {
  const Sym2& q = e.conic;
  if (q.xx >= 0.0f && q.yy >= 0.0f && q.xx * q.yy - q.xy * q.xy >= 0.0f) {
    const auto inside = [&](float x, float y) {
      const float dx = x - e.center.x;
      const float dy = y - e.center.y;
      return q.xx * dx * dx + 2.0f * q.xy * dx * dy + q.yy * dy * dy <= e.rho;
    };
    if (inside(rect.x0, rect.y0) && inside(rect.x1, rect.y0) && inside(rect.x0, rect.y1) &&
        inside(rect.x1, rect.y1)) {
      return CoarseClass::kContained;
    }
  }
  return ellipse_intersects(e, rect) ? CoarseClass::kPartial : CoarseClass::kMiss;
}

/// Enumerates the coarse cells a general splat occupies as
/// visit(cell, contained). Only footprints covering at least
/// kCoarseTestMinCells coarse cells are classified (one counted test per
/// coarse rect): a miss prunes the whole fine window — sound because every
/// boundary test is monotone under rectangle containment (fine rects are
/// subsets of their coarse rect) — and a contained rect emits its fine
/// window untested (every sub-rect of a rect inside the footprint still
/// touches it). Smaller ranges, and all kAabb ranges (every coarse
/// candidate overlaps the box by construction), are emitted untested: a
/// coarse test there could only prune work the windowed fine tests perform
/// anyway, so skipping it keeps hierarchical tests <= flat tests.
template <typename Visit>
std::size_t for_each_coarse_cell(const ProjectedSplat& splat, const TileRange& cr,
                                 const CellGrid& coarse, Boundary boundary, Visit&& visit) {
  if (boundary == Boundary::kAabb || cr.count() < kCoarseTestMinCells) {
    for (int cy = cr.ty0; cy < cr.ty1; ++cy) {
      for (int cx = cr.tx0; cx < cr.tx1; ++cx) {
        visit(coarse.cell_index(cx, cy), false);
      }
    }
    return 0;
  }
  std::size_t tests = 0;
  const Ellipse footprint = splat.footprint();
  const Obb obb = Obb::from_ellipse(footprint);
  for (int cy = cr.ty0; cy < cr.ty1; ++cy) {
    for (int cx = cr.tx0; cx < cr.tx1; ++cx) {
      const Rect rect =
          tile_rect(cx, cy, coarse.cell_size, coarse.image_width, coarse.image_height);
      ++tests;
      const CoarseClass verdict = boundary == Boundary::kObb
                                      ? classify_obb_rect(obb, rect)
                                      : classify_ellipse_rect(footprint, rect);
      if (verdict != CoarseClass::kMiss) {
        visit(coarse.cell_index(cx, cy), verdict == CoarseClass::kContained);
      }
    }
  }
  return tests;
}

/// Fine-cell expansion of one coarse record: visits the splat's fine hits
/// inside the coarse cell's window of fine cells. For kAabb the clipped
/// window *is* the hit set (one range intersection, counted as one test);
/// a contained record's window is emitted untested (the coarse rect — and
/// so every fine rect under it — sits inside the footprint). Otherwise
/// each windowed candidate is boundary-tested like the flat pass, except
/// that a cell whose rectangle holds the footprint centre is a guaranteed
/// hit for every boundary (the minimum Mahalanobis distance there is zero,
/// an OBB always covers its own centre) and is emitted on the point-in-
/// rect precheck alone.
template <typename Visit>
std::size_t expand_record(const ProjectedSplat& splat, const TileRange& fine_range,
                          bool contained, int fx0, int fy0, int fx1, int fy1,
                          const CellGrid& grid, Boundary boundary, Visit&& visit) {
  const int x0 = std::max(fine_range.tx0, fx0), x1 = std::min(fine_range.tx1, fx1);
  const int y0 = std::max(fine_range.ty0, fy0), y1 = std::min(fine_range.ty1, fy1);
  if (x0 >= x1 || y0 >= y1) return 0;
  if (boundary == Boundary::kAabb || contained) {
    for (int cy = y0; cy < y1; ++cy) {
      for (int cx = x0; cx < x1; ++cx) visit(grid.cell_index(cx, cy));
    }
    return boundary == Boundary::kAabb ? 1 : 0;
  }
  std::size_t tests = 0;
  const Ellipse footprint = splat.footprint();
  const Obb obb = Obb::from_ellipse(footprint);
  for (int cy = y0; cy < y1; ++cy) {
    for (int cx = x0; cx < x1; ++cx) {
      const Rect rect = tile_rect(cx, cy, grid.cell_size, grid.image_width, grid.image_height);
      if (splat.rho >= 0.0f && rect.contains(splat.center)) {
        visit(grid.cell_index(cx, cy));
        continue;
      }
      ++tests;
      const bool hit = boundary == Boundary::kObb ? obb_intersects(obb, rect)
                                                  : ellipse_intersects(footprint, rect);
      if (hit) visit(grid.cell_index(cx, cy));
    }
  }
  return tests;
}

void hierarchical_bin_splats_into(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                                  Boundary boundary, std::size_t threads,
                                  RenderCounters& counters, BinnedSplats& out,
                                  BinningScratch& scratch) {
  out.grid = grid;
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());
  const int factor = kCoarseCellFactor;
  const long long coarse_edge_ll = static_cast<long long>(grid.cell_size) * factor;
  const int coarse_edge = coarse_edge_ll > std::numeric_limits<int>::max()
                              ? std::numeric_limits<int>::max()
                              : static_cast<int>(coarse_edge_ll);
  const CellGrid coarse = CellGrid::over_image(grid.image_width, grid.image_height, coarse_edge);
  const std::size_t coarse_cells = static_cast<std::size_t>(coarse.cell_count());

  scratch.fine_ranges.resize(splats.size());
  scratch.kinds.resize(splats.size());
  scratch.fine_hits.assign(splats.size(), 0);
  scratch.coarse_counts.assign(coarse_cells, 0);
  std::atomic<std::size_t> tests{0}, multi{0};

  // Coarse pass 1: classify every splat and count its coarse records. The
  // classification (candidate range + kind) is reused by all later passes.
  parallel_for_chunks(0, splats.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::size_t local_tests = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const Rect box = splats[i].footprint().aabb();
      const TileRange r = range_of_box(box, grid);
      scratch.fine_ranges[i] = r;
      if (r.empty()) {
        scratch.kinds[i] = kEmptyKind;
        continue;
      }
      const auto count_cell = [&](int cell, bool /*contained*/) {
        std::atomic_ref<std::uint32_t>(scratch.coarse_counts[static_cast<std::size_t>(cell)])
            .fetch_add(1, std::memory_order_relaxed);
      };
      if (is_single_cell_hit(box, r, grid, splats[i].rho)) {
        scratch.kinds[i] = kSingleHit;
        count_cell(coarse.cell_index(r.tx0 / factor, r.ty0 / factor), false);
      } else {
        scratch.kinds[i] = kGeneralKind;
        local_tests += for_each_coarse_cell(splats[i], coarse_range_of(r, factor), coarse,
                                            boundary, count_cell);
      }
    }
    tests.fetch_add(local_tests, std::memory_order_relaxed);
  }, threads);

  // Coarse CSR + scatter (atomic cursors, like the flat pass).
  const std::uint32_t coarse_total =
      csr_offsets_from_counts(scratch.coarse_counts, scratch.coarse_offsets);
  scratch.coarse_ids.resize(coarse_total);
  scratch.coarse_flags.resize(coarse_total);
  std::copy_n(scratch.coarse_offsets.begin(), coarse_cells, scratch.coarse_counts.begin());
  counters.coarse_pairs += coarse_total;

  parallel_for_chunks(0, splats.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (scratch.kinds[i] == kEmptyKind) continue;
      const auto scatter_cell = [&](int cell, bool contained) {
        const std::uint32_t slot =
            std::atomic_ref<std::uint32_t>(scratch.coarse_counts[static_cast<std::size_t>(cell)])
                .fetch_add(1, std::memory_order_relaxed);
        scratch.coarse_ids[slot] = static_cast<std::uint32_t>(i);
        scratch.coarse_flags[slot] = contained ? 1 : 0;
      };
      const TileRange& r = scratch.fine_ranges[i];
      if (scratch.kinds[i] == kSingleHit) {
        scatter_cell(coarse.cell_index(r.tx0 / factor, r.ty0 / factor), false);
      } else {
        for_each_coarse_cell(splats[i], coarse_range_of(r, factor), coarse, boundary,
                             scatter_cell);
      }
    }
  }, threads);

  // Fine pass 1: expand each non-empty coarse cell's records into per-fine-
  // cell counts. Parallel over coarse cells — every fine cell belongs to
  // exactly one coarse cell, so the fine count array needs no atomics; only
  // the per-splat hit accumulator is shared (a splat spans coarse cells).
  std::vector<std::uint32_t>& fine_counts = scratch.cell_counts;
  fine_counts.assign(cells, 0);

  const auto fine_window = [&](std::size_t g, int& fx0, int& fy0, int& fx1, int& fy1) {
    const int gx = static_cast<int>(g) % coarse.cells_x;
    const int gy = static_cast<int>(g) / coarse.cells_x;
    fx0 = gx * factor;
    fy0 = gy * factor;
    fx1 = std::min(grid.cells_x, fx0 + factor);
    fy1 = std::min(grid.cells_y, fy0 + factor);
  };

  parallel_for_chunks(0, coarse_cells, [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::size_t local_tests = 0;
    for (std::size_t g = lo; g < hi; ++g) {
      int fx0, fy0, fx1, fy1;
      fine_window(g, fx0, fy0, fx1, fy1);
      for (std::uint32_t e = scratch.coarse_offsets[g]; e < scratch.coarse_offsets[g + 1]; ++e) {
        const std::uint32_t i = scratch.coarse_ids[e];
        const TileRange& r = scratch.fine_ranges[i];
        std::uint32_t hits = 0;
        if (scratch.kinds[i] == kSingleHit) {
          ++fine_counts[static_cast<std::size_t>(grid.cell_index(r.tx0, r.ty0))];
          hits = 1;
        } else {
          local_tests += expand_record(splats[i], r, scratch.coarse_flags[e] != 0, fx0, fy0,
                                       fx1, fy1, grid, boundary, [&](int cell) {
                                         ++fine_counts[static_cast<std::size_t>(cell)];
                                         ++hits;
                                       });
        }
        if (hits != 0) {
          std::atomic_ref<std::uint32_t>(scratch.fine_hits[i])
              .fetch_add(hits, std::memory_order_relaxed);
        }
      }
    }
    tests.fetch_add(local_tests, std::memory_order_relaxed);
  }, threads);

  // Fine CSR + scatter: cursors again owned per coarse cell, no atomics.
  const std::uint32_t total = csr_offsets_from_counts(fine_counts, out.offsets);
  out.splat_ids.resize(total);
  std::copy_n(out.offsets.begin(), cells, fine_counts.begin());

  parallel_for_chunks(0, coarse_cells, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t g = lo; g < hi; ++g) {
      int fx0, fy0, fx1, fy1;
      fine_window(g, fx0, fy0, fx1, fy1);
      for (std::uint32_t e = scratch.coarse_offsets[g]; e < scratch.coarse_offsets[g + 1]; ++e) {
        const std::uint32_t i = scratch.coarse_ids[e];
        const TileRange& r = scratch.fine_ranges[i];
        const auto scatter = [&](int cell) {
          out.splat_ids[fine_counts[static_cast<std::size_t>(cell)]++] = i;
        };
        if (scratch.kinds[i] == kSingleHit) {
          scatter(grid.cell_index(r.tx0, r.ty0));
        } else {
          expand_record(splats[i], r, scratch.coarse_flags[e] != 0, fx0, fy0, fx1, fy1, grid,
                        boundary, scatter);
        }
      }
    }
  }, threads);

  // Counter reduction: pairs come from the CSR total, multi-tile splats
  // from the per-splat hit accumulator (hits arrived from several coarse
  // cells, so they could not be folded into one pass).
  parallel_for_chunks(0, splats.size(), [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::size_t local_multi = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (scratch.fine_hits[i] >= 2) ++local_multi;
    }
    multi.fetch_add(local_multi, std::memory_order_relaxed);
  }, threads);

  counters.boundary_tests += tests.load();
  counters.tile_pairs += total;
  counters.splats_multi_tile += multi.load();
}

void verify_bin_splats_into(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                            Boundary boundary, std::size_t threads, RenderCounters& counters,
                            BinnedSplats& out, BinningScratch& scratch) {
  hierarchical_bin_splats_into(splats, grid, boundary, threads, counters, out, scratch);

  // Flat reference run. Its accounting is discarded so kVerify reports the
  // hierarchical pass's counters exactly.
  RenderCounters reference_counters;
  flat_bin_splats_into(splats, grid, boundary, threads, reference_counters, scratch.reference,
                       scratch.ref_counts);

  if (out.offsets != scratch.reference.offsets) {
    throw BinningError("verify: hierarchical CSR offsets differ from flat binning");
  }

  // Canonical per-cell (depth, index) sort of both id arrays, then a
  // bit-identity compare. The packed key is a total order even for
  // adversarial NaN depths (bit-pattern comparison); the id tiebreak keeps
  // the comparator strict should two splats collide on (depth, index).
  scratch.sorted_a = out.splat_ids;
  scratch.sorted_b = scratch.reference.splat_ids;
  const auto canonical_less = [&](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t ka = pack_depth_index_key(splats[a].depth, splats[a].index);
    const std::uint64_t kb = pack_depth_index_key(splats[b].depth, splats[b].index);
    return ka != kb ? ka < kb : a < b;
  };
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());
  parallel_for_chunks(0, cells, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t c = lo; c < hi; ++c) {
      const std::size_t b = out.offsets[c], e = out.offsets[c + 1];
      std::sort(scratch.sorted_a.begin() + b, scratch.sorted_a.begin() + e, canonical_less);
      std::sort(scratch.sorted_b.begin() + b, scratch.sorted_b.begin() + e, canonical_less);
    }
  }, threads);

  if (scratch.sorted_a != scratch.sorted_b) {
    for (std::size_t c = 0; c < cells; ++c) {
      for (std::size_t e = out.offsets[c]; e < out.offsets[c + 1]; ++e) {
        if (scratch.sorted_a[e] != scratch.sorted_b[e]) {
          throw BinningError("verify: cell " + std::to_string(c) +
                             " differs from flat binning (hierarchical id " +
                             std::to_string(scratch.sorted_a[e]) + " vs flat id " +
                             std::to_string(scratch.sorted_b[e]) + ")");
        }
      }
    }
  }
}

}  // namespace

CellGrid CellGrid::over_image(int image_width, int image_height, int cell_size) {
  if (image_width <= 0 || image_height <= 0 || cell_size <= 0) {
    throw std::invalid_argument("CellGrid: non-positive dimensions");
  }
  CellGrid g;
  g.cell_size = cell_size;
  g.image_width = image_width;
  g.image_height = image_height;
  g.cells_x = (image_width + cell_size - 1) / cell_size;
  g.cells_y = (image_height + cell_size - 1) / cell_size;
  if (static_cast<long long>(g.cells_x) * g.cells_y >
      static_cast<long long>(std::numeric_limits<int>::max())) {
    throw BinningError("cell grid " + std::to_string(g.cells_x) + "x" +
                       std::to_string(g.cells_y) + " overflows the int cell-index space");
  }
  return g;
}

std::uint32_t csr_offsets_from_counts(std::span<const std::uint32_t> counts,
                                      std::vector<std::uint32_t>& offsets) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint32_t>::max();
  offsets.resize(counts.size() + 1);
  std::uint64_t running = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    offsets[c] = static_cast<std::uint32_t>(running);
    running += counts[c];
    if (running > kMax) {
      throw BinningError("CSR pair count " + std::to_string(running) +
                         " overflows the 32-bit index space (reduce the workload or shrink "
                         "the footprints)");
    }
  }
  offsets[counts.size()] = static_cast<std::uint32_t>(running);
  return static_cast<std::uint32_t>(running);
}

BinningMode resolve_binning_mode(BinningMode mode, const CellGrid& grid) {
  if (mode != BinningMode::kAuto) return mode;
  return grid.cell_count() >= kAutoHierarchicalMinCells ? BinningMode::kHierarchical
                                                        : BinningMode::kFlat;
}

TileRange candidate_cells(const ProjectedSplat& splat, const CellGrid& grid) {
  return range_of_box(splat.footprint().aabb(), grid);
}

BinnedSplats bin_splats(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                        Boundary boundary, std::size_t threads, RenderCounters& counters,
                        BinningMode mode) {
  BinnedSplats out;
  BinningScratch scratch;
  bin_splats_into(splats, grid, boundary, threads, counters, out, scratch, mode);
  return out;
}

void bin_splats_into(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                     Boundary boundary, std::size_t threads, RenderCounters& counters,
                     BinnedSplats& out, BinningScratch& scratch, BinningMode mode) {
  switch (resolve_binning_mode(mode, grid)) {
    case BinningMode::kFlat:
      flat_bin_splats_into(splats, grid, boundary, threads, counters, out, scratch.cell_counts);
      return;
    case BinningMode::kHierarchical:
      hierarchical_bin_splats_into(splats, grid, boundary, threads, counters, out, scratch);
      return;
    case BinningMode::kVerify:
      verify_bin_splats_into(splats, grid, boundary, threads, counters, out, scratch);
      return;
    case BinningMode::kAuto:
      break;  // resolved above
  }
  throw std::invalid_argument("bin_splats_into: unresolved binning mode");
}

}  // namespace gstg
