// SIMD kernel registry and runtime dispatch: the function-pointer tables,
// CPU-feature gating, the GSTG_SIMD override, and the one-time bit-identity
// probe that qualifies a backend for kAuto selection.
#include "render/simd_kernels.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "camera/camera.h"
#include "geometry/sym2.h"

namespace gstg {

// Kernel entry points, one namespace per backend TU (simd_kernels.inl).
// The GSTG_SIMD_HAVE_* macros are defined by src/render/CMakeLists.txt for
// the backends actually compiled on this platform.
#define GSTG_DECLARE_KERNELS(ns)                                                             \
  namespace ns {                                                                             \
  TileRasterStats rasterize_tile_kernel(std::span<const ProjectedSplat>,                     \
                                        std::span<const std::uint32_t>, int, int, int, int,  \
                                        Framebuffer&, TileRasterScratch&, ExpMode);          \
  TileRasterStats rasterize_tile_sortless_kernel(std::span<const ProjectedSplat>,            \
                                                 std::span<const std::uint32_t>, int, int,   \
                                                 int, int, Framebuffer&,                     \
                                                 SortlessRasterScratch&, ExpMode);           \
  void preprocess_chunk_kernel(const PreprocessChunkArgs&, std::size_t, std::size_t);        \
  }

GSTG_DECLARE_KERNELS(simd_scalar)
#if defined(GSTG_SIMD_HAVE_SSE4)
GSTG_DECLARE_KERNELS(simd_sse4)
#endif
#if defined(GSTG_SIMD_HAVE_AVX2)
GSTG_DECLARE_KERNELS(simd_avx2)
#endif
#if defined(GSTG_SIMD_HAVE_NEON)
GSTG_DECLARE_KERNELS(simd_neon)
#endif
#undef GSTG_DECLARE_KERNELS

namespace {

bool compiled_in(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kSse4:
#if defined(GSTG_SIMD_HAVE_SSE4)
      return true;
#else
      return false;
#endif
    case SimdBackend::kAvx2:
#if defined(GSTG_SIMD_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case SimdBackend::kNeon:
#if defined(GSTG_SIMD_HAVE_NEON)
      return true;
#else
      return false;
#endif
    case SimdBackend::kAuto:
      return false;
  }
  return false;
}

/// A probe splat with a consistent (cov, conic) pair.
ProjectedSplat probe_splat(Vec2 center, float sigma, float depth, float opacity, Vec3 rgb,
                           std::uint32_t index) {
  ProjectedSplat s;
  s.center = center;
  s.cov = Sym2{sigma * sigma, 0.3f * sigma, sigma * sigma * 1.4f};
  s.conic = inverse(s.cov);
  s.depth = depth;
  s.opacity = opacity;
  s.rgb = rgb;
  s.rho = kThreeSigmaRho;
  s.index = index;
  return s;
}

/// Runs one 16x16 exact-mode tile through `k` and the scalar kernel and
/// compares framebuffers (bitwise) and statistics. The splat set exercises
/// every kernel path: blending, the in-range guard, the alpha threshold, the
/// clamp, and the transmittance early exit with compaction.
bool probe_matches_scalar(const SimdKernels& k) {
  std::vector<ProjectedSplat> splats;
  splats.push_back(probe_splat({5.3f, 7.1f}, 2.0f, 1.0f, 0.8f, {0.9f, 0.2f, 0.1f}, 0));
  splats.push_back(probe_splat({12.2f, 3.4f}, 0.8f, 1.5f, 0.99f, {0.1f, 0.8f, 0.3f}, 1));
  splats.push_back(probe_splat({2.0f, 14.0f}, 1.2f, 2.0f, 0.002f, {0.5f, 0.5f, 0.5f}, 2));
  // Opaque stack driving most pixels through the early exit.
  for (std::uint32_t i = 0; i < 8; ++i) {
    splats.push_back(probe_splat({8.0f, 8.0f}, 40.0f, 3.0f + static_cast<float>(i), 0.99f,
                                 {0.3f, 0.3f, 0.9f}, 3 + i));
  }
  std::vector<std::uint32_t> order(splats.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;

  const SimdKernels& ref = simd_kernels(SimdBackend::kScalar);
  Framebuffer fa(16, 16), fb(16, 16);
  TileRasterScratch sa, sb;
  const TileRasterStats ra =
      ref.rasterize_tile(splats, order, 0, 0, 16, 16, fa, sa, ExpMode::kExact);
  const TileRasterStats rb =
      k.rasterize_tile(splats, order, 0, 0, 16, 16, fb, sb, ExpMode::kExact);

  if (ra.alpha_computations != rb.alpha_computations || ra.blend_ops != rb.blend_ops ||
      ra.early_exit_pixels != rb.early_exit_pixels) {
    return false;
  }
  if (std::memcmp(fa.pixels().data(), fb.pixels().data(),
                  fa.pixels().size() * sizeof(Vec3)) != 0) {
    return false;
  }

  // Sortless probe: the same tile through the order-independent kernel,
  // forward under the scalar reference and REVERSED under the candidate —
  // one comparison covers both the cross-backend bit-identity and the
  // order-independence contract of the sortless pipeline.
  std::vector<std::uint32_t> reversed(order.rbegin(), order.rend());
  Framebuffer fsa(16, 16), fsb(16, 16);
  SortlessRasterScratch ssa, ssb;
  const TileRasterStats sra =
      ref.rasterize_tile_sortless(splats, order, 0, 0, 16, 16, fsa, ssa, ExpMode::kExact);
  const TileRasterStats srb =
      k.rasterize_tile_sortless(splats, reversed, 0, 0, 16, 16, fsb, ssb, ExpMode::kExact);
  if (sra.alpha_computations != srb.alpha_computations || sra.blend_ops != srb.blend_ops ||
      srb.early_exit_pixels != 0) {
    return false;
  }
  if (std::memcmp(fsa.pixels().data(), fsb.pixels().data(),
                  fsa.pixels().size() * sizeof(Vec3)) != 0) {
    return false;
  }

  // Preprocess probe: a procedural cloud spanning the kernel's cull paths
  // (visible, behind camera, outside the guard band, sub-threshold opacity)
  // must project to bit-identical splats under both kernels.
  GaussianCloud cloud(1);
  for (int i = 0; i < 24; ++i) {
    const float fi = static_cast<float>(i);
    const Vec3 pos{0.35f * fi - 4.0f, 0.21f * fi - 2.5f, (i % 5 == 0) ? -2.0f : 4.0f + 0.3f * fi};
    const Vec3 scale{0.08f + 0.01f * fi, 0.05f + 0.02f * fi, 0.06f};
    const Quat rot = from_axis_angle({0.3f, 1.0f, 0.2f}, 0.37f * fi);
    const float opacity = (i % 7 == 0) ? 0.001f : 0.15f + 0.03f * fi;
    cloud.add_solid(pos, scale, rot, opacity, {0.8f, 0.4f, 0.2f});
  }
  const Camera camera = Camera::from_fov(96, 64, 1.1f, look_at({0, 0, -6}, {0, 0, 1}));

  PreprocessChunkArgs args;
  args.cloud = &cloud;
  args.camera = &camera;
  args.cam_pos = camera.position();
  std::vector<ProjectedSplat> slots_a(cloud.size()), slots_b(cloud.size());
  std::vector<std::uint8_t> keep_a(cloud.size(), 0), keep_b(cloud.size(), 0);
  args.slots = slots_a.data();
  args.keep = keep_a.data();
  ref.preprocess_chunk(args, 0, cloud.size());
  args.slots = slots_b.data();
  args.keep = keep_b.data();
  k.preprocess_chunk(args, 0, cloud.size());

  if (keep_a != keep_b) return false;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    if (!keep_a[i]) continue;
    const ProjectedSplat& a = slots_a[i];
    const ProjectedSplat& b = slots_b[i];
    if (!(a.center == b.center && a.cov == b.cov && a.conic == b.conic && a.depth == b.depth &&
          a.opacity == b.opacity && a.rgb == b.rgb && a.rho == b.rho && a.index == b.index)) {
      return false;
    }
  }
  return true;
}

void warn_unavailable_once(SimdBackend requested) {
  static std::once_flag warned;
  std::call_once(warned, [requested] {
    std::fprintf(stderr,
                 "gstg: SIMD backend '%s' is not available on this build/CPU; "
                 "falling back to scalar\n",
                 to_string(requested));
  });
}

}  // namespace

const std::vector<SimdBackend>& available_simd_backends() {
  static const std::vector<SimdBackend> list = [] {
    std::vector<SimdBackend> v{SimdBackend::kScalar};
    for (const SimdBackend b : {SimdBackend::kSse4, SimdBackend::kNeon, SimdBackend::kAvx2}) {
      if (compiled_in(b) && cpu_supports(b)) v.push_back(b);
    }
    return v;
  }();
  return list;
}

SimdBackend widest_verified_backend() {
  static const SimdBackend widest = [] {
    const std::vector<SimdBackend>& avail = available_simd_backends();
    for (auto it = avail.rbegin(); it != avail.rend(); ++it) {
      if (*it == SimdBackend::kScalar) break;
      if (probe_matches_scalar(simd_kernels(*it))) return *it;
      std::fprintf(stderr,
                   "gstg: SIMD backend '%s' failed the bit-identity probe; "
                   "excluded from kAuto\n",
                   to_string(*it));
    }
    return SimdBackend::kScalar;
  }();
  return widest;
}

// gstg-lint: boundary(R1): resolution funnels into function-local statics
// (availability scan, bit-identity probe) computed once per process; every
// steady-state call returns the cached backend without allocating.
SimdBackend resolve_simd_backend(SimdBackend requested) {
  if (requested == SimdBackend::kAuto) {
    const SimdBackend env = simd_backend_from_env();
    if (env == SimdBackend::kAuto) return widest_verified_backend();
    requested = env;
  }
  for (const SimdBackend b : available_simd_backends()) {
    if (b == requested) return requested;
  }
  warn_unavailable_once(requested);
  return SimdBackend::kScalar;
}

const SimdKernels& simd_kernels(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar: {
      static const SimdKernels k{SimdBackend::kScalar, 1,
                                 &simd_scalar::rasterize_tile_kernel,
                                 &simd_scalar::rasterize_tile_sortless_kernel,
                                 &simd_scalar::preprocess_chunk_kernel};
      return k;
    }
    case SimdBackend::kSse4:
#if defined(GSTG_SIMD_HAVE_SSE4)
    {
      static const SimdKernels k{SimdBackend::kSse4, 4, &simd_sse4::rasterize_tile_kernel,
                                 &simd_sse4::rasterize_tile_sortless_kernel,
                                 &simd_sse4::preprocess_chunk_kernel};
      return k;
    }
#else
      break;
#endif
    case SimdBackend::kAvx2:
#if defined(GSTG_SIMD_HAVE_AVX2)
    {
      static const SimdKernels k{SimdBackend::kAvx2, 8, &simd_avx2::rasterize_tile_kernel,
                                 &simd_avx2::rasterize_tile_sortless_kernel,
                                 &simd_avx2::preprocess_chunk_kernel};
      return k;
    }
#else
      break;
#endif
    case SimdBackend::kNeon:
#if defined(GSTG_SIMD_HAVE_NEON)
    {
      static const SimdKernels k{SimdBackend::kNeon, 4, &simd_neon::rasterize_tile_kernel,
                                 &simd_neon::rasterize_tile_sortless_kernel,
                                 &simd_neon::preprocess_chunk_kernel};
      return k;
    }
#else
      break;
#endif
    case SimdBackend::kAuto:
      break;
  }
  throw std::invalid_argument(std::string("simd_kernels: backend '") + to_string(backend) +
                              "' is not compiled into this binary (resolve first)");
}

}  // namespace gstg
