// NEON kernel backend: 4-wide lanes. NEON is the baseline vector ISA on
// AArch64, so no extra target flags are needed — only -ffp-contract=off
// (AArch64 compilers contract aggressively by default, which would break the
// cross-backend bit-identity invariant). Only built on AArch64.
#include "render/simd_kernels.h"

#define GSTG_SIMD_NS simd_neon
#define GSTG_SIMD_WIDTH 4
#include "render/simd_kernels.inl"
