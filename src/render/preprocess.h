// Preprocessing stage: per-Gaussian feature computation and culling
// (paper Fig. 1, left). Produces the ProjectedSplat stream consumed by
// binning, sorting and rasterization.
#pragma once

#include <vector>

#include "camera/camera.h"
#include "common/annotations.h"
#include "gaussian/cloud.h"
#include "gaussian/compressed.h"
#include "render/types.h"

namespace gstg {

/// Reusable preprocessing buffers: one projection slot per input Gaussian
/// plus the survivor flags. Owned by the persistent renderer's FrameContext
/// so the steady state allocates nothing.
struct PreprocessScratch {
  std::vector<ProjectedSplat> slots;
  std::vector<std::uint8_t> keep;
};

/// Projects and culls the cloud for `camera`:
///  - frustum-culls by view-space centre (near plane + guard band),
///  - computes depth, 2D mean, EWA 2D covariance (+0.3 dilation), conic,
///  - evaluates the SH colour for the camera->splat direction,
///  - assigns the footprint extent rho (3-sigma or opacity-aware),
///  - drops splats with degenerate covariance or opacity below 1/255.
/// Output order equals cloud order (restricted to survivors), making all
/// downstream stages deterministic. Updates `counters.input_gaussians` and
/// `counters.visible_gaussians`. The projection/conic math runs through the
/// SIMD kernel selected by `config.simd` (render/simd_kernels.h); every
/// backend produces bit-identical splats.
std::vector<ProjectedSplat> preprocess(const GaussianCloud& cloud, const Camera& camera,
                                       const RenderConfig& config, RenderCounters& counters);

/// preprocess() into a caller-owned survivor vector, reusing `scratch`.
/// `out` is cleared first; its capacity (and the scratch buffers) persist
/// across calls.
GSTG_HOT_NOALLOC
void preprocess_into(const GaussianCloud& cloud, const Camera& camera,
                     const RenderConfig& config, RenderCounters& counters,
                     std::vector<ProjectedSplat>& out, PreprocessScratch& scratch);

/// Per-worker float32 staging for the streamed-decode preprocess: one small
/// chunk cloud per worker (kDecodeBlock Gaussians each), reused across
/// frames so the steady state allocates nothing. The float32 form of the
/// whole cloud never exists — resident state stays fp16.
struct DecodeScratch {
  std::vector<GaussianCloud> chunks;
};

/// Gaussians decoded per block in the streamed preprocess. A multiple of
/// every SIMD lane width (1/4/8), so block boundaries land exactly where
/// the full-cloud kernel's lane blocks do — the partial (masked) lane block
/// only ever occurs at the worker-chunk end, in both paths, which is what
/// makes the streamed decode bit-identical to the up-front decode.
inline constexpr std::size_t kDecodeBlock = 512;

/// preprocess_into over the compressed resident form: per worker, decodes
/// kDecodeBlock-Gaussian blocks into `decode` scratch and runs the same
/// SIMD projection kernels over them. Output (splats, order, counters) is
/// bit-identical to preprocess_into(cloud.decode(), ...) — the
/// ResidencyMode::kVerify audit in core/renderer.h asserts this per frame.
GSTG_HOT_NOALLOC
void preprocess_compressed_into(const CompressedCloud& cloud, const Camera& camera,
                                const RenderConfig& config, RenderCounters& counters,
                                std::vector<ProjectedSplat>& out, PreprocessScratch& scratch,
                                DecodeScratch& decode);

}  // namespace gstg
