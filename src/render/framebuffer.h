// Linear-RGB framebuffer with PPM export and image-difference metrics
// (used by the lossless-equality tests and the fp16-fidelity experiment).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/vec.h"

namespace gstg {

/// Thrown for framebuffer I/O failures (PPM file cannot be opened or
/// written). Derives from std::runtime_error so existing catch sites keep
/// working; message is prefixed "Framebuffer: ". Size/shape misuse stays
/// std::invalid_argument (programmer error, not an I/O condition).
class FramebufferError : public std::runtime_error {
 public:
  explicit FramebufferError(const std::string& message)
      : std::runtime_error("Framebuffer: " + message) {}
};

class Framebuffer {
 public:
  Framebuffer(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Retargets the framebuffer to a new size, reusing the pixel storage
  /// when capacity allows (pixel contents are unspecified afterwards; every
  /// render pass overwrites all pixels). Used by the persistent renderer's
  /// FrameContext across cameras of different resolutions.
  void resize(int width, int height);

  [[nodiscard]] Vec3& at(int x, int y) { return pixels_[static_cast<std::size_t>(y) * width_ + x]; }
  [[nodiscard]] const Vec3& at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  [[nodiscard]] const std::vector<Vec3>& pixels() const { return pixels_; }
  std::vector<Vec3>& pixels() { return pixels_; }

  /// Writes an 8-bit binary PPM (P6). Values are clamped to [0,1]; no gamma.
  /// Throws FramebufferError when the file cannot be opened or written.
  void write_ppm(const std::string& path) const;

 private:
  int width_;
  int height_;
  std::vector<Vec3> pixels_;
};

/// Maximum absolute channel difference between two images of equal size.
float max_abs_diff(const Framebuffer& a, const Framebuffer& b);

/// PSNR in dB against peak 1.0; returns +inf for identical images.
double psnr(const Framebuffer& a, const Framebuffer& b);

}  // namespace gstg
