// Rendering metrics beyond the raw counters in render/types.h: windowed
// SSIM on luminance (the fp16-fidelity experiment, DESIGN.md section 6),
// per-channel PSNR, and the cross-frame sort-reuse statistics the temporal
// renderer (src/temporal/) reports per frame and per sequence.
#pragma once

#include <cstddef>

#include "render/framebuffer.h"

namespace gstg {

/// Cross-frame group-sort reuse counters of the temporal renderer. Per
/// group and frame there are three outcomes: the cached order is reused
/// verbatim (`groups_reused`), the cached order of the splats still in the
/// group is kept and only the newcomers are sorted and merged in
/// (`groups_patched`), or the cached relative order broke and the group
/// fell back to a full sort (`groups_resorted`). All fields are
/// deterministic functions of the frame sequence (reuse decisions do not
/// depend on thread count), so sequences can be compared across machines
/// like the other work counters.
struct TemporalStats {
  std::size_t frames = 0;            ///< frames merged into this record
  std::size_t groups_total = 0;      ///< non-empty groups examined
  std::size_t groups_trivial = 0;    ///< <= 1 entry: no sort either way
  std::size_t groups_reused = 0;     ///< cached order reused verbatim (no newcomers)
  std::size_t groups_patched = 0;    ///< stayer order kept, newcomers sorted + merged
  std::size_t groups_resorted = 0;   ///< full per-group sort ran (incl. cold frames)
  std::size_t groups_evicted = 0;    ///< membership churned among groups whose validity
                                     ///< walk completed (order-broken walks truncate
                                     ///< before churn is knowable and are not counted)
  std::size_t pairs_reused = 0;      ///< entries that rode a cached order (no sort)
  std::size_t pairs_sorted = 0;      ///< entries that went through a sort
  std::size_t verify_mismatches = 0; ///< kVerify: reused orders that failed the audit

  /// Share of non-trivial groups whose cached order survived (verbatim or
  /// patched) instead of being fully re-sorted.
  [[nodiscard]] double reuse_rate() const {
    const std::size_t decided = groups_reused + groups_patched + groups_resorted;
    return decided ? static_cast<double>(groups_reused + groups_patched) /
                         static_cast<double>(decided)
                   : 0.0;
  }
  /// Share of sort-pair work avoided: entries that would have been sorted
  /// but rode on a cached order instead.
  [[nodiscard]] double sorts_avoided_ratio() const {
    const std::size_t pairs = pairs_reused + pairs_sorted;
    return pairs ? static_cast<double>(pairs_reused) / static_cast<double>(pairs) : 0.0;
  }

  void merge(const TemporalStats& other) {
    frames += other.frames;
    groups_total += other.groups_total;
    groups_trivial += other.groups_trivial;
    groups_reused += other.groups_reused;
    groups_patched += other.groups_patched;
    groups_resorted += other.groups_resorted;
    groups_evicted += other.groups_evicted;
    pairs_reused += other.pairs_reused;
    pairs_sorted += other.pairs_sorted;
    verify_mismatches += other.verify_mismatches;
  }
};

/// Operating counters of the async render service (src/service/): queueing,
/// batching, scene-cache, and cross-frame-reuse behaviour of one
/// RenderService since construction. Queue/batch fields depend on request
/// timing and are operational telemetry; the request/cache/verify totals of
/// a fixed workload driven to completion are deterministic (bench_service
/// gates those).
struct ServiceStats {
  std::size_t requests_submitted = 0;  ///< accepted into the queue
  std::size_t requests_rejected = 0;   ///< typed rejections (validation, queue full, shutdown)
  std::size_t requests_completed = 0;  ///< responses delivered with status kOk
  std::size_t requests_failed = 0;     ///< responses delivered with an error status
  std::size_t batches = 0;             ///< scheduler dispatches (>= 1 request each)
  std::size_t batched_requests = 0;    ///< requests that shared a batch with another
  std::size_t max_batch = 0;           ///< largest batch dispatched
  std::size_t peak_queue_depth = 0;    ///< high-water mark of the bounded queue
  std::size_t cache_hits = 0;          ///< scene acquisitions served from the cache
  std::size_t cache_misses = 0;        ///< acquisitions that triggered a load
  std::size_t cache_evictions = 0;     ///< resident scenes dropped by the LRU policy
  std::size_t sessions = 0;            ///< currently resident temporal sessions
  std::size_t sessions_evicted = 0;    ///< idle sessions dropped by the session cap
  std::size_t reuse_pairs = 0;         ///< TemporalStats::pairs_reused across sessions
  std::size_t sorted_pairs = 0;        ///< TemporalStats::pairs_sorted across sessions
  std::size_t verify_mismatches = 0;   ///< verify-gate renders that diverged (must be 0)
  std::size_t fast_tier_completed = 0;  ///< kOk responses rendered by the sortless fast tier

  /// Share of sort-pair work the per-session temporal caches avoided.
  [[nodiscard]] double reuse_pair_ratio() const {
    const std::size_t pairs = reuse_pairs + sorted_pairs;
    return pairs ? static_cast<double>(reuse_pairs) / static_cast<double>(pairs) : 0.0;
  }
};

/// Mean SSIM over 8x8 windows (stride 4) on Rec.601 luminance, standard
/// constants C1 = (0.01)^2 and C2 = (0.03)^2 with a peak of 1.0. Returns a
/// value in [-1, 1]; identical images score exactly 1. Throws
/// std::invalid_argument on size mismatch or images smaller than a window.
double ssim(const Framebuffer& a, const Framebuffer& b);

/// Per-channel PSNR (dB against peak 1.0); returns +inf for identical
/// channels.
struct ChannelPsnr {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;
};
ChannelPsnr channel_psnr(const Framebuffer& a, const Framebuffer& b);

}  // namespace gstg
