// Image-quality metrics beyond plain PSNR: windowed SSIM on luminance,
// used by the fp16-fidelity experiment (DESIGN.md section 6) and available
// to library users validating lossless claims on real checkpoints.
#pragma once

#include "render/framebuffer.h"

namespace gstg {

/// Mean SSIM over 8x8 windows (stride 4) on Rec.601 luminance, standard
/// constants C1 = (0.01)^2 and C2 = (0.03)^2 with a peak of 1.0. Returns a
/// value in [-1, 1]; identical images score exactly 1. Throws
/// std::invalid_argument on size mismatch or images smaller than a window.
double ssim(const Framebuffer& a, const Framebuffer& b);

/// Per-channel PSNR (dB against peak 1.0); returns +inf for identical
/// channels.
struct ChannelPsnr {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;
};
ChannelPsnr channel_psnr(const Framebuffer& a, const Framebuffer& b);

}  // namespace gstg
