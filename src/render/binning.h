// Tile identification ("binning"): assigns every projected splat to the
// grid cells its footprint intersects, using one of the three boundary
// methods (AABB / OBB / Ellipse). The same routine serves the baseline's
// tile grid and GS-TG's group grid — a group is just a larger cell.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "render/types.h"

namespace gstg {

/// A uniform grid of square cells covering the image.
struct CellGrid {
  int cell_size = 16;
  int cells_x = 0;
  int cells_y = 0;
  int image_width = 0;
  int image_height = 0;

  static CellGrid over_image(int image_width, int image_height, int cell_size);

  [[nodiscard]] int cell_count() const { return cells_x * cells_y; }
  [[nodiscard]] int cell_index(int cx, int cy) const { return cy * cells_x + cx; }
};

/// CSR lists: splats_of_cell(c) = splat_ids[offsets[c] .. offsets[c+1]).
/// Entries index into the ProjectedSplat vector passed to bin_splats.
struct BinnedSplats {
  CellGrid grid;
  std::vector<std::uint32_t> offsets;    // grid.cell_count() + 1
  std::vector<std::uint32_t> splat_ids;  // tile_pairs entries

  [[nodiscard]] std::span<const std::uint32_t> cell_list(int cell) const {
    return {splat_ids.data() + offsets[cell], offsets[cell + 1] - offsets[cell]};
  }
  [[nodiscard]] std::size_t cell_size_of(int cell) const {
    return offsets[cell + 1] - offsets[cell];
  }
};

/// Reusable binning scratch: the per-cell counter array that doubles as the
/// scatter cursors (accessed through std::atomic_ref inside bin_splats).
/// Owned by the persistent renderer's FrameContext.
struct BinningScratch {
  std::vector<std::uint32_t> cell_counts;
};

/// Bins splats into grid cells. Candidate cells come from the footprint's
/// axis-aligned bounding box; OBB/Ellipse refine each candidate (the
/// GSCore/FlashGS strategy), so tiles(Ellipse) ⊆ tiles(OBB) ⊆ tiles(AABB)
/// holds by construction. Updates boundary_tests, tile_pairs and
/// splats_multi_tile in `counters`.
BinnedSplats bin_splats(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                        Boundary boundary, std::size_t threads, RenderCounters& counters);

/// bin_splats() into caller-owned CSR storage, reusing `scratch`. `out`'s
/// vectors are resized in place; in the steady state (same grid, same pair
/// count) no allocation happens.
void bin_splats_into(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                     Boundary boundary, std::size_t threads, RenderCounters& counters,
                     BinnedSplats& out, BinningScratch& scratch);

/// Cell range of the footprint's AABB clipped to the grid (exposed for the
/// bitmask generator, which iterates the same candidates inside a group).
TileRange candidate_cells(const ProjectedSplat& splat, const CellGrid& grid);

/// Calls visit(cell_index) for every cell the splat's footprint intersects
/// under `boundary`, enumerating candidates from the AABB range; returns the
/// number of boundary tests performed. Shared by bin_splats and the global
/// radix-sort path so both enumerate identical hit sets in identical order.
template <typename Visit>
std::size_t for_each_hit_cell(const ProjectedSplat& splat, const CellGrid& grid,
                              Boundary boundary, Visit&& visit) {
  const TileRange range = candidate_cells(splat, grid);
  if (range.empty()) return 0;
  std::size_t tests = 0;

  if (boundary == Boundary::kAabb) {
    // The AABB method *is* the candidate enumeration: every cell overlapping
    // the bounding box is a hit. Each candidate still costs one range check.
    for (int cy = range.ty0; cy < range.ty1; ++cy) {
      for (int cx = range.tx0; cx < range.tx1; ++cx) {
        ++tests;
        visit(grid.cell_index(cx, cy));
      }
    }
    return tests;
  }

  const Ellipse footprint = splat.footprint();
  const Obb obb = Obb::from_ellipse(footprint);  // used by kObb only
  for (int cy = range.ty0; cy < range.ty1; ++cy) {
    for (int cx = range.tx0; cx < range.tx1; ++cx) {
      const Rect rect = tile_rect(cx, cy, grid.cell_size, grid.image_width, grid.image_height);
      ++tests;
      const bool hit = boundary == Boundary::kObb ? obb_intersects(obb, rect)
                                                  : ellipse_intersects(footprint, rect);
      if (hit) visit(grid.cell_index(cx, cy));
    }
  }
  return tests;
}

}  // namespace gstg
