// Tile identification ("binning"): assigns every projected splat to the
// grid cells its footprint intersects, using one of the three boundary
// methods (AABB / OBB / Ellipse). The same routine serves the baseline's
// tile grid and GS-TG's group grid — a group is just a larger cell.
//
// Two strategies produce the same per-cell hit sets (BinningMode):
//
//   kFlat          one boundary test per fine-cell candidate of the
//                  footprint's AABB range — the original single-level pass.
//   kHierarchical  coarse cells (kCoarseCellFactor fine cells on a side)
//                  are binned first; only the non-empty coarse cells are
//                  expanded into the fine CSR lists. Splats covering at
//                  least kCoarseTestMinCells coarse cells get a three-way
//                  coarse classification — miss (prunes the whole window
//                  of fine candidates; sound because every boundary test
//                  is monotone under rectangle containment), contained
//                  (the coarse rect sits inside the footprint, so every
//                  fine candidate under it is emitted untested), or
//                  partial (fine candidates tested per cell). Smaller
//                  footprints skip coarse testing outright — the fine pass
//                  filters them at no extra cost — and two hit proofs
//                  avoid fine tests as well: a splat whose AABB provably
//                  sits inside one fine cell, and any cell whose rectangle
//                  contains the footprint centre (the minimum Mahalanobis
//                  distance there is zero). Fine binning is parallel over
//                  coarse cells with no atomics — each fine cell belongs
//                  to exactly one coarse cell — so the pass scales with
//                  the non-empty portion of the grid rather than with
//                  candidates × resolution.
//   kAuto          hierarchical when the grid has at least
//                  kAutoHierarchicalMinCells cells, flat otherwise (tiny
//                  grids cannot amortise the coarse pass).
//   kVerify        hierarchical, plus a flat reference run; both CSR
//                  outputs are canonically (depth, index)-sorted per cell
//                  and must be bit-identical, else BinningError is thrown.
//
// Counter semantics: tile_pairs and splats_multi_tile are identical across
// modes (the hit sets are). boundary_tests measures the tests the chosen
// strategy actually performed, so hierarchical reports fewer on real
// scenes; the new coarse_pairs counter sizes the intermediate coarse CSR.
// kVerify reports hierarchical's accounting (the flat reference run's is
// discarded).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/runconfig.h"
#include "render/types.h"

namespace gstg {

/// Typed failure of the binning stage: CSR index-space overflow at full
/// scale, a cell grid whose cell count exceeds int, or a kVerify mismatch.
/// Distinct from std::invalid_argument (caller misuse) the same way
/// PlyError marks bad input data.
class BinningError : public std::runtime_error {
 public:
  explicit BinningError(const std::string& message)
      : std::runtime_error("binning: " + message) {}
};

/// Coarse cell edge length in fine cells for the hierarchical pass (a
/// coarse cell covers kCoarseCellFactor² fine cells).
inline constexpr int kCoarseCellFactor = 2;

/// Minimum coarse-cell count of a splat's candidate range before the
/// hierarchical pass boundary-tests coarse rectangles. Below this the
/// classification cannot pay for itself: on dense footprints nearly every
/// coarse candidate intersects, so each coarse test would add work the
/// windowed fine tests perform anyway. Small footprints are emitted to
/// their coarse cells untested and filtered at the fine level only.
inline constexpr int kCoarseTestMinCells = 16;

/// Grid size at which BinningMode::kAuto switches to the hierarchical pass.
inline constexpr int kAutoHierarchicalMinCells = 512;

/// A uniform grid of square cells covering the image.
struct CellGrid {
  int cell_size = 16;
  int cells_x = 0;
  int cells_y = 0;
  int image_width = 0;
  int image_height = 0;

  /// Throws std::invalid_argument on non-positive dimensions and
  /// BinningError when cells_x * cells_y would overflow the int cell-index
  /// space (full-scale guard: cell_count() must stay exact).
  static CellGrid over_image(int image_width, int image_height, int cell_size);

  [[nodiscard]] int cell_count() const { return cells_x * cells_y; }
  [[nodiscard]] int cell_index(int cx, int cy) const { return cy * cells_x + cx; }
};

/// CSR lists: splats_of_cell(c) = splat_ids[offsets[c] .. offsets[c+1]).
/// Entries index into the ProjectedSplat vector passed to bin_splats.
struct BinnedSplats {
  CellGrid grid;
  std::vector<std::uint32_t> offsets;    // grid.cell_count() + 1
  std::vector<std::uint32_t> splat_ids;  // tile_pairs entries

  [[nodiscard]] std::span<const std::uint32_t> cell_list(int cell) const {
    return {splat_ids.data() + offsets[cell], offsets[cell + 1] - offsets[cell]};
  }
  [[nodiscard]] std::size_t cell_size_of(int cell) const {
    return offsets[cell + 1] - offsets[cell];
  }
};

/// Reusable binning scratch, owned by the persistent renderer's
/// FrameContext. cell_counts doubles as the flat pass's scatter cursors
/// (accessed through std::atomic_ref); the remaining vectors carry the
/// hierarchical pass's coarse CSR, per-splat classification, and the
/// kVerify reference run. All grow to the workload once and are then
/// reused allocation-free.
struct BinningScratch {
  std::vector<std::uint32_t> cell_counts;
  // Hierarchical two-level state (untouched by the flat pass):
  std::vector<std::uint32_t> coarse_counts;   ///< per coarse cell, then cursors
  std::vector<std::uint32_t> coarse_offsets;  ///< coarse CSR offsets
  std::vector<std::uint32_t> coarse_ids;      ///< coarse CSR (splat ids)
  std::vector<std::uint8_t> coarse_flags;     ///< per coarse record: 1 = contained
  std::vector<TileRange> fine_ranges;         ///< per splat: clipped fine candidate range
  std::vector<std::uint8_t> kinds;            ///< per splat: footprint classification
  std::vector<std::uint32_t> fine_hits;       ///< per splat: fine cells hit
  // kVerify state:
  BinnedSplats reference;                    ///< flat reference CSR
  std::vector<std::uint32_t> ref_counts;     ///< reference run's count array
  std::vector<std::uint32_t> sorted_a, sorted_b;  ///< canonically sorted copies
};

/// Resolves kAuto against the grid (hierarchical from
/// kAutoHierarchicalMinCells cells up); other modes pass through.
[[nodiscard]] BinningMode resolve_binning_mode(BinningMode mode, const CellGrid& grid);

/// CSR offsets (counts.size() + 1 entries) from per-cell counts; returns
/// the total. Throws BinningError when the total overflows the 32-bit CSR
/// index space instead of silently wrapping and scattering out of bounds —
/// the regime full-scale scenes can reach. Exposed for the overflow
/// regression tests (an in-process 2^32-pair workload is not testable).
std::uint32_t csr_offsets_from_counts(std::span<const std::uint32_t> counts,
                                      std::vector<std::uint32_t>& offsets);

/// Bins splats into grid cells. Candidate cells come from the footprint's
/// axis-aligned bounding box; OBB/Ellipse refine each candidate (the
/// GSCore/FlashGS strategy), so tiles(Ellipse) ⊆ tiles(OBB) ⊆ tiles(AABB)
/// holds by construction — for every BinningMode. Updates boundary_tests,
/// tile_pairs, splats_multi_tile and coarse_pairs in `counters`.
BinnedSplats bin_splats(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                        Boundary boundary, std::size_t threads, RenderCounters& counters,
                        BinningMode mode = BinningMode::kFlat);

/// bin_splats() into caller-owned CSR storage, reusing `scratch`. `out`'s
/// vectors are resized in place; in the steady state (same grid, same pair
/// count) no allocation happens. kVerify additionally allocates per call
/// for the canonical-sort copies — it is an audit mode.
GSTG_HOT_NOALLOC
void bin_splats_into(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                     Boundary boundary, std::size_t threads, RenderCounters& counters,
                     BinnedSplats& out, BinningScratch& scratch,
                     BinningMode mode = BinningMode::kFlat);

/// Cell range of the footprint's AABB clipped to the grid (exposed for the
/// bitmask generator, which iterates the same candidates inside a group).
/// The division and clamping happen in the float domain before any cast:
/// degenerate splats (huge rho, non-finite mean/conic) yield the full grid
/// or the empty range instead of undefined float→int conversions. A
/// non-finite AABB that is not an honest [-inf, +inf] cover (any NaN
/// coordinate) is rejected as empty.
TileRange candidate_cells(const ProjectedSplat& splat, const CellGrid& grid);

/// Calls visit(cell_index) for every cell the splat's footprint intersects
/// under `boundary`, enumerating candidates from the AABB range; returns the
/// number of boundary tests performed. Shared by flat bin_splats and the
/// global radix-sort path so both enumerate identical hit sets in identical
/// order; the hierarchical pass reproduces exactly this hit set per cell.
template <typename Visit>
std::size_t for_each_hit_cell(const ProjectedSplat& splat, const CellGrid& grid,
                              Boundary boundary, Visit&& visit) {
  const TileRange range = candidate_cells(splat, grid);
  if (range.empty()) return 0;
  std::size_t tests = 0;

  if (boundary == Boundary::kAabb) {
    // The AABB method *is* the candidate enumeration: every cell overlapping
    // the bounding box is a hit. Each candidate still costs one range check.
    for (int cy = range.ty0; cy < range.ty1; ++cy) {
      for (int cx = range.tx0; cx < range.tx1; ++cx) {
        ++tests;
        visit(grid.cell_index(cx, cy));
      }
    }
    return tests;
  }

  const Ellipse footprint = splat.footprint();
  const Obb obb = Obb::from_ellipse(footprint);  // used by kObb only
  for (int cy = range.ty0; cy < range.ty1; ++cy) {
    for (int cx = range.tx0; cx < range.tx1; ++cx) {
      const Rect rect = tile_rect(cx, cy, grid.cell_size, grid.image_width, grid.image_height);
      ++tests;
      const bool hit = boundary == Boundary::kObb ? obb_intersects(obb, rect)
                                                  : ellipse_intersects(footprint, rect);
      if (hit) visit(grid.cell_index(cx, cy));
    }
  }
  return tests;
}

}  // namespace gstg
