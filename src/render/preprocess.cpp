#include "render/preprocess.h"

#include "common/parallel.h"
#include "render/simd_kernels.h"
#include "telemetry/trace.h"

namespace gstg {

std::vector<ProjectedSplat> preprocess(const GaussianCloud& cloud, const Camera& camera,
                                       const RenderConfig& config, RenderCounters& counters) {
  std::vector<ProjectedSplat> out;
  PreprocessScratch scratch;
  preprocess_into(cloud, camera, config, counters, out, scratch);
  return out;
}

void preprocess_into(const GaussianCloud& cloud, const Camera& camera,
                     const RenderConfig& config, RenderCounters& counters,
                     std::vector<ProjectedSplat>& out, PreprocessScratch& scratch) {
  const std::size_t n = cloud.size();
  counters.input_gaussians += n;

  // Slot-per-input so workers never contend; compacted afterwards. The
  // scratch buffers keep their capacity across frames.
  std::vector<ProjectedSplat>& slots = scratch.slots;
  if (slots.size() < n) slots.resize(n);
  std::vector<std::uint8_t>& keep = scratch.keep;
  keep.assign(n, 0);

  // Projection/conic math runs through the SIMD kernel table; backend is
  // resolved once per frame, and exact per-lane arithmetic makes the output
  // independent of the lane width (common/simd.h).
  const SimdKernels& kernels = simd_kernels(resolve_simd_backend(config.simd.backend));
  PreprocessChunkArgs args;
  args.cloud = &cloud;
  args.camera = &camera;
  args.opacity_aware_rho = config.opacity_aware_rho;
  args.cam_pos = camera.position();
  args.slots = slots.data();
  args.keep = keep.data();

  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    GSTG_SPAN("preprocess_chunk");
    kernels.preprocess_chunk(args, lo, hi);
  }, config.threads);

  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(slots[i]);
  }
  counters.visible_gaussians += out.size();
}

void preprocess_compressed_into(const CompressedCloud& cloud, const Camera& camera,
                                const RenderConfig& config, RenderCounters& counters,
                                std::vector<ProjectedSplat>& out, PreprocessScratch& scratch,
                                DecodeScratch& decode) {
  const std::size_t n = cloud.size();
  counters.input_gaussians += n;

  std::vector<ProjectedSplat>& slots = scratch.slots;
  if (slots.size() < n) slots.resize(n);
  std::vector<std::uint8_t>& keep = scratch.keep;
  keep.assign(n, 0);

  // One chunk cloud per worker index, sized before the parallel region so
  // the workers never touch the vector-of-clouds structure itself. The
  // chunk vectors grow to kDecodeBlock capacity on the first frame and are
  // reused thereafter (zero steady-state allocations).
  const std::size_t workers = planned_worker_count(n, config.threads);
  if (decode.chunks.size() < workers) decode.chunks.resize(workers);

  const SimdKernels& kernels = simd_kernels(resolve_simd_backend(config.simd.backend));
  const Vec3 cam_pos = camera.position();

  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    GSTG_SPAN("preprocess_compressed_chunk");
    GaussianCloud& chunk = decode.chunks[worker];
    // Stream kDecodeBlock-sized blocks: decode into the worker's chunk
    // cloud, then run the kernel with chunk-local indices and slot/keep
    // pointers offset to the block's absolute position. Block starts are
    // lane-aligned relative to the worker chunk (512 is a multiple of every
    // lane width), so the masked partial lane block occurs exactly where
    // the full-cloud path has it: at the worker-chunk end.
    for (std::size_t slo = lo; slo < hi; slo += kDecodeBlock) {
      const std::size_t send = slo + kDecodeBlock < hi ? slo + kDecodeBlock : hi;
      cloud.decode_range(slo, send, chunk);

      PreprocessChunkArgs args;
      args.cloud = &chunk;
      args.camera = &camera;
      args.opacity_aware_rho = config.opacity_aware_rho;
      args.cam_pos = cam_pos;
      args.slots = slots.data() + slo;
      args.keep = keep.data() + slo;
      kernels.preprocess_chunk(args, 0, send - slo);

      // The kernel stamped chunk-local indices; restore absolute ones so
      // binning/sorting/temporal reuse see the real cloud indices.
      for (std::size_t i = slo; i < send; ++i) {
        if (keep[i]) slots[i].index = static_cast<std::uint32_t>(i);
      }
    }
  }, config.threads);

  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(slots[i]);
  }
  counters.visible_gaussians += out.size();
}

}  // namespace gstg
