#include "render/preprocess.h"

#include <atomic>
#include <cmath>

#include "camera/ewa.h"
#include "common/parallel.h"
#include "gaussian/sh.h"

namespace gstg {

std::vector<ProjectedSplat> preprocess(const GaussianCloud& cloud, const Camera& camera,
                                       const RenderConfig& config, RenderCounters& counters) {
  std::vector<ProjectedSplat> out;
  PreprocessScratch scratch;
  preprocess_into(cloud, camera, config, counters, out, scratch);
  return out;
}

void preprocess_into(const GaussianCloud& cloud, const Camera& camera,
                     const RenderConfig& config, RenderCounters& counters,
                     std::vector<ProjectedSplat>& out, PreprocessScratch& scratch) {
  const std::size_t n = cloud.size();
  counters.input_gaussians += n;

  // Slot-per-input so workers never contend; compacted afterwards. The
  // scratch buffers keep their capacity across frames.
  std::vector<ProjectedSplat>& slots = scratch.slots;
  if (slots.size() < n) slots.resize(n);
  std::vector<std::uint8_t>& keep = scratch.keep;
  keep.assign(n, 0);
  const Vec3 cam_pos = camera.position();

  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) {
      const Vec3 view = camera.to_view(cloud.position(i));
      if (!camera.in_frustum(view)) continue;

      const float opacity = cloud.opacity(i);
      if (opacity < kAlphaThreshold) continue;  // can never contribute

      Sym2 cov = project_covariance(camera, cloud.covariance3d(i), view);
      if (cov.determinant() <= 0.0f) continue;  // numerically degenerate

      ProjectedSplat s;
      s.center = camera.view_to_pixel(view);
      s.cov = cov;
      s.conic = inverse(cov);
      s.depth = view.z;
      s.opacity = opacity;
      s.rho = config.opacity_aware_rho ? opacity_aware_rho(opacity) : kThreeSigmaRho;
      if (s.rho <= 0.0f) continue;
      s.rgb = eval_sh_color(cloud.sh_degree(), cloud.sh(i), normalized(cloud.position(i) - cam_pos));
      s.index = static_cast<std::uint32_t>(i);
      slots[i] = s;
      keep[i] = 1;
    }
  }, config.threads);

  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(slots[i]);
  }
  counters.visible_gaussians += out.size();
}

}  // namespace gstg
