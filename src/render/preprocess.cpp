#include "render/preprocess.h"

#include "common/parallel.h"
#include "render/simd_kernels.h"

namespace gstg {

std::vector<ProjectedSplat> preprocess(const GaussianCloud& cloud, const Camera& camera,
                                       const RenderConfig& config, RenderCounters& counters) {
  std::vector<ProjectedSplat> out;
  PreprocessScratch scratch;
  preprocess_into(cloud, camera, config, counters, out, scratch);
  return out;
}

void preprocess_into(const GaussianCloud& cloud, const Camera& camera,
                     const RenderConfig& config, RenderCounters& counters,
                     std::vector<ProjectedSplat>& out, PreprocessScratch& scratch) {
  const std::size_t n = cloud.size();
  counters.input_gaussians += n;

  // Slot-per-input so workers never contend; compacted afterwards. The
  // scratch buffers keep their capacity across frames.
  std::vector<ProjectedSplat>& slots = scratch.slots;
  if (slots.size() < n) slots.resize(n);
  std::vector<std::uint8_t>& keep = scratch.keep;
  keep.assign(n, 0);

  // Projection/conic math runs through the SIMD kernel table; backend is
  // resolved once per frame, and exact per-lane arithmetic makes the output
  // independent of the lane width (common/simd.h).
  const SimdKernels& kernels = simd_kernels(resolve_simd_backend(config.simd.backend));
  PreprocessChunkArgs args;
  args.cloud = &cloud;
  args.camera = &camera;
  args.opacity_aware_rho = config.opacity_aware_rho;
  args.cam_pos = camera.position();
  args.slots = slots.data();
  args.keep = keep.data();

  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    kernels.preprocess_chunk(args, lo, hi);
  }, config.threads);

  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(slots[i]);
  }
  counters.visible_gaussians += out.size();
}

}  // namespace gstg
