// Packed-key stable LSD radix sorting, shared by every sorting path:
// the baseline per-tile sort (render/sort.h), the GS-TG group sort
// (core/grouping.h), and the GPU-style global duplicated-key sort
// (render/global_sort.h). Positive IEEE floats order identically to their
// bit patterns, so a (depth_bits, index) 64-bit key sorted ascending
// reproduces the (depth, original index) comparison order exactly — the
// radix and comparison paths are interchangeable and tested against each
// other.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/annotations.h"

namespace gstg {

/// Sorting algorithm selection for the per-cell / per-group sorts.
/// kAuto picks radix for lists of at least kRadixSortCutoff entries and
/// comparison sort below it (the radix histogram overhead dominates on tiny
/// lists); both produce identical orderings.
enum class SortAlgo : std::uint8_t { kAuto, kComparison, kRadix };

/// List length at which kAuto switches from comparison sort to radix sort.
inline constexpr std::size_t kRadixSortCutoff = 64;

/// True when `algo` resolves to the radix path for an n-entry list.
[[nodiscard]] constexpr bool use_radix_sort(SortAlgo algo, std::size_t n) {
  return algo == SortAlgo::kRadix || (algo == SortAlgo::kAuto && n >= kRadixSortCutoff);
}

/// Monotonic bit pattern of a positive float: d0 < d1 implies
/// bits(d0) < bits(d1). Depths are positive after near-plane culling.
[[nodiscard]] std::uint32_t depth_bits(float depth);

/// Packed key ordering by (depth, index) lexicographically: the depth's
/// monotonic bits shifted above the tiebreak index. Sorting these keys
/// ascending is exactly the comparison the per-cell/per-group sorts
/// perform. `index_bits` (default 32, the full width) compacts the index
/// half so the radix sort can skip impossible high digits — index must be
/// < 2^index_bits and depth_bits + index_bits must fit in 64.
[[nodiscard]] std::uint64_t pack_depth_index_key(float depth, std::uint32_t index,
                                                int index_bits = 32);

/// Index (low) half of a key packed with the default 32-bit index width.
[[nodiscard]] constexpr std::uint32_t key_index(std::uint64_t key) {
  return static_cast<std::uint32_t>(key);
}

/// Number of 8-bit LSD passes needed to cover the low `key_bits` bits.
[[nodiscard]] constexpr int radix_pass_count(int key_bits) { return (key_bits + 7) / 8; }

/// Width of a compacted (depth, index) key whose largest index is
/// `max_index`: the full 32 depth bits plus just enough index bits. The
/// sorts compute this once per call so the radix path skips passes that
/// can only see zero digits.
[[nodiscard]] constexpr int depth_index_key_bits(std::uint32_t max_index) {
  const int index_bits = std::bit_width(max_index);
  return 32 + (index_bits < 1 ? 1 : index_bits);
}

/// A sort record: 64-bit key plus a 64-bit payload that rides along
/// (the GS-TG group sort carries the tile bitmask, the global sort the
/// duplicated splat id).
struct KeyValue {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

/// Stable LSD radix sort of keys[0..n) ascending, 8-bit digits, processing
/// only the low `key_bits` bits (all higher bits must be zero). `tmp` is
/// grown as needed and reused across calls; the result is left in `keys`.
GSTG_HOT_NOALLOC
void radix_sort_keys(std::vector<std::uint64_t>& keys, std::vector<std::uint64_t>& tmp,
                     std::size_t n, int key_bits);

/// Stable LSD radix sort of items[0..n) by key ascending, permuting the
/// payloads alongside. Same contract as radix_sort_keys.
GSTG_HOT_NOALLOC
void radix_sort_pairs(std::vector<KeyValue>& items, std::vector<KeyValue>& tmp, std::size_t n,
                      int key_bits);

/// Reusable buffers for one worker's sorting: packed keys (cell-list path)
/// and key/payload records (group path), plus the comparison-volume
/// accumulator merged deterministically after the parallel region.
struct SortWorkerScratch {
  std::vector<std::uint64_t> keys, keys_tmp;
  std::vector<KeyValue> items, items_tmp;
  double volume = 0.0;
  std::size_t pairs = 0;
};

/// Per-frame sorting scratch: one slot per parallel worker, sized from
/// planned_worker_count so worker indices can never alias. Reused across
/// frames by the persistent renderer (zero steady-state allocations).
struct SortScratch {
  std::vector<SortWorkerScratch> workers;

  /// Ensures `worker_count` slots exist and zeroes their accumulators.
  void prepare(std::size_t worker_count) {
    if (workers.size() < worker_count) workers.resize(worker_count);
    for (SortWorkerScratch& w : workers) {
      w.volume = 0.0;
      w.pairs = 0;
    }
  }
};

}  // namespace gstg
