#include "render/framebuffer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace gstg {

Framebuffer::Framebuffer(int width, int height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Framebuffer: non-positive size");
  }
  pixels_.assign(static_cast<std::size_t>(width) * height, Vec3{});
}

void Framebuffer::resize(int width, int height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Framebuffer: non-positive size");
  }
  width_ = width;
  height_ = height;
  pixels_.resize(static_cast<std::size_t>(width) * height);
}

void Framebuffer::write_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw FramebufferError("cannot open " + path);
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Vec3& c = at(x, y);
      row[3 * x + 0] = static_cast<unsigned char>(std::clamp(c.x, 0.0f, 1.0f) * 255.0f + 0.5f);
      row[3 * x + 1] = static_cast<unsigned char>(std::clamp(c.y, 0.0f, 1.0f) * 255.0f + 0.5f);
      row[3 * x + 2] = static_cast<unsigned char>(std::clamp(c.z, 0.0f, 1.0f) * 255.0f + 0.5f);
    }
    out.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw FramebufferError("write failure for " + path);
}

float max_abs_diff(const Framebuffer& a, const Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    worst = std::max({worst, std::fabs(a.pixels()[i].x - b.pixels()[i].x),
                      std::fabs(a.pixels()[i].y - b.pixels()[i].y),
                      std::fabs(a.pixels()[i].z - b.pixels()[i].z)});
  }
  return worst;
}

double psnr(const Framebuffer& a, const Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("psnr: size mismatch");
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    const Vec3 d = a.pixels()[i] - b.pixels()[i];
    mse += static_cast<double>(d.x) * static_cast<double>(d.x) +
           static_cast<double>(d.y) * static_cast<double>(d.y) +
           static_cast<double>(d.z) * static_cast<double>(d.z);
  }
  mse /= static_cast<double>(a.pixels().size()) * 3.0;
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

}  // namespace gstg
