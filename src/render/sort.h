// Tile-wise (or group-wise) depth sorting: orders every cell's splat list
// front-to-back. The per-cell list sizes are the paper's "redundant sorting"
// quantity — a splat in k cells is sorted k times.
#pragma once

#include <span>

#include "common/annotations.h"
#include "render/binning.h"
#include "render/sort_keys.h"
#include "render/types.h"

namespace gstg {

/// Sorts each cell list of `bins` in place by (depth, original index)
/// ascending — the index tiebreak makes the order total and deterministic.
/// `algo` selects comparison or packed-key radix sorting per list (identical
/// orderings; see render/sort_keys.h). `scratch` reuses one SortScratch
/// across frames; pass nullptr for a self-contained call. Accumulates
/// sort_pairs and sort_comparison_volume into `counters`.
GSTG_HOT_NOALLOC
void sort_cell_lists(BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                     std::size_t threads, RenderCounters& counters,
                     SortAlgo algo = SortAlgo::kAuto, SortScratch* scratch = nullptr);

}  // namespace gstg
