// Baseline tile-based 3D-GS rendering pipeline (paper Fig. 1):
//   preprocessing (features + culling + tile identification)
//   -> tile-wise sorting -> tile-wise rasterization.
// This is the reference against which GS-TG is compared, and the source of
// the profiling data behind Figs. 3, 5, 7 and Table I.
#pragma once

#include "camera/camera.h"
#include "gaussian/cloud.h"
#include "render/framebuffer.h"
#include "render/quality.h"
#include "render/types.h"

namespace gstg {

/// Output of a full render: image, per-stage wall-clock times, counters.
struct RenderResult {
  Framebuffer image;
  StageTimes times;
  RenderCounters counters;
  /// PipelineMode::kVerify only: PSNR/SSIM of the shipped sortless image
  /// against the exact reference (quality.measured stays false otherwise).
  ImageQuality quality;
};

/// Runs the full baseline pipeline. Deterministic for a fixed input
/// regardless of thread count. `config.pipeline` selects the blending
/// discipline: kSortless skips the per-tile sort (sort_pairs stays 0) and
/// blends order-independently; kVerify ships the sortless image and fills
/// in RenderResult::quality against the exact reference.
RenderResult render_baseline(const GaussianCloud& cloud, const Camera& camera,
                             const RenderConfig& config);

}  // namespace gstg
