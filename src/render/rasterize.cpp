#include "render/rasterize.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "render/simd_kernels.h"

namespace gstg {

TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb, SimdPolicy simd) {
  TileRasterScratch scratch;
  return rasterize_tile(splats, order, x0, y0, x1, y1, fb, scratch, simd);
}

TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb, TileRasterScratch& scratch,
                               SimdPolicy simd) {
  if (x0 < 0 || y0 < 0 || x1 > fb.width() || y1 > fb.height() || x1 <= x0 || y1 <= y0) {
    throw std::invalid_argument("rasterize_tile: block out of bounds");
  }
  const SimdKernels& kernels = simd_kernels(resolve_simd_backend(simd.backend));
  return kernels.rasterize_tile(splats, order, x0, y0, x1, y1, fb, scratch, simd.exp_mode);
}

void rasterize_all(const BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                   Framebuffer& fb, std::size_t threads, RenderCounters& counters,
                   SimdPolicy simd) {
  const CellGrid& grid = bins.grid;
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());

  // Resolve once per stage (not per tile): one env read / probe, then a
  // concrete backend for every worker.
  const SimdPolicy resolved{resolve_simd_backend(simd.backend), simd.exp_mode};

  // Per-worker stat slots sized from the exact worker count (no aliasing),
  // merged in worker order after the join.
  const std::size_t workers = planned_worker_count(cells, threads);
  std::vector<TileRasterStats> per_worker(workers);

  parallel_for_chunks(0, cells, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    TileRasterStats local;
    TileRasterScratch scratch;
    for (std::size_t c = lo; c < hi; ++c) {
      const int cx = static_cast<int>(c) % grid.cells_x;
      const int cy = static_cast<int>(c) / grid.cells_x;
      const int x0 = cx * grid.cell_size;
      const int y0 = cy * grid.cell_size;
      const int x1 = std::min(x0 + grid.cell_size, grid.image_width);
      const int y1 = std::min(y0 + grid.cell_size, grid.image_height);
      local.accumulate(rasterize_tile(splats, bins.cell_list(static_cast<int>(c)), x0, y0, x1,
                                      y1, fb, scratch, resolved));
    }
    per_worker[worker].accumulate(local);
  }, threads);

  for (const TileRasterStats& s : per_worker) {
    counters.alpha_computations += s.alpha_computations;
    counters.blend_ops += s.blend_ops;
    counters.early_exit_pixels += s.early_exit_pixels;
    counters.pixel_list_work += s.pixel_list_work;
    counters.total_pixels += s.pixels;
  }
}

TileRasterStats rasterize_tile_sortless(std::span<const ProjectedSplat> splats,
                                        std::span<const std::uint32_t> order, int x0, int y0,
                                        int x1, int y1, Framebuffer& fb,
                                        SortlessRasterScratch& scratch, SimdPolicy simd) {
  if (x0 < 0 || y0 < 0 || x1 > fb.width() || y1 > fb.height() || x1 <= x0 || y1 <= y0) {
    throw std::invalid_argument("rasterize_tile_sortless: block out of bounds");
  }
  const SimdKernels& kernels = simd_kernels(resolve_simd_backend(simd.backend));
  return kernels.rasterize_tile_sortless(splats, order, x0, y0, x1, y1, fb, scratch,
                                         simd.exp_mode);
}

void rasterize_all_sortless(const BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                            Framebuffer& fb, std::size_t threads, RenderCounters& counters,
                            SimdPolicy simd) {
  const CellGrid& grid = bins.grid;
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());
  const SimdPolicy resolved{resolve_simd_backend(simd.backend), simd.exp_mode};

  const std::size_t workers = planned_worker_count(cells, threads);
  std::vector<TileRasterStats> per_worker(workers);

  parallel_for_chunks(0, cells, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    TileRasterStats local;
    SortlessRasterScratch scratch;
    for (std::size_t c = lo; c < hi; ++c) {
      const int cx = static_cast<int>(c) % grid.cells_x;
      const int cy = static_cast<int>(c) / grid.cells_x;
      const int x0 = cx * grid.cell_size;
      const int y0 = cy * grid.cell_size;
      const int x1 = std::min(x0 + grid.cell_size, grid.image_width);
      const int y1 = std::min(y0 + grid.cell_size, grid.image_height);
      local.accumulate(rasterize_tile_sortless(splats, bins.cell_list(static_cast<int>(c)), x0,
                                               y0, x1, y1, fb, scratch, resolved));
    }
    per_worker[worker].accumulate(local);
  }, threads);

  for (const TileRasterStats& s : per_worker) {
    counters.alpha_computations += s.alpha_computations;
    counters.blend_ops += s.blend_ops;
    counters.early_exit_pixels += s.early_exit_pixels;
    counters.pixel_list_work += s.pixel_list_work;
    counters.total_pixels += s.pixels;
  }
}

}  // namespace gstg
