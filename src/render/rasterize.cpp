#include "render/rasterize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace gstg {

TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb) {
  TileRasterScratch scratch;
  return rasterize_tile(splats, order, x0, y0, x1, y1, fb, scratch);
}

TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb, TileRasterScratch& scratch) {
  if (x0 < 0 || y0 < 0 || x1 > fb.width() || y1 > fb.height() || x1 <= x0 || y1 <= y0) {
    throw std::invalid_argument("rasterize_tile: block out of bounds");
  }
  const int bw = x1 - x0;
  const int bh = y1 - y0;
  const std::size_t npx = static_cast<std::size_t>(bw) * bh;

  TileRasterStats stats;
  stats.pixels = npx;
  // Fig. 7 workload metric counts the full list length per pixel; the alpha
  // skip and early exit below are optimisations on top of that workload.
  stats.pixel_list_work = order.size() * npx;

  // Active-pixel compaction: transmittance, accumulated colour, and the
  // surviving pixel index list (reused across tiles via `scratch`).
  std::vector<float>& transmittance = scratch.transmittance;
  std::vector<Vec3>& accum = scratch.accum;
  std::vector<std::uint32_t>& active = scratch.active;
  transmittance.assign(npx, 1.0f);
  accum.assign(npx, Vec3{});
  if (active.size() < npx) active.resize(npx);
  for (std::size_t i = 0; i < npx; ++i) active[i] = static_cast<std::uint32_t>(i);
  std::size_t active_count = npx;

  for (const std::uint32_t id : order) {
    if (active_count == 0) break;
    const ProjectedSplat& s = splats[id];
    // alpha >= 1/255 requires q <= 2 ln(255 sigma); precompute to skip exp.
    const float q_max = 2.0f * std::log(255.0f * s.opacity);

    for (std::size_t k = 0; k < active_count;) {
      const std::uint32_t p = active[k];
      const float px = static_cast<float>(x0 + static_cast<int>(p) % bw) + 0.5f;
      const float py = static_cast<float>(y0 + static_cast<int>(p) / bw) + 0.5f;
      const Vec2 d{px - s.center.x, py - s.center.y};
      const float q = s.conic.quad(d);
      ++stats.alpha_computations;
      if (q > q_max || q < 0.0f) {  // alpha below 1/255 (q<0 guards fp blowup)
        ++k;
        continue;
      }
      const float alpha = std::min(kAlphaClamp, s.opacity * std::exp(-0.5f * q));
      if (alpha < kAlphaThreshold) {
        ++k;
        continue;
      }
      ++stats.blend_ops;
      const float t = transmittance[p];
      accum[p] = accum[p] + s.rgb * (alpha * t);
      const float t_next = t * (1.0f - alpha);
      transmittance[p] = t_next;
      if (t_next < kTransmittanceThreshold) {
        ++stats.early_exit_pixels;
        active[k] = active[--active_count];  // swap-remove; order is irrelevant
      } else {
        ++k;
      }
    }
  }

  for (std::size_t i = 0; i < npx; ++i) {
    const int px = x0 + static_cast<int>(i) % bw;
    const int py = y0 + static_cast<int>(i) / bw;
    fb.at(px, py) = accum[i];
  }
  return stats;
}

void rasterize_all(const BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                   Framebuffer& fb, std::size_t threads, RenderCounters& counters) {
  const CellGrid& grid = bins.grid;
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());

  // Per-worker stat slots sized from the exact worker count (no aliasing),
  // merged in worker order after the join.
  const std::size_t workers = planned_worker_count(cells, threads);
  std::vector<TileRasterStats> per_worker(workers);

  parallel_for_chunks(0, cells, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    TileRasterStats local;
    TileRasterScratch scratch;
    for (std::size_t c = lo; c < hi; ++c) {
      const int cx = static_cast<int>(c) % grid.cells_x;
      const int cy = static_cast<int>(c) / grid.cells_x;
      const int x0 = cx * grid.cell_size;
      const int y0 = cy * grid.cell_size;
      const int x1 = std::min(x0 + grid.cell_size, grid.image_width);
      const int y1 = std::min(y0 + grid.cell_size, grid.image_height);
      local.accumulate(rasterize_tile(splats, bins.cell_list(static_cast<int>(c)), x0, y0, x1,
                                      y1, fb, scratch));
    }
    per_worker[worker].accumulate(local);
  }, threads);

  for (const TileRasterStats& s : per_worker) {
    counters.alpha_computations += s.alpha_computations;
    counters.blend_ops += s.blend_ops;
    counters.early_exit_pixels += s.early_exit_pixels;
    counters.pixel_list_work += s.pixel_list_work;
    counters.total_pixels += s.pixels;
  }
}

}  // namespace gstg
