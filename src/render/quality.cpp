#include "render/quality.h"

#include <cmath>
#include <stdexcept>

#include "render/metrics.h"

namespace gstg {

ImageQuality image_quality(const Framebuffer& exact, const Framebuffer& approx) {
  if (exact.width() != approx.width() || exact.height() != approx.height()) {
    throw std::invalid_argument("image_quality: size mismatch");
  }
  ImageQuality q;
  q.psnr = psnr(exact, approx);
  if (exact.width() >= 8 && exact.height() >= 8) {
    q.ssim = ssim(exact, approx);
  } else {
    q.ssim = max_abs_diff(exact, approx) == 0.0f ? 1.0 : 0.0;
  }
  q.measured = true;
  return q;
}

QualityFloor quality_floor(const std::string& scene) {
  // Committed per-scene floors, set from the sortless-vs-exact measurements
  // in bench/baseline/BENCH_quality.json — the minimum over the bench and
  // small scales, minus ~2 dB / 0.03 SSIM of slack so benign drift cannot
  // trip the gate while a real blending regression still does. Measured
  // (bench / small scale): train 28.50/25.01 dB, 0.917/0.901; truck
  // 24.89/26.50 dB, 0.889/0.907; drjohnson 22.51/23.31 dB, 0.809/0.788;
  // playroom 21.88/23.05 dB, 0.807/0.815. Refresh procedure:
  // bench/README.md.
  if (scene == "train") return QualityFloor{23.0, 0.87};
  if (scene == "truck") return QualityFloor{22.5, 0.85};
  if (scene == "drjohnson") return QualityFloor{20.5, 0.75};
  if (scene == "playroom") return QualityFloor{20.0, 0.77};
  // Unknown scenes: the weakest committed floor.
  return QualityFloor{18.0, 0.60};
}

bool meets_floor(const ImageQuality& q, const QualityFloor& floor) {
  // NaN-safe: any non-comparing value fails the floor.
  return q.measured && q.psnr >= floor.min_psnr && q.ssim >= floor.min_ssim;
}

}  // namespace gstg
