#include "render/sort_keys.h"

#include <array>
#include <bit>

namespace gstg {

std::uint32_t depth_bits(float depth) { return std::bit_cast<std::uint32_t>(depth); }

std::uint64_t pack_depth_index_key(float depth, std::uint32_t index, int index_bits) {
  return (static_cast<std::uint64_t>(depth_bits(depth)) << index_bits) | index;
}

namespace {

// One LSD pass per 8-bit digit: histogram, exclusive prefix, stable scatter.
// KeyOf extracts the sort key from an element so the same loop serves both
// the keys-only and the key/payload arrays.
template <typename Elem, typename KeyOf>
void radix_sort_impl(std::vector<Elem>& elems, std::vector<Elem>& tmp, std::size_t n,
                     int key_bits, const KeyOf& key_of) {
  if (n <= 1) return;
  if (tmp.size() < n) tmp.resize(n);
  const int passes = radix_pass_count(key_bits);
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    std::array<std::size_t, 256> histogram{};
    for (std::size_t k = 0; k < n; ++k) {
      ++histogram[(key_of(elems[k]) >> shift) & 0xffu];
    }
    std::size_t running = 0;
    for (std::size_t d = 0; d < 256; ++d) {
      const std::size_t count = histogram[d];
      histogram[d] = running;
      running += count;
    }
    for (std::size_t k = 0; k < n; ++k) {
      tmp[histogram[(key_of(elems[k]) >> shift) & 0xffu]++] = elems[k];
    }
    elems.swap(tmp);  // result of every pass ends in `elems`
  }
}

}  // namespace

void radix_sort_keys(std::vector<std::uint64_t>& keys, std::vector<std::uint64_t>& tmp,
                     std::size_t n, int key_bits) {
  radix_sort_impl(keys, tmp, n, key_bits, [](std::uint64_t k) { return k; });
}

void radix_sort_pairs(std::vector<KeyValue>& items, std::vector<KeyValue>& tmp, std::size_t n,
                      int key_bits) {
  radix_sort_impl(items, tmp, n, key_bits, [](const KeyValue& kv) { return kv.key; });
}

}  // namespace gstg
