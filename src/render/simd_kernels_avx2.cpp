// AVX2 kernel backend: 8-wide lanes, compiled with -mavx2 -ffp-contract=off
// (no -mfma: contraction would break the cross-backend bit-identity
// invariant; see src/render/CMakeLists.txt). Only built on x86.
#include "render/simd_kernels.h"

#define GSTG_SIMD_NS simd_avx2
#define GSTG_SIMD_WIDTH 8
#include "render/simd_kernels.inl"
