#include "render/metrics.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace gstg {

namespace {

constexpr int kWindow = 8;
constexpr int kStride = 4;
constexpr double kC1 = 0.01 * 0.01;
constexpr double kC2 = 0.03 * 0.03;

std::vector<double> luminance(const Framebuffer& image) {
  std::vector<double> out(image.pixels().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Vec3& p = image.pixels()[i];
    out[i] = 0.299 * static_cast<double>(p.x) + 0.587 * static_cast<double>(p.y) +
             0.114 * static_cast<double>(p.z);
  }
  return out;
}

}  // namespace

double ssim(const Framebuffer& a, const Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("ssim: size mismatch");
  }
  if (a.width() < kWindow || a.height() < kWindow) {
    throw std::invalid_argument("ssim: image smaller than the SSIM window");
  }
  const std::vector<double> la = luminance(a);
  const std::vector<double> lb = luminance(b);
  const int w = a.width(), h = a.height();

  double total = 0.0;
  std::size_t windows = 0;
  for (int y0 = 0; y0 + kWindow <= h; y0 += kStride) {
    for (int x0 = 0; x0 + kWindow <= w; x0 += kStride) {
      double mean_a = 0.0, mean_b = 0.0;
      for (int y = y0; y < y0 + kWindow; ++y) {
        for (int x = x0; x < x0 + kWindow; ++x) {
          mean_a += la[static_cast<std::size_t>(y) * w + x];
          mean_b += lb[static_cast<std::size_t>(y) * w + x];
        }
      }
      constexpr double kN = kWindow * kWindow;
      mean_a /= kN;
      mean_b /= kN;
      double var_a = 0.0, var_b = 0.0, cov = 0.0;
      for (int y = y0; y < y0 + kWindow; ++y) {
        for (int x = x0; x < x0 + kWindow; ++x) {
          const double da = la[static_cast<std::size_t>(y) * w + x] - mean_a;
          const double db = lb[static_cast<std::size_t>(y) * w + x] - mean_b;
          var_a += da * da;
          var_b += db * db;
          cov += da * db;
        }
      }
      var_a /= kN - 1;
      var_b /= kN - 1;
      cov /= kN - 1;
      const double num = (2.0 * mean_a * mean_b + kC1) * (2.0 * cov + kC2);
      const double den = (mean_a * mean_a + mean_b * mean_b + kC1) * (var_a + var_b + kC2);
      total += num / den;
      ++windows;
    }
  }
  return total / static_cast<double>(windows);
}

ChannelPsnr channel_psnr(const Framebuffer& a, const Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("channel_psnr: size mismatch");
  }
  double mse[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    const Vec3 d = a.pixels()[i] - b.pixels()[i];
    mse[0] += static_cast<double>(d.x) * static_cast<double>(d.x);
    mse[1] += static_cast<double>(d.y) * static_cast<double>(d.y);
    mse[2] += static_cast<double>(d.z) * static_cast<double>(d.z);
  }
  const double n = static_cast<double>(a.pixels().size());
  const auto to_db = [n](double m) {
    m /= n;
    return m <= 0.0 ? std::numeric_limits<double>::infinity() : 10.0 * std::log10(1.0 / m);
  };
  return {to_db(mse[0]), to_db(mse[1]), to_db(mse[2])};
}

}  // namespace gstg
