#include "render/global_sort.h"

#include <array>
#include <bit>

#include "common/parallel.h"

namespace gstg {

std::uint64_t make_depth_key(std::uint32_t cell, float depth) {
  // Positive IEEE floats order identically to their bit patterns, and
  // depths are positive after near-plane culling.
  const auto depth_bits = std::bit_cast<std::uint32_t>(depth);
  return (static_cast<std::uint64_t>(cell) << 32) | depth_bits;
}

BinnedSplats global_sorted_binning(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                                   Boundary boundary, std::size_t threads,
                                   RenderCounters& counters) {
  const std::size_t n = splats.size();
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());

  // Pass 1: per-splat hit counts -> emission offsets (prefix sum keeps the
  // global pair order identical to a serial emit: splat-major, candidate
  // order within a splat).
  std::vector<std::uint32_t> hit_counts(n, 0);
  constexpr std::size_t kMaxWorkers = 256;
  std::vector<std::size_t> tests_per_worker(kMaxWorkers, 0);
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t worker) {
    std::size_t local_tests = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      std::uint32_t hits = 0;
      local_tests += for_each_hit_cell(splats[i], grid, boundary, [&](int) { ++hits; });
      hit_counts[i] = hits;
    }
    tests_per_worker[worker % kMaxWorkers] += local_tests;
  }, threads);
  for (const std::size_t t : tests_per_worker) counters.boundary_tests += t;

  std::vector<std::uint64_t> emit_offsets(n + 1, 0);
  std::size_t multi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    emit_offsets[i + 1] = emit_offsets[i] + hit_counts[i];
    if (hit_counts[i] >= 2) ++multi;
  }
  const std::size_t pairs = emit_offsets[n];
  counters.tile_pairs += pairs;
  counters.splats_multi_tile += multi;
  counters.sort_pairs += pairs;

  // Pass 2: emit duplicated keys + ids at the precomputed offsets.
  std::vector<std::uint64_t> keys(pairs);
  std::vector<std::uint32_t> ids(pairs);
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::uint64_t slot = emit_offsets[i];
      for_each_hit_cell(splats[i], grid, boundary, [&](int cell) {
        keys[slot] = make_depth_key(static_cast<std::uint32_t>(cell), splats[i].depth);
        ids[slot] = static_cast<std::uint32_t>(i);
        ++slot;
      });
    }
  }, threads);

  // Global stable LSD radix sort over the 64-bit keys, 8-bit digits. Only
  // digits that can be non-zero are processed: 32 depth bits plus however
  // many bits the cell index needs.
  int cell_bits = 0;
  while ((1u << cell_bits) < cells && cell_bits < 32) ++cell_bits;
  const int total_bits = 32 + std::max(cell_bits, 1);
  const int passes = (total_bits + 7) / 8;
  counters.sort_comparison_volume += static_cast<double>(pairs) * passes;

  std::vector<std::uint64_t> keys_tmp(pairs);
  std::vector<std::uint32_t> ids_tmp(pairs);
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    std::array<std::size_t, 256> histogram{};
    for (std::size_t k = 0; k < pairs; ++k) {
      ++histogram[(keys[k] >> shift) & 0xffu];
    }
    std::size_t running = 0;
    for (std::size_t d = 0; d < 256; ++d) {
      const std::size_t count = histogram[d];
      histogram[d] = running;
      running += count;
    }
    for (std::size_t k = 0; k < pairs; ++k) {
      const std::size_t dst = histogram[(keys[k] >> shift) & 0xffu]++;
      keys_tmp[dst] = keys[k];
      ids_tmp[dst] = ids[k];
    }
    keys.swap(keys_tmp);
    ids.swap(ids_tmp);
  }

  // Slice the sorted pair array into per-cell CSR ranges.
  BinnedSplats out;
  out.grid = grid;
  out.offsets.assign(cells + 1, 0);
  for (std::size_t k = 0; k < pairs; ++k) {
    ++out.offsets[(keys[k] >> 32) + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) out.offsets[c + 1] += out.offsets[c];
  out.splat_ids = std::move(ids);
  return out;
}

}  // namespace gstg
