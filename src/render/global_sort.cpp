#include "render/global_sort.h"

#include <atomic>

#include "common/parallel.h"
#include "render/sort_keys.h"

namespace gstg {

std::uint64_t make_depth_key(std::uint32_t cell, float depth) {
  // Positive IEEE floats order identically to their bit patterns, and
  // depths are positive after near-plane culling.
  return (static_cast<std::uint64_t>(cell) << 32) | depth_bits(depth);
}

BinnedSplats global_sorted_binning(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                                   Boundary boundary, std::size_t threads,
                                   RenderCounters& counters) {
  const std::size_t n = splats.size();
  const std::size_t cells = static_cast<std::size_t>(grid.cell_count());

  // Pass 1: per-splat hit counts -> emission offsets (prefix sum keeps the
  // global pair order identical to a serial emit: splat-major, candidate
  // order within a splat).
  std::vector<std::uint32_t> hit_counts(n, 0);
  std::atomic<std::size_t> tests{0};
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::size_t local_tests = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      std::uint32_t hits = 0;
      local_tests += for_each_hit_cell(splats[i], grid, boundary, [&](int) { ++hits; });
      hit_counts[i] = hits;
    }
    tests.fetch_add(local_tests, std::memory_order_relaxed);
  }, threads);
  counters.boundary_tests += tests.load();

  std::vector<std::uint64_t> emit_offsets(n + 1, 0);
  std::size_t multi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    emit_offsets[i + 1] = emit_offsets[i] + hit_counts[i];
    if (hit_counts[i] >= 2) ++multi;
  }
  const std::size_t pairs = emit_offsets[n];
  counters.tile_pairs += pairs;
  counters.splats_multi_tile += multi;
  counters.sort_pairs += pairs;

  // Pass 2: emit duplicated key/id records at the precomputed offsets.
  std::vector<KeyValue> items(pairs);
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::uint64_t slot = emit_offsets[i];
      for_each_hit_cell(splats[i], grid, boundary, [&](int cell) {
        items[slot] = {make_depth_key(static_cast<std::uint32_t>(cell), splats[i].depth),
                       static_cast<std::uint64_t>(i)};
        ++slot;
      });
    }
  }, threads);

  // One global stable LSD radix sort (render/sort_keys.h) over the 64-bit
  // keys. Only digits that can be non-zero are processed: 32 depth bits plus
  // however many bits the cell index needs.
  int cell_bits = 0;
  while ((1u << cell_bits) < cells && cell_bits < 32) ++cell_bits;
  const int total_bits = 32 + std::max(cell_bits, 1);
  counters.sort_comparison_volume +=
      static_cast<double>(pairs) * radix_pass_count(total_bits);

  std::vector<KeyValue> items_tmp;
  radix_sort_pairs(items, items_tmp, pairs, total_bits);

  // Slice the sorted pair array into per-cell CSR ranges.
  BinnedSplats out;
  out.grid = grid;
  out.offsets.assign(cells + 1, 0);
  for (std::size_t k = 0; k < pairs; ++k) {
    ++out.offsets[(items[k].key >> 32) + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) out.offsets[c + 1] += out.offsets[c];
  out.splat_ids.resize(pairs);
  for (std::size_t k = 0; k < pairs; ++k) {
    out.splat_ids[k] = static_cast<std::uint32_t>(items[k].value);
  }
  return out;
}

}  // namespace gstg
