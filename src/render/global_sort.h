// GPU-style global duplicated-key sorting.
//
// The author-released 3D-GS renderer does not sort each tile list
// separately: it emits one (tile_id | depth) 64-bit key per (tile, splat)
// pair and radix-sorts the whole array once, then slices it into per-tile
// ranges. This module implements that execution model as an alternative to
// render/sort.h, both to complete the substrate (the paper's GPU baselines
// run exactly this way) and to serve as an ablation: per-tile comparison
// sort vs global radix sort produce identical tile sequences.
#pragma once

#include <cstdint>
#include <span>

#include "render/binning.h"
#include "render/types.h"

namespace gstg {

/// 64-bit duplicated key: cell index in the high 32 bits, the depth's
/// monotonic bit pattern in the low 32. Sorting keys ascending groups pairs
/// by cell and orders each cell front-to-back.
std::uint64_t make_depth_key(std::uint32_t cell, float depth);

/// Bins splats and orders every cell list by one global LSD radix sort over
/// the duplicated keys (the reference implementation's pipeline). Returns
/// CSR lists identical — including order — to bin_splats + sort_cell_lists
/// with the same boundary, because the radix sort is stable and pairs are
/// emitted in splat-index order. Counter semantics match the two-step path;
/// sort_comparison_volume accounts radix passes as pairs * passes.
BinnedSplats global_sorted_binning(std::span<const ProjectedSplat> splats, const CellGrid& grid,
                                   Boundary boundary, std::size_t threads,
                                   RenderCounters& counters);

}  // namespace gstg
