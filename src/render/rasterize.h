// Tile-wise rasterization: alpha computation (paper eq. 1) and front-to-back
// alpha blending (eq. 2) with the 1/255 alpha skip and 1e-4 transmittance
// early exit. The single-tile routine is shared by the baseline pipeline
// (per-tile sorted lists) and GS-TG (group-sorted list filtered by bitmask).
//
// The inner loop runs through the SIMD kernel table (render/simd_kernels.h):
// a SimdPolicy selects the lane width (scalar / SSE4.2 / AVX2 / NEON, kAuto =
// widest verified backend) and the exponential mode. Exact mode is
// bit-identical across every backend; counters are exact under vectorization
// in both modes.
#pragma once

#include <cstdint>
#include <span>

#include "common/annotations.h"
#include "common/simd.h"
#include "render/binning.h"
#include "render/framebuffer.h"
#include "render/types.h"

namespace gstg {

/// Per-tile rasterization statistics (merged into RenderCounters).
struct TileRasterStats {
  std::size_t alpha_computations = 0;
  std::size_t blend_ops = 0;
  std::size_t early_exit_pixels = 0;
  std::size_t pixel_list_work = 0;
  std::size_t pixels = 0;

  void accumulate(const TileRasterStats& s) {
    alpha_computations += s.alpha_computations;
    blend_ops += s.blend_ops;
    early_exit_pixels += s.early_exit_pixels;
    pixel_list_work += s.pixel_list_work;
    pixels += s.pixels;
  }
};

/// Reusable per-worker blending buffers in structure-of-arrays layout (lane
/// kernels stream them directly): pixel centres, transmittance, accumulated
/// colour channels and the surviving pixel index, all compacted together
/// when pixels hit the transmittance early exit. Sized to the largest tile
/// seen so far (rounded up to the widest lane count).
struct TileRasterScratch {
  std::vector<float> px;
  std::vector<float> py;
  std::vector<float> transmittance;
  std::vector<float> r;
  std::vector<float> g;
  std::vector<float> b;
  std::vector<std::uint32_t> pixel;
};

/// Rasterizes the depth-ordered splat sequence `order` into the pixel block
/// [x0, x1) x [y0, y1) of `fb` (block must lie inside the framebuffer).
/// Pixel centres are at integer + 0.5. Returns the work statistics;
/// `alpha_computations` counts the (pixel, splat) pairs whose quad
/// evaluation passed the footprint guard (0 <= q <= 2 ln(255 sigma)) — the
/// alpha evaluations the datapath actually performs, the paper's Fig. 7
/// workload quantity.
TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb, SimdPolicy simd = {});

/// rasterize_tile() with caller-owned blending buffers (no allocations once
/// the scratch has warmed up to the tile size).
GSTG_HOT_NOALLOC
TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb, TileRasterScratch& scratch,
                               SimdPolicy simd = {});

/// Baseline full-image rasterization over per-tile sorted lists.
void rasterize_all(const BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                   Framebuffer& fb, std::size_t threads, RenderCounters& counters,
                   SimdPolicy simd = {});

/// Depth falloff rate of the order-independent weight
/// w = alpha * 2^(-beta * (depth - dmin) / (dmax - dmin)): the nearest splat
/// in a tile carries 2^beta times the weight of the farthest, which is the
/// scene-scale-invariant stand-in for front-to-back occlusion.
inline constexpr float kSortlessDepthBeta = 6.0f;

/// Reusable per-worker accumulators of the sortless (order-independent
/// transmittance) tile kernel. Accumulation is int64 fixed point — each
/// (pixel, splat) contribution is quantized once and integer sums are
/// associative/commutative — so the blended image is bit-identical across
/// thread counts, SIMD backends AND splat-list orders, even though binning
/// emits its per-cell lists in a nondeterministic order.
struct SortlessRasterScratch {
  std::vector<float> px;               ///< one row of pixel-centre x, lane-padded
  std::vector<std::int64_t> acc_w;     ///< Σ Q30(alpha * depth_weight)
  std::vector<std::int64_t> acc_r;     ///< Σ Q30(alpha * depth_weight * rgb)
  std::vector<std::int64_t> acc_g;
  std::vector<std::int64_t> acc_b;
  std::vector<std::int64_t> acc_t;     ///< Σ Q32(log2(1 - alpha))
};

/// Order-independent transmittance rasterization of the UNSORTED splat
/// sequence `order` into [x0, x1) x [y0, y1) of `fb` (the kSortless /
/// kVerify pipelines — see common/runconfig.h). Two differences from
/// rasterize_tile: the result is an approximation of sorted blending
/// (weighted average scaled by total coverage 1 - Π(1 - alpha)), and there
/// is no transmittance early exit (`early_exit_pixels` is always 0 — an
/// exit would reintroduce order dependence). Footprint evaluation is
/// axis-shared: the dy-dependent quad terms are hoisted per pixel row.
GSTG_HOT_NOALLOC
TileRasterStats rasterize_tile_sortless(std::span<const ProjectedSplat> splats,
                                        std::span<const std::uint32_t> order, int x0, int y0,
                                        int x1, int y1, Framebuffer& fb,
                                        SortlessRasterScratch& scratch, SimdPolicy simd = {});

/// Baseline full-image sortless rasterization over (unsorted) per-tile
/// lists; `counters.sort_pairs` stays untouched because nothing sorts.
void rasterize_all_sortless(const BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                            Framebuffer& fb, std::size_t threads, RenderCounters& counters,
                            SimdPolicy simd = {});

}  // namespace gstg
