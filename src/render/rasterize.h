// Tile-wise rasterization: alpha computation (paper eq. 1) and front-to-back
// alpha blending (eq. 2) with the 1/255 alpha skip and 1e-4 transmittance
// early exit. The single-tile routine is shared by the baseline pipeline
// (per-tile sorted lists) and GS-TG (group-sorted list filtered by bitmask).
#pragma once

#include <cstdint>
#include <span>

#include "render/binning.h"
#include "render/framebuffer.h"
#include "render/types.h"

namespace gstg {

/// Per-tile rasterization statistics (merged into RenderCounters).
struct TileRasterStats {
  std::size_t alpha_computations = 0;
  std::size_t blend_ops = 0;
  std::size_t early_exit_pixels = 0;
  std::size_t pixel_list_work = 0;
  std::size_t pixels = 0;

  void accumulate(const TileRasterStats& s) {
    alpha_computations += s.alpha_computations;
    blend_ops += s.blend_ops;
    early_exit_pixels += s.early_exit_pixels;
    pixel_list_work += s.pixel_list_work;
    pixels += s.pixels;
  }
};

/// Reusable per-worker blending buffers (transmittance, colour accumulator,
/// active-pixel list), sized to the largest tile seen so far.
struct TileRasterScratch {
  std::vector<float> transmittance;
  std::vector<Vec3> accum;
  std::vector<std::uint32_t> active;
};

/// Rasterizes the depth-ordered splat sequence `order` into the pixel block
/// [x0, x1) x [y0, y1) of `fb` (block must lie inside the framebuffer).
/// Pixel centres are at integer + 0.5. Returns the work statistics.
TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb);

/// rasterize_tile() with caller-owned blending buffers (no allocations once
/// the scratch has warmed up to the tile size).
TileRasterStats rasterize_tile(std::span<const ProjectedSplat> splats,
                               std::span<const std::uint32_t> order, int x0, int y0, int x1,
                               int y1, Framebuffer& fb, TileRasterScratch& scratch);

/// Baseline full-image rasterization over per-tile sorted lists.
void rasterize_all(const BinnedSplats& bins, std::span<const ProjectedSplat> splats,
                   Framebuffer& fb, std::size_t threads, RenderCounters& counters);

}  // namespace gstg
