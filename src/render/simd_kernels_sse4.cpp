// SSE4.2 kernel backend: 4-wide lanes, compiled with -msse4.2
// -ffp-contract=off (see src/render/CMakeLists.txt). Only built on x86.
#include "render/simd_kernels.h"

#define GSTG_SIMD_NS simd_sse4
#define GSTG_SIMD_WIDTH 4
#include "render/simd_kernels.inl"
