// Image-quality measurement for the lossy pipeline modes. Every mode before
// kSortless was gated on bit-identity; the sortless tier is gated on a
// quantitative floor instead: PSNR + SSIM of the approximate image against
// the exact reference, with per-scene floors committed here so the renderer
// (PipelineMode::kVerify), bench_quality and the CI gate all agree on one
// number.
#pragma once

#include <string>

#include "render/framebuffer.h"

namespace gstg {

/// PSNR/SSIM of an approximate image against its exact reference.
struct ImageQuality {
  double psnr = 0.0;    ///< dB against peak 1.0; +inf when bit-identical
  double ssim = 1.0;    ///< mean windowed SSIM in [-1, 1]
  bool measured = false;  ///< false until a kVerify frame fills this in
};

/// Measures `approx` against `exact` (same dimensions, or throws
/// std::invalid_argument). Images smaller than one SSIM window (8x8) fall
/// back to ssim = 1.0 when bit-identical and 0.0 otherwise — conservative
/// in the direction that never inflates a floor check.
ImageQuality image_quality(const Framebuffer& exact, const Framebuffer& approx);

/// The committed quality floor of one bench scene.
struct QualityFloor {
  double min_psnr = 0.0;
  double min_ssim = 0.0;
};

/// Floor for a bench scene by name; unknown scenes get the default floor
/// (the weakest committed one). These values gate bench_quality, the
/// tests/render/test_sortless.cpp suite and — through the committed
/// BENCH_quality.json baseline — CI; raise them only with a refreshed
/// baseline (see bench/README.md).
QualityFloor quality_floor(const std::string& scene);

[[nodiscard]] bool meets_floor(const ImageQuality& q, const QualityFloor& floor);

}  // namespace gstg
