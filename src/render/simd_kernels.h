// Runtime-dispatched SIMD kernels for the two rendering hot paths: the
// per-pixel blending loop of rasterize_tile and the projection/conic math of
// preprocess. One kernel translation unit exists per backend
// (simd_kernels_{scalar,sse4,avx2,neon}.cpp), each compiling the SAME
// width-generic implementation (simd_kernels.inl) under that backend's
// target flags with floating-point contraction disabled — so exact-mode
// results are bit-identical across backends (see common/simd.h).
//
// Dispatch is a function-pointer kernel table selected at runtime:
//   resolve_simd_backend(kAuto)
//     -> GSTG_SIMD environment override when set,
//     -> otherwise the widest backend that is compiled in, supported by the
//        running CPU, and passed a one-time bit-identity probe against the
//        scalar kernel (widest_verified_backend()).
// An explicitly requested backend that is unavailable falls back to scalar
// with a one-time stderr warning, so GSTG_SIMD misconfiguration can never
// change results — only speed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "camera/camera.h"
#include "common/simd.h"
#include "gaussian/cloud.h"
#include "render/framebuffer.h"
#include "render/rasterize.h"
#include "render/types.h"

namespace gstg {

/// Inputs of one preprocess chunk: the cloud/camera pair plus the
/// slot-per-input output arrays of preprocess_into (see render/preprocess.h).
struct PreprocessChunkArgs {
  const GaussianCloud* cloud = nullptr;
  const Camera* camera = nullptr;
  bool opacity_aware_rho = false;
  Vec3 cam_pos;  ///< camera centre in world space (SH view direction)
  ProjectedSplat* slots = nullptr;
  std::uint8_t* keep = nullptr;
};

/// One backend's kernel table.
struct SimdKernels {
  SimdBackend backend = SimdBackend::kScalar;
  int lane_width = 1;

  /// The rasterize_tile inner loop. Bounds must already be validated.
  TileRasterStats (*rasterize_tile)(std::span<const ProjectedSplat> splats,
                                    std::span<const std::uint32_t> order, int x0, int y0,
                                    int x1, int y1, Framebuffer& fb, TileRasterScratch& scratch,
                                    ExpMode exp_mode) = nullptr;

  /// The sortless (order-independent transmittance) tile loop: `order` may
  /// be in any order; the output is bit-identical for every permutation.
  TileRasterStats (*rasterize_tile_sortless)(std::span<const ProjectedSplat> splats,
                                             std::span<const std::uint32_t> order, int x0,
                                             int y0, int x1, int y1, Framebuffer& fb,
                                             SortlessRasterScratch& scratch,
                                             ExpMode exp_mode) = nullptr;

  /// Projects and culls cloud Gaussians [lo, hi) into args.slots/args.keep.
  void (*preprocess_chunk)(const PreprocessChunkArgs& args, std::size_t lo,
                           std::size_t hi) = nullptr;
};

/// Backends compiled into this binary AND executable on the running CPU, in
/// ascending width order. Always starts with kScalar.
const std::vector<SimdBackend>& available_simd_backends();

/// The widest available backend whose rasterization AND preprocess kernels
/// reproduced the scalar kernels bit-for-bit on the verification probes
/// (evaluated once per process). kScalar when nothing wider is available.
SimdBackend widest_verified_backend();

/// Resolves a requested backend to a concrete (non-kAuto) one:
///   kAuto    -> GSTG_SIMD override if set, else widest_verified_backend();
///   explicit -> itself when available, else kScalar (one-time warning).
SimdBackend resolve_simd_backend(SimdBackend requested);

/// Kernel table of a concrete backend (resolve first; throws
/// std::invalid_argument for kAuto or a backend that is not compiled in).
const SimdKernels& simd_kernels(SimdBackend backend);

}  // namespace gstg
