#include "render/pipeline.h"

#include "common/timer.h"
#include "render/binning.h"
#include "render/preprocess.h"
#include "render/rasterize.h"
#include "render/sort.h"

namespace gstg {

RenderResult render_baseline(const GaussianCloud& cloud, const Camera& camera,
                             const RenderConfig& config) {
  RenderResult result{Framebuffer(camera.width(), camera.height()), {}, {}};
  Timer timer;

  // Preprocessing: feature computation + culling + tile identification.
  const std::vector<ProjectedSplat> splats =
      preprocess(cloud, camera, config, result.counters);
  const CellGrid grid =
      CellGrid::over_image(camera.width(), camera.height(), config.tile_size);
  BinnedSplats bins = bin_splats(splats, grid, config.boundary, config.threads, result.counters,
                                 binning_mode_from_env(config.binning));
  result.times.preprocess_ms = timer.lap_ms();

  const PipelineMode pipeline = pipeline_mode_from_env(config.pipeline);

  if (pipeline != PipelineMode::kExact) {
    // Sortless: blend the raw (unsorted) per-tile lists order-independently.
    // No sort runs, so sort_pairs / sort_comparison_volume stay 0.
    result.times.sort_ms = timer.lap_ms();
    rasterize_all_sortless(bins, splats, result.image, config.threads, result.counters,
                           config.simd);
    result.times.raster_ms = timer.lap_ms();

    if (pipeline == PipelineMode::kVerify) {
      // Audit render: the exact pipeline on the same bins, reported as
      // PSNR/SSIM but never shipped (counters/times stay the sortless ones).
      RenderCounters audit_counters;
      sort_cell_lists(bins, splats, config.threads, audit_counters, config.sort_algo);
      Framebuffer reference(camera.width(), camera.height());
      rasterize_all(bins, splats, reference, config.threads, audit_counters, config.simd);
      result.quality = image_quality(reference, result.image);
    }
    return result;
  }

  // Tile-wise sorting.
  sort_cell_lists(bins, splats, config.threads, result.counters, config.sort_algo);
  result.times.sort_ms = timer.lap_ms();

  // Tile-wise rasterization.
  rasterize_all(bins, splats, result.image, config.threads, result.counters, config.simd);
  result.times.raster_ms = timer.lap_ms();

  return result;
}

}  // namespace gstg
