// Width-generic SIMD kernel bodies for the rasterization blending loop and
// the preprocess projection/conic math. Included once per backend TU with
//   GSTG_SIMD_NS     the backend namespace (simd_scalar, simd_avx2, ...)
//   GSTG_SIMD_WIDTH  the lane count (1, 4 or 8)
// defined. Every TU compiles with -ffp-contract=off; the per-lane arithmetic
// below mirrors the scalar reference expressions operation for operation
// (same association, same std::min/clamp comparison order, same NaN
// behaviour), which is what makes exact-mode output bit-identical across
// lane widths (see common/simd.h).
//
// Lane blocks are padded: buffers are sized to a multiple of the lane width
// and partial blocks run full-width with a validity mask, so there is no
// separate scalar tail path that could diverge. Padding lanes always hold
// finite values (clones of real entries) and are never counted or stored.

#if !defined(GSTG_SIMD_NS) || !defined(GSTG_SIMD_WIDTH)
#error "simd_kernels.inl requires GSTG_SIMD_NS and GSTG_SIMD_WIDTH"
#endif

#include <cmath>
#include <cstdint>
#include <span>

#include "camera/camera.h"
#include "camera/ewa.h"
#include "common/simd.h"
#include "gaussian/cloud.h"
#include "gaussian/sh.h"
#include "geometry/ellipse.h"
#include "render/framebuffer.h"
#include "render/rasterize.h"
#include "render/simd_kernels.h"
#include "render/types.h"

namespace gstg {
namespace GSTG_SIMD_NS {

namespace {

constexpr int kW = GSTG_SIMD_WIDTH;
using F = VecF32<kW>;
using M = Mask<kW>;

/// 3x3 matrix of lanes with the scalar Mat3's accumulation order
/// (s = 0; s += a[i][k] * b[k][j] for k = 0, 1, 2).
struct LaneMat3 {
  F m[3][3];
};

GSTG_SIMD_INLINE LaneMat3 matmul(const LaneMat3& a, const LaneMat3& b) {
  LaneMat3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      F s = F::broadcast(0.0f);
      for (int k = 0; k < 3; ++k) s = s + a.m[i][k] * b.m[k][j];
      r.m[i][j] = s;
    }
  }
  return r;
}

GSTG_SIMD_INLINE LaneMat3 transposed(const LaneMat3& a) {
  LaneMat3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) r.m[i][j] = a.m[j][i];
  }
  return r;
}

/// Validity mask for a partial block: lane i is live iff i < count.
GSTG_SIMD_INLINE M valid_mask(std::size_t count) {
  M v;
  for (int i = 0; i < kW; ++i) v.m[i] = static_cast<std::size_t>(i) < count ? -1 : 0;
  return v;
}

}  // namespace

TileRasterStats rasterize_tile_kernel(std::span<const ProjectedSplat> splats,
                                      std::span<const std::uint32_t> order, int x0, int y0,
                                      int x1, int y1, Framebuffer& fb,
                                      TileRasterScratch& sc, ExpMode exp_mode) {
  const int bw = x1 - x0;
  const int bh = y1 - y0;
  const std::size_t npx = static_cast<std::size_t>(bw) * bh;

  TileRasterStats stats;
  stats.pixels = npx;
  // Fig. 7 workload metric counts the full list length per pixel; the
  // in-range guard and early exit below are optimisations on top of it.
  stats.pixel_list_work = order.size() * npx;

  // SoA staging, padded to a whole number of lane blocks. Padding slots are
  // clones of the last real pixel: finite inputs for the masked lanes, never
  // counted and never flushed.
  const std::size_t cap = (npx + kW - 1) / kW * kW;
  if (sc.px.size() < cap) {
    sc.px.resize(cap);
    sc.py.resize(cap);
    sc.transmittance.resize(cap);
    sc.r.resize(cap);
    sc.g.resize(cap);
    sc.b.resize(cap);
    sc.pixel.resize(cap);
  }
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t p = i < npx ? i : npx - 1;
    sc.px[i] = static_cast<float>(x0 + static_cast<int>(p) % bw) + 0.5f;
    sc.py[i] = static_cast<float>(y0 + static_cast<int>(p) / bw) + 0.5f;
    sc.transmittance[i] = 1.0f;
    sc.r[i] = 0.0f;
    sc.g[i] = 0.0f;
    sc.b[i] = 0.0f;
    sc.pixel[i] = static_cast<std::uint32_t>(p);
  }
  std::size_t active = npx;

  const F zero = F::broadcast(0.0f);
  const F one = F::broadcast(1.0f);
  const F alpha_clamp = F::broadcast(kAlphaClamp);
  const F alpha_thresh = F::broadcast(kAlphaThreshold);
  const F t_thresh = F::broadcast(kTransmittanceThreshold);
  const M all_valid = valid_mask(kW);

  // Branch-free statistics: masks accumulate as -1s into integer lanes (one
  // vector add per block), reduced once after the splat loop.
  VecI32<kW> acc_pass = VecI32<kW>::broadcast(0);
  VecI32<kW> acc_blend = VecI32<kW>::broadcast(0);
  VecI32<kW> acc_exit = VecI32<kW>::broadcast(0);

  for (const std::uint32_t id : order) {
    if (active == 0) break;
    const ProjectedSplat& s = splats[id];
    // alpha >= 1/255 requires q <= 2 ln(255 sigma); precompute to skip exp.
    const float q_max_s = 2.0f * std::log(255.0f * s.opacity);
    const float c2xy = 2.0f * s.conic.xy;

    const F cx = F::broadcast(s.center.x);
    const F cy = F::broadcast(s.center.y);
    const F xx = F::broadcast(s.conic.xx);
    const F xy2 = F::broadcast(c2xy);
    const F yy = F::broadcast(s.conic.yy);
    const F q_max = F::broadcast(q_max_s);
    const F rgb_r = F::broadcast(s.rgb.x);
    const F rgb_g = F::broadcast(s.rgb.y);
    const F rgb_b = F::broadcast(s.rgb.z);
    M exit_seen = valid_mask(0);

    for (std::size_t k = 0; k < active; k += kW) {
      const M valid = k + kW <= active ? all_valid : valid_mask(active - k);

      const F dx = F::load(&sc.px[k]) - cx;
      const F dy = F::load(&sc.py[k]) - cy;
      // conic.quad(d) with the scalar association:
      // (xx*dx*dx + (2*xy)*dx*dy) + yy*dy*dy.
      const F q = ((xx * dx) * dx + (xy2 * dx) * dy) + (yy * dy) * dy;

      // In-range guard (q < 0 guards fp blowup); counted only when passed —
      // these are the alpha evaluations the datapath performs.
      const M pass = (!(cmp_gt(q, q_max) | cmp_lt(q, zero))) & valid;
      if (!pass.any()) continue;
      acc_pass = acc_pass + as_i32(pass);

      F alpha;
      if (exp_mode == ExpMode::kExact) {
        // std::exp per surviving lane: bit-identical to the scalar renderer.
        for (int i = 0; i < kW; ++i) {
          if (pass.lane(i)) {
            const float e = std::exp(-0.5f * q.v[i]);
            const float a0 = s.opacity * e;
            alpha.v[i] = (a0 < kAlphaClamp) ? a0 : kAlphaClamp;  // std::min order
          } else {
            alpha.v[i] = 0.0f;
          }
        }
      } else {
        const F e = fast_exp<kW>(F::broadcast(-0.5f) * q);
        const F a0 = F::broadcast(s.opacity) * e;
        alpha = select(pass, min_std(alpha_clamp, a0), zero);
      }

      // Blend mask mirrors `if (alpha < 1/255) continue` (guarded-out lanes
      // carry alpha = 0 and drop out here).
      const M blend = (!cmp_lt(alpha, alpha_thresh)) & valid;
      acc_blend = acc_blend + as_i32(blend);
      if (!blend.any()) continue;

      const F t0 = F::load(&sc.transmittance[k]);
      const F r0 = F::load(&sc.r[k]);
      const F g0 = F::load(&sc.g[k]);
      const F b0 = F::load(&sc.b[k]);
      const F w = alpha * t0;
      const F tn = t0 * (one - alpha);
      select(blend, r0 + rgb_r * w, r0).store(&sc.r[k]);
      select(blend, g0 + rgb_g * w, g0).store(&sc.g[k]);
      select(blend, b0 + rgb_b * w, b0).store(&sc.b[k]);
      select(blend, tn, t0).store(&sc.transmittance[k]);

      const M exit = cmp_lt(tn, t_thresh) & blend;
      acc_exit = acc_exit + as_i32(exit);
      exit_seen = exit_seen | exit;
    }
    const bool any_exit = exit_seen.any();

    // Compact out the pixels that hit the transmittance exit this splat,
    // flushing their colour (they can never change again). Equivalent to the
    // scalar swap-remove: removal only affects which later splats see them.
    if (any_exit) {
      std::size_t w = 0;
      for (std::size_t i = 0; i < active; ++i) {
        if (sc.transmittance[i] < kTransmittanceThreshold) {
          const std::uint32_t p = sc.pixel[i];
          fb.at(x0 + static_cast<int>(p) % bw, y0 + static_cast<int>(p) / bw) =
              Vec3{sc.r[i], sc.g[i], sc.b[i]};
        } else {
          sc.px[w] = sc.px[i];
          sc.py[w] = sc.py[i];
          sc.transmittance[w] = sc.transmittance[i];
          sc.r[w] = sc.r[i];
          sc.g[w] = sc.g[i];
          sc.b[w] = sc.b[i];
          sc.pixel[w] = sc.pixel[i];
          ++w;
        }
      }
      active = w;
    }
  }

  // Reduce the per-lane statistic accumulators (-1 per hit).
  stats.alpha_computations = static_cast<std::size_t>(-hsum(acc_pass));
  stats.blend_ops = static_cast<std::size_t>(-hsum(acc_blend));
  stats.early_exit_pixels = static_cast<std::size_t>(-hsum(acc_exit));

  // Flush the pixels that never hit the early exit.
  for (std::size_t i = 0; i < active; ++i) {
    const std::uint32_t p = sc.pixel[i];
    fb.at(x0 + static_cast<int>(p) % bw, y0 + static_cast<int>(p) / bw) =
        Vec3{sc.r[i], sc.g[i], sc.b[i]};
  }
  return stats;
}

TileRasterStats rasterize_tile_sortless_kernel(std::span<const ProjectedSplat> splats,
                                               std::span<const std::uint32_t> order, int x0,
                                               int y0, int x1, int y1, Framebuffer& fb,
                                               SortlessRasterScratch& sc, ExpMode exp_mode) {
  const int bw = x1 - x0;
  const int bh = y1 - y0;
  const std::size_t npx = static_cast<std::size_t>(bw) * bh;

  TileRasterStats stats;
  stats.pixels = npx;
  stats.pixel_list_work = order.size() * npx;
  // No transmittance early exit: dropping later splats once T is small would
  // make the result depend on the (nondeterministic) list order.

  // Fixed-point scales of the order-independent accumulators. Quantizing
  // each (pixel, splat) contribution once and summing in int64 makes the
  // total independent of accumulation order: integer addition is exactly
  // associative and commutative, float addition is not. Headroom: |terms|
  // <= ~2^33 each, so even million-entry lists stay far below 2^63.
  constexpr double kWeightScale = 1073741824.0;              // 2^30
  constexpr double kLogScale = 4294967296.0;                 // 2^32
  constexpr double kInvLogScale = 1.0 / 4294967296.0;

  if (sc.acc_w.size() < npx) {
    sc.acc_w.resize(npx);
    sc.acc_r.resize(npx);
    sc.acc_g.resize(npx);
    sc.acc_b.resize(npx);
    sc.acc_t.resize(npx);
  }
  for (std::size_t i = 0; i < npx; ++i) {
    sc.acc_w[i] = 0;
    sc.acc_r[i] = 0;
    sc.acc_g[i] = 0;
    sc.acc_b[i] = 0;
    sc.acc_t[i] = 0;
  }

  // One lane-padded row of pixel-centre x coordinates (axis-shared
  // evaluation walks the tile row by row). Padding clones the last column.
  const std::size_t row_cap = (static_cast<std::size_t>(bw) + kW - 1) / kW * kW;
  if (sc.px.size() < row_cap) sc.px.resize(row_cap);
  for (std::size_t i = 0; i < row_cap; ++i) {
    const int col = i < static_cast<std::size_t>(bw) ? static_cast<int>(i) : bw - 1;
    sc.px[i] = static_cast<float>(x0 + col) + 0.5f;
  }

  // Per-tile depth range over the whole list: min/max are commutative, so
  // the range (and the weights derived from it) is order-independent.
  float dmin = 0.0f;
  float dmax = 0.0f;
  bool have_depth = false;
  for (const std::uint32_t id : order) {
    const float d = splats[id].depth;
    if (!have_depth) {
      dmin = d;
      dmax = d;
      have_depth = true;
    } else {
      if (d < dmin) dmin = d;
      if (d > dmax) dmax = d;
    }
  }
  const float inv_range = dmax > dmin ? 1.0f / (dmax - dmin) : 0.0f;

  const F zero = F::broadcast(0.0f);
  const M all_valid = valid_mask(kW);

  std::size_t pass_count = 0;
  std::size_t blend_count = 0;

  for (const std::uint32_t id : order) {
    const ProjectedSplat& s = splats[id];
    const float q_max_s = 2.0f * std::log(255.0f * s.opacity);
    const float c2xy = 2.0f * s.conic.xy;
    // Scalar per-splat depth weight (shared by every pixel of the tile).
    const float fdepth = std::exp2(-kSortlessDepthBeta * ((s.depth - dmin) * inv_range));

    const F cx = F::broadcast(s.center.x);
    const F xx = F::broadcast(s.conic.xx);
    const F q_max = F::broadcast(q_max_s);

    for (int row = 0; row < bh; ++row) {
      // Axis-shared evaluation: everything dy-dependent is hoisted out of
      // the pixel loop — per pixel only the dx terms remain.
      const float dy = (static_cast<float>(y0 + row) + 0.5f) - s.center.y;
      const F ay = F::broadcast((s.conic.yy * dy) * dy);
      const F by = F::broadcast(c2xy * dy);

      for (std::size_t k = 0; k < static_cast<std::size_t>(bw); k += kW) {
        const M valid = k + kW <= static_cast<std::size_t>(bw)
                            ? all_valid
                            : valid_mask(static_cast<std::size_t>(bw) - k);
        const F dx = F::load(&sc.px[k]) - cx;
        // conic.quad with the row terms hoisted:
        // ((xx*dx)*dx + (2*xy*dy)*dx) + yy*dy*dy.
        const F q = ((xx * dx) * dx + by * dx) + ay;

        const M pass = (!(cmp_gt(q, q_max) | cmp_lt(q, zero))) & valid;
        if (!pass.any()) continue;

        F alpha;
        if (exp_mode == ExpMode::kExact) {
          for (int i = 0; i < kW; ++i) {
            if (pass.lane(i)) {
              const float e = std::exp(-0.5f * q.v[i]);
              const float a0 = s.opacity * e;
              alpha.v[i] = (a0 < kAlphaClamp) ? a0 : kAlphaClamp;  // std::min order
            } else {
              alpha.v[i] = 0.0f;
            }
          }
        } else {
          const F e = fast_exp<kW>(F::broadcast(-0.5f) * q);
          const F a0 = F::broadcast(s.opacity) * e;
          alpha = select(pass, min_std(F::broadcast(kAlphaClamp), a0), zero);
        }

        // Quantize and accumulate per lane. Scalar on purpose: llround /
        // log2 run through libm identically on every backend, and the int64
        // adds are what make the sum order-independent.
        for (int i = 0; i < kW; ++i) {
          if (!pass.lane(i)) continue;
          ++pass_count;
          const float a = alpha.v[i];
          if (a < kAlphaThreshold) continue;
          ++blend_count;
          const std::size_t p =
              static_cast<std::size_t>(row) * bw + k + static_cast<std::size_t>(i);
          const float w = a * fdepth;
          sc.acc_w[p] += std::llround(static_cast<double>(w) * kWeightScale);
          sc.acc_r[p] += std::llround(static_cast<double>(w * s.rgb.x) * kWeightScale);
          sc.acc_g[p] += std::llround(static_cast<double>(w * s.rgb.y) * kWeightScale);
          sc.acc_b[p] += std::llround(static_cast<double>(w * s.rgb.z) * kWeightScale);
          sc.acc_t[p] += std::llround(std::log2(1.0 - static_cast<double>(a)) * kLogScale);
        }
      }
    }
  }

  stats.alpha_computations = pass_count;
  stats.blend_ops = blend_count;

  // Resolve: colour = coverage * weighted average, coverage = 1 - Π(1-a)
  // recovered from the summed log2 terms. A deterministic function of the
  // integer sums, so the flushed image inherits their order independence.
  for (std::size_t p = 0; p < npx; ++p) {
    const int x = x0 + static_cast<int>(p) % bw;
    const int y = y0 + static_cast<int>(p) / bw;
    if (sc.acc_w[p] <= 0) {
      fb.at(x, y) = Vec3{0.0f, 0.0f, 0.0f};
      continue;
    }
    const double transmittance = std::exp2(static_cast<double>(sc.acc_t[p]) * kInvLogScale);
    const double coverage = 1.0 - transmittance;
    const double inv_w = 1.0 / static_cast<double>(sc.acc_w[p]);
    fb.at(x, y) = Vec3{
        static_cast<float>(coverage * (static_cast<double>(sc.acc_r[p]) * inv_w)),
        static_cast<float>(coverage * (static_cast<double>(sc.acc_g[p]) * inv_w)),
        static_cast<float>(coverage * (static_cast<double>(sc.acc_b[p]) * inv_w))};
  }
  return stats;
}

void preprocess_chunk_kernel(const PreprocessChunkArgs& args, std::size_t lo, std::size_t hi) {
  const GaussianCloud& cloud = *args.cloud;
  const Camera& camera = *args.camera;

  // Scalar camera constants — each is the value the scalar reference
  // (Camera::in_frustum / project_covariance, compiled contraction-free)
  // recomputes per Gaussian, hoisted (identical rounding every evaluation).
  const Mat4& w2c = camera.world_to_camera();
  const float guard_tx = kFrustumGuard * camera.tan_half_fov_x();
  const float guard_ty = kFrustumGuard * camera.tan_half_fov_y();
  const float lim_x = 1.3f * camera.tan_half_fov_x();  // project_covariance clamp
  const float lim_y = 1.3f * camera.tan_half_fov_y();
  const Mat3 wrot = w2c.rotation_block();

  const F zero = F::broadcast(0.0f);
  const F one = F::broadcast(1.0f);
  const F two = F::broadcast(2.0f);
  const F near_z = F::broadcast(kFrustumNearZ);
  const F alpha_thresh = F::broadcast(kAlphaThreshold);
  const F fx = F::broadcast(camera.fx());
  const F fy = F::broadcast(camera.fy());
  const F neg_fx = F::broadcast(-camera.fx());
  const F neg_fy = F::broadcast(-camera.fy());
  const F cx = F::broadcast(camera.cx());
  const F cy = F::broadcast(camera.cy());
  const F dilation = F::broadcast(kCovarianceDilation);

  for (std::size_t base = lo; base < hi; base += kW) {
    const std::size_t count = hi - base < static_cast<std::size_t>(kW)
                                  ? hi - base
                                  : static_cast<std::size_t>(kW);
    const M valid = valid_mask(count);

    // AoS -> lane gathers; padding lanes clone the last live entry so every
    // lane computes on finite data.
    F posx, posy, posz, opacity, qw, qx, qy, qz, sx, sy, sz;
    for (int i = 0; i < kW; ++i) {
      const std::size_t idx =
          base + (static_cast<std::size_t>(i) < count ? static_cast<std::size_t>(i) : count - 1);
      const Vec3 p = cloud.position(idx);
      const Quat q = cloud.rotation(idx);
      const Vec3 s = cloud.scale(idx);
      posx.v[i] = p.x;
      posy.v[i] = p.y;
      posz.v[i] = p.z;
      opacity.v[i] = cloud.opacity(idx);
      qw.v[i] = q.w;
      qx.v[i] = q.x;
      qy.v[i] = q.y;
      qz.v[i] = q.z;
      sx.v[i] = s.x;
      sy.v[i] = s.y;
      sz.v[i] = s.z;
    }

    // view = world_to_camera.transform_point(pos).
    F vr[3];
    for (int row = 0; row < 3; ++row) {
      vr[row] = ((F::broadcast(w2c.m[row][0]) * posx + F::broadcast(w2c.m[row][1]) * posy) +
                 F::broadcast(w2c.m[row][2]) * posz) +
                F::broadcast(w2c.m[row][3]);
    }
    const F vx = vr[0];
    const F vy = vr[1];
    const F vz = vr[2];

    // Frustum cull: z >= near plane, |x|,|y| within the 1.3x guard band.
    const F flim_x = F::broadcast(guard_tx) * vz;
    const F flim_y = F::broadcast(guard_ty) * vz;
    const M frustum = (!cmp_lt(vz, near_z)) &
                      (cmp_le(abs_lanes(vx), flim_x) & cmp_le(abs_lanes(vy), flim_y));
    const M opaque = !cmp_lt(opacity, alpha_thresh);
    M keep = valid & frustum & opaque;
    if (!keep.any()) continue;

    // z is only safe to divide by for in-frustum lanes (>= near plane);
    // culled lanes use 1 and are discarded.
    const F z_safe = select(frustum, vz, one);

    // --- covariance3d: R(normalized(q)) * diag(s), then M * M^T -----------
    const F qlen = sqrt_lanes(((qw * qw + qx * qx) + qy * qy) + qz * qz);
    const M qdegen = cmp_le(qlen, zero);  // normalized(Quat) degenerate branch
    const F qlen_safe = select(qdegen, one, qlen);
    const F nw = select(qdegen, one, qw / qlen_safe);
    const F nx = select(qdegen, zero, qx / qlen_safe);
    const F ny = select(qdegen, zero, qy / qlen_safe);
    const F nz = select(qdegen, zero, qz / qlen_safe);

    LaneMat3 rot;
    rot.m[0][0] = one - two * (ny * ny + nz * nz);
    rot.m[0][1] = two * (nx * ny - nw * nz);
    rot.m[0][2] = two * (nx * nz + nw * ny);
    rot.m[1][0] = two * (nx * ny + nw * nz);
    rot.m[1][1] = one - two * (nx * nx + nz * nz);
    rot.m[1][2] = two * (ny * nz - nw * nx);
    rot.m[2][0] = two * (nx * nz - nw * ny);
    rot.m[2][1] = two * (ny * nz + nw * nx);
    rot.m[2][2] = one - two * (nx * nx + ny * ny);

    LaneMat3 msc = rot;
    for (int row = 0; row < 3; ++row) {
      msc.m[row][0] = msc.m[row][0] * sx;
      msc.m[row][1] = msc.m[row][1] * sy;
      msc.m[row][2] = msc.m[row][2] * sz;
    }
    const LaneMat3 cov3 = matmul(msc, transposed(msc));

    // --- project_covariance: Sigma2D = (J W) Sigma3D (J W)^T + dilation ---
    const F txz = clamp_std(vx / z_safe, F::broadcast(-lim_x), F::broadcast(lim_x));
    const F tyz = clamp_std(vy / z_safe, F::broadcast(-lim_y), F::broadcast(lim_y));
    const F tx = txz * z_safe;
    const F ty = tyz * z_safe;
    const F inv_z = one / z_safe;
    const F inv_z2 = inv_z * inv_z;

    LaneMat3 j;
    j.m[0][0] = fx * inv_z;
    j.m[0][1] = zero;
    j.m[0][2] = (neg_fx * tx) * inv_z2;  // -fx * tx * inv_z2
    j.m[1][0] = zero;
    j.m[1][1] = fy * inv_z;
    j.m[1][2] = (neg_fy * ty) * inv_z2;
    j.m[2][0] = zero;
    j.m[2][1] = zero;
    j.m[2][2] = zero;

    LaneMat3 wl;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) wl.m[r][c] = F::broadcast(wrot.m[r][c]);
    }
    const LaneMat3 jw = matmul(j, wl);
    const LaneMat3 cov2 = matmul(matmul(jw, cov3), transposed(jw));
    const F cov_xx = cov2.m[0][0] + dilation;
    const F cov_xy = cov2.m[0][1];
    const F cov_yy = cov2.m[1][1] + dilation;

    // Degenerate-covariance cull mirrors `if (determinant() <= 0) continue`
    // (NaN determinants fall through, as in the scalar reference).
    const F det = cov_xx * cov_yy - cov_xy * cov_xy;
    const M pd = !cmp_le(det, zero);
    keep = keep & pd;

    const F det_safe = select(pd, det, one);
    const F inv_det = one / det_safe;
    const F conic_xx = cov_yy * inv_det;
    const F conic_xy = (-cov_xy) * inv_det;
    const F conic_yy = cov_xx * inv_det;

    const F center_x = (fx * vx) / z_safe + cx;
    const F center_y = (fy * vy) / z_safe + cy;

    // Footprint extent rho (3-sigma or opacity-aware; the log runs per lane
    // through libm — exactness is required here, rho feeds binning).
    F rho;
    if (args.opacity_aware_rho) {
      for (int i = 0; i < kW; ++i) {
        const float op = opacity.v[i];
        rho.v[i] = (op <= 1.0f / 255.0f) ? 0.0f : 2.0f * std::log(255.0f * op);
      }
    } else {
      rho = F::broadcast(kThreeSigmaRho);
    }
    keep = keep & !cmp_le(rho, zero);

    for (std::size_t i = 0; i < count; ++i) {
      if (!keep.lane(static_cast<int>(i))) continue;
      const std::size_t idx = base + i;
      ProjectedSplat s;
      s.center = Vec2{center_x.v[i], center_y.v[i]};
      s.cov = Sym2{cov_xx.v[i], cov_xy.v[i], cov_yy.v[i]};
      s.conic = Sym2{conic_xx.v[i], conic_xy.v[i], conic_yy.v[i]};
      s.depth = vz.v[i];
      s.opacity = opacity.v[i];
      s.rho = rho.v[i];
      s.rgb = eval_sh_color(cloud.sh_degree(), cloud.sh(idx),
                            normalized(cloud.position(idx) - args.cam_pos));
      s.index = static_cast<std::uint32_t>(idx);
      args.slots[idx] = s;
      args.keep[idx] = 1;
    }
  }
}

}  // namespace GSTG_SIMD_NS
}  // namespace gstg
