// Symmetric 2x2 matrices: the projected (screen-space) Gaussian covariance
// and its inverse (the "conic"). Provides the eigen decomposition used for
// OBB axes and screen-space radii.
#pragma once

#include "geometry/vec.h"

namespace gstg {

/// Symmetric 2x2 matrix [[xx, xy], [xy, yy]].
struct Sym2 {
  float xx = 0.0f;
  float xy = 0.0f;
  float yy = 0.0f;

  constexpr float determinant() const { return xx * yy - xy * xy; }
  constexpr float trace() const { return xx + yy; }

  /// Quadratic form d^T M d.
  constexpr float quad(Vec2 d) const {
    return xx * d.x * d.x + 2.0f * xy * d.x * d.y + yy * d.y * d.y;
  }

  constexpr Sym2 operator+(Sym2 o) const { return {xx + o.xx, xy + o.xy, yy + o.yy}; }
  constexpr Sym2 operator*(float s) const { return {xx * s, xy * s, yy * s}; }
  constexpr bool operator==(const Sym2&) const = default;
};

/// Eigenvalues (descending) and unit eigenvectors of a symmetric 2x2 matrix.
struct Eigen2 {
  float lambda1 = 0.0f;  ///< larger eigenvalue
  float lambda2 = 0.0f;  ///< smaller eigenvalue
  Vec2 axis1;            ///< unit eigenvector for lambda1
  Vec2 axis2;            ///< unit eigenvector for lambda2 (perpendicular)
};

/// Closed-form symmetric eigen decomposition. Always returns an orthonormal
/// pair; for (near-)isotropic input the axes default to the coordinate axes.
Eigen2 eigen_decompose(Sym2 m);

/// Inverse of a symmetric positive-definite 2x2 matrix. Throws
/// std::domain_error when the determinant is not positive (degenerate splat).
Sym2 inverse(Sym2 m);

}  // namespace gstg
