// Small fixed-size vector types used throughout the renderer.
//
// Kept deliberately minimal: only the operations the 3D-GS pipeline needs.
// All types are aggregates with value semantics.
#pragma once

#include <cmath>

namespace gstg {

struct Vec2 {
  float x = 0.0f;
  float y = 0.0f;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(float s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr bool operator==(const Vec2&) const = default;
};

constexpr float dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }
inline float length(Vec2 v) { return std::sqrt(dot(v, v)); }
/// Perpendicular (rotate +90 degrees).
constexpr Vec2 perp(Vec2 v) { return {-v.y, v.x}; }

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr bool operator==(const Vec3&) const = default;
};

constexpr float dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
constexpr Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
inline float length(Vec3 v) { return std::sqrt(dot(v, v)); }
inline Vec3 normalized(Vec3 v) {
  const float len = length(v);
  return len > 0.0f ? v / len : Vec3{0.0f, 0.0f, 0.0f};
}
/// Component-wise product (used for colour modulation).
constexpr Vec3 hadamard(Vec3 a, Vec3 b) { return {a.x * b.x, a.y * b.y, a.z * b.z}; }

struct Vec4 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
  float w = 0.0f;

  constexpr Vec4 operator+(Vec4 o) const { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
  constexpr Vec4 operator-(Vec4 o) const { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
  constexpr Vec4 operator*(float s) const { return {x * s, y * s, z * s, w * s}; }
  constexpr bool operator==(const Vec4&) const = default;
};

constexpr float dot(Vec4 a, Vec4 b) { return a.x * b.x + a.y * b.y + a.z * b.z + a.w * b.w; }
constexpr Vec4 to_homogeneous(Vec3 v) { return {v.x, v.y, v.z, 1.0f}; }
constexpr Vec3 from_homogeneous(Vec4 v) { return Vec3{v.x, v.y, v.z} / v.w; }

}  // namespace gstg
