// Shared clamped float→int conversions for footprint/grid math.
//
// static_cast<int> from a float outside int's representable range is
// undefined behaviour, and degenerate conics (huge rho, NaN coordinates)
// routinely produce AABB coordinates far outside it. Every float→int
// conversion in src/geometry and src/render must either go through these
// helpers or clamp in the expression (std::clamp before the cast); lint
// rule R2 (tools/lint/gstg_lint.py) enforces this at analysis time.
#pragma once

#include <cmath>

namespace gstg {

/// static_cast<int>(v) clamped into [lo, hi] in the float domain, so the
/// cast itself is always in range. NaN fails every comparison and lands on
/// `lo` (the safe end for grid math: the empty/zero cell).
inline int clamped_float_to_int(float v, int lo, int hi) {
  const float flo = static_cast<float>(lo);
  const float fhi = static_cast<float>(hi);
  if (!(v > flo)) return lo;
  if (v >= fhi) return hi;
  return static_cast<int>(v);
}

/// floor(v / cell_size) + bias, clamped into [0, cells] in the float
/// domain. The float→int cast is UB outside int's range and a degenerate
/// conic (huge rho) produces AABB coordinates far outside it, so the clamp
/// must happen before the cast. NaN fails every comparison and lands on 0.
inline int clamped_cell_floor(float v, float cell_size, int cells, int bias) {
  const float c = std::floor(v / cell_size) + static_cast<float>(bias);
  if (!(c > 0.0f)) return 0;
  if (c >= static_cast<float>(cells)) return cells;
  return static_cast<int>(c);
}

}  // namespace gstg
