#include "geometry/ellipse.h"

#include <cmath>

namespace gstg {

float opacity_aware_rho(float opacity) {
  if (opacity <= 1.0f / 255.0f) return 0.0f;
  return 2.0f * std::log(255.0f * opacity);
}

Ellipse Ellipse::from_cov(Vec2 center, Sym2 cov, float rho) {
  Ellipse e;
  e.center = center;
  e.cov = cov;
  e.conic = inverse(cov);  // throws if not SPD
  e.rho = rho;
  return e;
}

Rect Ellipse::aabb() const {
  // Extent of {d : d^T cov^{-1} d <= rho} along x is sqrt(rho * cov.xx):
  // substituting d = cov^{1/2} u with |u|^2 <= rho maximises d.x at
  // sqrt(rho) * ||row_x(cov^{1/2})|| = sqrt(rho * cov.xx). A negative
  // product collapses to zero extent; a NaN product (degenerate rho or
  // covariance) must stay NaN so the candidate-cell math can reject the
  // box — std::max(0, NaN) would silently fabricate a point box.
  const auto extent = [](float v) { return v > 0.0f ? std::sqrt(v) : (v <= 0.0f ? 0.0f : v); };
  const float ex = extent(rho * cov.xx);
  const float ey = extent(rho * cov.yy);
  return Rect{center.x - ex, center.y - ey, center.x + ex, center.y + ey};
}

Vec2 Ellipse::semi_axes() const {
  const Eigen2 eig = eigen_decompose(cov);
  return {std::sqrt(std::max(0.0f, rho * eig.lambda1)),
          std::sqrt(std::max(0.0f, rho * eig.lambda2))};
}

Obb Obb::from_ellipse(const Ellipse& e) {
  const Eigen2 eig = eigen_decompose(e.cov);
  Obb o;
  o.center = e.center;
  o.axis1 = eig.axis1;
  o.axis2 = eig.axis2;
  o.half1 = std::sqrt(std::max(0.0f, e.rho * eig.lambda1));
  o.half2 = std::sqrt(std::max(0.0f, e.rho * eig.lambda2));
  return o;
}

}  // namespace gstg
