#include "geometry/sym2.h"

#include <cmath>
#include <stdexcept>

namespace gstg {

Eigen2 eigen_decompose(Sym2 m) {
  Eigen2 out;
  const float mid = 0.5f * m.trace();
  // Guard the radicand: analytically non-negative, but fp rounding can dip below.
  const float radicand = std::max(0.0f, mid * mid - m.determinant());
  const float root = std::sqrt(radicand);
  out.lambda1 = mid + root;
  out.lambda2 = mid - root;

  // Eigenvector for lambda1: rows of (M - lambda2 I) span it. Pick the larger
  // of the two candidate directions for numerical stability.
  const Vec2 c1{m.xx - out.lambda2, m.xy};
  const Vec2 c2{m.xy, m.yy - out.lambda2};
  const float n1 = dot(c1, c1);
  const float n2 = dot(c2, c2);
  Vec2 axis = n1 >= n2 ? c1 : c2;
  const float len = length(axis);
  if (len < 1e-20f) {
    out.axis1 = {1.0f, 0.0f};  // isotropic: any orthonormal basis works
  } else {
    out.axis1 = axis / len;
  }
  out.axis2 = perp(out.axis1);
  return out;
}

Sym2 inverse(Sym2 m) {
  const float det = m.determinant();
  if (det <= 0.0f) {
    throw std::domain_error("Sym2 inverse: matrix not positive definite");
  }
  const float inv_det = 1.0f / det;
  return {m.yy * inv_det, -m.xy * inv_det, m.xx * inv_det};
}

}  // namespace gstg
