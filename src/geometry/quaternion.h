// Unit quaternion -> rotation matrix, matching the 3D-GS checkpoint
// convention (w, x, y, z storage order as in the INRIA reference code).
#pragma once

#include <algorithm>
#include <cmath>

#include "geometry/mat.h"
#include "geometry/vec.h"

namespace gstg {

struct Quat {
  float w = 1.0f;
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr bool operator==(const Quat&) const = default;
};

inline float length(Quat q) {
  return std::sqrt(q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z);
}

constexpr float dot(Quat a, Quat b) {
  return a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Quat normalized(Quat q) {
  const float len = length(q);
  if (len <= 0.0f) return Quat{};  // identity for degenerate input
  return {q.w / len, q.x / len, q.y / len, q.z / len};
}

/// Rotation matrix of a (not necessarily normalised) quaternion; the input is
/// normalised first, as the 3D-GS reference implementation does for raw
/// checkpoint values.
inline Mat3 rotation_matrix(Quat q) {
  q = normalized(q);
  const float w = q.w, x = q.x, y = q.y, z = q.z;
  Mat3 r;
  r.m[0] = {1.0f - 2.0f * (y * y + z * z), 2.0f * (x * y - w * z), 2.0f * (x * z + w * y)};
  r.m[1] = {2.0f * (x * y + w * z), 1.0f - 2.0f * (x * x + z * z), 2.0f * (y * z - w * x)};
  r.m[2] = {2.0f * (x * z - w * y), 2.0f * (y * z + w * x), 1.0f - 2.0f * (x * x + y * y)};
  return r;
}

/// Spherical linear interpolation between unit quaternions along the
/// shortest arc (b is negated when dot(a, b) < 0 — q and -q are the same
/// rotation). Endpoints are exact: t <= 0 returns a and t >= 1 returns b
/// bit-for-bit, so keyframe poses survive a round trip through a sampled
/// camera path. The result is re-normalised, and nearly-parallel inputs
/// fall back to normalised lerp (the sin denominator would be degenerate).
inline Quat slerp(Quat a, Quat b, float t) {
  if (t <= 0.0f) return a;
  if (t >= 1.0f) return b;
  float d = dot(a, b);
  Quat c = b;
  if (d < 0.0f) {
    c = {-b.w, -b.x, -b.y, -b.z};
    d = -d;
  }
  if (d > 0.9995f) {
    // Nearly parallel: lerp, then normalise.
    return normalized(Quat{a.w + (c.w - a.w) * t, a.x + (c.x - a.x) * t, a.y + (c.y - a.y) * t,
                           a.z + (c.z - a.z) * t});
  }
  const float theta = std::acos(std::min(d, 1.0f));
  const float s = std::sin(theta);
  const float wa = std::sin((1.0f - t) * theta) / s;
  const float wb = std::sin(t * theta) / s;
  return normalized(Quat{wa * a.w + wb * c.w, wa * a.x + wb * c.x, wa * a.y + wb * c.y,
                         wa * a.z + wb * c.z});
}

/// Axis-angle constructor (axis need not be unit length).
inline Quat from_axis_angle(Vec3 axis, float radians) {
  const Vec3 a = normalized(axis);
  const float half = radians * 0.5f;
  const float s = std::sin(half);
  return {std::cos(half), a.x * s, a.y * s, a.z * s};
}

/// Quaternion for the rotation whose columns are the orthonormal basis
/// (x_axis, y_axis, z_axis) — Shepperd's method, branch on the largest
/// diagonal term for numerical stability. Used by the scene synthesiser to
/// orient splats along surface tangent frames.
inline Quat from_basis(Vec3 x_axis, Vec3 y_axis, Vec3 z_axis) {
  // Rotation matrix with the basis vectors as columns.
  const float m00 = x_axis.x, m01 = y_axis.x, m02 = z_axis.x;
  const float m10 = x_axis.y, m11 = y_axis.y, m12 = z_axis.y;
  const float m20 = x_axis.z, m21 = y_axis.z, m22 = z_axis.z;
  const float trace = m00 + m11 + m22;
  Quat q;
  if (trace > 0.0f) {
    const float s = std::sqrt(trace + 1.0f) * 2.0f;
    q = {0.25f * s, (m21 - m12) / s, (m02 - m20) / s, (m10 - m01) / s};
  } else if (m00 > m11 && m00 > m22) {
    const float s = std::sqrt(1.0f + m00 - m11 - m22) * 2.0f;
    q = {(m21 - m12) / s, 0.25f * s, (m01 + m10) / s, (m02 + m20) / s};
  } else if (m11 > m22) {
    const float s = std::sqrt(1.0f + m11 - m00 - m22) * 2.0f;
    q = {(m02 - m20) / s, (m01 + m10) / s, 0.25f * s, (m12 + m21) / s};
  } else {
    const float s = std::sqrt(1.0f + m22 - m00 - m11) * 2.0f;
    q = {(m10 - m01) / s, (m02 + m20) / s, (m12 + m21) / s, 0.25f * s};
  }
  return normalized(q);
}

}  // namespace gstg
