#include "geometry/intersect.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gstg {

const char* to_string(Boundary b) {
  switch (b) {
    case Boundary::kAabb:
      return "AABB";
    case Boundary::kObb:
      return "OBB";
    case Boundary::kEllipse:
      return "Ellipse";
  }
  return "?";
}

namespace {

/// Minimises q(t) = Q.xx*(x(t)-mx)^2 + 2 Q.xy (x(t)-mx)(y(t)-my) + ... along
/// a horizontal edge y = yc, x in [xa, xb], relative to centre mu.
float min_on_horizontal_edge(const Sym2& q, Vec2 mu, float yc, float xa, float xb) {
  const float dy = yc - mu.y;
  // d/dx [ q.xx (x-mx)^2 + 2 q.xy (x-mx) dy ] = 0  =>  x = mx - q.xy*dy/q.xx
  float x_star;
  if (q.xx > 0.0f) {
    x_star = std::clamp(mu.x - q.xy * dy / q.xx, xa, xb);
  } else {
    x_star = xa;  // degenerate: function linear in x; endpoints checked below
  }
  const float dx = x_star - mu.x;
  float best = q.xx * dx * dx + 2.0f * q.xy * dx * dy + q.yy * dy * dy;
  for (const float xe : {xa, xb}) {
    const float d = xe - mu.x;
    best = std::min(best, q.xx * d * d + 2.0f * q.xy * d * dy + q.yy * dy * dy);
  }
  return best;
}

float min_on_vertical_edge(const Sym2& q, Vec2 mu, float xc, float ya, float yb) {
  const float dx = xc - mu.x;
  float y_star;
  if (q.yy > 0.0f) {
    y_star = std::clamp(mu.y - q.xy * dx / q.yy, ya, yb);
  } else {
    y_star = ya;
  }
  const float dy = y_star - mu.y;
  float best = q.xx * dx * dx + 2.0f * q.xy * dx * dy + q.yy * dy * dy;
  for (const float ye : {ya, yb}) {
    const float d = ye - mu.y;
    best = std::min(best, q.xx * dx * dx + 2.0f * q.xy * dx * d + q.yy * d * d);
  }
  return best;
}

}  // namespace

float min_mahalanobis_sq_on_rect(const Sym2& conic, Vec2 mu, const Rect& rect) {
  if (!rect.valid()) {
    throw std::invalid_argument("min_mahalanobis_sq_on_rect: invalid rect");
  }
  if (rect.contains(mu)) {
    return 0.0f;  // unconstrained minimum is feasible
  }
  // Centre outside: the constrained minimum lies on the boundary.
  float best = min_on_horizontal_edge(conic, mu, rect.y0, rect.x0, rect.x1);
  best = std::min(best, min_on_horizontal_edge(conic, mu, rect.y1, rect.x0, rect.x1));
  best = std::min(best, min_on_vertical_edge(conic, mu, rect.x0, rect.y0, rect.y1));
  best = std::min(best, min_on_vertical_edge(conic, mu, rect.x1, rect.y0, rect.y1));
  return best;
}

bool aabb_intersects(const Ellipse& e, const Rect& rect) {
  return e.aabb().overlaps(rect);
}

bool obb_intersects(const Obb& obb, const Rect& rect) {
  // Separating axis test. Candidate axes: the rect's x/y axes and the OBB's
  // two axes. Project both shapes on each axis; disjoint intervals on any
  // axis => no intersection.
  const Vec2 rc = rect.center();
  const float rhx = 0.5f * rect.width();
  const float rhy = 0.5f * rect.height();
  const Vec2 d = obb.center - rc;

  // Rect axes (x and y): OBB projection radius is |a1.x|*h1 + |a2.x|*h2 etc.
  const float obb_rx = std::fabs(obb.axis1.x) * obb.half1 + std::fabs(obb.axis2.x) * obb.half2;
  if (std::fabs(d.x) > rhx + obb_rx) return false;
  const float obb_ry = std::fabs(obb.axis1.y) * obb.half1 + std::fabs(obb.axis2.y) * obb.half2;
  if (std::fabs(d.y) > rhy + obb_ry) return false;

  // OBB axes: rect projection radius is rhx*|axis.x| + rhy*|axis.y|.
  const float proj1 = std::fabs(dot(d, obb.axis1));
  const float rect_r1 = rhx * std::fabs(obb.axis1.x) + rhy * std::fabs(obb.axis1.y);
  if (proj1 > obb.half1 + rect_r1) return false;

  const float proj2 = std::fabs(dot(d, obb.axis2));
  const float rect_r2 = rhx * std::fabs(obb.axis2.x) + rhy * std::fabs(obb.axis2.y);
  if (proj2 > obb.half2 + rect_r2) return false;

  return true;
}

bool ellipse_intersects(const Ellipse& e, const Rect& rect) {
  return min_mahalanobis_sq_on_rect(e.conic, e.center, rect) <= e.rho;
}

bool footprint_intersects(Boundary method, const Ellipse& e, const Rect& rect) {
  switch (method) {
    case Boundary::kAabb:
      return aabb_intersects(e, rect);
    case Boundary::kObb:
      return obb_intersects(Obb::from_ellipse(e), rect);
    case Boundary::kEllipse:
      return ellipse_intersects(e, rect);
  }
  return false;
}

}  // namespace gstg
