// Axis-aligned rectangles in pixel space, plus the integer tile-range type
// the binning stages iterate over.
#pragma once

#include <algorithm>

#include "geometry/vec.h"

namespace gstg {

/// Closed axis-aligned rectangle [x0, x1] x [y0, y1] in pixel coordinates.
struct Rect {
  float x0 = 0.0f;
  float y0 = 0.0f;
  float x1 = 0.0f;
  float y1 = 0.0f;

  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  [[nodiscard]] constexpr float width() const { return x1 - x0; }
  [[nodiscard]] constexpr float height() const { return y1 - y0; }
  [[nodiscard]] constexpr Vec2 center() const { return {0.5f * (x0 + x1), 0.5f * (y0 + y1)}; }
  [[nodiscard]] constexpr bool valid() const { return x1 >= x0 && y1 >= y0; }

  /// Closest point of the rectangle to p (p itself when inside).
  [[nodiscard]] Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, x0, x1), std::clamp(p.y, y0, y1)};
  }

  [[nodiscard]] constexpr bool overlaps(const Rect& o) const {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
};

/// Half-open integer range of tiles [tx0, tx1) x [ty0, ty1).
struct TileRange {
  int tx0 = 0;
  int ty0 = 0;
  int tx1 = 0;
  int ty1 = 0;

  [[nodiscard]] constexpr bool empty() const { return tx1 <= tx0 || ty1 <= ty0; }
  [[nodiscard]] constexpr long long count() const {
    return empty() ? 0 : static_cast<long long>(tx1 - tx0) * (ty1 - ty0);
  }
  constexpr bool operator==(const TileRange&) const = default;
};

/// Pixel rectangle covered by integer tile (tx, ty) with `tile` pixels on a
/// side, clipped to the image. The rectangle spans the tile's pixel centers'
/// full extent [tx*tile, (tx+1)*tile).
inline Rect tile_rect(int tx, int ty, int tile_size, int image_width, int image_height) {
  // The products are widened to 64 bits: (tx + 1) * tile_size overflows int
  // for tile indices near INT_MAX (far-out indices are representable in a
  // TileRange even though real grids never reach them).
  const long long ts = tile_size;
  Rect r;
  r.x0 = static_cast<float>(tx * ts);
  r.y0 = static_cast<float>(ty * ts);
  r.x1 = std::min(static_cast<float>((tx + 1) * ts), static_cast<float>(image_width));
  r.y1 = std::min(static_cast<float>((ty + 1) * ts), static_cast<float>(image_height));
  return r;
}

}  // namespace gstg
