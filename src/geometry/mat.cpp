#include "geometry/mat.h"

#include <cmath>
#include <stdexcept>

namespace gstg {

Mat3 inverse(const Mat3& a) {
  const float det = a.determinant();
  if (std::fabs(det) < 1e-20f) {
    throw std::domain_error("Mat3 inverse: singular matrix");
  }
  const float inv_det = 1.0f / det;
  Mat3 r;
  r.m[0][0] = (a.m[1][1] * a.m[2][2] - a.m[1][2] * a.m[2][1]) * inv_det;
  r.m[0][1] = (a.m[0][2] * a.m[2][1] - a.m[0][1] * a.m[2][2]) * inv_det;
  r.m[0][2] = (a.m[0][1] * a.m[1][2] - a.m[0][2] * a.m[1][1]) * inv_det;
  r.m[1][0] = (a.m[1][2] * a.m[2][0] - a.m[1][0] * a.m[2][2]) * inv_det;
  r.m[1][1] = (a.m[0][0] * a.m[2][2] - a.m[0][2] * a.m[2][0]) * inv_det;
  r.m[1][2] = (a.m[0][2] * a.m[1][0] - a.m[0][0] * a.m[1][2]) * inv_det;
  r.m[2][0] = (a.m[1][0] * a.m[2][1] - a.m[1][1] * a.m[2][0]) * inv_det;
  r.m[2][1] = (a.m[0][1] * a.m[2][0] - a.m[0][0] * a.m[2][1]) * inv_det;
  r.m[2][2] = (a.m[0][0] * a.m[1][1] - a.m[0][1] * a.m[1][0]) * inv_det;
  return r;
}

Mat4 rigid_inverse(const Mat4& a) {
  // [R t; 0 1]^-1 = [R^T -R^T t; 0 1]
  const Mat3 rt = a.rotation_block().transposed();
  const Vec3 t{a.m[0][3], a.m[1][3], a.m[2][3]};
  const Vec3 nt = -(rt * t);
  Mat4 r = Mat4::identity();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) r.m[i][j] = rt.m[i][j];
  }
  r.m[0][3] = nt.x;
  r.m[1][3] = nt.y;
  r.m[2][3] = nt.z;
  return r;
}

}  // namespace gstg
