// Row-major 3x3 and 4x4 matrices for the camera/projection pipeline.
#pragma once

#include <array>

#include "geometry/vec.h"

namespace gstg {

struct Mat3 {
  // m[row][col]
  std::array<std::array<float, 3>, 3> m{};

  static constexpr Mat3 identity() {
    Mat3 r;
    r.m[0][0] = r.m[1][1] = r.m[2][2] = 1.0f;
    return r;
  }

  constexpr float& operator()(int row, int col) { return m[row][col]; }
  constexpr float operator()(int row, int col) const { return m[row][col]; }

  constexpr Vec3 operator*(Vec3 v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  constexpr Mat3 operator*(const Mat3& o) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        float s = 0.0f;
        for (int k = 0; k < 3; ++k) s += m[i][k] * o.m[k][j];
        r.m[i][j] = s;
      }
    }
    return r;
  }

  constexpr Mat3 transposed() const {
    Mat3 r;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
    }
    return r;
  }

  constexpr float determinant() const {
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  }
};

struct Mat4 {
  std::array<std::array<float, 4>, 4> m{};

  static constexpr Mat4 identity() {
    Mat4 r;
    r.m[0][0] = r.m[1][1] = r.m[2][2] = r.m[3][3] = 1.0f;
    return r;
  }

  constexpr float& operator()(int row, int col) { return m[row][col]; }
  constexpr float operator()(int row, int col) const { return m[row][col]; }

  constexpr Vec4 operator*(Vec4 v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w,
            m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w};
  }

  constexpr Mat4 operator*(const Mat4& o) const {
    Mat4 r;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        float s = 0.0f;
        for (int k = 0; k < 4; ++k) s += m[i][k] * o.m[k][j];
        r.m[i][j] = s;
      }
    }
    return r;
  }

  /// Upper-left 3x3 block (rotation part of a rigid transform).
  constexpr Mat3 rotation_block() const {
    Mat3 r;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[i][j];
    }
    return r;
  }

  /// Transforms a point (w = 1) and drops the homogeneous coordinate without
  /// dividing — valid for rigid transforms where the last row is (0,0,0,1).
  constexpr Vec3 transform_point(Vec3 p) const {
    return {m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3],
            m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3],
            m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3]};
  }
};

/// General 3x3 inverse via the adjugate. Throws nothing; caller must ensure
/// the matrix is non-singular (checked in debug tests).
Mat3 inverse(const Mat3& a);

/// Inverse of a rigid transform (rotation + translation) — exact and cheap.
Mat4 rigid_inverse(const Mat4& a);

}  // namespace gstg
