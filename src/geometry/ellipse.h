// Screen-space elliptical splat footprint.
//
// A projected Gaussian with 2D covariance S (Sym2) and opacity sigma has the
// iso-contour (p-mu)^T S^{-1} (p-mu) = rho. The paper applies the 3-sigma
// rule (rho = 9) to bound each Gaussian's influence; the opacity-aware bound
// rho = 2 ln(255 sigma) used by FlashGS is also provided.
#pragma once

#include "geometry/rect.h"
#include "geometry/sym2.h"
#include "geometry/vec.h"

namespace gstg {

/// rho for the 3-sigma rule used by the original 3D-GS and this paper.
inline constexpr float kThreeSigmaRho = 9.0f;

/// rho at which alpha falls below 1/255 for a Gaussian with peak opacity
/// sigma: alpha = sigma * exp(-q/2) >= 1/255  <=>  q <= 2 ln(255 sigma).
/// Returns 0 for sigma <= 1/255 (never visible).
float opacity_aware_rho(float opacity);

/// Elliptical footprint: centre, covariance, conic (inverse covariance) and
/// the contour level rho defining its extent.
struct Ellipse {
  Vec2 center;
  Sym2 cov;    ///< screen-space covariance
  Sym2 conic;  ///< cov^{-1}
  float rho = kThreeSigmaRho;

  /// Footprint from a covariance; throws std::domain_error for a
  /// non-positive-definite covariance.
  static Ellipse from_cov(Vec2 center, Sym2 cov, float rho = kThreeSigmaRho);

  /// Mahalanobis quadratic q(p) = (p-c)^T conic (p-c).
  [[nodiscard]] float mahalanobis_sq(Vec2 p) const { return conic.quad(p - center); }

  [[nodiscard]] bool contains(Vec2 p) const { return mahalanobis_sq(p) <= rho; }

  /// Tight axis-aligned bounding rectangle: half-extent along x is
  /// sqrt(rho * cov.xx), along y sqrt(rho * cov.yy).
  [[nodiscard]] Rect aabb() const;

  /// Semi-axis lengths (major, minor) = sqrt(rho * eigenvalues).
  [[nodiscard]] Vec2 semi_axes() const;
};

/// Oriented bounding box of the ellipse: centre, unit axes, half extents.
struct Obb {
  Vec2 center;
  Vec2 axis1;  ///< unit direction of the major axis
  Vec2 axis2;  ///< unit direction of the minor axis
  float half1 = 0.0f;
  float half2 = 0.0f;

  static Obb from_ellipse(const Ellipse& e);
};

}  // namespace gstg
