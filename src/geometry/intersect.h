// Splat-footprint vs tile-rectangle intersection tests: the three boundary
// methods the paper compares (Fig. 2) —
//   AABB    (original 3D-GS):  axis-aligned box of the ellipse
//   OBB     (GSCore):          oriented box aligned with the ellipse axes
//   Ellipse (FlashGS):         exact elliptical boundary
// Each refines the previous one: tiles(Ellipse) ⊆ tiles(OBB) ⊆ tiles(AABB);
// a property test asserts this chain.
#pragma once

#include "geometry/ellipse.h"
#include "geometry/rect.h"

namespace gstg {

/// Boundary method used for tile / group identification and for the GS-TG
/// bitmask generation step.
enum class Boundary {
  kAabb,
  kObb,
  kEllipse,
};

const char* to_string(Boundary b);

/// Exact minimum of the convex quadratic (p-mu)^T Q (p-mu) over an
/// axis-aligned rectangle. Q must be symmetric positive definite. The minimum
/// of a convex function over a box is attained at the unconstrained minimum
/// (the centre, if inside) or on one of the four edges, where the restriction
/// is a 1-D quadratic minimised in closed form with clamping.
float min_mahalanobis_sq_on_rect(const Sym2& conic, Vec2 mu, const Rect& rect);

/// AABB test: does the ellipse's axis-aligned bounding box overlap the rect.
bool aabb_intersects(const Ellipse& e, const Rect& rect);

/// OBB test: separating-axis test between the ellipse's oriented bounding box
/// and the (axis-aligned) rect.
bool obb_intersects(const Obb& obb, const Rect& rect);

/// Exact test: min Mahalanobis distance over the rect vs rho.
bool ellipse_intersects(const Ellipse& e, const Rect& rect);

/// Dispatch on the boundary method. For kObb the OBB is derived on the fly;
/// hot loops should precompute it (see render/binning.cpp).
bool footprint_intersects(Boundary method, const Ellipse& e, const Rect& rect);

}  // namespace gstg
