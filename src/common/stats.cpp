#include "common/stats.h"

#include <cmath>
#include <stdexcept>

namespace gstg {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) {
    throw std::invalid_argument("geometric_mean: empty input");
  }
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geometric_mean: non-positive sample");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(bins_.size()));
  bins_[idx < bins_.size() ? idx : bins_.size() - 1]++;
}

double Histogram::bin_lower_edge(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

}  // namespace gstg
