#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gstg {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) {
    throw std::invalid_argument("geometric_mean: empty input");
  }
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geometric_mean: non-positive sample");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("percentile_sorted: empty sample");
  }
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument("percentile_sorted: p outside [0, 1]");
  }
  // Nearest-rank: the smallest value with at least ceil(p * n) samples at or
  // below it; p=0 maps to the first element rather than rank ceil(0)=0.
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

PercentileSummary summarize_percentiles(std::vector<double> values) {
  PercentileSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.p50 = percentile_sorted(values, 0.50);
  s.p95 = percentile_sorted(values, 0.95);
  s.p99 = percentile_sorted(values, 0.99);
  s.min = values.front();
  s.max = values.back();
  s.count = values.size();
  return s;
}

LatencyHistogram::LatencyHistogram(double lo, double growth, std::size_t buckets)
    : lo_(lo), log_growth_(std::log(growth)), counts_(buckets, 0) {
  if (!(lo > 0.0) || !(growth > 1.0) || buckets == 0) {
    throw std::invalid_argument("LatencyHistogram: need lo > 0, growth > 1, buckets > 0");
  }
}

std::size_t LatencyHistogram::bucket_index(double x) const {
  if (!(x > lo_)) return 0;
  const auto idx = static_cast<std::size_t>(std::log(x / lo_) / log_growth_);
  return idx < counts_.size() ? idx : counts_.size() - 1;
}

void LatencyHistogram::add(double x) {
  if (total_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++total_;
  sum_ += x;
  ++counts_[bucket_index(x)];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.total_ == 0) return;
  if (counts_.size() != other.counts_.size() || lo_ != other.lo_ ||
      log_growth_ != other.log_growth_) {
    throw std::invalid_argument("LatencyHistogram::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LatencyHistogram::quantile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const auto rank = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total_)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      // Tighten the estimate with the true extrema when they land in this
      // bucket's range; otherwise report the bucket's upper edge.
      return std::min(bucket_upper_edge(i), max_);
    }
  }
  return max_;
}

double LatencyHistogram::bucket_upper_edge(std::size_t i) const {
  return lo_ * std::exp(log_growth_ * static_cast<double>(i + 1));
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(bins_.size()));
  bins_[idx < bins_.size() ? idx : bins_.size() - 1]++;
}

double Histogram::bin_lower_edge(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

}  // namespace gstg
