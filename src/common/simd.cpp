#include "common/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

namespace gstg {

const char* to_string(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto:
      return "auto";
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kSse4:
      return "sse4";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kNeon:
      return "neon";
  }
  return "auto";
}

SimdBackend simd_backend_from_string(const char* name) {
  // strcmp instead of a std::string temporary: backend resolution sits on
  // the render-kernel selection path, which must not allocate (lint R1).
  if (name == nullptr || *name == '\0') return SimdBackend::kAuto;
  if (std::strcmp(name, "auto") == 0) return SimdBackend::kAuto;
  if (std::strcmp(name, "scalar") == 0) return SimdBackend::kScalar;
  if (std::strcmp(name, "sse4") == 0) return SimdBackend::kSse4;
  if (std::strcmp(name, "avx2") == 0) return SimdBackend::kAvx2;
  if (std::strcmp(name, "neon") == 0) return SimdBackend::kNeon;
  throw std::invalid_argument(std::string("unknown SIMD backend name: ") + name +
                              " (expected auto|scalar|sse4|avx2|neon)");
}

SimdBackend simd_backend_from_env() {
  const char* env = std::getenv("GSTG_SIMD");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
  if (env == nullptr) return SimdBackend::kAuto;
  try {
    return simd_backend_from_string(env);
  } catch (const std::invalid_argument&) {
    static std::once_flag warned;
    std::call_once(warned, [env] {
      std::fprintf(stderr,
                   "gstg: ignoring unknown GSTG_SIMD value '%s' "
                   "(expected auto|scalar|sse4|avx2|neon)\n",
                   env);
    });
    return SimdBackend::kAuto;
  }
}

bool cpu_supports(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto:
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kSse4:
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case SimdBackend::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
      // __builtin_cpu_supports folds in the xsave/OS-state check for AVX.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdBackend::kNeon:
#if defined(__aarch64__) || defined(_M_ARM64)
      return true;  // NEON is architecturally guaranteed on AArch64
#else
      return false;
#endif
  }
  return false;
}

}  // namespace gstg
