#include "common/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

namespace gstg {

const char* to_string(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto:
      return "auto";
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kSse4:
      return "sse4";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kNeon:
      return "neon";
  }
  return "auto";
}

SimdBackend simd_backend_from_string(const char* name) {
  if (name == nullptr) return SimdBackend::kAuto;
  const std::string s = name;
  if (s == "auto" || s.empty()) return SimdBackend::kAuto;
  if (s == "scalar") return SimdBackend::kScalar;
  if (s == "sse4") return SimdBackend::kSse4;
  if (s == "avx2") return SimdBackend::kAvx2;
  if (s == "neon") return SimdBackend::kNeon;
  throw std::invalid_argument("unknown SIMD backend name: " + s +
                              " (expected auto|scalar|sse4|avx2|neon)");
}

SimdBackend simd_backend_from_env() {
  const char* env = std::getenv("GSTG_SIMD");
  if (env == nullptr) return SimdBackend::kAuto;
  try {
    return simd_backend_from_string(env);
  } catch (const std::invalid_argument&) {
    static std::once_flag warned;
    std::call_once(warned, [env] {
      std::fprintf(stderr,
                   "gstg: ignoring unknown GSTG_SIMD value '%s' "
                   "(expected auto|scalar|sse4|avx2|neon)\n",
                   env);
    });
    return SimdBackend::kAuto;
  }
}

bool cpu_supports(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto:
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kSse4:
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case SimdBackend::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
      // __builtin_cpu_supports folds in the xsave/OS-state check for AVX.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdBackend::kNeon:
#if defined(__aarch64__) || defined(_M_ARM64)
      return true;  // NEON is architecturally guaranteed on AArch64
#else
      return false;
#endif
  }
  return false;
}

}  // namespace gstg
