// Source-level annotations consumed by the project linter
// (tools/lint/gstg_lint.py) and, under clang, attached to the AST so
// libclang-based tooling can find annotated functions without name lists.
//
// GSTG_HOT_NOALLOC marks a function as part of the steady-state render hot
// path: once the per-frame scratch is warmed, no call reachable from it may
// allocate. "Allocate" means unconditional heap traffic — new/make_unique/
// make_shared, malloc-family calls, constructing an owning container or
// std::function, std::to_string — not capacity-bounded operations on
// caller-owned scratch (resize/assign/push_back into warmed vectors are the
// codebase's standard amortised-zero idiom and are explicitly allowed; see
// docs/ARCHITECTURE.md "Static analysis & lint"). Cold paths reachable only
// through `throw` are exempt: error reporting may build messages.
//
// Lint rule R1 walks the call graph from every GSTG_HOT_NOALLOC function
// and reports violations at analysis time; the runtime counterpart is the
// steady-state allocation tests under tests/core/.
#pragma once

#if defined(__clang__)
#define GSTG_HOT_NOALLOC __attribute__((annotate("gstg::hot_noalloc")))
#else
#define GSTG_HOT_NOALLOC
#endif
