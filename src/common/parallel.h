// Minimal data-parallel helper: static range partitioning over std::thread.
//
// Determinism contract: workers write only to disjoint output slots (or
// thread-local accumulators merged afterwards), so results are independent
// of the thread count.
//
// Exception contract: a worker that throws does not kill the process (an
// exception escaping a std::thread is std::terminate). The first exception
// is captured, every worker is still joined, and the exception is rethrown
// on the calling thread — so bad input discovered deep inside a parallel
// stage (e.g. a malformed cloud) surfaces as a normal catchable error.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/runconfig.h"

namespace gstg {

/// Number of distinct worker indices parallel_for_chunks will invoke for a
/// range of n items under the same `threads` request — always >= 1. Callers
/// size per-worker accumulator arrays from this instead of guessing a cap,
/// so a worker index can never alias another slot.
inline std::size_t planned_worker_count(std::size_t n, std::size_t threads = 0) {
  if (n == 0) return 1;
  std::size_t workers = threads == 0 ? worker_thread_count() : threads;
  if (workers > n) workers = n;
  if (workers <= 1 || n < 256) return 1;
  const std::size_t chunk = (n + workers - 1) / workers;
  return (n + chunk - 1) / chunk;  // workers whose chunk is non-empty
}

/// Invokes fn(chunk_begin, chunk_end, worker_index) on `threads` workers
/// covering [begin, end) with contiguous chunks. threads == 0 selects
/// worker_thread_count(). Runs inline when the range is small or only one
/// worker is requested — a template over the callable so the single-worker
/// path performs no allocation (no std::function boxing). Worker indices
/// are dense in [0, planned_worker_count(end - begin, threads)).
// gstg-lint: boundary(R1): the thread pool below is the multi-worker parallel
// region's setup cost; the single-worker hot path returns before it and runs
// fn inline without allocating.
template <typename Fn>
void parallel_for_chunks(std::size_t begin, std::size_t end, const Fn& fn,
                         std::size_t threads = 0) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  std::size_t workers = threads == 0 ? worker_thread_count() : threads;
  if (workers > n) workers = n;
  if (workers <= 1 || n < 256) {
    fn(begin, end, 0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&fn, &first_error, &error_mutex, lo, hi, w] {
      try {
        fn(lo, hi, w);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gstg
