// Minimal data-parallel helper: static range partitioning over std::thread.
//
// Determinism contract: workers write only to disjoint output slots (or
// thread-local accumulators merged afterwards), so results are independent
// of the thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/runconfig.h"

namespace gstg {

/// Invokes fn(chunk_begin, chunk_end, worker_index) on `threads` workers
/// covering [begin, end) with contiguous chunks. threads == 0 selects
/// worker_thread_count(). Runs inline when the range is small or only one
/// worker is requested.
inline void parallel_for_chunks(std::size_t begin, std::size_t end,
                                const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
                                std::size_t threads = 0) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  std::size_t workers = threads == 0 ? worker_thread_count() : threads;
  if (workers > n) workers = n;
  if (workers <= 1 || n < 256) {
    fn(begin, end, 0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&fn, lo, hi, w] { fn(lo, hi, w); });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace gstg
