// Minimal data-parallel helper: static range partitioning over std::thread.
//
// Determinism contract: workers write only to disjoint output slots (or
// thread-local accumulators merged afterwards), so results are independent
// of the thread count.
#pragma once

#include <cstddef>
#include <thread>
#include <vector>

#include "common/runconfig.h"

namespace gstg {

/// Number of distinct worker indices parallel_for_chunks will invoke for a
/// range of n items under the same `threads` request — always >= 1. Callers
/// size per-worker accumulator arrays from this instead of guessing a cap,
/// so a worker index can never alias another slot.
inline std::size_t planned_worker_count(std::size_t n, std::size_t threads = 0) {
  if (n == 0) return 1;
  std::size_t workers = threads == 0 ? worker_thread_count() : threads;
  if (workers > n) workers = n;
  if (workers <= 1 || n < 256) return 1;
  const std::size_t chunk = (n + workers - 1) / workers;
  return (n + chunk - 1) / chunk;  // workers whose chunk is non-empty
}

/// Invokes fn(chunk_begin, chunk_end, worker_index) on `threads` workers
/// covering [begin, end) with contiguous chunks. threads == 0 selects
/// worker_thread_count(). Runs inline when the range is small or only one
/// worker is requested — a template over the callable so the single-worker
/// path performs no allocation (no std::function boxing). Worker indices
/// are dense in [0, planned_worker_count(end - begin, threads)).
template <typename Fn>
void parallel_for_chunks(std::size_t begin, std::size_t end, const Fn& fn,
                         std::size_t threads = 0) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  std::size_t workers = threads == 0 ? worker_thread_count() : threads;
  if (workers > n) workers = n;
  if (workers <= 1 || n < 256) {
    fn(begin, end, 0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&fn, lo, hi, w] { fn(lo, hi, w); });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace gstg
