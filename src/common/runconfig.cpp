#include "common/runconfig.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace gstg {

RunScale run_scale_from_env() {
  const char* env = std::getenv("GSTG_SCALE");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
  const std::string value = env ? env : "bench";
  if (value == "full") {
    return RunScale{.resolution_divisor = 1, .gaussian_divisor = 1};
  }
  if (value == "small") {
    return RunScale{.resolution_divisor = 8, .gaussian_divisor = 64};
  }
  return RunScale{};  // "bench" default
}

TemporalMode temporal_mode_from_env(TemporalMode fallback) {
  const char* env = std::getenv("GSTG_TEMPORAL");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
  if (env == nullptr) return fallback;
  const std::string value = env;
  if (value == "off") return TemporalMode::kOff;
  if (value == "reuse") return TemporalMode::kReuse;
  if (value == "verify") return TemporalMode::kVerify;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "gstg: unknown GSTG_TEMPORAL value '%s' (expected off/reuse/verify), "
                 "keeping the configured mode\n",
                 env);
  }
  return fallback;
}

const char* to_string(TemporalMode mode) {
  switch (mode) {
    case TemporalMode::kOff:
      return "off";
    case TemporalMode::kReuse:
      return "reuse";
    case TemporalMode::kVerify:
      return "verify";
  }
  return "?";
}

BinningMode binning_mode_from_env(BinningMode fallback) {
  const char* env = std::getenv("GSTG_BINNING");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
  if (env == nullptr) return fallback;
  const std::string value = env;
  if (value == "flat") return BinningMode::kFlat;
  if (value == "hierarchical") return BinningMode::kHierarchical;
  if (value == "auto") return BinningMode::kAuto;
  if (value == "verify") return BinningMode::kVerify;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "gstg: unknown GSTG_BINNING value '%s' (expected "
                 "flat/hierarchical/auto/verify), keeping the configured mode\n",
                 env);
  }
  return fallback;
}

const char* to_string(BinningMode mode) {
  switch (mode) {
    case BinningMode::kFlat:
      return "flat";
    case BinningMode::kHierarchical:
      return "hierarchical";
    case BinningMode::kAuto:
      return "auto";
    case BinningMode::kVerify:
      return "verify";
  }
  return "?";
}

ResidencyMode residency_mode_from_env(ResidencyMode fallback) {
  const char* env = std::getenv("GSTG_RESIDENCY");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
  if (env == nullptr) return fallback;
  const std::string value = env;
  if (value == "float32") return ResidencyMode::kFloat32;
  if (value == "compressed") return ResidencyMode::kCompressed;
  if (value == "verify") return ResidencyMode::kVerify;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "gstg: unknown GSTG_RESIDENCY value '%s' (expected "
                 "float32/compressed/verify), keeping the configured mode\n",
                 env);
  }
  return fallback;
}

const char* to_string(ResidencyMode mode) {
  switch (mode) {
    case ResidencyMode::kFloat32:
      return "float32";
    case ResidencyMode::kCompressed:
      return "compressed";
    case ResidencyMode::kVerify:
      return "verify";
  }
  return "?";
}

PipelineMode pipeline_mode_from_env(PipelineMode fallback) {
  const char* env = std::getenv("GSTG_PIPELINE");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
  if (env == nullptr) return fallback;
  const std::string value = env;
  if (value == "exact") return PipelineMode::kExact;
  if (value == "sortless") return PipelineMode::kSortless;
  if (value == "verify") return PipelineMode::kVerify;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "gstg: unknown GSTG_PIPELINE value '%s' (expected "
                 "exact/sortless/verify), keeping the configured mode\n",
                 env);
  }
  return fallback;
}

const char* to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kExact:
      return "exact";
    case PipelineMode::kSortless:
      return "sortless";
    case PipelineMode::kVerify:
      return "verify";
  }
  return "?";
}

std::size_t env_positive_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
  if (env == nullptr) return fallback;
  // std::from_chars is the strict parser here on purpose: unlike strtol
  // with a null end pointer it accepts no leading whitespace, no '+', no
  // trailing garbage — "8garbage" and " 8" are both rejected, and the end
  // pointer check catches a partially-consumed value. Parsing works on the
  // environment's own buffer: this runs inside worker-count resolution on
  // render paths, which must not allocate (lint rule R1).
  std::size_t parsed = 0;
  const char* begin = env;
  const char* end = env + std::strlen(env);
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument(std::string(name) + ": value out of range '" + env + "'");
  }
  if (ec != std::errc() || ptr != end || parsed == 0) {
    throw std::invalid_argument(std::string(name) + ": invalid value '" + std::string(env) +
                                "' (expected a positive integer)");
  }
  return parsed;
}

std::size_t worker_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return env_positive_size("GSTG_THREADS", hw == 0 ? 1 : hw);
}

}  // namespace gstg
