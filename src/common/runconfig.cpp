#include "common/runconfig.h"

#include <cstdlib>
#include <string>
#include <thread>

namespace gstg {

RunScale run_scale_from_env() {
  const char* env = std::getenv("GSTG_SCALE");
  const std::string value = env ? env : "bench";
  if (value == "full") {
    return RunScale{.resolution_divisor = 1, .gaussian_divisor = 1};
  }
  if (value == "small") {
    return RunScale{.resolution_divisor = 8, .gaussian_divisor = 64};
  }
  return RunScale{};  // "bench" default
}

std::size_t worker_thread_count() {
  if (const char* env = std::getenv("GSTG_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gstg
