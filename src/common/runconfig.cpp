#include "common/runconfig.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace gstg {

RunScale run_scale_from_env() {
  const char* env = std::getenv("GSTG_SCALE");
  const std::string value = env ? env : "bench";
  if (value == "full") {
    return RunScale{.resolution_divisor = 1, .gaussian_divisor = 1};
  }
  if (value == "small") {
    return RunScale{.resolution_divisor = 8, .gaussian_divisor = 64};
  }
  return RunScale{};  // "bench" default
}

TemporalMode temporal_mode_from_env(TemporalMode fallback) {
  const char* env = std::getenv("GSTG_TEMPORAL");
  if (env == nullptr) return fallback;
  const std::string value = env;
  if (value == "off") return TemporalMode::kOff;
  if (value == "reuse") return TemporalMode::kReuse;
  if (value == "verify") return TemporalMode::kVerify;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "gstg: unknown GSTG_TEMPORAL value '%s' (expected off/reuse/verify), "
                 "keeping the configured mode\n",
                 env);
  }
  return fallback;
}

const char* to_string(TemporalMode mode) {
  switch (mode) {
    case TemporalMode::kOff:
      return "off";
    case TemporalMode::kReuse:
      return "reuse";
    case TemporalMode::kVerify:
      return "verify";
  }
  return "?";
}

std::size_t worker_thread_count() {
  if (const char* env = std::getenv("GSTG_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gstg
