// Portable fixed-width SIMD layer.
//
// VecF32<N>/VecI32<N> are value-semantic lane wrappers. On GCC/Clang they
// hold compiler vector-extension values (__attribute__((vector_size))): lane
// arithmetic is a single vector instruction under the TU's target flags,
// masks are 0/~0 integer vectors straight from vector comparisons, and
// select() is a bitwise blend — no per-lane branches in the hot loops. The
// N == 1 specialization and the non-GNU fallback are ordinary scalar code.
//
// Every operation is an ordinary per-lane IEEE-754 operation in source
// order. The SAME definitions compile into one translation unit per backend
// (scalar / SSE4.2 / AVX2 / NEON, see render/simd_kernels_*.cpp), each built
// with that backend's target flags and with floating-point contraction
// disabled, so the bit pattern of every result is identical across backends
// and identical to the scalar reference. That invariant is what lets
// SimdBackend be a pure performance knob: exact-mode framebuffers are
// bit-identical whichever backend executes (tests/common/test_simd.cpp).
//
// Everything here is ODR-safe by construction: all functions are
// force-inlined so no out-of-line copy compiled with a wider instruction set
// can be picked by the linker and executed on a narrower CPU.
//
// Backend selection is a runtime decision (function-pointer kernel table in
// render/simd_kernels.h): kAuto resolves to the GSTG_SIMD environment
// override when set, otherwise to the widest backend that is compiled in,
// supported by the running CPU, and has passed a bit-identity probe against
// the scalar kernel.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#if defined(__GNUC__) || defined(__clang__)
#define GSTG_SIMD_INLINE [[gnu::always_inline]] inline
#define GSTG_SIMD_VECEXT 1
#else
#define GSTG_SIMD_INLINE inline
#endif

namespace gstg {

/// Kernel backend. kAuto defers the choice to runtime dispatch; the concrete
/// values name instruction sets a kernel translation unit targets.
enum class SimdBackend : std::uint8_t {
  kAuto = 0,
  kScalar,
  kSse4,
  kAvx2,
  kNeon,
};

/// Exponential evaluation mode of the rasterization kernels. kExact defers
/// to std::exp (one call per surviving lane) and preserves the lossless
/// bit-identity invariant; kFast uses the vectorized polynomial fast_exp()
/// below (bounded-ULP approximation, see its contract).
enum class ExpMode : std::uint8_t {
  kExact = 0,
  kFast,
};

/// The SIMD knob threaded through RenderConfig / GsTgConfig: which kernel
/// backend to run and how to evaluate the blending exponential.
struct SimdPolicy {
  SimdBackend backend = SimdBackend::kAuto;
  ExpMode exp_mode = ExpMode::kExact;

  constexpr bool operator==(const SimdPolicy&) const = default;
};

/// Lower-case backend name ("auto", "scalar", "sse4", "avx2", "neon").
const char* to_string(SimdBackend backend);

/// Parses a backend name (the GSTG_SIMD vocabulary). Returns kAuto for
/// nullptr/"auto"; throws std::invalid_argument for anything else unknown.
SimdBackend simd_backend_from_string(const char* name);

/// The GSTG_SIMD environment override, parsed. Returns kAuto when the
/// variable is unset; prints a one-time warning and returns kAuto when it is
/// set to an unknown value.
SimdBackend simd_backend_from_env();

/// True when the running CPU can execute the backend's instruction set
/// (kScalar/kAuto always; SSE4.2/AVX2 via cpuid, NEON on AArch64 builds).
bool cpu_supports(SimdBackend backend);

// ---------------------------------------------------------------------------
// Lane wrappers
// ---------------------------------------------------------------------------

#if defined(GSTG_SIMD_VECEXT)

/// N single-precision lanes (N >= 2) as a compiler vector. All arithmetic is
/// per-lane in source order; no operation may be contracted (kernel TUs
/// compile with -ffp-contract=off).
template <int N>
struct VecF32 {
  static_assert(N >= 2 && N <= 16 && (N & (N - 1)) == 0, "unsupported lane count");
  typedef float native __attribute__((vector_size(N * 4)));
  native v;

  // Lane subscripts go through a type-deduced helper: the vector_size
  // attribute with a dependent width only materialises at instantiation, so
  // the class's own member bodies may not subscript `v` directly.
  template <class V>
  GSTG_SIMD_INLINE static void splat_into(V& dst, float x) {
    for (int i = 0; i < N; ++i) dst[i] = x;
  }

  GSTG_SIMD_INLINE static VecF32 broadcast(float x) {
    VecF32 r;
    splat_into(r.v, x);
    return r;
  }
  GSTG_SIMD_INLINE static VecF32 load(const float* p) {
    VecF32 r;
    __builtin_memcpy(&r.v, p, sizeof(r.v));  // unaligned vector load
    return r;
  }
  GSTG_SIMD_INLINE void store(float* p) const { __builtin_memcpy(p, &v, sizeof(v)); }

  GSTG_SIMD_INLINE VecF32 operator+(VecF32 o) const { return {v + o.v}; }
  GSTG_SIMD_INLINE VecF32 operator-(VecF32 o) const { return {v - o.v}; }
  GSTG_SIMD_INLINE VecF32 operator*(VecF32 o) const { return {v * o.v}; }
  GSTG_SIMD_INLINE VecF32 operator/(VecF32 o) const { return {v / o.v}; }
  GSTG_SIMD_INLINE VecF32 operator-() const { return {-v}; }
};

/// Scalar (one-lane) specialization: plain float arithmetic, the reference
/// semantics every wider width must reproduce bit-for-bit.
template <>
struct VecF32<1> {
  float v[1];

  GSTG_SIMD_INLINE static VecF32 broadcast(float x) { return {{x}}; }
  GSTG_SIMD_INLINE static VecF32 load(const float* p) { return {{p[0]}}; }
  GSTG_SIMD_INLINE void store(float* p) const { p[0] = v[0]; }

  GSTG_SIMD_INLINE VecF32 operator+(VecF32 o) const { return {{v[0] + o.v[0]}}; }
  GSTG_SIMD_INLINE VecF32 operator-(VecF32 o) const { return {{v[0] - o.v[0]}}; }
  GSTG_SIMD_INLINE VecF32 operator*(VecF32 o) const { return {{v[0] * o.v[0]}}; }
  GSTG_SIMD_INLINE VecF32 operator/(VecF32 o) const { return {{v[0] / o.v[0]}}; }
  GSTG_SIMD_INLINE VecF32 operator-() const { return {{-v[0]}}; }
};

/// N 32-bit integer lanes (mask values and fast_exp exponent assembly).
template <int N>
struct VecI32 {
  static_assert(N >= 2 && N <= 16 && (N & (N - 1)) == 0, "unsupported lane count");
  typedef std::int32_t native __attribute__((vector_size(N * 4)));
  native v;

  template <class V>
  GSTG_SIMD_INLINE static void splat_into(V& dst, std::int32_t x) {
    for (int i = 0; i < N; ++i) dst[i] = x;
  }

  GSTG_SIMD_INLINE static VecI32 broadcast(std::int32_t x) {
    VecI32 r;
    splat_into(r.v, x);
    return r;
  }
  GSTG_SIMD_INLINE VecI32 operator+(VecI32 o) const { return {v + o.v}; }
  GSTG_SIMD_INLINE VecI32 operator<<(int s) const { return {v << s}; }
};

template <>
struct VecI32<1> {
  std::int32_t v[1];

  GSTG_SIMD_INLINE static VecI32 broadcast(std::int32_t x) { return {{x}}; }
  GSTG_SIMD_INLINE VecI32 operator+(VecI32 o) const { return {{v[0] + o.v[0]}}; }
  GSTG_SIMD_INLINE VecI32 operator<<(int s) const {
    return {{static_cast<std::int32_t>(static_cast<std::uint32_t>(v[0]) << s)}};
  }
};

/// Per-lane mask: 0 / ~0 integer lanes, the direct result type of vector
/// comparisons. Blends against it are bitwise — no per-lane branching.
template <int N>
struct Mask {
  typedef std::int32_t native __attribute__((vector_size(N * 4)));
  native m;

  GSTG_SIMD_INLINE Mask operator&(Mask o) const { return {m & o.m}; }
  GSTG_SIMD_INLINE Mask operator|(Mask o) const { return {m | o.m}; }
  GSTG_SIMD_INLINE Mask operator!() const { return {~m}; }

  template <class V>
  GSTG_SIMD_INLINE static std::int32_t lane_impl(const V& mm, int i) {
    return mm[i];
  }

  GSTG_SIMD_INLINE bool lane(int i) const { return lane_impl(m, i) != 0; }
  GSTG_SIMD_INLINE int count() const {
    int c = 0;
    for (int i = 0; i < N; ++i) c += lane_impl(m, i) != 0 ? 1 : 0;
    return c;
  }
  /// Horizontal "any lane set": pairwise OR-reduction (log2 N vector ops +
  /// one extract) — cheap enough for a per-block skip test in hot loops.
  /// Deduced-type helper for the same reason as lane_impl.
  template <class V>
  GSTG_SIMD_INLINE static std::int32_t or_reduce(const V& v) {
    if constexpr (N == 4) {
      V t = v | __builtin_shufflevector(v, v, 2, 3, 0, 1);
      t = t | __builtin_shufflevector(t, t, 1, 0, 3, 2);
      return lane_impl(t, 0);
    } else if constexpr (N == 8) {
      V t = v | __builtin_shufflevector(v, v, 4, 5, 6, 7, 0, 1, 2, 3);
      t = t | __builtin_shufflevector(t, t, 2, 3, 0, 1, 6, 7, 4, 5);
      t = t | __builtin_shufflevector(t, t, 1, 0, 3, 2, 5, 4, 7, 6);
      return lane_impl(t, 0);
    } else {
      std::int32_t a = 0;
      for (int i = 0; i < N; ++i) a |= lane_impl(v, i);
      return a;
    }
  }

  GSTG_SIMD_INLINE bool any() const { return or_reduce(m) != 0; }
};

template <>
struct Mask<1> {
  std::int32_t m[1];

  GSTG_SIMD_INLINE Mask operator&(Mask o) const { return {{m[0] & o.m[0]}}; }
  GSTG_SIMD_INLINE Mask operator|(Mask o) const { return {{m[0] | o.m[0]}}; }
  GSTG_SIMD_INLINE Mask operator!() const { return {{~m[0]}}; }
  GSTG_SIMD_INLINE bool lane(int) const { return m[0] != 0; }
  GSTG_SIMD_INLINE int count() const { return m[0] != 0 ? 1 : 0; }
  GSTG_SIMD_INLINE bool any() const { return m[0] != 0; }
};

// Comparisons. Note the NaN semantics are exactly those of the scalar
// operators — kernels that mirror scalar guard expressions (e.g.
// `q > q_max || q < 0`) keep identical behaviour on non-finite lanes.
template <int N>
GSTG_SIMD_INLINE Mask<N> cmp_gt(VecF32<N> a, VecF32<N> b) {
  if constexpr (N == 1) {
    return Mask<1>{{a.v[0] > b.v[0] ? -1 : 0}};
  } else {
    return {a.v > b.v};
  }
}
template <int N>
GSTG_SIMD_INLINE Mask<N> cmp_lt(VecF32<N> a, VecF32<N> b) {
  if constexpr (N == 1) {
    return Mask<1>{{a.v[0] < b.v[0] ? -1 : 0}};
  } else {
    return {a.v < b.v};
  }
}
template <int N>
GSTG_SIMD_INLINE Mask<N> cmp_le(VecF32<N> a, VecF32<N> b) {
  if constexpr (N == 1) {
    return Mask<1>{{a.v[0] <= b.v[0] ? -1 : 0}};
  } else {
    return {a.v <= b.v};
  }
}

/// Bitwise blend: c ? a : b per lane. Exactly reproduces the scalar ternary
/// for every payload (including NaN bit patterns) — no arithmetic involved.
template <int N>
GSTG_SIMD_INLINE VecF32<N> select(Mask<N> c, VecF32<N> a, VecF32<N> b) {
  if constexpr (N == 1) {
    return VecF32<1>{{c.m[0] != 0 ? a.v[0] : b.v[0]}};
  } else {
    typedef typename Mask<N>::native iv;
    const iv ai = (iv)a.v;  // GCC vector casts reinterpret the bits
    const iv bi = (iv)b.v;
    const iv r = (ai & c.m) | (bi & ~c.m);
    return {(typename VecF32<N>::native)r};
  }
}

/// std::fabs per lane (sign-bit clear; identical for every input incl. NaN).
template <int N>
GSTG_SIMD_INLINE VecF32<N> abs_lanes(VecF32<N> x) {
  if constexpr (N == 1) {
    return VecF32<1>{{std::fabs(x.v[0])}};
  } else {
    typedef typename Mask<N>::native iv;
    return {(typename VecF32<N>::native)(((iv)x.v) & 0x7fffffff)};
  }
}

/// Truncating float->int32 conversion per lane (inputs must be in range,
/// like a scalar static_cast).
template <int N>
GSTG_SIMD_INLINE VecI32<N> convert_to_i32(VecF32<N> x) {
  if constexpr (N == 1) {
    return VecI32<1>{{static_cast<std::int32_t>(x.v[0])}};
  } else {
    return {__builtin_convertvector(x.v, typename VecI32<N>::native)};
  }
}

/// Bit reinterpretation int32 -> float per lane.
template <int N>
GSTG_SIMD_INLINE VecF32<N> bitcast_f32(VecI32<N> x) {
  if constexpr (N == 1) {
    return VecF32<1>{{std::bit_cast<float>(x.v[0])}};
  } else {
    return {(typename VecF32<N>::native)x.v};
  }
}

/// Mask reinterpreted as integer lanes (0 / -1) — the building block for
/// branch-free counting: accumulate `acc + as_i32(mask)` per block (one
/// vector add), then reduce once per tile with -hsum(acc).
template <int N>
GSTG_SIMD_INLINE VecI32<N> as_i32(Mask<N> m) {
  if constexpr (N == 1) {
    return VecI32<1>{{m.m[0]}};
  } else {
    return {m.m};
  }
}

#else  // !GSTG_SIMD_VECEXT — portable loop fallback (scalar backend only)

template <int N>
struct VecF32 {
  static_assert(N >= 1 && N <= 16, "unsupported lane count");
  float v[N];

  GSTG_SIMD_INLINE static VecF32 broadcast(float x) {
    VecF32 r;
    for (int i = 0; i < N; ++i) r.v[i] = x;
    return r;
  }
  GSTG_SIMD_INLINE static VecF32 load(const float* p) {
    VecF32 r;
    for (int i = 0; i < N; ++i) r.v[i] = p[i];
    return r;
  }
  GSTG_SIMD_INLINE void store(float* p) const {
    for (int i = 0; i < N; ++i) p[i] = v[i];
  }
  GSTG_SIMD_INLINE VecF32 operator+(VecF32 o) const {
    VecF32 r;
    for (int i = 0; i < N; ++i) r.v[i] = v[i] + o.v[i];
    return r;
  }
  GSTG_SIMD_INLINE VecF32 operator-(VecF32 o) const {
    VecF32 r;
    for (int i = 0; i < N; ++i) r.v[i] = v[i] - o.v[i];
    return r;
  }
  GSTG_SIMD_INLINE VecF32 operator*(VecF32 o) const {
    VecF32 r;
    for (int i = 0; i < N; ++i) r.v[i] = v[i] * o.v[i];
    return r;
  }
  GSTG_SIMD_INLINE VecF32 operator/(VecF32 o) const {
    VecF32 r;
    for (int i = 0; i < N; ++i) r.v[i] = v[i] / o.v[i];
    return r;
  }
  GSTG_SIMD_INLINE VecF32 operator-() const {
    VecF32 r;
    for (int i = 0; i < N; ++i) r.v[i] = -v[i];
    return r;
  }
};

template <int N>
struct VecI32 {
  static_assert(N >= 1 && N <= 16, "unsupported lane count");
  std::int32_t v[N];

  GSTG_SIMD_INLINE static VecI32 broadcast(std::int32_t x) {
    VecI32 r;
    for (int i = 0; i < N; ++i) r.v[i] = x;
    return r;
  }
  GSTG_SIMD_INLINE VecI32 operator+(VecI32 o) const {
    VecI32 r;
    for (int i = 0; i < N; ++i) r.v[i] = v[i] + o.v[i];
    return r;
  }
  GSTG_SIMD_INLINE VecI32 operator<<(int s) const {
    VecI32 r;
    for (int i = 0; i < N; ++i)
      r.v[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(v[i]) << s);
    return r;
  }
};

template <int N>
struct Mask {
  std::int32_t m[N];

  GSTG_SIMD_INLINE Mask operator&(Mask o) const {
    Mask r;
    for (int i = 0; i < N; ++i) r.m[i] = m[i] & o.m[i];
    return r;
  }
  GSTG_SIMD_INLINE Mask operator|(Mask o) const {
    Mask r;
    for (int i = 0; i < N; ++i) r.m[i] = m[i] | o.m[i];
    return r;
  }
  GSTG_SIMD_INLINE Mask operator!() const {
    Mask r;
    for (int i = 0; i < N; ++i) r.m[i] = ~m[i];
    return r;
  }
  GSTG_SIMD_INLINE bool lane(int i) const { return m[i] != 0; }
  GSTG_SIMD_INLINE int count() const {
    int c = 0;
    for (int i = 0; i < N; ++i) c += m[i] != 0 ? 1 : 0;
    return c;
  }
  GSTG_SIMD_INLINE bool any() const {
    bool a = false;
    for (int i = 0; i < N; ++i) a = a || (m[i] != 0);
    return a;
  }
};

template <int N>
GSTG_SIMD_INLINE Mask<N> cmp_gt(VecF32<N> a, VecF32<N> b) {
  Mask<N> r;
  for (int i = 0; i < N; ++i) r.m[i] = a.v[i] > b.v[i] ? -1 : 0;
  return r;
}
template <int N>
GSTG_SIMD_INLINE Mask<N> cmp_lt(VecF32<N> a, VecF32<N> b) {
  Mask<N> r;
  for (int i = 0; i < N; ++i) r.m[i] = a.v[i] < b.v[i] ? -1 : 0;
  return r;
}
template <int N>
GSTG_SIMD_INLINE Mask<N> cmp_le(VecF32<N> a, VecF32<N> b) {
  Mask<N> r;
  for (int i = 0; i < N; ++i) r.m[i] = a.v[i] <= b.v[i] ? -1 : 0;
  return r;
}
template <int N>
GSTG_SIMD_INLINE VecF32<N> select(Mask<N> c, VecF32<N> a, VecF32<N> b) {
  VecF32<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = c.m[i] != 0 ? a.v[i] : b.v[i];
  return r;
}
template <int N>
GSTG_SIMD_INLINE VecF32<N> abs_lanes(VecF32<N> x) {
  VecF32<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = std::fabs(x.v[i]);
  return r;
}
template <int N>
GSTG_SIMD_INLINE VecI32<N> convert_to_i32(VecF32<N> x) {
  VecI32<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = static_cast<std::int32_t>(x.v[i]);
  return r;
}
template <int N>
GSTG_SIMD_INLINE VecF32<N> bitcast_f32(VecI32<N> x) {
  VecF32<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = std::bit_cast<float>(x.v[i]);
  return r;
}
template <int N>
GSTG_SIMD_INLINE VecI32<N> as_i32(Mask<N> m) {
  VecI32<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = m.m[i];
  return r;
}

#endif  // GSTG_SIMD_VECEXT

// ------ width-independent derived operations -------------------------------

/// std::min(a, b) per lane, replicating its exact ordering semantics
/// ((b < a) ? b : a) including NaN propagation through the comparison.
template <int N>
GSTG_SIMD_INLINE VecF32<N> min_std(VecF32<N> a, VecF32<N> b) {
  return select(cmp_lt(b, a), b, a);
}
/// std::max(a, b) per lane ((a < b) ? b : a).
template <int N>
GSTG_SIMD_INLINE VecF32<N> max_std(VecF32<N> a, VecF32<N> b) {
  return select(cmp_lt(a, b), b, a);
}
/// std::clamp(v, lo, hi) per lane ((v < lo) ? lo : (hi < v) ? hi : v).
template <int N>
GSTG_SIMD_INLINE VecF32<N> clamp_std(VecF32<N> x, VecF32<N> lo, VecF32<N> hi) {
  return select(cmp_lt(x, lo), lo, select(cmp_lt(hi, x), hi, x));
}
/// std::sqrt per lane (libm call; used outside the innermost hot loops).
template <int N>
GSTG_SIMD_INLINE VecF32<N> sqrt_lanes(VecF32<N> x) {
  VecF32<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = std::sqrt(x.v[i]);
  return r;
}
/// Horizontal sum of integer lanes (reduction, once per tile — not hot).
template <int N>
GSTG_SIMD_INLINE std::int64_t hsum(VecI32<N> x) {
  std::int64_t s = 0;
  for (int i = 0; i < N; ++i) s += x.v[i];
  return s;
}

// ---------------------------------------------------------------------------
// fast_exp
// ---------------------------------------------------------------------------

/// Vectorized single-precision exponential (Cephes-style range reduction +
/// degree-5 polynomial, 2^n scaling through exponent-field assembly).
///
/// Contract (verified empirically in tests/common/test_simd.cpp over a dense
/// sample of the full input range):
///   - valid for all finite inputs; the argument is clamped to
///     [-87.336544, 88.376259] (127.5 ln 2 at the top, so the 2^n exponent
///     scale never reaches inf) — the result never overflows and never
///     underflows below the smallest normal.
///   - maximum error vs the correctly-rounded std::expf: <= 8 ULP
///     (measured < 3 ULP; the bound leaves slack for libm/rounding-mode
///     variation across platforms).
///   - NaN lanes map to the smallest in-range result (~1.2e-38) instead of
///     propagating — keeps the exponent assembly below free of undefined
///     float->int casts. Only discarded (masked-out) lanes ever carry NaN in
///     the kernels.
/// fast_exp is only reachable through ExpMode::kFast — the default kExact
/// path calls std::exp and stays bit-identical to the scalar renderer.
template <int N>
GSTG_SIMD_INLINE VecF32<N> fast_exp(VecF32<N> x) {
  const VecF32<N> lo = VecF32<N>::broadcast(-87.336544f);
  const VecF32<N> hi = VecF32<N>::broadcast(88.376259f);  // 127.5 ln 2
  x = clamp_std(x, lo, hi);
  x = select(cmp_le(x, hi), x, lo);  // NaN (unordered) lanes -> lo

  // n = round-to-nearest-even(x / ln 2) via the 1.5 * 2^23 shifter trick
  // (|x / ln2| < 128 << 2^22, so the add is exact in the integer window).
  const VecF32<N> log2e = VecF32<N>::broadcast(1.44269504088896341f);
  const VecF32<N> shifter = VecF32<N>::broadcast(12582912.0f);  // 1.5 * 2^23
  const VecF32<N> nf = (x * log2e + shifter) - shifter;

  // r = x - n * ln2, in two steps for extra precision.
  const VecF32<N> ln2_hi = VecF32<N>::broadcast(0.693359375f);
  const VecF32<N> ln2_lo = VecF32<N>::broadcast(-2.12194440e-4f);
  VecF32<N> r = x - nf * ln2_hi;
  r = r - nf * ln2_lo;

  // exp(r) ~= 1 + r + r^2 * P(r) on [-ln2/2, ln2/2] (Cephes expf minimax).
  const VecF32<N> c0 = VecF32<N>::broadcast(1.9875691500e-4f);
  const VecF32<N> c1 = VecF32<N>::broadcast(1.3981999507e-3f);
  const VecF32<N> c2 = VecF32<N>::broadcast(8.3334519073e-3f);
  const VecF32<N> c3 = VecF32<N>::broadcast(4.1665795894e-2f);
  const VecF32<N> c4 = VecF32<N>::broadcast(1.6666665459e-1f);
  const VecF32<N> c5 = VecF32<N>::broadcast(5.0000001201e-1f);
  VecF32<N> p = c0;
  p = p * r + c1;
  p = p * r + c2;
  p = p * r + c3;
  p = p * r + c4;
  p = p * r + c5;
  const VecF32<N> result = p * (r * r) + r + VecF32<N>::broadcast(1.0f);

  // Scale by 2^n: build the IEEE-754 exponent field directly.
  const VecI32<N> n = convert_to_i32(nf);
  const VecI32<N> bits = (n + VecI32<N>::broadcast(127)) << 23;
  return result * bitcast_f32(bits);
}

}  // namespace gstg
