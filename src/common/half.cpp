#include "common/half.h"

#include <bit>
#include <cstring>

namespace gstg {

namespace {

constexpr std::uint32_t f32_sign_mask = 0x8000'0000u;
constexpr int f32_mant_bits = 23;
constexpr int f16_mant_bits = 10;
constexpr int mant_shift = f32_mant_bits - f16_mant_bits;  // 13

}  // namespace

std::uint16_t Half::from_float_bits(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((f & f32_sign_mask) >> 16);
  const std::uint32_t abs = f & 0x7fff'ffffu;

  // NaN / infinity. Preserve a NaN payload bit so NaNs stay NaNs.
  if (abs >= 0x7f80'0000u) {
    const std::uint16_t mant =
        (abs > 0x7f80'0000u) ? static_cast<std::uint16_t>(((abs >> mant_shift) & 0x3ffu) | 1u) : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
  }

  // Values that round to half infinity: >= 65520 (half max normal is 65504;
  // round-to-nearest-even sends [65520, inf) to inf).
  if (abs >= 0x477f'f000u) {
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  const int exp32 = static_cast<int>(abs >> f32_mant_bits);  // biased by 127
  int exp16 = exp32 - 127 + 15;

  if (exp16 >= 1) {
    // Normal half. Round mantissa to nearest even.
    std::uint32_t mant = abs & 0x007f'ffffu;
    std::uint32_t rounded = mant >> mant_shift;
    const std::uint32_t rem = mant & ((1u << mant_shift) - 1);
    const std::uint32_t halfway = 1u << (mant_shift - 1);
    if (rem > halfway || (rem == halfway && (rounded & 1u))) {
      ++rounded;
    }
    std::uint32_t result = (static_cast<std::uint32_t>(exp16) << f16_mant_bits) + rounded;
    // Mantissa overflow carries into the exponent, which is exactly correct.
    return static_cast<std::uint16_t>(sign | result);
  }

  // Subnormal half (or zero). Shift the implicit-1 mantissa right.
  if (exp16 < -10) {
    return sign;  // Rounds to signed zero.
  }
  std::uint32_t mant = (abs & 0x007f'ffffu) | 0x0080'0000u;
  const int shift = mant_shift + (1 - exp16);
  std::uint32_t rounded = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (rounded & 1u))) {
    ++rounded;
  }
  return static_cast<std::uint16_t>(sign | rounded);
}

float Half::to_float_bits(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> f16_mant_bits) & 0x1fu;
  std::uint32_t mant = bits & 0x03ffu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: normalise by shifting the mantissa up.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x0400u) == 0);
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << f32_mant_bits) |
            ((m & 0x03ffu) << mant_shift);
    }
  } else if (exp == 0x1fu) {
    out = sign | 0x7f80'0000u | (mant << mant_shift);  // inf / nan
  } else {
    out = sign | ((exp - 15 + 127) << f32_mant_bits) | (mant << mant_shift);
  }
  return std::bit_cast<float>(out);
}

}  // namespace gstg
