// Global experiment scaling configuration.
//
// The paper evaluates multi-million-Gaussian scenes at up to 5472x3648. The
// benchmark harness defaults to a reduced scale so the whole suite completes
// on a small CI machine; every reported quantity is a ratio, so the paper's
// shapes survive (see DESIGN.md section 5). GSTG_SCALE=full restores
// paper-scale workloads.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gstg {

/// Central registry of every GSTG_* environment variable the project reads.
/// A "GSTG_*" string literal anywhere in src/ must appear here AND in the
/// environment-variable table of docs/CONFIG.md — lint rule R4
/// (tools/lint/gstg_lint.py) enforces both, so a new knob cannot ship
/// undocumented or unregistered. Keep the list sorted.
inline constexpr const char* kGstgEnvVars[] = {
    "GSTG_BINNING",           // binning_mode_from_env (flat/hierarchical/auto/verify)
    "GSTG_METRICS",           // telemetry: metrics JSON written at process exit
    "GSTG_PIPELINE",          // pipeline_mode_from_env (exact/sortless/verify)
    "GSTG_RESIDENCY",         // residency_mode_from_env (float32/compressed/verify)
    "GSTG_SCALE",             // run_scale_from_env (bench/small/full)
    "GSTG_SERVICE_BATCH",     // render service: max batched requests per worker wake
    "GSTG_SERVICE_QUEUE",     // render service: bounded queue capacity
    "GSTG_SERVICE_SCENES",    // render service: scene cache capacity
    "GSTG_SERVICE_SESSIONS",  // render service: per-session renderer cache capacity
    "GSTG_SERVICE_WORKERS",   // render service: worker thread count
    "GSTG_SIMD",              // SIMD backend override (scalar/sse4/avx2/...)
    "GSTG_TEMPORAL",          // temporal_mode_from_env (off/reuse/verify)
    "GSTG_THREADS",           // worker_thread_count override
    "GSTG_TRACE",             // telemetry: trace JSON written at process exit
};

/// Workload scaling applied by the scene recipes.
struct RunScale {
  /// Linear resolution divisor (1 = paper resolution, 4 = 1/4 width & height).
  int resolution_divisor = 4;
  /// Gaussian-count divisor applied to each scene recipe's paper-scale count.
  int gaussian_divisor = 16;

  [[nodiscard]] bool is_full() const {
    return resolution_divisor == 1 && gaussian_divisor == 1;
  }
};

/// Reads GSTG_SCALE from the environment:
///   unset / "bench" -> reduced scale (divisors 4 / 16)
///   "small"         -> extra-small scale for smoke tests (divisors 8 / 64)
///   "full"          -> paper scale (divisors 1 / 1)
RunScale run_scale_from_env();

/// Number of worker threads for the software pipelines (GSTG_THREADS or
/// hardware_concurrency). A set-but-malformed GSTG_THREADS (non-numeric,
/// trailing garbage, zero, negative) throws std::invalid_argument naming
/// the variable and value — a typo must not silently fall back to
/// hardware concurrency.
std::size_t worker_thread_count();

/// Strictly parses a positive-integer environment override: the entire
/// value must be a decimal integer >= 1 (no trailing garbage, no sign, no
/// whitespace). Returns `fallback` when the variable is unset; throws
/// std::invalid_argument naming the variable and value otherwise. Every
/// numeric environment override (GSTG_THREADS, the GSTG_SERVICE_* knobs)
/// goes through this one parser so they all reject malformed input the
/// same way.
std::size_t env_positive_size(const char* name, std::size_t fallback);

/// Cross-frame group-sort reuse mode of the temporal renderer
/// (src/temporal/temporal_renderer.h). Lives here, next to the other run
/// modes, so core's config can carry the knob without depending on the
/// temporal layer.
///   kOff    — sort every group every frame (the plain renderer's behaviour)
///   kReuse  — reuse the previous frame's per-group order when the O(n)
///             validity check proves it is still the exact sorted order
///   kVerify — reuse, but also re-sort every group and assert the reused
///             order is bit-identical (the lossless-invariant audit mode)
enum class TemporalMode : std::uint8_t { kOff, kReuse, kVerify };

/// Reads GSTG_TEMPORAL from the environment ("off" / "reuse" / "verify").
/// Unset returns `fallback`; an unknown value is ignored with a one-time
/// warning, mirroring the GSTG_SIMD override semantics.
TemporalMode temporal_mode_from_env(TemporalMode fallback);

[[nodiscard]] const char* to_string(TemporalMode mode);

/// Binning strategy of the tile/group identification pass
/// (src/render/binning.h). Lives here, next to the other run modes, so the
/// render config can carry the knob without a layering cycle.
///   kFlat         — one boundary test per fine-cell candidate (the
///                   original single-level pass)
///   kHierarchical — coarse cells first, then expansion of the non-empty
///                   coarse cells into the fine CSR lists; identical hit
///                   sets, fewer boundary tests
///   kAuto         — hierarchical on grids large enough to amortise the
///                   coarse pass, flat otherwise (the default)
///   kVerify       — hierarchical, plus a flat reference run asserting the
///                   CSR output is bit-identical after the canonical
///                   (depth, index) per-cell sort (the audit mode)
enum class BinningMode : std::uint8_t { kFlat, kHierarchical, kAuto, kVerify };

/// Reads GSTG_BINNING from the environment ("flat" / "hierarchical" /
/// "auto" / "verify"). Unset returns `fallback`; an unknown value is
/// ignored with a one-time warning, mirroring GSTG_TEMPORAL.
BinningMode binning_mode_from_env(BinningMode fallback);

[[nodiscard]] const char* to_string(BinningMode mode);

/// Resident representation of the Gaussian cloud inside the renderer
/// (gaussian/compressed.h). Lives here, next to the other run modes, so
/// core's config can carry the knob without depending on the compressed
/// form's implementation.
///   kFloat32    — render from the full-precision float32 SoA (a compressed
///                 input is decoded up front into frame scratch)
///   kCompressed — keep only the fp16 SoA resident and decode fixed-size
///                 blocks on touch inside preprocess (half the resident
///                 bytes, the memory-bandwidth execution model of the
///                 129FPS Full-HD accelerator)
///   kVerify     — decode the full cloud up front AND stream-decode, then
///                 assert the two renders are bit-identical (the audit mode)
enum class ResidencyMode : std::uint8_t { kFloat32, kCompressed, kVerify };

/// Reads GSTG_RESIDENCY from the environment ("float32" / "compressed" /
/// "verify"). Unset returns `fallback`; an unknown value is ignored with a
/// one-time warning, mirroring GSTG_TEMPORAL / GSTG_BINNING.
ResidencyMode residency_mode_from_env(ResidencyMode fallback);

[[nodiscard]] const char* to_string(ResidencyMode mode);

/// Blending discipline of the rasterization stage. Lives here, next to the
/// other run modes, so both the render and core configs can carry the knob.
/// Unlike every other mode pair in this file, kSortless is intentionally
/// LOSSY: it trades the per-group depth sort (the paper's whole subject)
/// for order-independent transmittance blending, gated on a PSNR/SSIM
/// floor instead of bit-identity.
///   kExact    — depth-sorted front-to-back alpha blending; bit-identical
///               output (the standing lossless gate applies)
///   kSortless — skip group sorting entirely and blend the unsorted lists
///               with order-independent transmittance (Wang et al., arXiv
///               2506.07069); deterministic bit-for-bit across thread
///               counts, SIMD backends and list orders, but approximate
///               with respect to exact output
///   kVerify   — render both paths for every frame, ship the sortless
///               image, and report PSNR/SSIM against the exact reference
///               (the quality-audit mode; see src/render/quality.h)
enum class PipelineMode : std::uint8_t { kExact, kSortless, kVerify };

/// Reads GSTG_PIPELINE from the environment ("exact" / "sortless" /
/// "verify"). Unset returns `fallback`; an unknown value is ignored with a
/// one-time warning, mirroring GSTG_TEMPORAL / GSTG_BINNING.
PipelineMode pipeline_mode_from_env(PipelineMode fallback);

[[nodiscard]] const char* to_string(PipelineMode mode);

}  // namespace gstg
