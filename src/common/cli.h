// Minimal command-line flag parsing for the example binaries.
//
// Supports --key=value and --flag forms plus positional arguments; unknown
// flags are reported so examples fail loudly on typos.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace gstg {

class CliArgs {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const { return flags_.count(key) != 0; }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Throws if any parsed flag is not in `known` (catches typos).
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gstg
