// Minimal command-line flag parsing for the example binaries.
//
// Supports --key=value and --flag forms plus positional arguments; unknown
// flags are reported so examples fail loudly on typos. Numeric getters
// parse the *entire* value ("--tile=16x" is an error, not 16) and every
// parse failure names the flag and the offending value, so a mistyped
// invocation dies with an actionable message instead of an uncaught
// std::invalid_argument from deep inside std::stoi.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace gstg {

class CliArgs {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const { return flags_.count(key) != 0; }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  /// Strict numeric getters: the full value must parse (no trailing
  /// garbage, no overflow); throws std::invalid_argument naming the flag
  /// and value. The fallback is returned only when the flag is absent.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  /// get_int that additionally rejects negative values — for count-like
  /// flags (--threads, --frames) that would otherwise wrap to a huge
  /// std::size_t at the call site.
  [[nodiscard]] std::size_t get_size(const std::string& key, std::size_t fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Throws if any parsed flag is not in `known` (catches typos).
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gstg
