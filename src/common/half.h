// IEEE 754 binary16 ("half") storage type with fp32 conversion.
//
// The paper converts pretrained fp32 models to fp16 before running them on the
// accelerator (section VI-A: "the models trained in 32-bit floating point are
// converted to 16-bit floating point"). This type implements that conversion
// (round-to-nearest-even, with correct subnormal/inf/nan handling) so the
// quantisation pass in gaussian/quantize.h can reproduce the fp16 data path.
#pragma once

#include <cstdint>

namespace gstg {

/// Storage-only half-precision float. Arithmetic is performed in fp32; this
/// type only holds the 16-bit pattern and converts at the boundaries, exactly
/// as a hardware datapath with fp16 operands and fp32 accumulation would.
class Half {
 public:
  constexpr Half() = default;

  /// Converts fp32 -> fp16 with round-to-nearest-even.
  explicit Half(float value) : bits_(from_float_bits(value)) {}

  /// Converts the stored pattern back to fp32 (exact).
  [[nodiscard]] float to_float() const { return to_float_bits(bits_); }
  explicit operator float() const { return to_float(); }

  /// Raw 16-bit pattern (sign 1, exponent 5, mantissa 10).
  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  /// Builds a Half from a raw bit pattern.
  static constexpr Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] bool is_nan() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  [[nodiscard]] bool is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }

  friend bool operator==(Half a, Half b) { return a.bits_ == b.bits_; }

 private:
  static std::uint16_t from_float_bits(float value);
  static float to_float_bits(std::uint16_t bits);

  std::uint16_t bits_ = 0;
};

/// Round-trips a float through fp16. Used by the quantisation pass: the value
/// that the accelerator actually sees.
inline float quantize_to_half(float value) { return Half(value).to_float(); }

}  // namespace gstg
