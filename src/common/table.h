// Console table formatting. The benchmark binaries print the paper's tables
// and figure series in a fixed-width layout so the output can be diffed
// against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace gstg {

/// Column-aligned text table with a title, header row and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 2);

  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by bench binaries).
std::string format_fixed(double value, int precision);

}  // namespace gstg
