// Deterministic random number generation for scene synthesis and tests.
//
// All stochastic content in the repository (synthetic scenes, property-test
// sweeps, workload perturbations) flows through this wrapper so a seed fully
// determines the output — a requirement for reproducible experiment tables.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace gstg {

/// Stable 64-bit FNV-1a hash; used to derive per-scene seeds from names so
/// "train" always produces the same synthetic scene on every platform.
constexpr std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Seeded generator with the distribution helpers scene synthesis needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  explicit Rng(std::string_view name) : engine_(fnv1a64(name)) {}

  /// Uniform in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Standard normal scaled/shifted.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Log-normal: exp(N(log_mean, log_sigma)); natural for Gaussian scales.
  float log_normal(float log_mean, float log_sigma) {
    return std::lognormal_distribution<float>(log_mean, log_sigma)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial.
  bool chance(float probability) {
    return std::bernoulli_distribution(probability)(engine_);
  }

  /// Derives an independent child stream (e.g. one per object in a scene).
  Rng fork(std::uint64_t salt) {
    return Rng(engine_() ^ (salt * 0x9e3779b97f4a7c15ull));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gstg
