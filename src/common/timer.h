// Wall-clock stage timer (milliseconds, steady clock).
#pragma once

#include <chrono>

namespace gstg {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  /// Milliseconds since construction or the last restart().
  [[nodiscard]] double elapsed_ms() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

  /// Returns elapsed_ms() and restarts the timer — convenient for chaining
  /// stage measurements.
  double lap_ms() {
    const double ms = elapsed_ms();
    start_ = std::chrono::steady_clock::now();
    return ms;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gstg
