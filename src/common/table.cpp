#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gstg {

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TextTable::add_row(const std::string& label, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) {
    row.push_back(format_fixed(v, precision));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) {
    cols = std::max(cols, row.size());
  }
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < cols; ++i) rule += widths[i] + (i + 1 < cols ? 2 : 0);
    out << std::string(rule, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace gstg
