#include "common/cli.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace gstg {

namespace {

// Strict full-string integer parse. std::stoi would stop at the first
// non-digit ("16x" -> 16) and throw bare std::invalid_argument /
// std::out_of_range with no hint which flag was malformed; here the whole
// value must be one integer and every failure names the flag and the value.
int parse_flag_int(const std::string& key, const std::string& value) {
  int parsed = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("--" + key + ": integer out of range '" + value + "'");
  }
  if (ec != std::errc() || ptr != end) {
    throw std::invalid_argument("--" + key + ": invalid integer '" + value +
                                "' (expected a whole decimal number)");
  }
  return parsed;
}

// Strict full-string double parse via strtod + end-pointer check
// (std::from_chars<double> is still patchy across standard libraries).
// strtod alone is too permissive for a strict contract: it skips leading
// whitespace and accepts nan/inf and hex floats, none of which belong in a
// numeric flag — restrict the alphabet to plain decimal/scientific forms
// first, matching the integer parser's strictness.
double parse_flag_double(const std::string& key, const std::string& value) {
  if (value.empty()) {
    throw std::invalid_argument("--" + key + ": empty value (expected a number)");
  }
  for (const char c : value) {
    const bool allowed =
        (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == 'e' || c == 'E';
    if (!allowed) {
      throw std::invalid_argument("--" + key + ": invalid number '" + value + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || end == value.c_str()) {
    throw std::invalid_argument("--" + key + ": invalid number '" + value + "'");
  }
  if (errno == ERANGE) {
    throw std::invalid_argument("--" + key + ": number out of range '" + value + "'");
  }
  return parsed;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc < 1) {
    throw std::invalid_argument("CliArgs: empty argv");
  }
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return parse_flag_double(key, it->second);
}

int CliArgs::get_int(const std::string& key, int fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return parse_flag_int(key, it->second);
}

std::size_t CliArgs::get_size(const std::string& key, std::size_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const int parsed = parse_flag_int(key, it->second);
  if (parsed < 0) {
    throw std::invalid_argument("--" + key + ": negative value '" + it->second +
                                "' (expected a count >= 0)");
  }
  return static_cast<std::size_t>(parsed);
}

void CliArgs::require_known(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : flags_) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("unknown flag --" + key);
    }
  }
}

}  // namespace gstg
