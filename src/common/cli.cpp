#include "common/cli.h"

#include <algorithm>
#include <stdexcept>

namespace gstg {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc < 1) {
    throw std::invalid_argument("CliArgs: empty argv");
  }
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::stod(it->second);
}

int CliArgs::get_int(const std::string& key, int fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::stoi(it->second);
}

void CliArgs::require_known(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : flags_) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("unknown flag --" + key);
    }
  }
}

}  // namespace gstg
