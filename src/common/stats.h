// Streaming statistics accumulators used by the render/simulator counter
// infrastructure and by the benchmark harness when it reproduces the paper's
// averaged metrics (tiles per Gaussian, Gaussians per pixel, shared ratios).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gstg {

/// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (used to combine per-thread counters).
  void merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean over positive samples; the paper reports geomean speedups
/// (Figs. 14 and 15).
double geometric_mean(const std::vector<double>& values);

/// Nearest-rank percentile over an ascending-sorted sample. `p` in [0, 1];
/// p=0 returns the minimum, p=1 the maximum. Throws std::invalid_argument on
/// an empty sample or p outside [0, 1]. The single blessed spelling of the
/// index math every latency report uses (examples/render_server,
/// bench_service) — the inline versions it replaced clamped differently.
double percentile_sorted(const std::vector<double>& sorted, double p);

/// Sorts a copy and returns percentile_sorted over it; convenience for
/// one-shot reports where the caller does not need the sorted sample back.
double percentile(std::vector<double> values, double p);

/// Common latency summary (all via percentile_sorted on one sort).
struct PercentileSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};
PercentileSummary summarize_percentiles(std::vector<double> values);

/// Log-bucketed histogram for positive quantities with heavy tails (latency
/// in ms, queue depths): bucket edges grow geometrically from `lo` by
/// `growth` per bucket, so relative quantile error is bounded by the growth
/// factor regardless of magnitude. Fixed footprint, O(1) add, mergeable —
/// suitable for long-running services where keeping every sample (as the
/// exact percentile helpers above require) is not.
class LatencyHistogram {
 public:
  /// Defaults cover [1 µs, ~72 s] in ms units at ≤5% relative error.
  explicit LatencyHistogram(double lo = 1e-3, double growth = 1.05,
                            std::size_t buckets = 360);

  void add(double x);
  void merge(const LatencyHistogram& other);

  /// Quantile estimate: upper edge of the bucket holding the p-th sample
  /// (conservative for latency). Samples below `lo` report `lo`; returns 0
  /// when empty. `p` outside [0, 1] is clamped.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  [[nodiscard]] double min() const { return total_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return total_ ? max_ : 0.0; }

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  /// Inclusive upper edge of bucket i (lo * growth^(i+1)).
  [[nodiscard]] double bucket_upper_edge(std::size_t i) const;

 private:
  [[nodiscard]] std::size_t bucket_index(double x) const;

  double lo_;
  double log_growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram for distribution inspection in tests and examples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bin_count_size() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lower_edge(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace gstg
