// Streaming statistics accumulators used by the render/simulator counter
// infrastructure and by the benchmark harness when it reproduces the paper's
// averaged metrics (tiles per Gaussian, Gaussians per pixel, shared ratios).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gstg {

/// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (used to combine per-thread counters).
  void merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean over positive samples; the paper reports geomean speedups
/// (Figs. 14 and 15).
double geometric_mean(const std::vector<double>& values);

/// Fixed-bin histogram for distribution inspection in tests and examples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bin_count_size() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lower_edge(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace gstg
