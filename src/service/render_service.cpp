#include "service/render_service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/runconfig.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "dataset/dataset.h"
#include "gaussian/ply_io.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gstg {

const char* to_string(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kInvalidRequest:
      return "invalid_request";
    case ServiceStatus::kSceneLoadFailed:
      return "scene_load_failed";
    case ServiceStatus::kQueueFull:
      return "queue_full";
    case ServiceStatus::kShutdown:
      return "shutdown";
    case ServiceStatus::kInternalError:
      return "internal_error";
  }
  return "?";
}

bool validate_render_request(const RenderRequest& request, std::string& error) {
  if (request.scene.empty()) {
    error = "scene id is empty";
    return false;
  }
  const Camera& camera = request.camera;
  if (camera.width() > kMaxImageDim || camera.height() > kMaxImageDim) {
    error = "image size " + std::to_string(camera.width()) + "x" +
            std::to_string(camera.height()) + " exceeds the " + std::to_string(kMaxImageDim) +
            " limit";
    return false;
  }
  // The Camera constructor guarantees positive sizes and focal lengths, but
  // NaN/Inf principal points or pose entries pass it and would poison every
  // downstream stage; reject them here at the service boundary.
  bool finite = std::isfinite(camera.fx()) && std::isfinite(camera.fy()) &&
                std::isfinite(camera.cx()) && std::isfinite(camera.cy());
  for (const auto& row : camera.world_to_camera().m) {
    for (const float v : row) finite = finite && std::isfinite(v);
  }
  if (!finite) {
    error = "camera has non-finite intrinsics or pose";
    return false;
  }
  if (request.fast_tier && request.session != 0) {
    // The fast tier never sorts, so there is no sorted order for a session's
    // temporal cache to reuse — the combination is a contradiction, not a
    // degraded mode, and gets a typed rejection at the boundary.
    error = "fast_tier requests must be stateless (session 0), got session " +
            std::to_string(request.session);
    return false;
  }
  return true;
}

ServiceConfig::ServiceConfig() {
  // Service-layer defaults: parallelism comes from the worker pool, so
  // per-frame rendering stays single-threaded, and session streams reuse
  // cross-frame sort order by default.
  render.threads = 1;
  render.temporal = TemporalMode::kReuse;
}

ServiceConfig ServiceConfig::resolved() const {
  ServiceConfig r = *this;
  if (r.workers == 0) {
    r.workers = env_positive_size("GSTG_SERVICE_WORKERS",
                                  std::min<std::size_t>(worker_thread_count(), 4));
  }
  if (r.queue_capacity == 0) r.queue_capacity = env_positive_size("GSTG_SERVICE_QUEUE", 64);
  if (r.scene_capacity == 0) r.scene_capacity = env_positive_size("GSTG_SERVICE_SCENES", 4);
  if (r.max_batch == 0) r.max_batch = env_positive_size("GSTG_SERVICE_BATCH", 16);
  if (r.session_capacity == 0) {
    r.session_capacity = env_positive_size("GSTG_SERVICE_SESSIONS", 64);
  }
  r.render.validate();
  return r;
}

namespace {

RenderResponse error_response(ServiceStatus status, std::string message) {
  RenderResponse response;
  response.status = status;
  response.error = std::move(message);
  return response;
}

}  // namespace

RenderService::RenderService(const ServiceConfig& config, Loader loader)
    : config_(config.resolved()), cache_(config_.scene_capacity, std::move(loader)) {
  telemetry::ensure_started_from_env();
  telemetry::ensure_metrics_from_env();
  if (config_.trace) telemetry::ensure_collecting();
  workers_.reserve(config_.workers);
  try {
    for (std::size_t w = 0; w < config_.workers; ++w) {
      workers_.emplace_back([this, w] {
        telemetry::set_thread_name("service-worker-" + std::to_string(w));
        worker_loop();
      });
    }
  } catch (...) {
    // A failed spawn (thread exhaustion) must not unwind joinable threads —
    // that would be std::terminate. Stop and join what did start, then let
    // the caller see the original error.
    shutdown();
    throw;
  }
}

RenderService::~RenderService() { shutdown(); }

std::future<RenderResponse> RenderService::submit(RenderRequest request) {
  return enqueue(std::move(request), /*block=*/true);
}

std::future<RenderResponse> RenderService::try_submit(RenderRequest request) {
  return enqueue(std::move(request), /*block=*/false);
}

std::future<RenderResponse> RenderService::enqueue(RenderRequest&& request, bool block) {
  std::promise<RenderResponse> promise;
  std::future<RenderResponse> future = promise.get_future();

  std::string error;
  if (!validate_render_request(request, error)) {
    promise.set_value(error_response(ServiceStatus::kInvalidRequest, error));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests_rejected;
    return future;
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (block) {
      // Backpressure: hold the submitter until the scheduler frees a slot.
      space_cv_.wait(lock,
                     [this] { return stopping_ || queue_.size() < config_.queue_capacity; });
    }
    if (stopping_) {
      ++stats_.requests_rejected;
      promise.set_value(error_response(ServiceStatus::kShutdown, "service is shut down"));
      return future;
    }
    if (queue_.size() >= config_.queue_capacity) {
      ++stats_.requests_rejected;
      promise.set_value(error_response(
          ServiceStatus::kQueueFull,
          "queue full (" + std::to_string(config_.queue_capacity) + " pending requests)"));
      return future;
    }
    Pending pending{std::move(request), std::move(promise)};
    pending.enqueued_ns = telemetry::now_ns();
    queue_.push_back(std::move(pending));
    ++stats_.requests_submitted;
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
    telemetry::emit_counter("queue_depth", static_cast<double>(queue_.size()));
    telemetry::MetricsRegistry::global().sample_gauge("service.queue_depth",
                                                      static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
  return future;
}

void RenderService::shutdown() {
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    to_join.swap(workers_);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : to_join) t.join();
}

ServiceStats RenderService::stats() const {
  ServiceStats snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot = stats_;
    snapshot.sessions = sessions_.size();
  }
  const SceneCacheStats cache = cache_.stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_evictions = cache.evictions;
  return snapshot;
}

bool RenderService::eligible_request_queued() const {
  for (const Pending& pending : queue_) {
    const std::uint64_t s = pending.request.session;
    if (s == 0) return true;
    const auto it = sessions_.find(s);
    if (it == sessions_.end() || !it->second.busy) return true;
  }
  return false;
}

std::vector<RenderService::Pending> RenderService::take_batch() {
  std::vector<Pending> batch;
  std::size_t idx = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const std::uint64_t s = queue_[i].request.session;
    if (s == 0) {
      idx = i;
      break;
    }
    const auto it = sessions_.find(s);
    if (it == sessions_.end() || !it->second.busy) {
      idx = i;
      break;
    }
  }
  if (idx == queue_.size()) return batch;

  Pending first = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  const std::string key = first.request.scene;
  const std::uint64_t session_id = first.request.session;
  batch.push_back(std::move(first));

  // Batch growth: a session stream is serialized on one worker anyway, so
  // it may batch up to the cap; stateless requests are divided so idle
  // workers keep getting work under light load.
  std::size_t limit = config_.max_batch;
  if (session_id == 0) {
    limit = std::min(limit, std::size_t{1} + queue_.size() / std::max<std::size_t>(config_.workers, 1));
  }
  for (std::size_t i = idx; i < queue_.size() && batch.size() < limit;) {
    Pending& candidate = queue_[i];
    if (candidate.request.session != session_id) {
      ++i;
      continue;
    }
    if (candidate.request.scene != key) {
      // A same-session request for a different scene must stay behind the
      // ones we already took (streams render in submission order); for
      // stateless requests there is no order to preserve.
      if (session_id != 0) break;
      ++i;
      continue;
    }
    batch.push_back(std::move(candidate));
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  if (session_id != 0) {
    Session& session = sessions_[session_id];
    if (!session.renderer) {
      session.renderer = std::make_unique<TemporalRenderer>(config_.render);
      // Session scratch is cloud-sized, so the resident set is capped: a
      // new session beyond the cap evicts the least-recently-dispatched
      // idle one (never a busy one — if everything is busy, the overshoot
      // is bounded by the worker count and shrinks at the next creation).
      while (sessions_.size() > config_.session_capacity) {
        auto victim = sessions_.end();
        for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
          if (it->first == session_id || it->second.busy) continue;
          if (victim == sessions_.end() || it->second.last_used < victim->second.last_used) {
            victim = it;
          }
        }
        if (victim == sessions_.end()) break;
        sessions_.erase(victim);
        ++stats_.sessions_evicted;
      }
    }
    session.busy = true;
    session.last_used = ++dispatch_clock_;
  }
  ++stats_.batches;
  if (batch.size() > 1) stats_.batched_requests += batch.size();
  stats_.max_batch = std::max(stats_.max_batch, batch.size());
  return batch;
}

RenderResponse RenderService::render_one(const RenderRequest& request, const GaussianCloud& cloud,
                                         Session* session, Renderer& stateless,
                                         FrameContext& stateless_ctx, Renderer& fast,
                                         FrameContext& fast_ctx) {
  RenderResponse response;
  Timer timer;
  try {
    {
      GSTG_SPAN("service_render");
      if (request.fast_tier) {
        // Sortless fast tier: stateless by validation, rendered through the
        // per-worker kSortless renderer. Lossy vs the exact pipeline, but
        // deterministic and order-independent, so the verify gate below still
        // holds bit-for-bit under the same sortless reference config.
        fast.render(cloud, request.camera, fast_ctx);
        response.image = fast_ctx.image;
        response.counters = fast_ctx.counters;
      } else if (session != nullptr) {
        if (session->scene_key != request.scene) {
          // The cross-frame cache is meaningless across scenes: cold-start it.
          session->renderer->invalidate();
          session->scene_key = request.scene;
        }
        session->renderer->render(cloud, request.camera, session->ctx);
        response.image = session->ctx.image;
        response.counters = session->ctx.counters;
        response.temporal = session->renderer->last_frame();
      } else {
        stateless.render(cloud, request.camera, stateless_ctx);
        response.image = stateless_ctx.image;
        response.counters = stateless_ctx.counters;
      }
    }
    telemetry::MetricsRegistry::global().record_latency("service.render_ms", timer.lap_ms());
    if (config_.verify) {
      // The kVerify-style service gate: every response must be bit-identical
      // to a sequential one-shot render of the same request. Fast-tier
      // responses compare against the fast renderer's resolved config (its
      // sortless output is deterministic, so the bit-compare stays valid).
      GSTG_SPAN("service_verify");
      GsTgConfig reference = request.fast_tier ? fast.config() : config_.render;
      reference.temporal = TemporalMode::kOff;
      const RenderResult oneshot = render_gstg(cloud, request.camera, reference);
      if (max_abs_diff(oneshot.image, response.image) != 0.0f) {
        response = error_response(
            ServiceStatus::kInternalError,
            "verify gate: service output diverged from sequential render_gstg");
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.verify_mismatches;
      }
    }
  } catch (const std::exception& e) {
    response = error_response(ServiceStatus::kInternalError, e.what());
  }
  return response;
}

void RenderService::worker_loop() {
  // Persistent per-worker resources: stateless requests render through one
  // reused Renderer + FrameContext (the zero-steady-state-allocation path).
  // The fast tier gets its own sortless pair: pipeline forced to kSortless
  // (GSTG_PIPELINE may still override it process-wide inside the Renderer
  // constructor — an operator escape hatch, applied identically to the
  // verify-gate reference) and temporal off so the pair is always a valid
  // configuration regardless of the service's session settings.
  Renderer stateless(config_.render);
  FrameContext stateless_ctx;
  GsTgConfig fast_config = config_.render;
  fast_config.pipeline = PipelineMode::kSortless;
  fast_config.temporal = TemporalMode::kOff;
  Renderer fast(fast_config);
  FrameContext fast_ctx;

  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return eligible_request_queued() || (stopping_ && queue_.empty());
      });
      if (stopping_ && queue_.empty()) return;
      batch = take_batch();
    }
    space_cv_.notify_all();
    if (batch.empty()) continue;

    // Each request's queue residency, [enqueue, dispatch), attributed to the
    // worker that dispatched it.
    const std::uint64_t dispatched_ns = telemetry::now_ns();
    for (const Pending& pending : batch) {
      // Async, not scoped: the wait began on the client thread at enqueue
      // time and can overlap this worker's own spans without nesting.
      telemetry::emit_async_span("queue_wait", pending.enqueued_ns, dispatched_ns);
      telemetry::MetricsRegistry::global().record_latency(
          "service.queue_wait_ms",
          static_cast<double>(dispatched_ns - pending.enqueued_ns) / 1e6);
    }
    GSTG_SPAN("service_batch");

    const std::string key = batch.front().request.scene;
    const std::uint64_t session_id = batch.front().request.session;

    // Resolve the scene once per batch. A failed load resolves every
    // request in the batch with a typed error — the process stays up.
    std::shared_ptr<const GaussianCloud> cloud;
    ServiceStatus load_status = ServiceStatus::kOk;
    std::string load_error;
    try {
      cloud = cache_.acquire(key);
    } catch (const PlyError& e) {
      load_status = ServiceStatus::kSceneLoadFailed;
      load_error = e.what();
    } catch (const DatasetError& e) {
      load_status = ServiceStatus::kSceneLoadFailed;
      load_error = e.what();
    } catch (const std::invalid_argument& e) {
      load_status = ServiceStatus::kSceneLoadFailed;
      load_error = e.what();
    } catch (const std::exception& e) {
      load_status = ServiceStatus::kInternalError;
      load_error = e.what();
    }

    Session* session = nullptr;
    if (session_id != 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      session = &sessions_.at(session_id);  // node pointers are stable; busy = ours
    }

    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t fast_completed = 0;
    std::size_t reuse_pairs = 0;
    std::size_t sorted_pairs = 0;
    std::vector<RenderResponse> responses;
    responses.reserve(batch.size());
    for (Pending& pending : batch) {
      RenderResponse response =
          load_status == ServiceStatus::kOk
              ? render_one(pending.request, *cloud, session, stateless, stateless_ctx, fast,
                           fast_ctx)
              : error_response(load_status, load_error);
      response.ok() ? ++completed : ++failed;
      if (response.ok() && pending.request.fast_tier) ++fast_completed;
      reuse_pairs += response.temporal.pairs_reused;
      sorted_pairs += response.temporal.pairs_sorted;
      responses.push_back(std::move(response));
    }

    // Commit the stats and free the session *before* resolving the futures,
    // so a client that observed its response also observes it in stats().
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (session != nullptr) session->busy = false;
      stats_.requests_completed += completed;
      stats_.requests_failed += failed;
      stats_.fast_tier_completed += fast_completed;
      stats_.reuse_pairs += reuse_pairs;
      stats_.sorted_pairs += sorted_pairs;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(responses[i]));
    }
    // A freed session (or the drained queue slots) may make queued requests
    // eligible for other workers.
    work_cv_.notify_all();
  }
}

}  // namespace gstg
