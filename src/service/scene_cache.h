// Load-once scene cache of the render service: refcounted GaussianClouds
// keyed by scene id (a synthetic scene name or a .ply path), with LRU
// eviction and single-flight loading.
//
// Concurrency model: the cache hands out shared_ptr<const GaussianCloud>,
// so eviction only drops the cache's own reference — requests that are
// still rendering from an evicted cloud keep it alive until they finish.
// Concurrent acquires of the same missing key trigger exactly one load
// (single flight); the other callers block on the in-flight load and share
// its result. A failed load is *not* cached: every waiter receives the
// loader's typed exception (e.g. PlyError) and the next acquire retries.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gaussian/cloud.h"

namespace gstg {

/// Counters of one SceneCache since construction.
struct SceneCacheStats {
  std::size_t hits = 0;       ///< acquisitions served from cache (incl. joining an in-flight load)
  std::size_t misses = 0;     ///< acquisitions that started a load
  std::size_t evictions = 0;  ///< resident entries dropped by the LRU policy
  std::size_t resident = 0;   ///< currently cached (loaded) scenes
};

/// Default cache loader: a key ending in ".ply" is read from the
/// filesystem (throws PlyError on malformed/truncated files); a key naming
/// an existing file or directory goes through the format-sniffing dataset
/// loader (throws DatasetError on malformed/unrecognised input); any other
/// key names a synthetic scene recipe at the env-selected RunScale (throws
/// std::invalid_argument for unknown names).
GaussianCloud load_scene_or_ply(const std::string& key);

class SceneCache {
 public:
  using Loader = std::function<GaussianCloud(const std::string&)>;

  /// capacity = maximum resident (loaded) scenes, >= 1; an empty loader
  /// selects load_scene_or_ply. Throws std::invalid_argument on capacity 0.
  explicit SceneCache(std::size_t capacity, Loader loader = {});

  /// Returns the cloud for `key`, loading it on first use. Thread-safe;
  /// rethrows the loader's exception on failure (nothing is cached then).
  std::shared_ptr<const GaussianCloud> acquire(const std::string& key);

  [[nodiscard]] SceneCacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  using CloudFuture = std::shared_future<std::shared_ptr<const GaussianCloud>>;

  struct Entry {
    CloudFuture future;                          // what in-flight waiters block on
    std::shared_ptr<const GaussianCloud> cloud;  // non-null once the load committed:
                                                 // the hit path returns it directly and
                                                 // never touches the future under the lock
    std::list<std::string>::iterator lru_it{};   // valid only when cloud != nullptr
  };

  std::size_t capacity_;
  Loader loader_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // ready keys, most recent first
  SceneCacheStats stats_;
};

}  // namespace gstg
