// Async render service: the multi-client serving layer on top of the
// persistent renderer (core/renderer.h) and the temporal frame-sequence
// renderer (temporal/temporal_renderer.h).
//
//   client threads ──submit()──▶ bounded queue ──▶ scheduler workers
//                                 (backpressure)     │  batch compatible
//                                                    │  requests (same
//                                                    │  scene + session)
//                                                    ▼
//                  SceneCache (load-once, refcounted, LRU)
//                  per-session TemporalRenderer  (cross-frame sort reuse)
//                  per-worker persistent Renderer (stateless requests)
//
// Error contract: every failure a client can cause — malformed request,
// unknown scene, garbled/truncated PLY, queue overflow, post-shutdown
// submit — resolves that client's future with a *typed* RenderResponse
// (ServiceStatus + message). Nothing a single request carries can take
// down the process; worker exceptions are caught per request.
//
// Correctness contract: response images are bit-identical to a sequential
// render_gstg(cloud, camera, config) of the same request. Session requests
// run through a per-session TemporalRenderer, which is pixel-exact by
// construction; ServiceConfig::verify re-renders every response through the
// one-shot pipeline and counts mismatches (the kVerify-style audit gate —
// bench_service and the service tests run with it on).
//
// Fast tier: RenderRequest::fast_tier routes a stateless request through a
// per-worker sortless renderer (PipelineMode::kSortless, temporal off) —
// lossy relative to the exact pipeline but deterministic and
// order-independent, so the verify gate still bit-compares fast-tier
// responses against a one-shot render under the same sortless config.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "camera/camera.h"
#include "core/renderer.h"
#include "render/metrics.h"
#include "service/scene_cache.h"
#include "temporal/temporal_renderer.h"

namespace gstg {

/// Typed outcome of one render request.
enum class ServiceStatus : std::uint8_t {
  kOk,
  kInvalidRequest,   ///< request validation failed (bad camera, empty scene id)
  kSceneLoadFailed,  ///< unknown scene name or malformed/truncated PLY
  kQueueFull,        ///< try_submit on a full queue (backpressure)
  kShutdown,         ///< submitted after shutdown()
  kInternalError,    ///< unexpected worker failure or verify-gate mismatch
};

[[nodiscard]] const char* to_string(ServiceStatus status);

/// One client render request. `session` groups requests into a camera
/// stream: requests of the same session are rendered in submission order by
/// a per-session TemporalRenderer, so consecutive frames get cross-frame
/// group-sort reuse. session 0 means stateless (no ordering, no temporal
/// cache).
struct RenderRequest {
  std::string scene;  ///< synthetic scene name or a .ply path (SceneCache key)
  Camera camera;
  std::uint64_t session = 0;
  /// Opt into the sortless fast tier: the frame renders through
  /// PipelineMode::kSortless (zero group-sort pairs, order-independent
  /// blending — lossy, gated by the committed per-scene PSNR/SSIM floor
  /// instead of bit-identity). Fast-tier requests must be stateless
  /// (session == 0); combining the two is a typed kInvalidRequest, because
  /// the temporal cache reuses sorted orders that the fast tier never
  /// produces.
  bool fast_tier = false;
};

/// Resolution of one request: a typed status (with message on failure) and,
/// on kOk, the rendered frame.
struct RenderResponse {
  ServiceStatus status = ServiceStatus::kOk;
  std::string error;
  Framebuffer image{1, 1};
  RenderCounters counters;
  TemporalStats temporal;  ///< per-frame reuse stats (zero for stateless requests)

  [[nodiscard]] bool ok() const { return status == ServiceStatus::kOk; }
};

/// Service configuration. Zero-valued knobs resolve from the environment
/// (strictly validated, see common/runconfig.h) or a built-in default at
/// construction time.
struct ServiceConfig {
  /// Render configuration shared by every request. `temporal` applies to
  /// session streams (default kReuse — the reason sessions exist); threads
  /// defaults to 1 so parallelism comes from the service workers.
  GsTgConfig render;
  std::size_t workers = 0;         ///< scheduler threads; 0 = GSTG_SERVICE_WORKERS or min(hw, 4)
  std::size_t queue_capacity = 0;  ///< bounded queue size; 0 = GSTG_SERVICE_QUEUE or 64
  std::size_t scene_capacity = 0;  ///< resident scene-cache slots; 0 = GSTG_SERVICE_SCENES or 4
  std::size_t max_batch = 0;       ///< batch-size cap; 0 = GSTG_SERVICE_BATCH or 16
  std::size_t session_capacity = 0;  ///< resident session streams; 0 = GSTG_SERVICE_SESSIONS or 64
  bool verify = false;             ///< re-render every response via render_gstg and compare
  /// Starts the process-global trace collector (src/telemetry/trace.h) so
  /// the service's queue-wait/batch/render/verify spans are recorded;
  /// GSTG_TRACE=<path> does the same and names the JSON written at exit.
  /// Purely observational — responses and stats() are identical either way.
  bool trace = false;

  ServiceConfig();

  /// Fills every zero knob from its environment override / default and
  /// validates; throws std::invalid_argument on inconsistent values.
  [[nodiscard]] ServiceConfig resolved() const;
};

/// The async multi-client render service. Construction spawns the worker
/// pool; destruction (or shutdown()) drains queued requests and joins.
class RenderService {
 public:
  using Loader = SceneCache::Loader;

  /// Throws std::invalid_argument on an invalid configuration. `loader`
  /// overrides scene loading (tests inject failing/blocking loaders);
  /// empty selects load_scene_or_ply.
  explicit RenderService(const ServiceConfig& config, Loader loader = {});
  ~RenderService();

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  /// Enqueues a request; the future resolves when it is rendered or
  /// rejected. Blocks while the queue is full (backpressure) until space
  /// frees up or the service shuts down. Invalid requests resolve
  /// immediately with kInvalidRequest.
  std::future<RenderResponse> submit(RenderRequest request);

  /// Like submit, but a full queue resolves immediately with kQueueFull
  /// instead of blocking.
  std::future<RenderResponse> try_submit(RenderRequest request);

  /// Stops accepting requests, drains the queue, joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Snapshot of the operating counters (queue/batch/cache/reuse/verify).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Pending {
    RenderRequest request;
    std::promise<RenderResponse> promise;
    /// telemetry::now_ns() at queue entry; the dispatching worker emits the
    /// [enqueue, dispatch) interval as that request's queue_wait span.
    std::uint64_t enqueued_ns = 0;
  };

  /// One client camera stream: its temporal renderer (cross-frame cache),
  /// persistent frame context, and the scene it is currently bound to. The
  /// busy flag serializes the stream: at most one worker renders a given
  /// session at a time, in queue order. Each session holds cloud-sized
  /// temporal scratch, so the resident set is capped by session_capacity:
  /// creating a session beyond the cap evicts the least-recently-dispatched
  /// *idle* session (an evicted id simply cold-starts on its next request —
  /// a stream of unique session ids costs reuse, never memory).
  struct Session {
    std::unique_ptr<TemporalRenderer> renderer;
    FrameContext ctx;
    std::string scene_key;
    bool busy = false;
    std::uint64_t last_used = 0;  ///< dispatch-clock stamp for LRU eviction
  };

  std::future<RenderResponse> enqueue(RenderRequest&& request, bool block);
  [[nodiscard]] bool eligible_request_queued() const;  // caller holds mutex_
  std::vector<Pending> take_batch();                   // caller holds mutex_
  void worker_loop();
  RenderResponse render_one(const RenderRequest& request, const GaussianCloud& cloud,
                            Session* session, Renderer& stateless, FrameContext& stateless_ctx,
                            Renderer& fast, FrameContext& fast_ctx);

  ServiceConfig config_;
  SceneCache cache_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: request queued / session freed / stopping
  std::condition_variable space_cv_;  // submitters: queue space freed / stopping
  std::deque<Pending> queue_;
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t dispatch_clock_ = 0;
  ServiceStats stats_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Validates a request against the service limits without submitting it.
/// Returns true when valid; otherwise fills `error` with the reason
/// (non-finite camera intrinsics/pose, image size beyond kMaxImageDim,
/// empty scene id, fast_tier combined with a session stream).
inline constexpr int kMaxImageDim = 16384;
[[nodiscard]] bool validate_render_request(const RenderRequest& request, std::string& error);

}  // namespace gstg
