#include "service/scene_cache.h"

#include <filesystem>
#include <optional>
#include <stdexcept>
#include <utility>

#include "dataset/load_scene.h"
#include "gaussian/ply_io.h"
#include "scene/scene.h"

namespace gstg {

GaussianCloud load_scene_or_ply(const std::string& key) {
  const bool is_ply = key.size() >= 4 && key.compare(key.size() - 4, 4, ".ply") == 0;
  if (is_ply) return read_gaussian_ply_file(key);
  // A key naming something on disk is a dataset path (COLMAP model dir,
  // transforms.json scene, ...): route it through the format-sniffing
  // loader, whose typed DatasetError the service maps to a client error.
  // An existing path the loader does not recognise must surface that typed
  // error too — not fall through to an "unknown scene name" lookup.
  std::error_code ec;
  if (std::filesystem::exists(key, ec)) return std::move(load_scene(key).cloud);
  return std::move(generate_scene(key).cloud);
}

SceneCache::SceneCache(std::size_t capacity, Loader loader)
    : capacity_(capacity), loader_(loader ? std::move(loader) : Loader(load_scene_or_ply)) {
  if (capacity_ == 0) {
    throw std::invalid_argument("SceneCache: capacity must be >= 1");
  }
}

std::shared_ptr<const GaussianCloud> SceneCache::acquire(const std::string& key) {
  // Constructed only on the miss path: the steady-state hit path must not
  // pay the promise's shared-state allocation.
  std::optional<std::promise<std::shared_ptr<const GaussianCloud>>> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (it->second.cloud) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // refresh recency
        return it->second.cloud;
      }
      // Another thread is loading this key: share its flight. The wait
      // happens outside the lock so one slow load cannot stall other keys.
      const CloudFuture flight = it->second.future;
      // gstg-lint: allow(R5): intentional early release of the unique_lock — the blocking flight.get() below must not hold the cache mutex
      lock.unlock();
      return flight.get();  // rethrows the loader's exception on failure
    }
    ++stats_.misses;
    promise.emplace();
    Entry entry;
    entry.future = promise->get_future().share();
    entries_.emplace(key, std::move(entry));
  }

  // Load outside the lock: scene generation / PLY parsing can be slow, and
  // other keys must stay servable meanwhile.
  std::shared_ptr<const GaussianCloud> cloud;
  try {
    cloud = std::make_shared<const GaussianCloud>(loader_(key));
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);  // failures are not cached; the next acquire retries
    }
    promise->set_exception(std::current_exception());
    throw;
  }

  // Wake the waiters before publishing to the map: a reader must never be
  // able to observe a committed entry whose future is still unsatisfied.
  promise->set_value(cloud);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    try {
      lru_.push_front(key);
    } catch (...) {
      // Publishing failed (allocation): drop the entry so the key reloads
      // next time; the waiters already have their value.
      entries_.erase(key);
      throw;
    }
    const auto it = entries_.find(key);
    // The entry is still ours (only a committed load or our own failure
    // path removes it), so publish and enforce capacity.
    it->second.cloud = cloud;
    it->second.lru_it = lru_.begin();
    while (lru_.size() > capacity_) {
      const std::string victim = lru_.back();
      lru_.pop_back();
      entries_.erase(victim);
      ++stats_.evictions;
    }
  }
  return cloud;
}

SceneCacheStats SceneCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SceneCacheStats snapshot = stats_;
  snapshot.resident = lru_.size();
  return snapshot;
}

}  // namespace gstg
