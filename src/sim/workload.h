// Frame workload extraction: runs the software pipelines and distils the
// per-unit operation counts the cycle simulator consumes. Using measured
// workloads (real list lengths, real alpha-evaluation counts including
// early exit) keeps the simulator faithful to the actual rendering work of
// a scene rather than to analytic approximations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "camera/camera.h"
#include "core/gstg_config.h"
#include "gaussian/cloud.h"
#include "render/types.h"

namespace gstg {

/// One sorting work unit: a group (GS-TG) or a tile (baseline / GSCore).
struct SortUnit {
  std::uint32_t n = 0;  ///< list length to sort
};

/// One bitmask-generation work unit (GS-TG only): a group.
struct BgmUnit {
  std::uint32_t entries = 0;  ///< (splat, group) entries
  std::uint32_t tests = 0;    ///< tile boundary tests across those entries
};

/// One rasterization work unit: a tile.
struct RasterUnit {
  std::uint32_t filter_len = 0;     ///< entries scanned by the bitmask filter (GS-TG)
  std::uint32_t raster_entries = 0; ///< splats rasterized in this tile
  std::uint64_t alpha_evals = 0;    ///< measured alpha evaluations (in-footprint pairs
                                    ///< only, after the early exit — the RM datapath work)
  std::uint32_t pixels = 0;
  std::uint32_t sort_unit = 0;      ///< owning group (GS-TG) or own index (others)
};

/// Everything the cycle simulator needs for one frame on one design.
struct FrameWorkload {
  std::string scene;
  std::string design;
  std::size_t input_gaussians = 0;
  std::size_t visible_gaussians = 0;
  std::size_t ident_tests = 0;  ///< PM group/tile identification boundary tests
  std::vector<SortUnit> sorts;
  std::vector<BgmUnit> bgm;     ///< empty unless the design has a BGM
  std::vector<RasterUnit> tiles;
  std::size_t total_pixels = 0;

  // DRAM traffic (bytes).
  std::size_t param_bytes = 0;      ///< full parameter read for preprocessing
  std::size_t feature_bytes = 0;    ///< per-pair projected-feature fetches
  std::size_t list_bytes = 0;       ///< sorted index lists, write + read
  std::size_t framebuffer_bytes = 0;
  /// Bytes a sort unit holds on chip per list entry — the sorting working
  /// set the 42KB banks buffer: fp32 depth + 32-bit index (8B), plus the
  /// 16-bit tile bitmask for GS-TG (10B). Projected features are charged
  /// separately in feature_bytes. Drives the buffer-spill model.
  std::size_t working_set_entry_bytes = 8;

  [[nodiscard]] std::size_t total_bytes() const {
    return param_bytes + feature_bytes + list_bytes + framebuffer_bytes;
  }
};

/// GS-TG design: group-level sorting + bitmask generation + filtered tile
/// rasterization. Feature fetches are shared across a group (the group
/// shared memory in Fig. 10), the key DRAM saving.
FrameWorkload build_gstg_workload(const GaussianCloud& cloud, const Camera& camera,
                                  const GsTgConfig& config);

/// Conventional pipeline on the same hardware (the paper's baseline):
/// per-tile sorting, no bitmask stage, per-tile feature fetches.
FrameWorkload build_tile_sorted_workload(const GaussianCloud& cloud, const Camera& camera,
                                         const RenderConfig& config, const std::string& design);

/// GSCore model: OBB binning, per-tile hierarchical sorting and a
/// rasterizer that skips subtiles whose rect misses the splat OBB (2x2
/// subtiles per tile, GSCore's coarse skip granularity). alpha_evals are
/// reduced to the covered-subtile area, scaled by the tile's early-exit
/// factor.
FrameWorkload build_gscore_workload(const GaussianCloud& cloud, const Camera& camera,
                                    int tile_size, int subtiles_per_side = 2);

}  // namespace gstg
