// Hardware configuration of the GS-TG accelerator (paper section V and
// Table III) and of the two comparison designs (baseline accelerator,
// GSCore). The simulator is transaction/cycle-level: each module has a
// deterministic throughput model, and the chip-level total composes module
// totals under the paper's pipelining scheme (BGM ∥ GSM, PM ∥ cores,
// compute ∥ DRAM).
#pragma once

#include <cstddef>
#include <string>

namespace gstg {

/// Per-module synthesis numbers from Table III (28nm, 1 GHz). Power values
/// cover all four instances of each module.
struct ModuleSpec {
  int instances = 4;
  double area_mm2 = 0.0;
  double power_w = 0.0;
};

struct HwConfig {
  double frequency_hz = 1.0e9;  ///< 1 GHz operating frequency (Table III)
  int cores = 4;                ///< parallel PM + GS-TG core instances

  // --- Module throughputs (per instance, per cycle) ---
  /// PM: feature computation + culling, fully pipelined (II = 1).
  double pm_gaussians_per_cycle = 1.0;
  /// PM: group/tile identification boundary tests per cycle.
  double pm_tests_per_cycle = 1.0;
  /// BGM: four tile-check units per core (16-bit bitmask in ceil(tests/4)).
  int bgm_tile_check_units = 4;
  /// GSM: comparators in the sorting unit (intra-pass parallelism).
  int gsm_comparators = 16;
  /// Quicksort streaming-pass factor: the quick-sorting unit streams the
  /// list through its comparator tree once per partition level, one element
  /// per cycle, giving ~factor * n * ceil(log2 n) cycles. The comparators
  /// provide the 16-way partition fan-out within a pass, not extra
  /// element throughput — the unit is fed from a single buffer port.
  double quicksort_factor = 1.0;
  /// RM: bitmask AND/OR filter width (Gaussians per cycle).
  int rm_filter_width = 8;
  /// RM: parallel rasterization units (alpha evaluations per cycle).
  int rm_rasterizer_units = 16;

  // --- DRAM (section VI-A) ---
  double dram_bytes_per_second = 51.2e9;  ///< 51.2 GB/s
  double dram_pj_per_byte = 20.0;         ///< energy per byte moved (cf. [16])

  /// Bytes per scalar for Gaussian parameters (2 = fp16 per section VI-A).
  std::size_t bytes_per_scalar = 2;

  /// On-chip buffering: each core owns a 2 x 42KB double buffer (Table III,
  /// "4x2x42KB"). A work unit's feature working set streams through one
  /// 42KB bank while the other is refilled; working sets larger than a bank
  /// spill — the overflow is written back and re-read (2x traffic).
  std::size_t buffer_bank_bytes = 42 * 1024;

  // --- Table III synthesis results ---
  ModuleSpec pm{4, 0.648, 0.429};
  ModuleSpec bgm{4, 0.051, 0.055};
  ModuleSpec gsm{4, 0.012, 0.001};
  ModuleSpec rm{4, 1.891, 0.338};
  ModuleSpec buffer{4, 1.382, 0.240};  ///< 4 x 2 x 42KB double buffers

  [[nodiscard]] double total_area_mm2() const {
    return pm.area_mm2 + bgm.area_mm2 + gsm.area_mm2 + rm.area_mm2 + buffer.area_mm2;
  }
  [[nodiscard]] double total_power_w() const {
    return pm.power_w + bgm.power_w + gsm.power_w + rm.power_w + buffer.power_w;
  }
  [[nodiscard]] double dram_bytes_per_cycle() const {
    return dram_bytes_per_second / frequency_hz;
  }
};

/// Sorting-unit model: the GS-TG/baseline accelerator uses a quick-sorting
/// unit; GSCore uses a bitonic merge network.
enum class SorterKind { kQuicksort, kBitonic };

/// Cycle count for sorting an n-element list on one sorting unit:
///  - kQuicksort: streaming passes, factor * n * ceil(log2 n) cycles.
///  - kBitonic (GSCore): hierarchical sorter — 64-element bitonic chunks on
///    the comparator network plus a streaming merge at 1 element/cycle.
double sort_unit_cycles(SorterKind kind, std::size_t n, const HwConfig& hw);

/// Organisation of the design being simulated.
struct PipelineModel {
  std::string label;
  bool has_bgm = false;           ///< GS-TG: bitmask generation overlapped with sorting
  bool subtile_skip = false;      ///< GSCore: rasterizer skips uncovered subtiles
  SorterKind sorter = SorterKind::kQuicksort;
  /// Rasterization lanes per core. GS-TG's RM has 16 RUs; the GSCore model
  /// uses 8 — its cluster spends the matching area budget on the
  /// hierarchical sorting network and subtile-bitmap pipeline, calibrated
  /// so the model reproduces GSCore's placement relative to the paper's
  /// baseline in Fig. 14 (DESIGN.md, section 2).
  int raster_units = 16;
  /// Ablation switch: run bitmask generation *after* sorting instead of in
  /// parallel with it (GPU-order execution, section V-A's SIMT limitation).
  bool sequential_bgm = false;
};

PipelineModel gstg_pipeline_model();
PipelineModel baseline_pipeline_model();
PipelineModel gscore_pipeline_model();

}  // namespace gstg
