// Energy model: module busy-time x Table III power, buffers active for the
// whole frame, DRAM at a configurable pJ/byte (cf. Energon [16]).
#pragma once

#include "sim/hw_config.h"
#include "sim/report.h"

namespace gstg {

/// Computes the per-frame energy breakdown from a report's busy cycles.
/// Modules absent from the design (e.g. BGM on the baseline) contribute
/// nothing.
EnergyBreakdown compute_energy(const SimReport& report, const PipelineModel& model,
                               const HwConfig& hw);

}  // namespace gstg
