// Standalone DRAM bandwidth/energy model. The frame simulator uses the
// aggregate form (bytes / bytes-per-cycle); this module also provides a
// transaction-granularity accumulator used by tests and the failure-
// injection experiments (bandwidth starvation).
#pragma once

#include <cstddef>
#include <stdexcept>

#include "sim/hw_config.h"

namespace gstg {

/// Accumulates DRAM transactions and converts them to cycles/energy under a
/// bandwidth-limited model (51.2 GB/s at 1 GHz by default, section VI-A).
class DramModel {
 public:
  explicit DramModel(const HwConfig& hw)
      : bytes_per_cycle_(hw.dram_bytes_per_cycle()), pj_per_byte_(hw.dram_pj_per_byte) {
    if (bytes_per_cycle_ <= 0.0) {
      throw std::invalid_argument("DramModel: non-positive bandwidth");
    }
  }

  void read(std::size_t bytes) { read_bytes_ += bytes; }
  void write(std::size_t bytes) { write_bytes_ += bytes; }

  [[nodiscard]] std::size_t read_bytes() const { return read_bytes_; }
  [[nodiscard]] std::size_t write_bytes() const { return write_bytes_; }
  [[nodiscard]] std::size_t total_bytes() const { return read_bytes_ + write_bytes_; }

  /// Cycles to move all accumulated traffic at the configured bandwidth.
  [[nodiscard]] double cycles() const {
    return static_cast<double>(total_bytes()) / bytes_per_cycle_;
  }

  /// Energy in joules for the accumulated traffic.
  [[nodiscard]] double energy_j() const {
    return pj_per_byte_ * 1e-12 * static_cast<double>(total_bytes());
  }

 private:
  double bytes_per_cycle_;
  double pj_per_byte_;
  std::size_t read_bytes_ = 0;
  std::size_t write_bytes_ = 0;
};

}  // namespace gstg
