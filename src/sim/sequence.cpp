#include "sim/sequence.h"

#include <stdexcept>

#include "sim/workload.h"

namespace gstg {

SequenceReport simulate_gstg_sequence(const GaussianCloud& cloud,
                                      const std::vector<Camera>& cameras,
                                      const GsTgConfig& config, const HwConfig& hw,
                                      const std::string& scene_name) {
  if (cameras.empty()) {
    throw std::invalid_argument("simulate_gstg_sequence: no cameras");
  }
  SequenceReport report;
  report.frames.reserve(cameras.size());
  const PipelineModel model = gstg_pipeline_model();

  for (std::size_t f = 0; f < cameras.size(); ++f) {
    FrameWorkload w = build_gstg_workload(cloud, cameras[f], config);
    w.scene = scene_name + "#" + std::to_string(f);
    if (f > 0) {
      w.param_bytes = 0;  // parameters resident after the first frame
    }
    report.frames.push_back(simulate_frame(w, model, hw));
    report.total_cycles += report.frames.back().total_cycles;
    report.total_energy_j += report.frames.back().energy.total_j();
  }
  const double mean_cycles = report.total_cycles / static_cast<double>(cameras.size());
  report.sustained_fps = hw.frequency_hz / mean_cycles;
  report.energy_per_frame_j = report.total_energy_j / static_cast<double>(cameras.size());
  return report;
}

}  // namespace gstg
