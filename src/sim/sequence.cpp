#include "sim/sequence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/workload.h"

namespace gstg {

SequenceReport simulate_gstg_sequence(const GaussianCloud& cloud, std::span<const Camera> cameras,
                                      const GsTgConfig& config, const HwConfig& hw,
                                      const std::string& scene_name) {
  if (cameras.empty()) {
    throw std::invalid_argument("simulate_gstg_sequence: no cameras");
  }
  SequenceReport report;
  report.frames.reserve(cameras.size());
  report.frame_sort_pairs.reserve(cameras.size());
  const PipelineModel model = gstg_pipeline_model();

  for (std::size_t f = 0; f < cameras.size(); ++f) {
    FrameWorkload w = build_gstg_workload(cloud, cameras[f], config);
    w.scene = scene_name + "#" + std::to_string(f);
    if (f > 0) {
      w.param_bytes = 0;  // parameters resident after the first frame
    }
    std::size_t sort_pairs = 0;
    for (const SortUnit& unit : w.sorts) sort_pairs += unit.n;
    report.frame_sort_pairs.push_back(sort_pairs);
    report.frames.push_back(simulate_frame(w, model, hw));
    report.total_cycles += report.frames.back().total_cycles;
    report.total_energy_j += report.frames.back().energy.total_j();
  }
  const double mean_cycles = report.total_cycles / static_cast<double>(cameras.size());
  report.sustained_fps = hw.frequency_hz / mean_cycles;
  report.energy_per_frame_j = report.total_energy_j / static_cast<double>(cameras.size());

  // Sorting-workload coherence along the sequence.
  double sum_pairs = 0.0;
  for (const std::size_t pairs : report.frame_sort_pairs) {
    sum_pairs += static_cast<double>(pairs);
  }
  report.mean_sort_pairs = sum_pairs / static_cast<double>(report.frame_sort_pairs.size());
  if (report.frame_sort_pairs.size() >= 2 && report.mean_sort_pairs > 0.0) {
    double sum_delta = 0.0;
    for (std::size_t f = 1; f < report.frame_sort_pairs.size(); ++f) {
      sum_delta += std::fabs(static_cast<double>(report.frame_sort_pairs[f]) -
                             static_cast<double>(report.frame_sort_pairs[f - 1]));
    }
    const double mean_delta = sum_delta / static_cast<double>(report.frame_sort_pairs.size() - 1);
    report.sort_pair_stability = std::max(0.0, 1.0 - mean_delta / report.mean_sort_pairs);
  }
  return report;
}

}  // namespace gstg
