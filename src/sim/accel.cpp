#include "sim/accel.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/energy.h"
#include "sim/modules.h"

namespace gstg {

SimReport simulate_frame(const FrameWorkload& workload, const PipelineModel& model,
                         const HwConfig& hw) {
  if (!model.has_bgm && !workload.bgm.empty()) {
    throw std::invalid_argument("simulate_frame: bitmask work given to a BGM-less design");
  }
  if (model.has_bgm && workload.bgm.size() != workload.sorts.size()) {
    throw std::invalid_argument("simulate_frame: BGM/sort unit count mismatch");
  }
  const std::size_t cores = static_cast<std::size_t>(hw.cores);
  const std::size_t units = workload.sorts.size();

  // Per-unit costs. A unit is a group (GS-TG) or a tile (baseline/GSCore);
  // its RM cost aggregates the tiles it owns, mirroring the shared-memory
  // locality of Fig. 10.
  std::vector<double> unit_stage1(units, 0.0);  // max(BGM, GSM) per unit
  std::vector<double> unit_rm(units, 0.0);
  double bgm_busy_total = 0.0;
  double gsm_busy_total = 0.0;
  double rm_busy_total = 0.0;

  for (std::size_t u = 0; u < units; ++u) {
    const double gsm = gsm_unit_cycles(workload.sorts[u].n, model.sorter, hw);
    double stage1 = gsm;
    if (model.has_bgm) {
      const double bgm = bgm_unit_cycles(workload.bgm[u], hw);
      bgm_busy_total += bgm;
      // BGM and GSM run in parallel on the accelerator (section V-A); the
      // sequential_bgm ablation serialises them as a GPU would.
      stage1 = model.sequential_bgm ? bgm + gsm : std::max(bgm, gsm);
    }
    gsm_busy_total += gsm;
    unit_stage1[u] = stage1;
  }
  for (const RasterUnit& tile : workload.tiles) {
    if (tile.sort_unit >= units) {
      throw std::invalid_argument("simulate_frame: tile references unknown sort unit");
    }
    const double rm = rm_tile_cycles(tile, hw, model.has_bgm, model.raster_units);
    rm_busy_total += rm;
    unit_rm[tile.sort_unit] += rm;
  }

  // Cores pull work units from a shared queue ordered by descending cost
  // (longest-processing-time-first). Group list lengths are known after
  // group identification, so the dispatcher can issue heavy groups first —
  // static round-robin would strand one core with the few heavy central
  // groups of a frame.
  std::vector<std::size_t> order(units);
  for (std::size_t u = 0; u < units; ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ca = unit_stage1[a] + unit_rm[a];
    const double cb = unit_stage1[b] + unit_rm[b];
    if (ca != cb) return ca > cb;
    return a < b;  // deterministic tiebreak
  });
  std::vector<double> core_stage1(cores, 0.0);
  std::vector<double> core_rm(cores, 0.0);
  for (const std::size_t u : order) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < cores; ++c) {
      if (core_stage1[c] + core_rm[c] < core_stage1[best] + core_rm[best]) best = c;
    }
    core_stage1[best] += unit_stage1[u];
    core_rm[best] += unit_rm[u];
  }

  // Each core's sorting stage and rasterization stage are double-buffered:
  // steady state is bounded by the slower stage.
  double chip_core_cycles = 0.0;
  for (std::size_t c = 0; c < cores; ++c) {
    chip_core_cycles = std::max(chip_core_cycles, std::max(core_stage1[c], core_rm[c]));
  }

  const double pm = pm_total_cycles(workload, hw);
  // PM streams Gaussians to the cores; with double-buffered group data the
  // slower of the two sides dominates. A small fixed fill covers the first
  // unit through the pipeline.
  constexpr double kPipelineFill = 512.0;
  const double compute_cycles = std::max(pm, chip_core_cycles) + kPipelineFill;

  // Buffer-capacity model (Table III, 2x42KB per core): a unit's feature
  // working set beyond one bank spills to DRAM and is re-read (2x traffic).
  std::size_t spill_bytes = 0;
  for (const SortUnit& s : workload.sorts) {
    const std::size_t ws = static_cast<std::size_t>(s.n) * workload.working_set_entry_bytes;
    if (ws > hw.buffer_bank_bytes) {
      spill_bytes += 2 * (ws - hw.buffer_bank_bytes);
    }
  }
  const std::size_t dram_bytes = workload.total_bytes() + spill_bytes;
  const double dram_cycles = static_cast<double>(dram_bytes) / hw.dram_bytes_per_cycle();
  const double total = std::max(compute_cycles, dram_cycles);

  SimReport report;
  report.scene = workload.scene;
  report.design = model.label;
  report.pm_cycles = pm;
  report.bgm_cycles = bgm_busy_total / static_cast<double>(cores);
  report.gsm_cycles = gsm_busy_total / static_cast<double>(cores);
  report.rm_cycles = rm_busy_total / static_cast<double>(cores);
  double stage1_total = 0.0;
  for (const double c : core_stage1) stage1_total += c;
  report.sort_stage_cycles = stage1_total / static_cast<double>(cores);
  report.dram_cycles = dram_cycles;
  report.total_cycles = total;
  report.fps = hw.frequency_hz / total;
  report.dram_bytes = dram_bytes;
  report.spill_bytes = spill_bytes;

  if (dram_cycles >= compute_cycles) {
    report.bottleneck = "dram";
  } else if (pm >= chip_core_cycles) {
    report.bottleneck = "preprocess";
  } else {
    double stage1_max = 0.0, rm_max = 0.0;
    for (std::size_t c = 0; c < cores; ++c) {
      stage1_max = std::max(stage1_max, core_stage1[c]);
      rm_max = std::max(rm_max, core_rm[c]);
    }
    report.bottleneck = stage1_max >= rm_max ? "sort" : "raster";
  }

  report.energy = compute_energy(report, model, hw);
  return report;
}

}  // namespace gstg
