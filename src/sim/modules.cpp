#include "sim/modules.h"

#include <cmath>

namespace gstg {

double pm_total_cycles(const FrameWorkload& w, const HwConfig& hw) {
  const double feature_cycles =
      static_cast<double>(w.input_gaussians) / hw.pm_gaussians_per_cycle;
  const double ident_cycles = static_cast<double>(w.ident_tests) / hw.pm_tests_per_cycle;
  return (feature_cycles + ident_cycles) / static_cast<double>(hw.cores);
}

double bgm_unit_cycles(const BgmUnit& unit, const HwConfig& hw) {
  // One issue cycle per entry, plus its boundary tests spread across the
  // tile-check units.
  return static_cast<double>(unit.entries) +
         std::ceil(static_cast<double>(unit.tests) /
                   static_cast<double>(hw.bgm_tile_check_units));
}

double gsm_unit_cycles(std::size_t n, SorterKind sorter, const HwConfig& hw) {
  return sort_unit_cycles(sorter, n, hw);
}

double rm_tile_cycles(const RasterUnit& tile, const HwConfig& hw, bool has_filter,
                      int raster_units) {
  const double lanes = static_cast<double>(raster_units);
  const double raster = std::ceil(static_cast<double>(tile.alpha_evals) / lanes) +
                        // final colour writeback, one pixel per lane per cycle
                        std::ceil(static_cast<double>(tile.pixels) / lanes);
  if (!has_filter) return raster;
  const double filter = std::ceil(static_cast<double>(tile.filter_len) /
                                  static_cast<double>(hw.rm_filter_width));
  return std::max(filter, raster);
}

}  // namespace gstg
