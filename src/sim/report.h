// Simulation result record: per-stage cycles, frame rate, bottleneck and
// the energy breakdown behind Figs. 14 and 15.
#pragma once

#include <string>

namespace gstg {

struct EnergyBreakdown {
  double pm_j = 0.0;
  double bgm_j = 0.0;
  double gsm_j = 0.0;
  double rm_j = 0.0;
  double buffer_j = 0.0;
  double dram_j = 0.0;

  [[nodiscard]] double total_j() const {
    return pm_j + bgm_j + gsm_j + rm_j + buffer_j + dram_j;
  }
};

struct SimReport {
  std::string scene;
  std::string design;

  // Busy cycles per module (averaged per instance, i.e. chip-time).
  double pm_cycles = 0.0;
  double bgm_cycles = 0.0;
  double gsm_cycles = 0.0;
  double rm_cycles = 0.0;
  double dram_cycles = 0.0;
  /// Sorting-stage chip time with BGM/GSM overlap applied (max per unit).
  double sort_stage_cycles = 0.0;

  double total_cycles = 0.0;
  double fps = 0.0;
  std::string bottleneck;

  std::size_t dram_bytes = 0;   ///< includes buffer-spill traffic
  std::size_t spill_bytes = 0;  ///< work-unit overflow beyond the 42KB bank
  EnergyBreakdown energy;

  /// Frames-per-joule, the quantity normalised in Fig. 15.
  [[nodiscard]] double frames_per_joule() const {
    const double j = energy.total_j();
    return j > 0.0 ? 1.0 / j : 0.0;
  }
};

/// One-paragraph textual summary used by examples and benches.
std::string to_string(const SimReport& report);

}  // namespace gstg
