#include "sim/report.h"

#include <sstream>

namespace gstg {

std::string to_string(const SimReport& report) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(0);
  out << report.design << " @ " << report.scene << ": " << report.total_cycles << " cycles ("
      << report.fps << " fps est.), bottleneck=" << report.bottleneck;
  out.precision(3);
  out << "\n  cycles: pm=" << report.pm_cycles << " bgm=" << report.bgm_cycles
      << " gsm=" << report.gsm_cycles << " sort_stage=" << report.sort_stage_cycles
      << " rm=" << report.rm_cycles << " dram=" << report.dram_cycles;
  out << "\n  dram bytes=" << static_cast<double>(report.dram_bytes);
  out.precision(6);
  out << "\n  energy [J]: pm=" << report.energy.pm_j << " bgm=" << report.energy.bgm_j
      << " gsm=" << report.energy.gsm_j << " rm=" << report.energy.rm_j
      << " buffer=" << report.energy.buffer_j << " dram=" << report.energy.dram_j
      << " total=" << report.energy.total_j();
  return out.str();
}

}  // namespace gstg
