#include "sim/hw_config.h"

#include <cmath>

namespace gstg {

double sort_unit_cycles(SorterKind kind, std::size_t n, const HwConfig& hw) {
  if (n <= 1) return 0.0;
  const double nd = static_cast<double>(n);
  const double log_n = std::log2(nd);
  switch (kind) {
    case SorterKind::kQuicksort:
      // One streaming pass per partition level at one element/cycle.
      return hw.quicksort_factor * nd * std::ceil(log_n);
    case SorterKind::kBitonic: {
      // GSCore's hierarchical sorter: 64-element bitonic chunks on the
      // comparator network (64*6*7/4 comparisons, gsm_comparators per
      // cycle) followed by a streaming merge emitting one element/cycle.
      constexpr double kChunk = 64.0;
      const double chunks = std::ceil(nd / kChunk);
      const double chunk_comparisons = kChunk * 6.0 * 7.0 / 4.0;
      const double chunk_cycles =
          std::ceil(chunk_comparisons / static_cast<double>(hw.gsm_comparators));
      return chunks * chunk_cycles + nd;
    }
  }
  return 0.0;
}

PipelineModel gstg_pipeline_model() {
  return {"GS-TG", /*has_bgm=*/true, /*subtile_skip=*/false, SorterKind::kQuicksort,
          /*raster_units=*/16};
}

PipelineModel baseline_pipeline_model() {
  return {"Baseline", /*has_bgm=*/false, /*subtile_skip=*/false, SorterKind::kQuicksort,
          /*raster_units=*/16};
}

PipelineModel gscore_pipeline_model() {
  return {"GSCore", /*has_bgm=*/false, /*subtile_skip=*/true, SorterKind::kBitonic,
          /*raster_units=*/8};
}

}  // namespace gstg
