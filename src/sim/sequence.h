// Multi-frame simulation: drives the cycle simulator along a camera path,
// modelling the cross-frame behaviour a single-frame run cannot capture —
// Gaussian parameters are resident after the first frame (read once), while
// per-frame feature/list/framebuffer traffic recurs. Produces the sustained
// FPS estimate an AR/VR integrator needs.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "camera/camera.h"
#include "core/gstg_config.h"
#include "gaussian/cloud.h"
#include "sim/accel.h"

namespace gstg {

struct SequenceReport {
  std::vector<SimReport> frames;
  double total_cycles = 0.0;
  double sustained_fps = 0.0;      ///< frequency / mean frame cycles
  double total_energy_j = 0.0;
  double energy_per_frame_j = 0.0;

  // Cross-frame workload statistics: how stable the sorting workload is
  // along the sequence — the coherence budget a cross-frame reuse layer
  // (src/temporal/) can spend.
  std::vector<std::size_t> frame_sort_pairs;  ///< Σ sort-list lengths per frame
  double mean_sort_pairs = 0.0;
  /// 1 − mean |Δ sort_pairs between consecutive frames| / mean sort_pairs;
  /// 1.0 for a perfectly stable sequence, 0 with fewer than two frames.
  double sort_pair_stability = 0.0;

  [[nodiscard]] std::size_t frame_count() const { return frames.size(); }
};

/// Simulates `cameras.size()` GS-TG frames over the cloud. Parameters are
/// charged to DRAM only on the first frame (resident thereafter); all other
/// traffic recurs per frame.
SequenceReport simulate_gstg_sequence(const GaussianCloud& cloud, std::span<const Camera> cameras,
                                      const GsTgConfig& config, const HwConfig& hw,
                                      const std::string& scene_name);

}  // namespace gstg
