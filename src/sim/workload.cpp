#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "core/pipeline.h"
#include "render/binning.h"
#include "render/framebuffer.h"
#include "render/preprocess.h"
#include "render/rasterize.h"
#include "render/sort.h"

namespace gstg {

namespace {

/// DRAM layout constants: the workloads model an fp16 datapath (section
/// VI-A). A fetched projected-feature record is depth + 2D_XY + 2D_Cov +
/// opacity + RGB = 10 scalars, plus a 4-byte Gaussian index.
constexpr std::size_t kBytesPerScalar = 2;
constexpr std::size_t kFeatureScalars = 10;
constexpr std::size_t kIndexBytes = 4;
constexpr std::size_t kFeatureEntryBytes = kFeatureScalars * kBytesPerScalar + kIndexBytes;
constexpr std::size_t kFramebufferBytesPerPixel = 3;  // 8-bit RGB out

void fill_common_traffic(FrameWorkload& w, const GaussianCloud& cloud, std::size_t pairs) {
  w.param_bytes = w.input_gaussians * cloud.bytes_per_gaussian(kBytesPerScalar);
  w.feature_bytes = pairs * kFeatureEntryBytes;
  w.list_bytes = pairs * kIndexBytes * 2;  // sorted index list write + read
  w.framebuffer_bytes = w.total_pixels * kFramebufferBytesPerPixel;
}

}  // namespace

FrameWorkload build_gstg_workload(const GaussianCloud& cloud, const Camera& camera,
                                  const GsTgConfig& config) {
  const GsTgFrameData data = build_gstg_frame(cloud, camera, config);
  const GroupedFrame& frame = data.frame;
  const CellGrid& tile_grid = frame.tile_grid;
  const CellGrid& group_grid = frame.group_grid;
  const int r = config.tiles_per_side();

  FrameWorkload w;
  w.design = "GS-TG";
  w.input_gaussians = data.counters.input_gaussians;
  w.visible_gaussians = data.counters.visible_gaussians;
  w.ident_tests = data.counters.boundary_tests;  // group identification tests

  // Per-group sorting and bitmask units.
  const std::size_t groups = static_cast<std::size_t>(group_grid.cell_count());
  w.sorts.resize(groups);
  w.bgm.resize(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint32_t n = frame.group_bins.offsets[g + 1] - frame.group_bins.offsets[g];
    w.sorts[g].n = n;
    w.bgm[g].entries = n;

    // Bitmask test count: candidate AABB window clipped to the group, the
    // exact quantity generate_bitmasks evaluates.
    const int gx = static_cast<int>(g) % group_grid.cells_x;
    const int gy = static_cast<int>(g) / group_grid.cells_x;
    const int tx_lo = gx * r, ty_lo = gy * r;
    const int tx_hi = std::min(tile_grid.cells_x, tx_lo + r);
    const int ty_hi = std::min(tile_grid.cells_y, ty_lo + r);
    std::uint32_t tests = 0;
    for (std::uint32_t e = frame.group_bins.offsets[g]; e < frame.group_bins.offsets[g + 1];
         ++e) {
      const TileRange cand = candidate_cells(data.splats[frame.group_bins.splat_ids[e]], tile_grid);
      const int x0 = std::max(tx_lo, cand.tx0), x1 = std::min(tx_hi, cand.tx1);
      const int y0 = std::max(ty_lo, cand.ty0), y1 = std::min(ty_hi, cand.ty1);
      if (x0 < x1 && y0 < y1) {
        tests += static_cast<std::uint32_t>((x1 - x0) * (y1 - y0));
      }
    }
    w.bgm[g].tests = tests;
  }

  // Per-tile rasterization units with measured alpha evaluations.
  const std::size_t tiles = static_cast<std::size_t>(tile_grid.cell_count());
  w.tiles.resize(tiles);
  Framebuffer scratch(tile_grid.image_width, tile_grid.image_height);
  parallel_for_chunks(0, tiles, [&](std::size_t lo, std::size_t hi, std::size_t) {
    std::vector<std::uint32_t> filtered;
    for (std::size_t t = lo; t < hi; ++t) {
      const int tx = static_cast<int>(t) % tile_grid.cells_x;
      const int ty = static_cast<int>(t) / tile_grid.cells_x;
      const int gx = tx / r, gy = ty / r;
      const std::size_t g = static_cast<std::size_t>(group_grid.cell_index(gx, gy));
      const TileMask location = TileMask{1} << mask_bit_index(tx - gx * r, ty - gy * r, r);

      filtered.clear();
      for (std::uint32_t e = frame.group_bins.offsets[g]; e < frame.group_bins.offsets[g + 1];
           ++e) {
        if (frame.masks[e] & location) filtered.push_back(frame.group_bins.splat_ids[e]);
      }
      const int x0 = tx * tile_grid.cell_size, y0 = ty * tile_grid.cell_size;
      const int x1 = std::min(x0 + tile_grid.cell_size, tile_grid.image_width);
      const int y1 = std::min(y0 + tile_grid.cell_size, tile_grid.image_height);
      const TileRasterStats s = rasterize_tile(data.splats, filtered, x0, y0, x1, y1, scratch);

      RasterUnit& unit = w.tiles[t];
      unit.filter_len = frame.group_bins.offsets[g + 1] - frame.group_bins.offsets[g];
      unit.raster_entries = static_cast<std::uint32_t>(filtered.size());
      unit.alpha_evals = s.alpha_computations;
      unit.pixels = static_cast<std::uint32_t>(s.pixels);
      unit.sort_unit = static_cast<std::uint32_t>(g);
    }
  }, config.threads);

  for (const RasterUnit& t : w.tiles) w.total_pixels += t.pixels;
  // GS-TG fetches features once per (group, splat) pair; the group's tiles
  // share them through the core's shared memory (Fig. 10). Each on-chip
  // entry additionally carries its 16-bit tile bitmask.
  fill_common_traffic(w, cloud, frame.group_bins.splat_ids.size());
  w.working_set_entry_bytes = 10;  // depth + index + 16-bit bitmask
  return w;
}

FrameWorkload build_tile_sorted_workload(const GaussianCloud& cloud, const Camera& camera,
                                         const RenderConfig& config, const std::string& design) {
  FrameWorkload w;
  w.design = design;

  RenderCounters counters;
  const std::vector<ProjectedSplat> splats = preprocess(cloud, camera, config, counters);
  const CellGrid grid = CellGrid::over_image(camera.width(), camera.height(), config.tile_size);
  BinnedSplats bins = bin_splats(splats, grid, config.boundary, config.threads, counters);
  sort_cell_lists(bins, splats, config.threads, counters, config.sort_algo);

  w.input_gaussians = counters.input_gaussians;
  w.visible_gaussians = counters.visible_gaussians;
  w.ident_tests = counters.boundary_tests;

  const std::size_t tiles = static_cast<std::size_t>(grid.cell_count());
  w.sorts.resize(tiles);
  w.tiles.resize(tiles);
  Framebuffer scratch(grid.image_width, grid.image_height);
  parallel_for_chunks(0, tiles, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t t = lo; t < hi; ++t) {
      const int tx = static_cast<int>(t) % grid.cells_x;
      const int ty = static_cast<int>(t) / grid.cells_x;
      const int x0 = tx * grid.cell_size, y0 = ty * grid.cell_size;
      const int x1 = std::min(x0 + grid.cell_size, grid.image_width);
      const int y1 = std::min(y0 + grid.cell_size, grid.image_height);
      const auto list = bins.cell_list(static_cast<int>(t));
      const TileRasterStats s = rasterize_tile(splats, list, x0, y0, x1, y1, scratch);

      w.sorts[t].n = static_cast<std::uint32_t>(list.size());
      RasterUnit& unit = w.tiles[t];
      unit.filter_len = 0;
      unit.raster_entries = static_cast<std::uint32_t>(list.size());
      unit.alpha_evals = s.alpha_computations;
      unit.pixels = static_cast<std::uint32_t>(s.pixels);
      unit.sort_unit = static_cast<std::uint32_t>(t);
    }
  }, config.threads);

  for (const RasterUnit& t : w.tiles) w.total_pixels += t.pixels;
  fill_common_traffic(w, cloud, bins.splat_ids.size());
  return w;
}

}  // namespace gstg
