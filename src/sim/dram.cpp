#include "sim/dram.h"

// DramModel is header-only; this translation unit anchors the library
// target and keeps a single definition point if out-of-line members are
// added later.
namespace gstg {}
