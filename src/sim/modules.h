// Per-module cycle models (paper section V-B):
//   PM  — feature compute + culling (II=1) and boundary-test throughput
//   BGM — four tile-check units building 16-bit bitmasks
//   GSM — quick-sorting unit with 16 comparators (bitonic for GSCore)
//   RM  — 8-wide bitmask AND filter + 16 rasterization units
// All return cycle counts for one work unit on one module instance.
#pragma once

#include "sim/hw_config.h"
#include "sim/workload.h"

namespace gstg {

/// PM total cycles across the chip (work divided over the four instances):
/// one cycle per input Gaussian (pipelined feature compute + culling) plus
/// one per identification boundary test.
double pm_total_cycles(const FrameWorkload& w, const HwConfig& hw);

/// BGM cycles for one group: each entry issues, then its tile tests run
/// over the parallel tile-check units.
double bgm_unit_cycles(const BgmUnit& unit, const HwConfig& hw);

/// Sorting cycles for one list of length n on the given sorter.
double gsm_unit_cycles(std::size_t n, SorterKind sorter, const HwConfig& hw);

/// RM cycles for one tile. The bitmask filter (8 entries/cycle) feeds the
/// tile FIFO in parallel with rasterization (Fig. 10), so the tile costs
/// the maximum of the filter stream and the alpha-evaluation + writeback
/// work of the rasterization lanes. `raster_units` is per-design (16 for
/// GS-TG/baseline, 8 for the GSCore model — see PipelineModel).
double rm_tile_cycles(const RasterUnit& tile, const HwConfig& hw, bool has_filter,
                      int raster_units);

}  // namespace gstg
