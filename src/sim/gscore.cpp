// GSCore workload model (Lee et al., ASPLOS 2024), built from the paper's
// description: OBB-based tile intersection ("shape-aware intersection
// test"), per-tile hierarchical sorting (bitonic chunks + merge), and
// subtile skipping in the rasterizer. Subtile skipping uses the same OBB
// test GSCore's hardware applies (not the exact ellipse) at coarse subtile
// granularity, so the skip rate matches GSCore's mechanism rather than an
// idealised one; the reduction is additionally scaled by the tile's
// measured early-exit factor so all designs share the same early-
// termination behaviour.
#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "render/binning.h"
#include "render/framebuffer.h"
#include "render/preprocess.h"
#include "render/rasterize.h"
#include "render/sort.h"
#include "sim/workload.h"

namespace gstg {

namespace {

constexpr std::size_t kBytesPerScalar = 2;
constexpr std::size_t kFeatureEntryBytes = 10 * kBytesPerScalar + 4;
constexpr std::size_t kFramebufferBytesPerPixel = 3;

/// Pixels of the tile covered through subtile granularity: sum of the
/// clipped areas of subtiles whose rect intersects the splat's OBB (the
/// shape-aware test GSCore's hardware reuses for its subtile bitmap).
std::size_t covered_subtile_pixels(const ProjectedSplat& splat, int x0, int y0, int x1, int y1,
                                   int subtile) {
  const Obb obb = Obb::from_ellipse(splat.footprint());
  std::size_t covered = 0;
  for (int sy = y0; sy < y1; sy += subtile) {
    const int sy1 = std::min(sy + subtile, y1);
    for (int sx = x0; sx < x1; sx += subtile) {
      const int sx1 = std::min(sx + subtile, x1);
      const Rect rect{static_cast<float>(sx), static_cast<float>(sy), static_cast<float>(sx1),
                      static_cast<float>(sy1)};
      if (obb_intersects(obb, rect)) {
        covered += static_cast<std::size_t>(sx1 - sx) * static_cast<std::size_t>(sy1 - sy);
      }
    }
  }
  return covered;
}

}  // namespace

FrameWorkload build_gscore_workload(const GaussianCloud& cloud, const Camera& camera,
                                    int tile_size, int subtiles_per_side) {
  if (subtiles_per_side <= 0 || tile_size % subtiles_per_side != 0) {
    throw std::invalid_argument("build_gscore_workload: invalid subtile division");
  }
  const int subtile = tile_size / subtiles_per_side;

  RenderConfig config;
  config.tile_size = tile_size;
  config.boundary = Boundary::kObb;  // GSCore's shape-aware intersection test

  FrameWorkload w;
  w.design = "GSCore";

  RenderCounters counters;
  const std::vector<ProjectedSplat> splats = preprocess(cloud, camera, config, counters);
  const CellGrid grid = CellGrid::over_image(camera.width(), camera.height(), tile_size);
  BinnedSplats bins = bin_splats(splats, grid, config.boundary, config.threads, counters);
  sort_cell_lists(bins, splats, config.threads, counters, config.sort_algo);

  w.input_gaussians = counters.input_gaussians;
  w.visible_gaussians = counters.visible_gaussians;
  w.ident_tests = counters.boundary_tests;

  const std::size_t tiles = static_cast<std::size_t>(grid.cell_count());
  w.sorts.resize(tiles);
  w.tiles.resize(tiles);
  Framebuffer scratch(grid.image_width, grid.image_height);

  parallel_for_chunks(0, tiles, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t t = lo; t < hi; ++t) {
      const int tx = static_cast<int>(t) % grid.cells_x;
      const int ty = static_cast<int>(t) / grid.cells_x;
      const int x0 = tx * grid.cell_size, y0 = ty * grid.cell_size;
      const int x1 = std::min(x0 + grid.cell_size, grid.image_width);
      const int y1 = std::min(y0 + grid.cell_size, grid.image_height);
      const auto list = bins.cell_list(static_cast<int>(t));

      // Full-tile rasterization measurement for the early-exit factor.
      const TileRasterStats s = rasterize_tile(splats, list, x0, y0, x1, y1, scratch);
      const double early_factor =
          s.pixel_list_work > 0
              ? static_cast<double>(s.alpha_computations) / static_cast<double>(s.pixel_list_work)
              : 1.0;

      // Subtile-skipped workload: alpha evaluations restricted to covered
      // subtiles, then scaled by the same early-exit behaviour.
      std::size_t covered_px = 0;
      for (const std::uint32_t id : list) {
        covered_px += covered_subtile_pixels(splats[id], x0, y0, x1, y1, subtile);
      }
      const auto alpha_evals = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(covered_px) * early_factor));

      w.sorts[t].n = static_cast<std::uint32_t>(list.size());
      RasterUnit& unit = w.tiles[t];
      unit.filter_len = 0;
      unit.raster_entries = static_cast<std::uint32_t>(list.size());
      unit.alpha_evals = std::min<std::uint64_t>(alpha_evals, s.alpha_computations);
      unit.pixels = static_cast<std::uint32_t>(s.pixels);
      unit.sort_unit = static_cast<std::uint32_t>(t);
    }
  }, config.threads);

  for (const RasterUnit& t : w.tiles) w.total_pixels += t.pixels;
  w.param_bytes = w.input_gaussians * cloud.bytes_per_gaussian(kBytesPerScalar);
  w.feature_bytes = bins.splat_ids.size() * kFeatureEntryBytes;
  w.list_bytes = bins.splat_ids.size() * 4 * 2;
  w.framebuffer_bytes = w.total_pixels * kFramebufferBytesPerPixel;
  return w;
}

}  // namespace gstg
