// Chip-level composition: distributes work units over the four cores,
// overlaps BGM with GSM inside each GS-TG core, overlaps PM with the cores,
// and bounds everything by DRAM bandwidth. Produces a SimReport with
// cycles, FPS and energy.
#pragma once

#include "sim/hw_config.h"
#include "sim/report.h"
#include "sim/workload.h"

namespace gstg {

/// Simulates one frame of `workload` on the design described by `model`.
/// Deterministic; throws std::invalid_argument on inconsistent inputs
/// (e.g. a BGM-less model given bitmask work).
SimReport simulate_frame(const FrameWorkload& workload, const PipelineModel& model,
                         const HwConfig& hw);

}  // namespace gstg
