#include "sim/energy.h"

namespace gstg {

EnergyBreakdown compute_energy(const SimReport& report, const PipelineModel& model,
                               const HwConfig& hw) {
  const double cycle_s = 1.0 / hw.frequency_hz;
  EnergyBreakdown e;
  e.pm_j = hw.pm.power_w * report.pm_cycles * cycle_s;
  if (model.has_bgm) {
    e.bgm_j = hw.bgm.power_w * report.bgm_cycles * cycle_s;
  }
  e.gsm_j = hw.gsm.power_w * report.gsm_cycles * cycle_s;
  e.rm_j = hw.rm.power_w * report.rm_cycles * cycle_s;
  // The double buffers serve every stage; they are powered for the frame.
  e.buffer_j = hw.buffer.power_w * report.total_cycles * cycle_s;
  e.dram_j = hw.dram_pj_per_byte * 1e-12 * static_cast<double>(report.dram_bytes);
  return e;
}

}  // namespace gstg
