#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "telemetry/error.h"

namespace gstg::telemetry {

namespace {

/// One thread's event buffer. The owning thread is the only producer; the
/// drain (TraceSession::write, after recording stopped or from stats())
/// reads slots below the acquire-loaded count, so a half-written in-flight
/// slot is never observed. A full ring drops (never blocks, never grows).
struct ThreadRing {
  std::vector<TraceEvent> events;       ///< preallocated to capacity at creation
  std::atomic<std::size_t> count{0};    ///< published events (owner store-release)
  std::atomic<std::uint64_t> dropped{0};
  std::size_t tid = 0;                  ///< dense per-process thread id for the export
  std::string name;                     ///< thread_name metadata (registry mutex guards writes)

  void push(const TraceEvent& e) {
    const std::size_t n = count.load(std::memory_order_relaxed);
    if (n >= events.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = e;
    count.store(n + 1, std::memory_order_release);
  }
};

/// Registry of every ring ever created. Rings are never freed (a detached
/// thread may outlive the session that allocated its ring), so the
/// thread_local pointer below stays valid for the life of the process; the
/// registry itself is leaked to dodge static-destruction-order issues with
/// threads that exit after main.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::size_t ring_capacity = TraceOptions{}.ring_capacity;
  std::string pending_thread_name;  // unused; placeholder keeps layout obvious
};

Registry& registry() {
  // gstg-lint: allow(R1): one-time process-global collector, leaked on purpose so rings outlive static destruction order
  static Registry* r = new Registry;
  return *r;
}

/// The calling thread's ring, created on first use. Creation allocates (the
/// one-time per-thread cost); every later event is allocation-free.
ThreadRing& local_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    // gstg-lint: allow(R1): a thread's ring is allocated once, on its first span of a session — the documented one-time cost in trace.h
    auto owned = std::make_unique<ThreadRing>();
    owned->tid = reg.rings.size();
    owned->events.resize(reg.ring_capacity);
    ring = owned.get();
    reg.rings.push_back(std::move(owned));
  }
  return *ring;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t process_t0() {
  static const std::uint64_t t0 = steady_ns();
  return t0;
}

/// JSON string escaping for names (names are literals, but thread names are
/// caller strings).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

std::uint64_t now_ns() {
  // Pin the timebase before sampling: on the very first call the evaluation
  // order `steady_ns() - process_t0()` could capture `now` before t0 exists,
  // wrapping the subtraction.
  const std::uint64_t t0 = process_t0();
  return steady_ns() - t0;
}

void emit_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns < begin_ns ? begin_ns : end_ns;
  e.kind = EventKind::kSpan;
  local_ring().push(e);
}

void emit_async_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns < begin_ns ? begin_ns : end_ns;
  e.kind = EventKind::kAsyncSpan;
  local_ring().push(e);
}

void emit_counter(const char* name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.begin_ns = now_ns();
  e.value = value;
  e.kind = EventKind::kCounter;
  local_ring().push(e);
}

void emit_instant(const char* name) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.begin_ns = now_ns();
  e.kind = EventKind::kInstant;
  local_ring().push(e);
}

void set_thread_name(const std::string& name) {
  ThreadRing& ring = local_ring();
  const std::lock_guard<std::mutex> lock(registry().mutex);
  ring.name = name;
}

TraceSession& TraceSession::global() {
  static TraceSession* session = new TraceSession;
  return *session;
}

void TraceSession::start(const TraceOptions& options) {
  Registry& reg = registry();
  // Close the recording window before clearing so producers mid-push belong
  // to either the old session (cleared below) or the new one, never both.
  detail::g_enabled.store(false, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.ring_capacity = options.ring_capacity == 0 ? TraceOptions{}.ring_capacity
                                                   : options.ring_capacity;
    for (auto& ring : reg.rings) {
      ring->count.store(0, std::memory_order_relaxed);
      ring->dropped.store(0, std::memory_order_relaxed);
      if (ring->events.size() != reg.ring_capacity) ring->events.resize(reg.ring_capacity);
    }
  }
  options_ = options;
  process_t0();  // pin the timebase before the first event
  detail::g_enabled.store(true, std::memory_order_release);
}

void TraceSession::stop() { detail::g_enabled.store(false, std::memory_order_release); }

TraceStats TraceSession::stats() const {
  TraceStats s;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  s.threads = reg.rings.size();
  for (const auto& ring : reg.rings) {
    s.recorded += ring->count.load(std::memory_order_acquire);
    s.dropped += static_cast<std::size_t>(ring->dropped.load(std::memory_order_relaxed));
  }
  return s;
}

std::size_t TraceSession::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw TelemetryError("cannot open trace output '" + path + "'");
  }

  // Snapshot every ring under the registry lock. Copying is deliberate: the
  // export must not hold the lock while formatting, and a still-running
  // producer only ever appends past the acquired count.
  struct RingSnapshot {
    std::size_t tid;
    std::string name;
    std::vector<TraceEvent> events;
    std::uint64_t dropped;
  };
  std::vector<RingSnapshot> rings;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    rings.reserve(reg.rings.size());
    for (const auto& ring : reg.rings) {
      RingSnapshot snap;
      snap.tid = ring->tid;
      snap.name = ring->name;
      const std::size_t n = ring->count.load(std::memory_order_acquire);
      snap.events.assign(ring->events.begin(),
                         ring->events.begin() + static_cast<std::ptrdiff_t>(n));
      snap.dropped = ring->dropped.load(std::memory_order_relaxed);
      rings.push_back(std::move(snap));
    }
  }

  constexpr int kPid = 1;
  bool first = true;
  const auto emit = [&](const char* fmt, auto... args) {
    if (!first) std::fputs(",\n", file);
    first = false;
    std::fprintf(file, fmt, args...);
  };
  const auto ts_us = [](std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; };

  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", file);
  emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
       "\"args\": {\"name\": \"%s\"}}",
       kPid, escape(options_.process_name).c_str());

  std::size_t written = 0;
  std::uint64_t dropped_total = 0;
  std::uint64_t async_id = 0;  // unique per async pair; Chrome matches b/e on (cat, id, name)
  for (const RingSnapshot& ring : rings) {
    dropped_total += ring.dropped;
    const std::string tname =
        ring.name.empty() ? (ring.tid == 0 ? "main" : "thread-" + std::to_string(ring.tid))
                          : ring.name;
    emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %zu, "
         "\"args\": {\"name\": \"%s\"}}",
         kPid, ring.tid, escape(tname).c_str());

    // Spans are recorded at scope exit (end order); B/E emission needs begin
    // order with an explicit close stack. RAII guarantees spans on one
    // thread properly nest, so sorting by (begin, end desc) and popping
    // every open span that ends before the next begin yields matched,
    // monotonic, correctly nested B/E pairs. Counters/instants interleave
    // by their own timestamps independently (no pairing constraints).
    std::vector<const TraceEvent*> spans;
    spans.reserve(ring.events.size());
    for (const TraceEvent& e : ring.events) {
      if (e.kind == EventKind::kSpan) spans.push_back(&e);
    }
    std::stable_sort(spans.begin(), spans.end(), [](const TraceEvent* a, const TraceEvent* b) {
      if (a->begin_ns != b->begin_ns) return a->begin_ns < b->begin_ns;
      return a->end_ns > b->end_ns;
    });
    std::vector<const TraceEvent*> open;
    const auto close_until = [&](std::uint64_t t) {
      while (!open.empty() && open.back()->end_ns <= t) {
        const TraceEvent* e = open.back();
        open.pop_back();
        emit("{\"name\": \"%s\", \"ph\": \"E\", \"ts\": %.3f, \"pid\": %d, \"tid\": %zu}",
             e->name, ts_us(e->end_ns), kPid, ring.tid);
        ++written;
      }
    };
    for (const TraceEvent* e : spans) {
      close_until(e->begin_ns);
      emit("{\"name\": \"%s\", \"ph\": \"B\", \"ts\": %.3f, \"pid\": %d, \"tid\": %zu}",
           e->name, ts_us(e->begin_ns), kPid, ring.tid);
      ++written;
      open.push_back(e);
    }
    close_until(UINT64_MAX);

    for (const TraceEvent& e : ring.events) {
      if (e.kind == EventKind::kAsyncSpan) {
        // Async intervals overlap freely; the unique id keeps each pair
        // matched without any nesting constraint.
        emit("{\"name\": \"%s\", \"cat\": \"gstg\", \"ph\": \"b\", \"id\": %llu, "
             "\"ts\": %.3f, \"pid\": %d, \"tid\": %zu}",
             e.name, static_cast<unsigned long long>(async_id), ts_us(e.begin_ns), kPid,
             ring.tid);
        emit("{\"name\": \"%s\", \"cat\": \"gstg\", \"ph\": \"e\", \"id\": %llu, "
             "\"ts\": %.3f, \"pid\": %d, \"tid\": %zu}",
             e.name, static_cast<unsigned long long>(async_id), ts_us(e.end_ns), kPid,
             ring.tid);
        ++async_id;
        written += 2;
      } else if (e.kind == EventKind::kCounter) {
        emit("{\"name\": \"%s\", \"ph\": \"C\", \"ts\": %.3f, \"pid\": %d, \"tid\": %zu, "
             "\"args\": {\"value\": %.6g}}",
             e.name, ts_us(e.begin_ns), kPid, ring.tid, e.value);
        ++written;
      } else if (e.kind == EventKind::kInstant) {
        emit("{\"name\": \"%s\", \"ph\": \"i\", \"ts\": %.3f, \"pid\": %d, \"tid\": %zu, "
             "\"s\": \"t\"}",
             e.name, ts_us(e.begin_ns), kPid, ring.tid);
        ++written;
      }
    }
  }
  std::fprintf(file,
               "\n], \"otherData\": {\"dropped_events\": %llu, \"threads\": %zu}}\n",
               static_cast<unsigned long long>(dropped_total), rings.size());
  std::fclose(file);
  return written;
}

std::size_t TraceSession::stop_and_write() {
  stop();
  if (options_.path.empty()) return 0;
  return write(options_.path);
}

namespace {
void write_env_trace_at_exit() {
  TraceSession& session = TraceSession::global();
  try {
    session.stop_and_write();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry: %s\n", e.what());
  }
}
}  // namespace

bool ensure_started_from_env() {
  static const bool started = [] {
    const char* path = std::getenv("GSTG_TRACE");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
    if (path == nullptr || *path == '\0') return false;
    TraceOptions options;
    options.path = path;
    TraceSession::global().start(options);
    std::atexit(write_env_trace_at_exit);
    return true;
  }();
  return started;
}

void ensure_collecting() {
  if (ensure_started_from_env()) return;  // GSTG_TRACE wins: it also names the output
  if (!TraceSession::global().active()) TraceSession::global().start();
}

}  // namespace gstg::telemetry
