// Typed error for the telemetry layer's client-causable failures
// (trace/metrics output files that cannot be opened or written). Follows
// the project error convention (PlyError, DatasetError, BinningError, ...):
// derive from std::runtime_error with a layer prefix so existing catch
// sites keep working while callers can catch the layer's failures
// specifically. Lint rule R3 (tools/lint/gstg_lint.py) rejects raw
// std::runtime_error throws in src/.
#pragma once

#include <stdexcept>
#include <string>

namespace gstg::telemetry {

class TelemetryError : public std::runtime_error {
 public:
  explicit TelemetryError(const std::string& message)
      : std::runtime_error("telemetry: " + message) {}
};

}  // namespace gstg::telemetry
