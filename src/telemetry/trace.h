// Low-overhead scoped tracing: per-thread preallocated ring buffers of
// completed spans, drained by a TraceSession into Chrome trace-event JSON
// (loads directly in Perfetto / chrome://tracing).
//
// Hot-path contract (the reason this layer may be threaded through every
// pipeline stage):
//   * disabled  — GSTG_SPAN costs one relaxed atomic load and a predictable
//     branch; nothing else happens, nothing allocates;
//   * enabled   — the owning thread appends a fixed-size record into its own
//     ring with plain stores plus one release store of the count. No locks,
//     no allocation in the steady state (a thread's ring is allocated once,
//     on its first span of a session);
//   * overflow  — a full ring drops the span and counts the drop. Recording
//     never blocks and never grows a buffer mid-frame.
//
// Telemetry is observational by design: spans never touch RenderCounters or
// images, so every determinism/bit-identity invariant holds with tracing on
// (tests/telemetry/test_trace_determinism.cpp asserts this).
//
// Layering: telemetry depends only on common. core/render/temporal/service
// all link it; the collector is process-global so one session sees every
// layer's spans regardless of which subsystem started it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/annotations.h"

namespace gstg::telemetry {

/// What one ring slot records. Spans carry [begin, end) and must nest with
/// the calling thread's other spans (RAII scopes do by construction); async
/// spans carry intervals that may overlap arbitrarily (a queue wait whose
/// begin was stamped on another thread) and export as Chrome 'b'/'e' async
/// pairs instead of the stack-disciplined 'B'/'E'. Counter samples carry a
/// value at one instant (Chrome 'C', e.g. the service queue depth over
/// time); instants mark a point (frame boundaries).
enum class EventKind : std::uint8_t { kSpan, kAsyncSpan, kCounter, kInstant };

/// One completed event. `name` must be a string with static storage
/// duration (the ring stores the pointer, not the characters) — the
/// GSTG_SPAN macro and the emit helpers all take string literals.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;  ///< kSpan: start; kCounter/kInstant: sample time
  std::uint64_t end_ns = 0;    ///< kSpan only
  double value = 0.0;          ///< kCounter only
  EventKind kind = EventKind::kSpan;
};

/// Nanoseconds on the process-wide steady timebase every event uses.
/// Monotonic; zero is captured once per process, so timestamps taken before
/// a span is emitted (e.g. a request's enqueue time) stay comparable.
[[nodiscard]] std::uint64_t now_ns();

/// True while a TraceSession is collecting. The one relaxed load GSTG_SPAN
/// pays when tracing is off.
[[nodiscard]] inline bool enabled();

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Appends a completed span to the calling thread's ring (no-op when
/// disabled). `name` must have static storage duration. The interval MUST
/// nest with the thread's other spans (GSTG_SPAN scopes guarantee this);
/// for intervals that do not, use emit_async_span.
GSTG_HOT_NOALLOC
void emit_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

/// Appends a completed interval that need not nest with the calling
/// thread's scoped spans — e.g. a request's queue wait, whose begin was
/// stamped at enqueue time on the client thread while this worker was mid
/// render. Exported as a Chrome async 'b'/'e' pair with a unique id, which
/// Perfetto draws on its own track.
GSTG_HOT_NOALLOC
void emit_async_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

/// Appends a counter sample (Chrome 'C' event) at now_ns().
GSTG_HOT_NOALLOC
void emit_counter(const char* name, double value);

/// Appends an instant marker (Chrome 'i' event) at now_ns().
GSTG_HOT_NOALLOC
void emit_instant(const char* name);

/// Names the calling thread in the exported trace (thread_name metadata).
/// Safe to call whether or not tracing is enabled; the name sticks to the
/// thread's ring for the rest of the process. Call it from worker threads
/// whose spans would otherwise show up as "thread-N".
void set_thread_name(const std::string& name);

/// RAII span: records [construction, destruction) under `name`. The macro
/// below is the normal spelling.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (enabled()) {
      name_ = name;
      begin_ns_ = now_ns();
    }
  }
  ~SpanScope() {
    if (name_ != nullptr) emit_span(name_, begin_ns_, now_ns());
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry
  std::uint64_t begin_ns_ = 0;
};

/// Collector configuration. `ring_capacity` is events per thread,
/// preallocated when a thread records its first event of the session.
struct TraceOptions {
  std::string path;                    ///< JSON output ("" = caller writes explicitly)
  std::size_t ring_capacity = 65536;   ///< slots per thread ring
  std::string process_name = "gstg";   ///< process_name metadata in the export
};

/// Aggregate collector state, snapshotable while recording.
struct TraceStats {
  std::size_t threads = 0;   ///< rings registered this session
  std::size_t recorded = 0;  ///< events currently held across rings
  std::size_t dropped = 0;   ///< events dropped on ring overflow
};

/// The process-global trace collector. start() clears every ring and opens
/// the recording window; stop() closes it; write() (or stop_and_write())
/// drains the rings into trace-event JSON. One session at a time; starting
/// while active restarts (previous unwritten events are discarded).
class TraceSession {
 public:
  /// The singleton every instrumented layer records into.
  static TraceSession& global();

  /// Begins collecting under `options`. Thread rings from a previous
  /// session are reused (cleared); capacity changes apply to rings
  /// allocated after the call.
  void start(const TraceOptions& options = {});

  /// Stops collecting (recorded events stay available for write()).
  void stop();

  /// Writes the recorded events as Chrome trace-event JSON. Returns the
  /// number of events written; throws TelemetryError (telemetry/error.h)
  /// when the file cannot be opened. Spans become matched B/E pairs (properly nested per
  /// thread), counters 'C' events, instants 'i' events, plus
  /// process_name/thread_name metadata.
  std::size_t write(const std::string& path) const;

  /// stop() + write(options.path given at start()). No-op (returns 0) when
  /// the session was started without a path.
  std::size_t stop_and_write();

  [[nodiscard]] bool active() const { return enabled(); }
  [[nodiscard]] const TraceOptions& options() const { return options_; }
  [[nodiscard]] TraceStats stats() const;

 private:
  TraceSession() = default;
  TraceOptions options_;
};

/// GSTG_TRACE=<path>: starts the global session on first call and registers
/// an atexit hook that writes <path> at process exit — any binary becomes
/// traceable without code changes. Called from the Renderer /
/// TemporalRenderer / RenderService constructors; idempotent and cheap
/// (one static). Returns true when GSTG_TRACE is set.
bool ensure_started_from_env();

/// Programmatic form of the same switch: ensures the global session is
/// collecting (no output path implied). Used by GsTgConfig::trace /
/// ServiceConfig::trace. Does not restart an already-active session.
void ensure_collecting();

}  // namespace gstg::telemetry

// Scoped span macro: GSTG_SPAN("sort_groups") traces the enclosing scope.
// Expands to a uniquely named local so multiple spans can share a scope.
#define GSTG_SPAN_CONCAT2(a, b) a##b
#define GSTG_SPAN_CONCAT(a, b) GSTG_SPAN_CONCAT2(a, b)
#define GSTG_SPAN(name) \
  ::gstg::telemetry::SpanScope GSTG_SPAN_CONCAT(gstg_span_, __LINE__)(name)
