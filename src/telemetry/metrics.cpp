#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "telemetry/error.h"
#include "telemetry/trace.h"

namespace gstg::telemetry {

namespace {

/// Bounded drop-oldest gauge series: a classic ring, unlike the trace rings
/// which drop-newest (a trace wants the warm-up, a dashboard wants the tail).
struct GaugeSeries {
  std::vector<GaugeSample> samples;  ///< ring storage, grows to capacity once
  std::size_t head = 0;              ///< next write position once full
  bool full = false;

  void push(const GaugeSample& s) {
    if (samples.size() < MetricsRegistry::kGaugeCapacity && !full) {
      samples.push_back(s);
      if (samples.size() == MetricsRegistry::kGaugeCapacity) full = true;
      return;
    }
    samples[head] = s;
    head = (head + 1) % samples.size();
  }

  [[nodiscard]] std::vector<GaugeSample> ordered() const {
    if (!full) return samples;
    std::vector<GaugeSample> out;
    out.reserve(samples.size());
    out.insert(out.end(), samples.begin() + static_cast<std::ptrdiff_t>(head), samples.end());
    out.insert(out.end(), samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(head));
    return out;
  }
};

/// std::map keeps snapshot_json() output deterministically name-ordered.
struct State {
  mutable std::mutex mutex;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, LatencyHistogram> histograms;
  std::map<std::string, GaugeSeries> gauges;
};

State& state() {
  static State* s = new State;  // leaked: atexit hooks may run after statics die
  return *s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

void MetricsRegistry::add_counter(const std::string& name, std::uint64_t delta) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.counters[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

void MetricsRegistry::record_latency(const std::string& name, double ms) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.histograms.try_emplace(name).first->second.add(ms);
}

LatencyHistogram MetricsRegistry::latency(const std::string& name) const {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.histograms.find(name);
  return it == s.histograms.end() ? LatencyHistogram{} : it->second;
}

void MetricsRegistry::sample_gauge(const std::string& name, double value) {
  GaugeSample sample{now_ns(), value};
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.gauges[name].push(sample);
}

std::vector<GaugeSample> MetricsRegistry::gauge(const std::string& name) const {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.gauges.find(name);
  return it == s.gauges.end() ? std::vector<GaugeSample>{} : it->second.ordered();
}

std::string MetricsRegistry::snapshot_json() const {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::ostringstream out;
  out.precision(6);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : s.counters) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"latency_ms\": {";
  first = true;
  for (const auto& [name, hist] : s.histograms) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {"
        << "\"count\": " << hist.total() << ", \"mean\": " << hist.mean()
        << ", \"min\": " << hist.min() << ", \"max\": " << hist.max()
        << ", \"p50\": " << hist.quantile(0.50) << ", \"p95\": " << hist.quantile(0.95)
        << ", \"p99\": " << hist.quantile(0.99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
      if (hist.bucket(i) == 0) continue;
      out << (first_bucket ? "" : ", ") << "[" << hist.bucket_upper_edge(i) << ", "
          << hist.bucket(i) << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, series] : s.gauges) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": [";
    bool first_sample = true;
    for (const GaugeSample& sample : series.ordered()) {
      out << (first_sample ? "" : ", ") << "[" << sample.t_ns << ", " << sample.value << "]";
      first_sample = false;
    }
    out << "]";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw TelemetryError("cannot open metrics output '" + path + "'");
  }
  const std::string json = snapshot_json();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
}

void MetricsRegistry::reset() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.counters.clear();
  s.histograms.clear();
  s.gauges.clear();
}

namespace {
std::string& metrics_env_path() {
  static std::string* path = new std::string;
  return *path;
}

void write_metrics_at_exit() {
  try {
    MetricsRegistry::global().write_json(metrics_env_path());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry: %s\n", e.what());
  }
}
}  // namespace

bool ensure_metrics_from_env() {
  static const bool registered = [] {
    const char* path = std::getenv("GSTG_METRICS");  // NOLINT(concurrency-mt-unsafe): read once before worker threads exist
    if (path == nullptr || *path == '\0') return false;
    metrics_env_path() = path;
    std::atexit(write_metrics_at_exit);
    return true;
  }();
  return registered;
}

}  // namespace gstg::telemetry
