// Process-global metrics registry: named monotonic counters, log-bucketed
// latency histograms (gstg::LatencyHistogram), and bounded gauge time series
// (queue depth over time), snapshotable as JSON.
//
// This is the aggregate companion to trace.h: spans answer "where did this
// frame's time go", the registry answers "what did the last N thousand
// requests look like". Unlike the rings it is mutex-guarded — its callers
// are the service layer and bench drivers (per-request granularity), never
// the per-splat render hot path.
//
// GSTG_METRICS=<path> writes the JSON snapshot at process exit, mirroring
// GSTG_TRACE; render_server and the bench drivers can also snapshot
// explicitly mid-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace gstg::telemetry {

/// One (timestamp, value) gauge sample; timestamps are now_ns() so gauge
/// series line up with trace spans.
struct GaugeSample {
  std::uint64_t t_ns = 0;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Adds `delta` to the named monotonic counter (created at zero on first
  /// use).
  void add_counter(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  /// Records one latency observation (ms) into the named log-bucketed
  /// histogram (created on first use).
  void record_latency(const std::string& name, double ms);
  /// Copy of the named histogram; empty default-constructed histogram when
  /// the name was never recorded.
  [[nodiscard]] LatencyHistogram latency(const std::string& name) const;

  /// Appends a gauge sample at now_ns(). Each series keeps the most recent
  /// `kGaugeCapacity` samples (drop-oldest) so long-running services stay
  /// bounded.
  void sample_gauge(const std::string& name, double value);
  [[nodiscard]] std::vector<GaugeSample> gauge(const std::string& name) const;

  /// Serializes every counter, histogram (count/mean/min/max/p50/p95/p99 and
  /// non-empty buckets), and gauge series as one JSON object.
  [[nodiscard]] std::string snapshot_json() const;

  /// snapshot_json() to a file; throws TelemetryError (telemetry/error.h)
  /// when the file cannot be opened.
  void write_json(const std::string& path) const;

  /// Drops all registered metrics (tests; not for concurrent use with
  /// writers).
  void reset();

  static constexpr std::size_t kGaugeCapacity = 4096;

 private:
  MetricsRegistry() = default;
};

/// GSTG_METRICS=<path>: registers an atexit hook writing the registry
/// snapshot to <path>. Idempotent; returns true when the variable is set.
bool ensure_metrics_from_env();

}  // namespace gstg::telemetry
