// Synthetic stand-ins for the paper's six evaluation scenes (Table II).
//
// We do not have the pretrained 3D-GS checkpoints (Tanks&Temples, Deep
// Blending, Mill-19, UrbanScene3D), so each scene is procedurally generated
// to match the published *statistics* that drive the pipeline experiments:
// resolution & aspect (Table II), indoor/outdoor layout, Gaussian-count
// class, anisotropic surface-aligned splats, and heavy-tailed scale
// distributions. See DESIGN.md section 2 for the substitution argument.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "camera/camera.h"
#include "common/runconfig.h"
#include "gaussian/cloud.h"

namespace gstg {

/// Thrown for internally inconsistent scene descriptions (e.g. a SceneInfo
/// whose kind is outside the SceneKind enumeration). Derives from
/// std::runtime_error per the project error convention (PlyError,
/// DatasetError, ...); message is prefixed "scene: ". Unknown scene *names*
/// remain std::invalid_argument — that contract is load-bearing for the
/// service layer's error mapping.
class SceneError : public std::runtime_error {
 public:
  explicit SceneError(const std::string& message)
      : std::runtime_error("scene: " + message) {}
};

/// Scene layout archetype used by the generator.
enum class SceneKind {
  kOutdoorStreet,  ///< central object + ground + background shell (train, truck)
  kIndoorRoom,     ///< room box + furniture (drjohnson, playroom)
  kAerial,         ///< terrain + building grid, high oblique camera (rubble, residence)
};

/// Static description of one evaluation scene (paper Table II).
struct SceneInfo {
  std::string name;
  std::string dataset;
  int paper_width = 0;
  int paper_height = 0;
  SceneKind kind = SceneKind::kOutdoorStreet;
  /// Gaussian count of the published 30k-iteration checkpoint (approximate;
  /// drives the synthetic recipe's paper-scale budget).
  std::size_t paper_gaussians = 0;
};

/// A generated scene: the Gaussian cloud plus the evaluation camera at the
/// (possibly scaled) render resolution.
struct Scene {
  SceneInfo info;
  GaussianCloud cloud;
  Camera camera;
  Vec3 focus;  ///< point the evaluation camera looks at (orbit centre)
  int render_width = 0;
  int render_height = 0;
};

/// The four algorithm-evaluation scenes (train, truck, drjohnson, playroom).
const std::vector<SceneInfo>& algorithm_scenes();
/// All six scenes including rubble and residence (hardware evaluation).
const std::vector<SceneInfo>& all_scenes();

/// Looks up a scene by name; throws std::invalid_argument for unknown names.
const SceneInfo& scene_info(const std::string& name);

/// Deterministically synthesises the named scene at the given scale. The
/// same (name, scale) always produces the identical cloud and camera.
Scene generate_scene(const std::string& name, const RunScale& scale = run_scale_from_env());
Scene generate_scene(const SceneInfo& info, const RunScale& scale = run_scale_from_env());

/// A camera orbit around the scene's evaluation viewpoint; frame_count poses
/// for the fly-through example and multi-view tests.
std::vector<Camera> orbit_cameras(const Scene& scene, int frame_count);

}  // namespace gstg
