#include "scene/scene.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace gstg {

namespace {

constexpr float kPi = 3.14159265358979323846f;

const std::vector<SceneInfo>& scene_table() {
  // Resolutions from paper Table II; Gaussian counts are the published
  // 30k-iteration checkpoint sizes (approximate for Mill-19/UrbanScene3D,
  // where only model classes are public).
  static const std::vector<SceneInfo> scenes = {
      {"train", "Tanks&Temples", 1959, 1090, SceneKind::kOutdoorStreet, 1'030'000},
      {"truck", "Tanks&Temples", 1957, 1091, SceneKind::kOutdoorStreet, 2'540'000},
      {"drjohnson", "Deep Blending", 1332, 876, SceneKind::kIndoorRoom, 3'270'000},
      {"playroom", "Deep Blending", 1264, 832, SceneKind::kIndoorRoom, 2'340'000},
      {"rubble", "Mill-19", 4608, 3456, SceneKind::kAerial, 4'000'000},
      {"residence", "UrbanScene3D", 5472, 3648, SceneKind::kAerial, 5'600'000},
  };
  return scenes;
}

/// Anisotropy recipe for surface splats.
struct SplatShape {
  float tangent_factor = 0.9f;  ///< mean tangent scale relative to splat spacing
  float tangent_sigma = 0.45f;  ///< log-normal spread of tangent scales
  float normal_ratio = 0.15f;   ///< normal-direction scale relative to tangent
};

/// Emits `count` surface-aligned splats over a rectangular patch centred at
/// `center`, spanned by (unit-ish) tangents t1/t2 with the given half
/// extents. Splat spacing — and therefore splat world size — adapts to the
/// count, which keeps *screen-space* statistics invariant under the
/// RunScale divisors (see DESIGN.md section 5).
void emit_patch(GaussianCloud& cloud, Rng& rng, Vec3 center, Vec3 t1, Vec3 t2, float half1,
                float half2, std::size_t count, Vec3 base_color, const SplatShape& shape) {
  if (count == 0) return;
  t1 = normalized(t1);
  t2 = normalized(t2 - t1 * dot(t1, t2));  // orthogonalise
  const Vec3 n = cross(t1, t2);
  const float area = 4.0f * half1 * half2;
  const float spacing = std::sqrt(area / static_cast<float>(count));

  const std::size_t n_coeff = sh_coeff_count(cloud.sh_degree());
  std::vector<float> sh(3 * n_coeff, 0.0f);
  constexpr float kY0 = 0.28209479177387814f;

  for (std::size_t i = 0; i < count; ++i) {
    const float u = rng.uniform(-half1, half1);
    const float v = rng.uniform(-half2, half2);
    const float bump = rng.normal(0.0f, 0.15f * spacing);
    const Vec3 pos = center + t1 * u + t2 * v + n * bump;

    // Tangent frame rotated by a random in-plane angle, slightly tilted.
    const float angle = rng.uniform(0.0f, 2.0f * kPi);
    const float ca = std::cos(angle), sa = std::sin(angle);
    Vec3 a1 = t1 * ca + t2 * sa;
    Vec3 a2 = t1 * (-sa) + t2 * ca;
    const float tilt = rng.normal(0.0f, 0.12f);
    a1 = normalized(a1 + n * tilt);
    a2 = normalized(a2 - a1 * dot(a1, a2));
    const Vec3 a3 = cross(a1, a2);

    const float s1 = spacing * shape.tangent_factor * rng.log_normal(0.0f, shape.tangent_sigma);
    const float s2 = spacing * shape.tangent_factor * rng.log_normal(0.0f, shape.tangent_sigma);
    const float s3 = std::max(1e-5f, std::max(s1, s2) * shape.normal_ratio);

    // Opacity: mixture of mostly-opaque surface splats and a translucent
    // tail, approximating trained-checkpoint opacity histograms.
    const float opacity = rng.chance(0.75f) ? rng.uniform(0.55f, 0.99f) : rng.uniform(0.05f, 0.55f);

    const Vec3 rgb{std::clamp(base_color.x + rng.normal(0.0f, 0.08f), 0.02f, 0.98f),
                   std::clamp(base_color.y + rng.normal(0.0f, 0.08f), 0.02f, 0.98f),
                   std::clamp(base_color.z + rng.normal(0.0f, 0.08f), 0.02f, 0.98f)};
    std::fill(sh.begin(), sh.end(), 0.0f);
    sh[0 * n_coeff] = (rgb.x - 0.5f) / kY0;
    sh[1 * n_coeff] = (rgb.y - 0.5f) / kY0;
    sh[2 * n_coeff] = (rgb.z - 0.5f) / kY0;
    // Mild view dependence in the higher-order terms.
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t k = 1; k < n_coeff; ++k) {
        sh[c * n_coeff + k] = rng.normal(0.0f, 0.02f);
      }
    }
    cloud.add(pos, {std::max(1e-5f, s1), std::max(1e-5f, s2), s3}, from_basis(a1, a2, a3),
              opacity, sh);
  }
}

/// Emits splats over the surface of an axis-aligned box (six patches with
/// per-face counts proportional to area).
void emit_box(GaussianCloud& cloud, Rng& rng, Vec3 center, Vec3 half, std::size_t count,
              Vec3 color, const SplatShape& shape) {
  const float ax = half.y * half.z, ay = half.x * half.z, az = half.x * half.y;
  const float total = 2.0f * (ax + ay + az);
  if (total <= 0.0f || count == 0) return;
  const auto face_count = [&](float area) {
    return static_cast<std::size_t>(
        std::lround(static_cast<double>(count) * static_cast<double>(area) /
                    static_cast<double>(total)));
  };
  const Vec3 ux{1, 0, 0}, uy{0, 1, 0}, uz{0, 0, 1};
  // +x / -x
  emit_patch(cloud, rng, center + ux * half.x, uy, uz, half.y, half.z, face_count(ax), color, shape);
  emit_patch(cloud, rng, center - ux * half.x, uz, uy, half.z, half.y, face_count(ax), color, shape);
  // +y / -y
  emit_patch(cloud, rng, center + uy * half.y, uz, ux, half.z, half.x, face_count(ay), color, shape);
  emit_patch(cloud, rng, center - uy * half.y, ux, uz, half.x, half.z, face_count(ay), color, shape);
  // +z / -z
  emit_patch(cloud, rng, center + uz * half.z, ux, uy, half.x, half.y, face_count(az), color, shape);
  emit_patch(cloud, rng, center - uz * half.z, uy, ux, half.y, half.x, face_count(az), color, shape);
}

/// Large sparse background splats on a distant shell; these produce the
/// big-footprint population responsible for high tile-per-Gaussian counts.
void emit_background_shell(GaussianCloud& cloud, Rng& rng, Vec3 center, float radius,
                           std::size_t count) {
  const std::size_t n_coeff = sh_coeff_count(cloud.sh_degree());
  std::vector<float> sh(3 * n_coeff, 0.0f);
  constexpr float kY0 = 0.28209479177387814f;
  for (std::size_t i = 0; i < count; ++i) {
    // Uniform direction on the upper hemisphere-ish shell.
    const float z = rng.uniform(-0.25f, 1.0f);
    const float phi = rng.uniform(0.0f, 2.0f * kPi);
    const float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    const Vec3 dir{r * std::cos(phi), z, r * std::sin(phi)};
    const Vec3 pos = center + dir * radius * rng.uniform(0.9f, 1.4f);

    const float s = radius * 0.02f * rng.log_normal(0.0f, 0.6f);
    const Vec3 sky{0.55f, 0.65f, 0.8f};
    const Vec3 rgb{std::clamp(sky.x + rng.normal(0.0f, 0.1f), 0.0f, 1.0f),
                   std::clamp(sky.y + rng.normal(0.0f, 0.1f), 0.0f, 1.0f),
                   std::clamp(sky.z + rng.normal(0.0f, 0.1f), 0.0f, 1.0f)};
    std::fill(sh.begin(), sh.end(), 0.0f);
    sh[0 * n_coeff] = (rgb.x - 0.5f) / kY0;
    sh[1 * n_coeff] = (rgb.y - 0.5f) / kY0;
    sh[2 * n_coeff] = (rgb.z - 0.5f) / kY0;
    cloud.add(pos, {s, s, s * 0.35f}, from_axis_angle({rng.normal(), rng.normal(), rng.normal()},
                                                      rng.uniform(0.0f, kPi)),
              rng.uniform(0.2f, 0.8f), sh);
  }
}

void build_outdoor_street(GaussianCloud& cloud, Rng& rng, std::size_t budget) {
  const SplatShape fine{0.9f, 0.4f, 0.12f};
  const SplatShape ground_shape{1.1f, 0.5f, 0.08f};
  const std::size_t object_count = budget * 45 / 100;
  const std::size_t ground_count = budget * 25 / 100;
  const std::size_t background_count = budget - object_count - ground_count;

  // Central subject: a truck/locomotive-scale cluster of boxes.
  const int n_parts = 6;
  for (int p = 0; p < n_parts; ++p) {
    Rng part = rng.fork(100 + p);
    const Vec3 c{part.uniform(-3.0f, 3.0f), part.uniform(0.4f, 2.2f), part.uniform(-1.5f, 1.5f)};
    const Vec3 half{part.uniform(0.6f, 2.2f), part.uniform(0.4f, 1.2f), part.uniform(0.5f, 1.2f)};
    const Vec3 color{part.uniform(0.15f, 0.85f), part.uniform(0.15f, 0.85f),
                     part.uniform(0.15f, 0.85f)};
    emit_box(cloud, rng, c, half, object_count / n_parts, color, fine);
  }
  // Ground plane around the subject.
  emit_patch(cloud, rng, {0.0f, 0.0f, 0.0f}, {1, 0, 0}, {0, 0, 1}, 18.0f, 18.0f, ground_count,
             {0.35f, 0.3f, 0.25f}, ground_shape);
  // Distant environment.
  emit_background_shell(cloud, rng, {0.0f, 2.0f, 0.0f}, 30.0f, background_count);
}

void build_indoor_room(GaussianCloud& cloud, Rng& rng, std::size_t budget) {
  const SplatShape wall_shape{1.0f, 0.4f, 0.08f};
  const SplatShape furniture_shape{0.85f, 0.45f, 0.15f};
  const std::size_t wall_count = budget * 55 / 100;
  const std::size_t furniture_count = budget * 40 / 100;
  const std::size_t clutter_count = budget - wall_count - furniture_count;

  const float w = 8.0f, h = 3.0f, d = 6.0f;  // room half-width 4, height 3, half-depth 3
  const Vec3 room_center{0.0f, h * 0.5f, 0.0f};
  // Six room surfaces (floor, ceiling, 4 walls) with area-weighted counts.
  const float floor_area = w * d, wall_xz = w * h, wall_yz = d * h;
  const float total = 2.0f * floor_area + 2.0f * wall_xz + 2.0f * wall_yz;
  const auto part = [&](float area) {
    return static_cast<std::size_t>(static_cast<double>(wall_count) * static_cast<double>(area) /
                                    static_cast<double>(total));
  };
  emit_patch(cloud, rng, {0, 0, 0}, {1, 0, 0}, {0, 0, 1}, w / 2, d / 2, part(floor_area),
             {0.45f, 0.35f, 0.25f}, wall_shape);  // floor
  emit_patch(cloud, rng, {0, h, 0}, {1, 0, 0}, {0, 0, 1}, w / 2, d / 2, part(floor_area),
             {0.85f, 0.85f, 0.8f}, wall_shape);  // ceiling
  emit_patch(cloud, rng, {0, h / 2, -d / 2}, {1, 0, 0}, {0, 1, 0}, w / 2, h / 2, part(wall_xz),
             {0.7f, 0.65f, 0.55f}, wall_shape);
  emit_patch(cloud, rng, {0, h / 2, d / 2}, {1, 0, 0}, {0, 1, 0}, w / 2, h / 2, part(wall_xz),
             {0.7f, 0.65f, 0.55f}, wall_shape);
  emit_patch(cloud, rng, {-w / 2, h / 2, 0}, {0, 0, 1}, {0, 1, 0}, d / 2, h / 2, part(wall_yz),
             {0.65f, 0.6f, 0.55f}, wall_shape);
  emit_patch(cloud, rng, {w / 2, h / 2, 0}, {0, 0, 1}, {0, 1, 0}, d / 2, h / 2, part(wall_yz),
             {0.65f, 0.6f, 0.55f}, wall_shape);

  // Furniture boxes scattered on the floor.
  const int n_furniture = 8;
  for (int i = 0; i < n_furniture; ++i) {
    Rng f = rng.fork(200 + i);
    const Vec3 half{f.uniform(0.25f, 0.9f), f.uniform(0.25f, 0.8f), f.uniform(0.25f, 0.9f)};
    const Vec3 c{f.uniform(-w / 2 + 1.0f, w / 2 - 1.0f), half.y,
                 f.uniform(-d / 2 + 1.0f, d / 2 - 1.0f)};
    const Vec3 color{f.uniform(0.1f, 0.9f), f.uniform(0.1f, 0.9f), f.uniform(0.1f, 0.9f)};
    emit_box(cloud, rng, c, half, furniture_count / n_furniture, color, furniture_shape);
  }
  // Small clutter blobs (toys, books): isotropic-ish splats.
  emit_patch(cloud, rng, {0.0f, 0.8f, 0.0f}, {1, 0, 0}, {0, 0, 1}, w / 3, d / 3, clutter_count,
             {0.5f, 0.4f, 0.45f}, furniture_shape);
  (void)room_center;
}

void build_aerial(GaussianCloud& cloud, Rng& rng, std::size_t budget) {
  const SplatShape terrain_shape{1.1f, 0.55f, 0.1f};
  const SplatShape building_shape{0.9f, 0.4f, 0.12f};
  const std::size_t terrain_count = budget * 50 / 100;
  const std::size_t building_count = budget * 45 / 100;
  const std::size_t scatter_count = budget - terrain_count - building_count;

  const float extent = 120.0f;  // half extent of the site
  // Terrain: four quadrant patches with slightly different tints.
  for (int q = 0; q < 4; ++q) {
    const float sx = (q & 1) ? 1.0f : -1.0f;
    const float sz = (q & 2) ? 1.0f : -1.0f;
    emit_patch(cloud, rng, {sx * extent / 2, 0.0f, sz * extent / 2}, {1, 0, 0}, {0, 0, 1},
               extent / 2, extent / 2, terrain_count / 4,
               {0.35f + 0.05f * static_cast<float>(q & 1), 0.33f, 0.28f}, terrain_shape);
  }
  // Building grid.
  const int grid = 5;
  std::size_t per_building = building_count / (grid * grid);
  for (int gx = 0; gx < grid; ++gx) {
    for (int gz = 0; gz < grid; ++gz) {
      Rng b = rng.fork(300 + gx * grid + gz);
      const float cx = (static_cast<float>(gx) - (grid - 1) / 2.0f) * (2.0f * extent / grid) +
                       b.uniform(-6.0f, 6.0f);
      const float cz = (static_cast<float>(gz) - (grid - 1) / 2.0f) * (2.0f * extent / grid) +
                       b.uniform(-6.0f, 6.0f);
      const Vec3 half{b.uniform(5.0f, 14.0f), b.uniform(6.0f, 28.0f), b.uniform(5.0f, 14.0f)};
      const Vec3 color{b.uniform(0.3f, 0.8f), b.uniform(0.3f, 0.7f), b.uniform(0.3f, 0.7f)};
      emit_box(cloud, rng, {cx, half.y, cz}, half, per_building, color, building_shape);
    }
  }
  // Scattered vegetation / debris.
  emit_patch(cloud, rng, {0.0f, 1.0f, 0.0f}, {1, 0, 0}, {0, 0, 1}, extent, extent, scatter_count,
             {0.25f, 0.4f, 0.2f}, building_shape);
}

Camera make_camera(const SceneInfo& info, int width, int height, Vec3& focus_out) {
  switch (info.kind) {
    case SceneKind::kOutdoorStreet: {
      const Vec3 eye{9.0f, 3.5f, 10.0f};
      const Vec3 target{0.0f, 1.2f, 0.0f};
      focus_out = target;
      return Camera::from_fov(width, height, 1.2f, look_at(eye, target));
    }
    case SceneKind::kIndoorRoom: {
      const Vec3 eye{-3.0f, 1.6f, -2.2f};
      const Vec3 target{1.0f, 1.1f, 1.5f};
      focus_out = target;
      return Camera::from_fov(width, height, 1.25f, look_at(eye, target));
    }
    case SceneKind::kAerial: {
      const Vec3 eye{140.0f, 110.0f, 140.0f};
      const Vec3 target{0.0f, 5.0f, 0.0f};
      focus_out = target;
      return Camera::from_fov(width, height, 1.1f, look_at(eye, target));
    }
  }
  throw SceneError("make_camera: unknown scene kind");
}

}  // namespace

const std::vector<SceneInfo>& all_scenes() { return scene_table(); }

const std::vector<SceneInfo>& algorithm_scenes() {
  static const std::vector<SceneInfo> four(scene_table().begin(), scene_table().begin() + 4);
  return four;
}

const SceneInfo& scene_info(const std::string& name) {
  for (const SceneInfo& info : scene_table()) {
    if (info.name == name) return info;
  }
  throw std::invalid_argument("unknown scene: " + name);
}

Scene generate_scene(const SceneInfo& info, const RunScale& scale) {
  if (scale.resolution_divisor < 1 || scale.gaussian_divisor < 1) {
    throw std::invalid_argument("generate_scene: divisors must be >= 1");
  }
  const int render_width = std::max(64, info.paper_width / scale.resolution_divisor);
  const int render_height = std::max(64, info.paper_height / scale.resolution_divisor);

  const std::size_t budget = std::max<std::size_t>(
      2'000, info.paper_gaussians / static_cast<std::size_t>(scale.gaussian_divisor));

  // SH degree 3 everywhere, matching 3D-GS-30k checkpoints.
  GaussianCloud cloud(kMaxShDegree);
  cloud.reserve(budget + budget / 8);

  Rng rng(fnv1a64(info.name));
  switch (info.kind) {
    case SceneKind::kOutdoorStreet:
      build_outdoor_street(cloud, rng, budget);
      break;
    case SceneKind::kIndoorRoom:
      build_indoor_room(cloud, rng, budget);
      break;
    case SceneKind::kAerial:
      build_aerial(cloud, rng, budget);
      break;
  }
  Vec3 focus;
  Camera camera = make_camera(info, render_width, render_height, focus);
  return Scene{info, std::move(cloud), camera, focus, render_width, render_height};
}

Scene generate_scene(const std::string& name, const RunScale& scale) {
  return generate_scene(scene_info(name), scale);
}

std::vector<Camera> orbit_cameras(const Scene& scene, int frame_count) {
  if (frame_count <= 0) {
    throw std::invalid_argument("orbit_cameras: frame_count must be positive");
  }
  std::vector<Camera> cameras;
  cameras.reserve(frame_count);
  const Vec3 eye0 = scene.camera.position();
  const Vec3 offset = eye0 - scene.focus;
  const float radius = std::sqrt(offset.x * offset.x + offset.z * offset.z);
  const float base_angle = std::atan2(offset.z, offset.x);
  for (int i = 0; i < frame_count; ++i) {
    const float angle =
        base_angle + 2.0f * kPi * static_cast<float>(i) / static_cast<float>(frame_count);
    const Vec3 eye{scene.focus.x + radius * std::cos(angle), eye0.y,
                   scene.focus.z + radius * std::sin(angle)};
    cameras.emplace_back(Camera::from_fov(scene.render_width, scene.render_height, 1.2f,
                                          look_at(eye, scene.focus)));
  }
  return cameras;
}

}  // namespace gstg
