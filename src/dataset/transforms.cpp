#include "dataset/transforms.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "geometry/mat.h"

namespace gstg {

namespace {

constexpr float kPi = 3.14159265358979323846f;

// ---------------------------------------------------------------------------
// Minimal JSON parser: just what transforms.json needs (objects, arrays,
// numbers, strings, bools, null), with typed errors carrying the byte
// offset. Input is untrusted, so nesting depth is bounded and every number
// must parse completely.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the JSON document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    throw DatasetError("transforms.json: " + message + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', found '" + text_[pos_] + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than " + std::to_string(kMaxDepth));
    JsonValue value;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      for (;;) {
        if (peek() != '"') fail("object key must be a string");
        std::string key = parse_string_body();
        expect(':');
        JsonValue member = parse_value(depth + 1);
        for (const auto& [existing, unused] : value.object) {
          (void)unused;
          if (existing == key) fail("duplicate object key '" + key + "'");
        }
        value.object.emplace_back(std::move(key), std::move(member));
        const char next = peek();
        if (next == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        value.array.push_back(parse_value(depth + 1));
        const char next = peek();
        if (next == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.str = parse_string_body();
      return value;
    }
    if (consume_literal("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (consume_literal("null")) return value;
    if (c == '-' || (c >= '0' && c <= '9')) {
      value.kind = JsonValue::Kind::kNumber;
      const char* begin = text_.c_str() + pos_;
      char* end = nullptr;
      value.number = std::strtod(begin, &end);
      if (end == begin) fail("garbled number");
      pos_ += static_cast<std::size_t>(end - begin);
      return value;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  /// Parses a string starting at the opening quote. Escapes are decoded;
  /// \uXXXX escapes outside ASCII are replaced with '?' (names and paths in
  /// transforms files are ASCII in practice, and nothing downstream decodes
  /// text beyond identity).
  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape at end of input");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("garbled \\u escape");
          }
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    fail("unterminated string");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Semantic extraction.

double require_number(const JsonValue& object, const std::string& key, const std::string& what) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) throw DatasetError(what + ": missing key '" + key + "'");
  if (value->kind != JsonValue::Kind::kNumber) {
    throw DatasetError(what + ": key '" + key + "' is not a number");
  }
  if (!std::isfinite(value->number)) {
    throw DatasetError(what + ": key '" + key + "' is not finite");
  }
  return value->number;
}

double number_or(const JsonValue& object, const std::string& key, double fallback,
                 const std::string& what) {
  if (object.find(key) == nullptr) return fallback;
  return require_number(object, key, what);
}

/// Extracts and validates one frame's camera-to-world matrix (OpenGL axes).
Mat4 parse_transform_matrix(const JsonValue& frame, const std::string& what) {
  const JsonValue* matrix = frame.find("transform_matrix");
  if (matrix == nullptr || matrix->kind != JsonValue::Kind::kArray) {
    throw DatasetError(what + ": missing transform_matrix array");
  }
  if (matrix->array.size() != 4) {
    throw DatasetError(what + ": transform_matrix has " + std::to_string(matrix->array.size()) +
                       " rows (want 4)");
  }
  Mat4 c2w;
  for (int i = 0; i < 4; ++i) {
    const JsonValue& row = matrix->array[static_cast<std::size_t>(i)];
    if (row.kind != JsonValue::Kind::kArray || row.array.size() != 4) {
      throw DatasetError(what + ": transform_matrix row " + std::to_string(i) + " is not 4 wide");
    }
    for (int j = 0; j < 4; ++j) {
      const JsonValue& cell = row.array[static_cast<std::size_t>(j)];
      if (cell.kind != JsonValue::Kind::kNumber || !std::isfinite(cell.number)) {
        throw DatasetError(what + ": transform_matrix[" + std::to_string(i) + "][" +
                           std::to_string(j) + "] is not a finite number");
      }
      c2w(i, j) = static_cast<float>(cell.number);
    }
  }
  for (int j = 0; j < 4; ++j) {
    const float want = j == 3 ? 1.0f : 0.0f;
    if (std::fabs(c2w(3, j) - want) > 1e-4f) {
      throw DatasetError(what + ": transform_matrix last row is not (0, 0, 0, 1)");
    }
  }
  return c2w;
}

void require_orthonormal(const Mat3& r, const std::string& what) {
  // R^T R must be the identity within tolerance — rigid_inverse silently
  // produces a wrong pose for a sheared/scaled block.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      float dot = 0.0f;
      for (int k = 0; k < 3; ++k) dot += r.m[k][i] * r.m[k][j];
      const float want = i == j ? 1.0f : 0.0f;
      if (std::fabs(dot - want) > 1e-3f) {
        throw DatasetError(what + ": transform_matrix rotation block is not orthonormal");
      }
    }
  }
}

/// Deterministic random initialisation inside the NeRF-synthetic bounds.
GaussianCloud init_cloud(const TransformsOptions& options) {
  GaussianCloud cloud(0);
  cloud.reserve(options.init_gaussians);
  Rng rng("transforms-init");
  const float half = options.init_half_extent;
  const float spacing =
      2.0f * half / std::cbrt(static_cast<float>(std::max<std::size_t>(options.init_gaussians, 1)));
  const float scale = std::max(0.5f * spacing, 1e-4f);
  for (std::size_t i = 0; i < options.init_gaussians; ++i) {
    const Vec3 pos{rng.uniform(-half, half), rng.uniform(-half, half), rng.uniform(-half, half)};
    const Vec3 rgb{rng.uniform(0.2f, 0.8f), rng.uniform(0.2f, 0.8f), rng.uniform(0.2f, 0.8f)};
    cloud.add_solid(pos, {scale, scale, scale}, {1.0f, 0.0f, 0.0f, 0.0f}, 0.1f, rgb);
  }
  return cloud;
}

}  // namespace

LoadedScene read_transforms_scene(std::istream& in, const TransformsOptions& options) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw DatasetError("transforms.json: read failure");
  const std::string text = buffer.str();
  if (text.empty()) throw DatasetError("transforms.json: empty file");

  const JsonValue root = JsonParser(text).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw DatasetError("transforms.json: root is not an object");
  }

  const std::string what = "transforms.json";
  const double width_d = number_or(root, "w", 800.0, what);
  const double height_d = number_or(root, "h", 800.0, what);
  if (width_d < 1.0 || height_d < 1.0 || width_d > double{1u << 20} ||
      height_d > double{1u << 20}) {
    throw DatasetError("transforms.json: image size out of range");
  }
  const int width = static_cast<int>(width_d);
  const int height = static_cast<int>(height_d);

  float fx = 0.0f;
  float fy = 0.0f;
  if (root.find("fl_x") != nullptr) {
    fx = static_cast<float>(require_number(root, "fl_x", what));
    fy = static_cast<float>(number_or(root, "fl_y", fx, what));
  } else {
    const double angle_x = require_number(root, "camera_angle_x", what);
    if (!(angle_x > 0.0) || !(angle_x < static_cast<double>(kPi))) {
      throw DatasetError("transforms.json: camera_angle_x " + std::to_string(angle_x) +
                         " outside (0, pi)");
    }
    fx = 0.5f * static_cast<float>(width) / std::tan(0.5f * static_cast<float>(angle_x));
    fy = fx;
  }
  if (!(fx > 0.0f) || !(fy > 0.0f)) {
    throw DatasetError("transforms.json: non-positive focal length");
  }
  const float cx = static_cast<float>(number_or(root, "cx", 0.5 * width_d, what));
  const float cy = static_cast<float>(number_or(root, "cy", 0.5 * height_d, what));

  const JsonValue* frames = root.find("frames");
  if (frames == nullptr || frames->kind != JsonValue::Kind::kArray) {
    throw DatasetError("transforms.json: missing frames array");
  }
  if (frames->array.empty()) {
    throw DatasetError("transforms.json: frames array is empty");
  }

  LoadedScene scene;
  scene.source = "transforms";
  scene.cameras.reserve(frames->array.size());
  scene.camera_names.reserve(frames->array.size());
  for (std::size_t i = 0; i < frames->array.size(); ++i) {
    const JsonValue& frame = frames->array[i];
    const std::string frame_what = "transforms.json frame " + std::to_string(i);
    if (frame.kind != JsonValue::Kind::kObject) {
      throw DatasetError(frame_what + ": not an object");
    }
    Mat4 c2w = parse_transform_matrix(frame, frame_what);
    // OpenGL camera axes (+y up, -z forward) -> OpenCV (+y down, +z
    // forward): negate the y and z basis columns of the rotation block.
    for (int r = 0; r < 3; ++r) {
      c2w(r, 1) = -c2w(r, 1);
      c2w(r, 2) = -c2w(r, 2);
    }
    require_orthonormal(c2w.rotation_block(), frame_what);
    scene.cameras.emplace_back(width, height, fx, fy, cx, cy, rigid_inverse(c2w));

    const JsonValue* file_path = frame.find("file_path");
    if (file_path != nullptr && file_path->kind != JsonValue::Kind::kString) {
      throw DatasetError(frame_what + ": file_path is not a string");
    }
    scene.camera_names.push_back(file_path != nullptr ? file_path->str
                                                      : "frame_" + std::to_string(i));
  }

  scene.cloud = init_cloud(options);
  return scene;
}

LoadedScene read_transforms_scene_file(const std::string& path, const TransformsOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DatasetError("cannot open " + path);
  return read_transforms_scene(in, options);
}

}  // namespace gstg
