#include "dataset/colmap.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

namespace gstg {

namespace {

constexpr std::size_t kMaxSize = std::numeric_limits<std::size_t>::max();
/// Reservation sanity cap, as in the PLY reader: a malicious count with a
/// tiny payload must die on the truncation check, not on a huge up-front
/// allocation.
constexpr std::size_t kReserveCap = std::size_t{1} << 20;

/// COLMAP intrinsic models we can map onto the pinhole Camera. Models with
/// distortion coefficients are accepted only when every coefficient is
/// zero — we do not undistort.
struct CameraModel {
  const char* name;
  int model_id;
  std::size_t param_count;
  std::size_t distortion_begin;  ///< first distortion coefficient index (== param_count if none)
};

constexpr CameraModel kModels[] = {
    {"SIMPLE_PINHOLE", 0, 3, 3},
    {"PINHOLE", 1, 4, 4},
    {"SIMPLE_RADIAL", 2, 4, 3},
    {"RADIAL", 3, 5, 3},
    {"OPENCV", 4, 8, 4},
};

const CameraModel& model_by_id(int model_id) {
  for (const CameraModel& m : kModels) {
    if (m.model_id == model_id) return m;
  }
  throw DatasetError("cameras: unsupported camera model id " + std::to_string(model_id));
}

const CameraModel& model_by_name(const std::string& name) {
  for (const CameraModel& m : kModels) {
    if (name == m.name) return m;
  }
  throw DatasetError("cameras: unsupported camera model '" + name + "'");
}

struct ColmapCamera {
  int width = 0;
  int height = 0;
  float fx = 0, fy = 0, cx = 0, cy = 0;
};

struct ColmapImage {
  std::uint32_t image_id = 0;
  Quat qvec;  // world->camera rotation, w x y z
  Vec3 tvec;  // world->camera translation
  std::uint32_t camera_id = 0;
  std::string name;
};

struct ColmapPoint {
  Vec3 xyz;
  Vec3 rgb;  // [0, 1]
};

/// Maps a validated (model, params) pair to intrinsics. `what` names the
/// entity for error messages ("camera 3").
ColmapCamera make_camera(const CameraModel& model, std::uint64_t width, std::uint64_t height,
                         const std::vector<double>& params, const std::string& what) {
  if (width == 0 || height == 0 || width > 1u << 20 || height > 1u << 20) {
    throw DatasetError(what + ": image size " + std::to_string(width) + "x" +
                       std::to_string(height) + " out of range");
  }
  if (params.size() != model.param_count) {
    throw DatasetError(what + ": model " + model.name + " expects " +
                       std::to_string(model.param_count) + " params, got " +
                       std::to_string(params.size()));
  }
  for (const double p : params) {
    if (!std::isfinite(p)) throw DatasetError(what + ": non-finite intrinsic parameter");
  }
  for (std::size_t i = model.distortion_begin; i < params.size(); ++i) {
    if (params[i] != 0.0) {
      throw DatasetError(what + ": model " + model.name +
                         " has non-zero distortion (we do not undistort)");
    }
  }
  ColmapCamera cam;
  cam.width = static_cast<int>(width);
  cam.height = static_cast<int>(height);
  // SIMPLE_* models share one focal length; PINHOLE/OPENCV split fx/fy.
  const bool split_focal = model.model_id == 1 || model.model_id == 4;
  cam.fx = static_cast<float>(params[0]);
  cam.fy = static_cast<float>(split_focal ? params[1] : params[0]);
  cam.cx = static_cast<float>(params[split_focal ? 2 : 1]);
  cam.cy = static_cast<float>(params[split_focal ? 3 : 2]);
  if (!(cam.fx > 0.0f) || !(cam.fy > 0.0f)) {
    throw DatasetError(what + ": non-positive focal length");
  }
  return cam;
}

void validate_pose(const ColmapImage& image) {
  const std::string what = "images: image " + std::to_string(image.image_id);
  const Quat& q = image.qvec;
  for (const float v : {q.w, q.x, q.y, q.z}) {
    if (!std::isfinite(v)) throw DatasetError(what + ": non-finite rotation quaternion");
  }
  const float norm2 = q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z;
  if (!(norm2 > 1e-12f)) throw DatasetError(what + ": zero-norm rotation quaternion");
  for (const float v : {image.tvec.x, image.tvec.y, image.tvec.z}) {
    if (!std::isfinite(v)) throw DatasetError(what + ": non-finite translation");
  }
}

// ---------------------------------------------------------------------------
// Binary serialisation.

/// Checked little-endian primitive reads: a short read names the entity and
/// byte count instead of handing back whatever arrived.
void read_bytes(std::istream& in, void* dst, std::size_t bytes, const std::string& what) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  if (!in || static_cast<std::size_t>(in.gcount()) != bytes) {
    throw DatasetError(what + " (got " + std::to_string(std::max<std::streamsize>(in.gcount(), 0)) +
                       " of " + std::to_string(bytes) + " bytes)");
  }
}

template <typename T>
T read_pod(std::istream& in, const std::string& what) {
  T value;
  read_bytes(in, &value, sizeof(T), what);
  return value;
}

std::map<std::uint32_t, ColmapCamera> read_cameras_bin(std::istream& in) {
  const auto count = read_pod<std::uint64_t>(in, "cameras.bin: truncated camera count");
  std::map<std::uint32_t, ColmapCamera> cameras;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string what = "cameras.bin: truncated camera " + std::to_string(i) + " of " +
                             std::to_string(count);
    const auto camera_id = read_pod<std::uint32_t>(in, what);
    const auto model_id = read_pod<std::int32_t>(in, what);
    const auto width = read_pod<std::uint64_t>(in, what);
    const auto height = read_pod<std::uint64_t>(in, what);
    const CameraModel& model = model_by_id(model_id);
    std::vector<double> params(model.param_count);
    read_bytes(in, params.data(), model.param_count * sizeof(double), what);
    const bool inserted =
        cameras
            .emplace(camera_id, make_camera(model, width, height, params,
                                            "cameras: camera " + std::to_string(camera_id)))
            .second;
    if (!inserted) {
      throw DatasetError("cameras: duplicate camera id " + std::to_string(camera_id));
    }
  }
  return cameras;
}

std::vector<ColmapImage> read_images_bin(std::istream& in) {
  const auto count = read_pod<std::uint64_t>(in, "images.bin: truncated image count");
  std::vector<ColmapImage> images;
  images.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, kReserveCap)));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string what = "images.bin: truncated image " + std::to_string(i) + " of " +
                             std::to_string(count);
    ColmapImage image;
    image.image_id = read_pod<std::uint32_t>(in, what);
    double q[4], t[3];
    read_bytes(in, q, sizeof(q), what);
    read_bytes(in, t, sizeof(t), what);
    image.qvec = {static_cast<float>(q[0]), static_cast<float>(q[1]), static_cast<float>(q[2]),
                  static_cast<float>(q[3])};
    image.tvec = {static_cast<float>(t[0]), static_cast<float>(t[1]), static_cast<float>(t[2])};
    image.camera_id = read_pod<std::uint32_t>(in, what);
    // Null-terminated name; a missing terminator is a truncation.
    for (;;) {
      const auto c = read_pod<char>(in, what + " (unterminated image name)");
      if (c == '\0') break;
      if (image.name.size() >= 4096) {
        throw DatasetError("images.bin: image name exceeds 4096 bytes (unterminated?)");
      }
      image.name.push_back(c);
    }
    // The 2D observations are not used for rendering, but the payload must
    // still be consumed and accounted: guard count * stride first.
    const auto num_points2d = read_pod<std::uint64_t>(in, what);
    constexpr std::size_t kPoint2dBytes = 2 * sizeof(double) + sizeof(std::uint64_t);
    if (num_points2d > kMaxSize / kPoint2dBytes) {
      throw DatasetError("images.bin: image " + std::to_string(image.image_id) + " point2D count " +
                         std::to_string(num_points2d) + " overflows the payload size");
    }
    // Read (not seek past) the observation payload in bounded chunks: a
    // seekg beyond EOF does not fail until the next read, which would let a
    // truncated trailing payload slip through for the final image.
    std::vector<char> sink(static_cast<std::size_t>(
        std::min<std::uint64_t>(num_points2d * kPoint2dBytes, kReserveCap)));
    for (std::uint64_t consumed = 0; consumed < num_points2d * kPoint2dBytes;) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(sink.size(), num_points2d * kPoint2dBytes - consumed));
      read_bytes(in, sink.data(), chunk,
                 what + " (short point2D payload of " + std::to_string(num_points2d) +
                     " entries)");
      consumed += chunk;
    }
    images.push_back(std::move(image));
  }
  return images;
}

std::vector<ColmapPoint> read_points3d_bin(std::istream& in) {
  const auto count = read_pod<std::uint64_t>(in, "points3D.bin: truncated point count");
  std::vector<ColmapPoint> points;
  points.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, kReserveCap)));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string what = "points3D.bin: truncated point " + std::to_string(i) + " of " +
                             std::to_string(count);
    (void)read_pod<std::uint64_t>(in, what);  // point3D_id
    double xyz[3];
    read_bytes(in, xyz, sizeof(xyz), what);
    std::uint8_t rgb[3];
    read_bytes(in, rgb, sizeof(rgb), what);
    (void)read_pod<double>(in, what);  // reprojection error
    const auto track_len = read_pod<std::uint64_t>(in, what);
    constexpr std::size_t kTrackBytes = 2 * sizeof(std::uint32_t);
    if (track_len > kMaxSize / kTrackBytes) {
      throw DatasetError("points3D.bin: point " + std::to_string(i) + " track length " +
                         std::to_string(track_len) + " overflows the payload size");
    }
    std::vector<char> track(static_cast<std::size_t>(std::min<std::uint64_t>(
        track_len * kTrackBytes, kReserveCap * kTrackBytes)));
    for (std::uint64_t consumed = 0; consumed < track_len * kTrackBytes;) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(track.size(), track_len * kTrackBytes - consumed));
      read_bytes(in, track.data(), chunk, what + " (short track payload)");
      consumed += chunk;
    }
    ColmapPoint point;
    point.xyz = {static_cast<float>(xyz[0]), static_cast<float>(xyz[1]),
                 static_cast<float>(xyz[2])};
    for (const float v : {point.xyz.x, point.xyz.y, point.xyz.z}) {
      if (!std::isfinite(v)) {
        throw DatasetError("points3D.bin: point " + std::to_string(i) +
                           " has a non-finite position");
      }
    }
    point.rgb = {static_cast<float>(rgb[0]) / 255.0f, static_cast<float>(rgb[1]) / 255.0f,
                 static_cast<float>(rgb[2]) / 255.0f};
    points.push_back(point);
  }
  return points;
}

// ---------------------------------------------------------------------------
// Text serialisation.

/// Yields payload lines of a COLMAP text file: comments ('#') and blank
/// lines skipped, trailing CR stripped. `keep_blank` preserves empty lines
/// (images.txt encodes an image with no observations as an empty line).
bool next_line(std::istream& in, std::string& line, bool keep_blank = false) {
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line[0] == '#') continue;
    if (line.empty() && !keep_blank) continue;
    return true;
  }
  return false;
}

/// Full-token numeric parses: trailing garbage in a token ("8x12", "8.5"
/// for an integer) is an error, never a silent truncation.
double parse_double(const std::string& token, const std::string& what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw DatasetError(what + ": garbled number '" + token + "'");
  }
  if (consumed != token.size()) {
    throw DatasetError(what + ": garbled number '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, const std::string& what) {
  if (token.empty() || token[0] == '-') {
    throw DatasetError(what + ": garbled count '" + token + "'");
  }
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(token, &consumed);
  } catch (const std::exception&) {
    throw DatasetError(what + ": garbled count '" + token + "'");
  }
  if (consumed != token.size()) {
    throw DatasetError(what + ": garbled count '" + token + "'");
  }
  return value;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> tokens;
  std::string token;
  while (ss >> token) tokens.push_back(token);
  return tokens;
}

std::map<std::uint32_t, ColmapCamera> read_cameras_txt(std::istream& in) {
  std::map<std::uint32_t, ColmapCamera> cameras;
  std::string line;
  std::size_t row = 0;
  while (next_line(in, line)) {
    const std::string what = "cameras.txt row " + std::to_string(row);
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.size() < 4) {
      throw DatasetError(what + ": expected CAMERA_ID MODEL WIDTH HEIGHT PARAMS[], got '" + line +
                         "'");
    }
    const std::uint64_t camera_id = parse_u64(tokens[0], what);
    const CameraModel& model = model_by_name(tokens[1]);
    const std::uint64_t width = parse_u64(tokens[2], what);
    const std::uint64_t height = parse_u64(tokens[3], what);
    std::vector<double> params;
    params.reserve(tokens.size() - 4);
    for (std::size_t i = 4; i < tokens.size(); ++i) {
      params.push_back(parse_double(tokens[i], what));
    }
    const bool inserted =
        cameras
            .emplace(static_cast<std::uint32_t>(camera_id),
                     make_camera(model, width, height, params,
                                 "cameras: camera " + std::to_string(camera_id)))
            .second;
    if (!inserted) {
      throw DatasetError("cameras: duplicate camera id " + std::to_string(camera_id));
    }
    ++row;
  }
  return cameras;
}

std::vector<ColmapImage> read_images_txt(std::istream& in) {
  std::vector<ColmapImage> images;
  std::string line;
  while (next_line(in, line)) {
    const std::string what = "images.txt image " + std::to_string(images.size());
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.size() != 10) {
      throw DatasetError(what + ": expected IMAGE_ID QW QX QY QZ TX TY TZ CAMERA_ID NAME (10 "
                         "tokens), got " + std::to_string(tokens.size()));
    }
    ColmapImage image;
    image.image_id = static_cast<std::uint32_t>(parse_u64(tokens[0], what));
    double q[4], t[3];
    for (int i = 0; i < 4; ++i) q[i] = parse_double(tokens[1 + i], what);
    for (int i = 0; i < 3; ++i) t[i] = parse_double(tokens[5 + i], what);
    image.qvec = {static_cast<float>(q[0]), static_cast<float>(q[1]), static_cast<float>(q[2]),
                  static_cast<float>(q[3])};
    image.tvec = {static_cast<float>(t[0]), static_cast<float>(t[1]), static_cast<float>(t[2])};
    image.camera_id = static_cast<std::uint32_t>(parse_u64(tokens[8], what));
    image.name = tokens[9];
    // The observations line follows immediately (possibly empty). Its
    // entries come in X Y POINT3D_ID triples; anything else is garbled.
    std::string obs;
    if (!next_line(in, obs, /*keep_blank=*/true)) {
      throw DatasetError(what + ": missing points2D line");
    }
    const std::vector<std::string> obs_tokens = split_tokens(obs);
    if (obs_tokens.size() % 3 != 0) {
      throw DatasetError(what + ": points2D line has " + std::to_string(obs_tokens.size()) +
                         " tokens (not a multiple of 3)");
    }
    for (std::size_t i = 0; i < obs_tokens.size(); i += 3) {
      (void)parse_double(obs_tokens[i], what);
      (void)parse_double(obs_tokens[i + 1], what);
      // POINT3D_ID may be -1 for unmatched observations.
      if (obs_tokens[i + 2] != "-1") (void)parse_u64(obs_tokens[i + 2], what);
    }
    images.push_back(std::move(image));
  }
  return images;
}

std::vector<ColmapPoint> read_points3d_txt(std::istream& in) {
  std::vector<ColmapPoint> points;
  std::string line;
  while (next_line(in, line)) {
    const std::string what = "points3D.txt point " + std::to_string(points.size());
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.size() < 8 || (tokens.size() - 8) % 2 != 0) {
      throw DatasetError(what + ": expected POINT3D_ID X Y Z R G B ERROR TRACK[], got " +
                         std::to_string(tokens.size()) + " tokens");
    }
    ColmapPoint point;
    point.xyz = {static_cast<float>(parse_double(tokens[1], what)),
                 static_cast<float>(parse_double(tokens[2], what)),
                 static_cast<float>(parse_double(tokens[3], what))};
    for (const float v : {point.xyz.x, point.xyz.y, point.xyz.z}) {
      if (!std::isfinite(v)) throw DatasetError(what + ": non-finite position");
    }
    float rgb[3];
    for (int c = 0; c < 3; ++c) {
      const std::uint64_t channel = parse_u64(tokens[4 + c], what);
      if (channel > 255) {
        throw DatasetError(what + ": colour channel " + std::to_string(channel) + " > 255");
      }
      rgb[c] = static_cast<float>(channel) / 255.0f;
    }
    point.rgb = {rgb[0], rgb[1], rgb[2]};
    (void)parse_double(tokens[7], what);  // reprojection error
    for (std::size_t i = 8; i < tokens.size(); ++i) (void)parse_u64(tokens[i], what);
    points.push_back(point);
  }
  return points;
}

// ---------------------------------------------------------------------------
// Assembly.

/// The standard 3D-GS initialisation from SfM points: DC-only colour,
/// opacity 0.1, identity rotation, isotropic scale from the mean point
/// spacing (bbox extent over cbrt(count) — deterministic, no kNN pass).
GaussianCloud cloud_from_points(const std::vector<ColmapPoint>& points) {
  GaussianCloud cloud(0);
  cloud.reserve(points.size());
  if (points.empty()) return cloud;

  Vec3 lo = points[0].xyz, hi = points[0].xyz;
  for (const ColmapPoint& p : points) {
    lo = {std::min(lo.x, p.xyz.x), std::min(lo.y, p.xyz.y), std::min(lo.z, p.xyz.z)};
    hi = {std::max(hi.x, p.xyz.x), std::max(hi.y, p.xyz.y), std::max(hi.z, p.xyz.z)};
  }
  const Vec3 diag = hi - lo;
  const float extent = std::max(length(diag), 1e-3f);
  const float spacing = extent / std::cbrt(static_cast<float>(points.size()));
  const float scale = std::max(0.5f * spacing, 1e-4f);

  constexpr float kY0 = 0.28209479177387814f;
  float sh[3];
  for (const ColmapPoint& p : points) {
    sh[0] = (p.rgb.x - 0.5f) / kY0;
    sh[1] = (p.rgb.y - 0.5f) / kY0;
    sh[2] = (p.rgb.z - 0.5f) / kY0;
    cloud.add(p.xyz, {scale, scale, scale}, {1.0f, 0.0f, 0.0f, 0.0f}, 0.1f, sh);
  }
  return cloud;
}

Camera camera_from_image(const ColmapImage& image,
                         const std::map<std::uint32_t, ColmapCamera>& cameras) {
  validate_pose(image);
  const auto it = cameras.find(image.camera_id);
  if (it == cameras.end()) {
    throw DatasetError("images: image " + std::to_string(image.image_id) +
                       " references unknown camera id " + std::to_string(image.camera_id));
  }
  const ColmapCamera& cam = it->second;
  // COLMAP extrinsics are already world->camera in OpenCV axes: build
  // [R(q) | t] directly.
  const Mat3 rot = rotation_matrix(image.qvec);
  Mat4 w2c = Mat4::identity();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) w2c(i, j) = rot.m[i][j];
  }
  w2c(0, 3) = image.tvec.x;
  w2c(1, 3) = image.tvec.y;
  w2c(2, 3) = image.tvec.z;
  return Camera(cam.width, cam.height, cam.fx, cam.fy, cam.cx, cam.cy, w2c);
}

std::ifstream open_or_throw(const std::filesystem::path& path, bool binary) {
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw DatasetError("cannot open " + path.string());
  return in;
}

}  // namespace

bool is_colmap_dir(const std::string& dir) {
  std::error_code ec;
  const std::filesystem::path base(dir);
  return std::filesystem::is_regular_file(base / "cameras.bin", ec) ||
         std::filesystem::is_regular_file(base / "cameras.txt", ec);
}

LoadedScene read_colmap_scene(const std::string& dir) {
  const std::filesystem::path base(dir);
  std::error_code ec;
  const bool binary = std::filesystem::is_regular_file(base / "cameras.bin", ec);
  if (!binary && !std::filesystem::is_regular_file(base / "cameras.txt", ec)) {
    throw DatasetError("no cameras.bin or cameras.txt in " + dir);
  }

  std::map<std::uint32_t, ColmapCamera> cameras;
  std::vector<ColmapImage> images;
  std::vector<ColmapPoint> points;
  if (binary) {
    auto cam_in = open_or_throw(base / "cameras.bin", true);
    cameras = read_cameras_bin(cam_in);
    auto img_in = open_or_throw(base / "images.bin", true);
    images = read_images_bin(img_in);
    auto pts_in = open_or_throw(base / "points3D.bin", true);
    points = read_points3d_bin(pts_in);
  } else {
    auto cam_in = open_or_throw(base / "cameras.txt", false);
    cameras = read_cameras_txt(cam_in);
    auto img_in = open_or_throw(base / "images.txt", false);
    images = read_images_txt(img_in);
    auto pts_in = open_or_throw(base / "points3D.txt", false);
    points = read_points3d_txt(pts_in);
  }

  LoadedScene scene;
  scene.source = binary ? "colmap-binary" : "colmap-text";
  scene.cloud = cloud_from_points(points);
  scene.cameras.reserve(images.size());
  scene.camera_names.reserve(images.size());
  std::vector<std::uint32_t> seen_ids;
  seen_ids.reserve(images.size());
  for (const ColmapImage& image : images) {
    if (std::find(seen_ids.begin(), seen_ids.end(), image.image_id) != seen_ids.end()) {
      throw DatasetError("images: duplicate image id " + std::to_string(image.image_id));
    }
    seen_ids.push_back(image.image_id);
    scene.cameras.push_back(camera_from_image(image, cameras));
    scene.camera_names.push_back(image.name);
  }
  return scene;
}

}  // namespace gstg
