// Format-sniffing scene loader: one entry point that accepts a 3D-GS PLY
// checkpoint, a transforms.json file, a NeRF-synthetic scene directory, or
// a COLMAP sparse-model directory (including the conventional sparse/0
// nesting), and dispatches to the matching reader.
#pragma once

#include <string>

#include "dataset/dataset.h"

namespace gstg {

/// Loads the scene at `path`:
///  - a regular file ending in .ply        -> gaussian/ply_io.h reader,
///  - a regular file ending in .json       -> dataset/transforms.h reader,
///  - a directory holding transforms.json  -> dataset/transforms.h reader,
///  - a directory holding a COLMAP model (cameras.{bin,txt} directly or
///    under sparse/0 or sparse)            -> dataset/colmap.h reader.
/// Anything else — including a path that does not exist — is a
/// DatasetError naming what was looked for; PLY failures keep their
/// PlyError type. Never returns a silently empty scene.
LoadedScene load_scene(const std::string& path);

/// True when `path` looks like something load_scene can ingest (used by
/// callers that fall back to the synthetic scene registry otherwise).
/// Never throws.
bool is_dataset_path(const std::string& path);

}  // namespace gstg
