#include "dataset/load_scene.h"

#include <filesystem>

#include "dataset/colmap.h"
#include "dataset/transforms.h"
#include "gaussian/ply_io.h"

namespace gstg {

namespace {

namespace fs = std::filesystem;

bool has_suffix(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Resolves the COLMAP model directory for a scene root: the root itself,
/// or the conventional sparse/0 / sparse nesting. Empty when none matches.
std::string colmap_dir_for(const fs::path& root) {
  const fs::path candidates[] = {root, root / "sparse" / "0", root / "sparse"};
  for (const fs::path& candidate : candidates) {
    if (is_colmap_dir(candidate.string())) return candidate.string();
  }
  return {};
}

std::string transforms_file_for(const fs::path& root) {
  std::error_code ec;
  for (const char* name : {"transforms.json", "transforms_train.json"}) {
    const fs::path candidate = root / name;
    if (fs::is_regular_file(candidate, ec)) return candidate.string();
  }
  return {};
}

}  // namespace

bool is_dataset_path(const std::string& path) {
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    return has_suffix(path, ".ply") || has_suffix(path, ".json");
  }
  if (fs::is_directory(path, ec)) {
    return !transforms_file_for(path).empty() || !colmap_dir_for(path).empty();
  }
  return false;
}

LoadedScene load_scene(const std::string& path) {
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    if (has_suffix(path, ".ply")) {
      LoadedScene scene;
      scene.cloud = read_gaussian_ply_file(path);
      scene.source = "ply";
      return scene;
    }
    if (has_suffix(path, ".json")) {
      return read_transforms_scene_file(path);
    }
    throw DatasetError("unrecognised scene file '" + path +
                       "' (expected a .ply checkpoint or a transforms .json)");
  }
  if (fs::is_directory(path, ec)) {
    const std::string transforms = transforms_file_for(path);
    if (!transforms.empty()) return read_transforms_scene_file(transforms);
    const std::string colmap = colmap_dir_for(path);
    if (!colmap.empty()) return read_colmap_scene(colmap);
    throw DatasetError("directory '" + path +
                       "' holds no transforms.json and no COLMAP model "
                       "(looked for cameras.{bin,txt} in ., sparse/0, sparse)");
  }
  throw DatasetError("no scene at '" + path + "' (not a file or directory)");
}

}  // namespace gstg
