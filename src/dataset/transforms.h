// NeRF-synthetic `transforms.json` reader: camera_angle_x (or explicit
// fl_x/fl_y intrinsics) plus a frames[] array of camera-to-world matrices
// in the OpenGL/Blender convention (+x right, +y up, -z forward). Poses are
// converted to this repo's OpenCV-style world->camera transforms (negate
// the y and z basis columns, then invert the rigid transform).
//
// The format carries no point cloud, so the Gaussian cloud is a
// deterministic seeded random initialisation inside the NeRF-synthetic
// bounding box — the same (file, options) always produces the identical
// scene, which is what the loader determinism tests pin down.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "dataset/dataset.h"

namespace gstg {

/// Options for the synthetic cloud a transforms.json scene starts from.
struct TransformsOptions {
  /// Gaussians in the random initialisation (seeded from the literal
  /// "transforms-init": deterministic across platforms and runs).
  std::size_t init_gaussians = 8192;
  /// Half-extent of the init box, matching the NeRF-synthetic world bounds.
  float init_half_extent = 1.5f;
};

/// Parses a transforms.json stream/file. Throws DatasetError on malformed
/// JSON, missing or mistyped keys, non-finite values, a transform_matrix
/// that is not 4x4, whose last row is not (0,0,0,1), or whose rotation
/// block is not orthonormal (rigid_inverse would silently produce a wrong
/// pose otherwise).
LoadedScene read_transforms_scene(std::istream& in, const TransformsOptions& options = {});
LoadedScene read_transforms_scene_file(const std::string& path,
                                       const TransformsOptions& options = {});

}  // namespace gstg
