// Real-scene ingestion layer: typed errors and the loaded-scene product
// shared by the COLMAP sparse-model reader (dataset/colmap.h), the
// NeRF-synthetic transforms.json reader (dataset/transforms.h) and the
// format-sniffing entry point (dataset/load_scene.h).
//
// Every reader follows the hardened-PLY discipline (gaussian/ply_io.h):
// counts and sizes from the file are attacker-controlled, so size
// computations are overflow-guarded, reservations are capped, short reads
// are truncation errors with row/byte accounting, and a value that fails to
// parse is a typed error — never a silently empty scene.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "camera/camera.h"
#include "gaussian/cloud.h"

namespace gstg {

/// Typed error for every dataset parse/read failure: missing or unreadable
/// files, garbled counts or tokens, truncated payloads, size overflows,
/// duplicate ids, non-finite parameters, and unsupported camera models.
/// Derives from std::runtime_error so generic catch sites keep working
/// while the service maps dataset failures to a typed client error.
class DatasetError : public std::runtime_error {
 public:
  explicit DatasetError(const std::string& message)
      : std::runtime_error("dataset: " + message) {}
};

/// A scene ingested from disk: the Gaussian cloud (SfM-point init for
/// COLMAP, seeded random init for transforms.json, checkpoint parameters
/// for PLY) plus the calibrated cameras in file order. `camera_names`
/// parallels `cameras` (image names / frame file_paths); PLY checkpoints
/// carry no cameras, so both lists may be empty.
struct LoadedScene {
  GaussianCloud cloud;
  std::vector<Camera> cameras;
  std::vector<std::string> camera_names;
  /// Which reader produced the scene: "colmap-binary", "colmap-text",
  /// "transforms" or "ply".
  std::string source;
};

}  // namespace gstg
