// COLMAP sparse-model reader: cameras / images / points3D in both the
// binary and text serialisations, producing calibrated Cameras plus a
// GaussianCloud initialised from the SfM points (the standard 3D-GS
// training initialisation: DC colour from the point RGB, low opacity,
// isotropic scale from the point-cloud extent).
//
// Conventions: COLMAP extrinsics are world->camera (X_cam = R(q) X_world
// + t) in the OpenCV axes (+x right, +y down, +z forward) — exactly this
// repo's Camera model, so poses map over without axis surgery. Supported
// intrinsic models: SIMPLE_PINHOLE, PINHOLE, and SIMPLE_RADIAL / RADIAL /
// OPENCV when every distortion coefficient is zero (we do not undistort;
// a model with real distortion is a typed error, not a silently wrong
// projection).
#pragma once

#include <string>

#include "dataset/dataset.h"

namespace gstg {

/// Reads a COLMAP sparse model from `dir`, which must contain cameras,
/// images and points3D as either `.bin` (binary) or `.txt` (text) — the
/// binary form wins when both exist. Throws DatasetError on any malformed,
/// truncated or inconsistent input (see dataset/dataset.h).
LoadedScene read_colmap_scene(const std::string& dir);

/// True when `dir` holds a sparse model this reader understands (a
/// cameras.bin or cameras.txt is present). Never throws.
bool is_colmap_dir(const std::string& dir);

}  // namespace gstg
