// Pinhole camera model matching the 3D-GS reference renderer conventions:
// camera looks down +z in view space, pixels are (column, row) with the
// origin at the top-left, and a point projects to
//   u = fx * x/z + cx,   v = fy * y/z + cy.
#pragma once

#include "geometry/mat.h"
#include "geometry/vec.h"

namespace gstg {

/// Frustum-cull defaults shared by Camera::in_frustum and the SIMD
/// preprocess kernels (render/simd_kernels.inl): near-plane z and the
/// relative guard band on x/y (the reference implementation's 1.3x
/// tan(fov) bound).
inline constexpr float kFrustumNearZ = 0.2f;
inline constexpr float kFrustumGuard = 1.3f;

class Camera {
 public:
  /// Intrinsics from a horizontal field of view (radians); principal point at
  /// the image centre. Throws std::invalid_argument for degenerate sizes.
  static Camera from_fov(int width, int height, float fov_x_radians, const Mat4& world_to_camera);

  /// Explicit intrinsics.
  Camera(int width, int height, float fx, float fy, float cx, float cy,
         const Mat4& world_to_camera);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] float fx() const { return fx_; }
  [[nodiscard]] float fy() const { return fy_; }
  [[nodiscard]] float cx() const { return cx_; }
  [[nodiscard]] float cy() const { return cy_; }
  [[nodiscard]] const Mat4& world_to_camera() const { return world_to_camera_; }
  [[nodiscard]] Vec3 position() const;  ///< camera centre in world space

  /// World point -> view space (camera coordinates).
  [[nodiscard]] Vec3 to_view(Vec3 world) const { return world_to_camera_.transform_point(world); }

  /// View-space point -> pixel coordinates (no bounds clamp).
  [[nodiscard]] Vec2 view_to_pixel(Vec3 view) const {
    return {fx_ * view.x / view.z + cx_, fy_ * view.y / view.z + cy_};
  }

  /// Near-plane + guard-band frustum test in view space. The guard band
  /// (relative margin on x/y) keeps splats whose centre is just outside the
  /// image but whose footprint reaches in, as the reference implementation
  /// does with its 1.3x tan(fov) bound.
  [[nodiscard]] bool in_frustum(Vec3 view, float near_z = kFrustumNearZ,
                                float guard = kFrustumGuard) const;

  [[nodiscard]] float tan_half_fov_x() const { return 0.5f * static_cast<float>(width_) / fx_; }
  [[nodiscard]] float tan_half_fov_y() const { return 0.5f * static_cast<float>(height_) / fy_; }

 private:
  int width_;
  int height_;
  float fx_;
  float fy_;
  float cx_;
  float cy_;
  Mat4 world_to_camera_;
};

/// Builds a world->camera rigid transform looking from `eye` toward `target`
/// with the given up hint (OpenCV-style: +x right, +y down, +z forward).
Mat4 look_at(Vec3 eye, Vec3 target, Vec3 up_hint = {0.0f, -1.0f, 0.0f});

}  // namespace gstg
