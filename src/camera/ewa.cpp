#include "camera/ewa.h"

#include <algorithm>

namespace gstg {

Sym2 project_covariance(const Camera& camera, const Mat3& cov3d_world, Vec3 t, float dilation) {
  // Clamp the view-space direction used for the Jacobian, as in the
  // reference CUDA implementation (forward.cu: computeCov2D).
  const float lim_x = 1.3f * camera.tan_half_fov_x();
  const float lim_y = 1.3f * camera.tan_half_fov_y();
  const float txz = std::clamp(t.x / t.z, -lim_x, lim_x);
  const float tyz = std::clamp(t.y / t.z, -lim_y, lim_y);
  const float tx = txz * t.z;
  const float ty = tyz * t.z;

  const float fx = camera.fx();
  const float fy = camera.fy();
  const float inv_z = 1.0f / t.z;
  const float inv_z2 = inv_z * inv_z;

  // J is the 2x3 Jacobian of (x,y,z) -> (fx x/z, fy y/z). Embed it in a Mat3
  // with a zero third row so we can reuse Mat3 multiplication.
  Mat3 j{};
  j.m[0] = {fx * inv_z, 0.0f, -fx * tx * inv_z2};
  j.m[1] = {0.0f, fy * inv_z, -fy * ty * inv_z2};

  const Mat3 w = camera.world_to_camera().rotation_block();
  const Mat3 jw = j * w;
  const Mat3 cov = jw * cov3d_world * jw.transposed();

  return Sym2{cov.m[0][0] + dilation, cov.m[0][1], cov.m[1][1] + dilation};
}

}  // namespace gstg
