// EWA splatting: projection of a 3D Gaussian covariance to the 2D
// screen-space covariance via the local affine approximation
//   Sigma2D = J W Sigma3D W^T J^T
// where W is the world->camera rotation and J the Jacobian of the
// perspective projection at the splat centre (Zwicker et al.; used verbatim
// by the 3D-GS reference implementation).
#pragma once

#include "camera/camera.h"
#include "geometry/mat.h"
#include "geometry/sym2.h"

namespace gstg {

/// Screen-space low-pass dilation added to both covariance diagonal entries;
/// guarantees each splat covers at least ~1 pixel (value from the 3D-GS
/// reference implementation).
inline constexpr float kCovarianceDilation = 0.3f;

/// Projects a world-space 3D covariance to screen space at view-space centre
/// `t`. The centre's x/y are clamped to 1.3x the frustum extent before
/// evaluating the Jacobian (reference-code trick to bound the affine
/// approximation error at the image border).
Sym2 project_covariance(const Camera& camera, const Mat3& cov3d_world, Vec3 t,
                        float dilation = kCovarianceDilation);

}  // namespace gstg
