#include "camera/camera.h"

#include <cmath>
#include <stdexcept>

namespace gstg {

Camera Camera::from_fov(int width, int height, float fov_x_radians, const Mat4& world_to_camera) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Camera: non-positive image size");
  }
  if (!(fov_x_radians > 0.0f) || fov_x_radians >= 3.14159f) {
    throw std::invalid_argument("Camera: field of view out of range");
  }
  const float fx = 0.5f * static_cast<float>(width) / std::tan(0.5f * fov_x_radians);
  // Square pixels: fy = fx.
  return Camera(width, height, fx, fx, 0.5f * static_cast<float>(width),
                0.5f * static_cast<float>(height), world_to_camera);
}

Camera::Camera(int width, int height, float fx, float fy, float cx, float cy,
               const Mat4& world_to_camera)
    : width_(width), height_(height), fx_(fx), fy_(fy), cx_(cx), cy_(cy),
      world_to_camera_(world_to_camera) {
  if (width <= 0 || height <= 0 || !(fx > 0.0f) || !(fy > 0.0f)) {
    throw std::invalid_argument("Camera: invalid intrinsics");
  }
}

Vec3 Camera::position() const {
  const Mat4 inv = rigid_inverse(world_to_camera_);
  return {inv.m[0][3], inv.m[1][3], inv.m[2][3]};
}

bool Camera::in_frustum(Vec3 view, float near_z, float guard) const {
  if (view.z < near_z) return false;
  const float lim_x = guard * tan_half_fov_x() * view.z;
  const float lim_y = guard * tan_half_fov_y() * view.z;
  return std::fabs(view.x) <= lim_x && std::fabs(view.y) <= lim_y;
}

Mat4 look_at(Vec3 eye, Vec3 target, Vec3 up_hint) {
  const Vec3 forward = normalized(target - eye);  // +z in camera space
  Vec3 right = cross(up_hint, forward);
  if (length(right) < 1e-6f) {
    // Degenerate up hint (parallel to view direction): pick another.
    right = cross(Vec3{1.0f, 0.0f, 0.0f}, forward);
    if (length(right) < 1e-6f) right = cross(Vec3{0.0f, 0.0f, 1.0f}, forward);
  }
  right = normalized(right);
  const Vec3 down = cross(forward, right);  // +y down (OpenCV convention)

  Mat4 m = Mat4::identity();
  m.m[0] = {right.x, right.y, right.z, -dot(right, eye)};
  m.m[1] = {down.x, down.y, down.z, -dot(down, eye)};
  m.m[2] = {forward.x, forward.y, forward.z, -dot(forward, eye)};
  return m;
}

}  // namespace gstg
