// Multi-camera flythrough through the batch API: renders an orbit of poses
// with render_batch (view-level parallelism, one reused FrameContext per
// view worker), cross-checks bit-identity against the sequential loop, and
// reports the wall-clock payoff — the serving path of a multi-user
// deployment.
//
// Run:  ./batch_flythrough [--scene=playroom] [--frames=8] [--path=orbit|flythrough]
//                          [--view-threads=0] [--out-prefix=batch]
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/renderer.h"
#include "render/framebuffer.h"
#include "scene/scene.h"
#include "temporal/camera_path.h"

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"scene", "frames", "path", "view-threads", "out-prefix"});
    const Scene scene = generate_scene(args.get("scene", "playroom"), RunScale{8, 64});
    const int frames = args.get_int("frames", 8);
    const std::string path_kind = args.get("path", "orbit");
    if (path_kind != "orbit" && path_kind != "flythrough") {
      throw std::invalid_argument("--path must be orbit or flythrough (got '" + path_kind + "')");
    }
    const CameraPath path =
        path_kind == "flythrough" ? flythrough_path(scene) : open_orbit_path(scene, frames);
    const auto cameras = path.frames(frames).cameras;

    std::printf("batch-rendering '%s' along %s (%zu Gaussians), %d views at %dx%d\n\n",
                scene.info.name.c_str(), path.name().c_str(), scene.cloud.size(), frames,
                scene.render_width, scene.render_height);

    GsTgConfig config;  // 16+64, Ellipse+Ellipse
    config.threads = 1;  // parallelism comes from the view level below
    BatchOptions options;
    options.view_threads = args.get_size("view-threads", 0);

    // Sequential reference: the same views through one-shot render_gstg.
    Timer timer;
    std::vector<RenderResult> sequential;
    sequential.reserve(cameras.size());
    for (const Camera& camera : cameras) {
      sequential.push_back(render_gstg(scene.cloud, camera, config));
    }
    const double sequential_ms = timer.lap_ms();

    const BatchRenderResult batch = render_batch(scene.cloud, cameras, config, options);

    TextTable table("per-view profile (render_batch)");
    table.set_header({"view", "visible", "sort pairs", "frame ms", "identical"});
    bool all_identical = true;
    for (std::size_t v = 0; v < cameras.size(); ++v) {
      const bool same = max_abs_diff(sequential[v].image, batch.images[v]) == 0.0f;
      all_identical = all_identical && same;
      table.add_row({std::to_string(v),
                     std::to_string(batch.counters[v].visible_gaussians),
                     std::to_string(batch.counters[v].sort_pairs),
                     format_fixed(batch.times[v].total_ms(), 2), same ? "yes" : "NO"});
      if (args.has("out-prefix")) {
        batch.images[v].write_ppm(args.get("out-prefix", "batch") + "_" + std::to_string(v) +
                                  ".ppm");
      }
    }
    table.print();

    std::printf("\nsequential loop: %.2f ms | render_batch: %.2f ms | speedup %.2fx\n",
                sequential_ms, batch.wall_ms,
                batch.wall_ms > 0.0 ? sequential_ms / batch.wall_ms : 0.0);
    std::printf("batch output %s the sequential renders\n",
                all_identical ? "is bit-identical to" : "DIFFERS from");
    return all_identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
