// Runs the cycle-level accelerator simulator on one scene for the three
// designs the paper compares (baseline accelerator, GSCore, GS-TG) and
// prints the full report: per-stage cycles, bottleneck, FPS and energy.
//
// Run:  ./accel_sim [--scene=rubble]
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "scene/scene.h"
#include "sim/accel.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"scene"});
    const Scene scene = generate_scene(args.get("scene", "train"), RunScale{8, 64});
    std::printf("scene '%s': %zu Gaussians at %dx%d\n\n", scene.info.name.c_str(),
                scene.cloud.size(), scene.render_width, scene.render_height);

    const HwConfig hw;

    GsTgConfig gstg_config;  // 16+64, Ellipse+Ellipse
    FrameWorkload wg = build_gstg_workload(scene.cloud, scene.camera, gstg_config);
    RenderConfig baseline_config;
    baseline_config.tile_size = 16;
    baseline_config.boundary = Boundary::kEllipse;
    FrameWorkload wb =
        build_tile_sorted_workload(scene.cloud, scene.camera, baseline_config, "Baseline");
    FrameWorkload wc = build_gscore_workload(scene.cloud, scene.camera, 16);
    wg.scene = wb.scene = wc.scene = scene.info.name;

    const SimReport rb = simulate_frame(wb, baseline_pipeline_model(), hw);
    const SimReport rc = simulate_frame(wc, gscore_pipeline_model(), hw);
    const SimReport rg = simulate_frame(wg, gstg_pipeline_model(), hw);

    for (const SimReport& r : {rb, rc, rg}) {
      std::printf("%s\n\n", to_string(r).c_str());
    }

    TextTable table("normalised to the baseline accelerator");
    table.set_header({"design", "speedup", "energy eff.", "bottleneck"});
    for (const SimReport& r : {rb, rc, rg}) {
      table.add_row({r.design, format_fixed(rb.total_cycles / r.total_cycles, 2),
                     format_fixed(rb.energy.total_j() / r.energy.total_j(), 2), r.bottleneck});
    }
    table.print();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
