// Simulated multi-client render server: N client threads each stream a
// tour-sampled camera path through the async RenderService under their own
// session (cross-frame sort reuse), while a misbehaving client throws
// malformed requests at the same service and gets typed errors back. Prints
// per-client latency percentiles, the service operating stats, and
// cross-checks a sample of responses bit-identical to one-shot render_gstg.
//
// Run:  ./render_server [--scene=playroom] [--clients=4] [--frames=12]
//                       [--workers=4] [--queue=64] [--verify]
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "dataset/load_scene.h"
#include "render/framebuffer.h"
#include "scene/scene.h"
#include "service/render_service.h"
#include "telemetry/metrics.h"
#include "temporal/camera_path.h"

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"scene", "clients", "frames", "workers", "queue", "verify"});
    const std::string scene_name = args.get("scene", "playroom");
    const std::size_t clients = args.get_size("clients", 4);
    const int frames = args.get_int("frames", 12);
    if (clients == 0) throw std::invalid_argument("--clients must be >= 1");
    if (frames < 1) throw std::invalid_argument("--frames must be >= 1");

    // --scene accepts a synthetic recipe name or a dataset path (a COLMAP
    // model dir, a transforms.json scene, or a .ply checkpoint — though a
    // bare checkpoint carries no cameras to stream). The service resolves
    // the same key through its scene cache, which routes through the same
    // format-sniffing loader.
    GaussianCloud cloud;
    std::vector<Camera> cameras;
    if (is_dataset_path(scene_name)) {
      LoadedScene loaded = load_scene(scene_name);
      if (loaded.cameras.empty()) {
        throw std::invalid_argument("scene '" + scene_name + "' (" + loaded.source +
                                    ") carries no cameras; use a COLMAP or transforms dataset "
                                    "or a synthetic scene name");
      }
      cloud = std::move(loaded.cloud);
      cameras.assign(loaded.cameras.begin(),
                     loaded.cameras.begin() + std::min<std::size_t>(loaded.cameras.size(),
                                                                    static_cast<std::size_t>(
                                                                        frames)));
    } else {
      Scene scene = generate_scene(scene_name);
      const FrameSequence sequence = tour_frames(orbit_path(scene, 0.3f, 4), 2, 2);
      cameras.assign(sequence.cameras.begin(),
                     sequence.cameras.begin() +
                         std::min<std::size_t>(sequence.frame_count(),
                                               static_cast<std::size_t>(frames)));
      cloud = std::move(scene.cloud);
    }

    ServiceConfig config;  // threads=1, temporal=kReuse
    config.workers = args.get_size("workers", 4);
    config.queue_capacity = args.get_size("queue", 64);
    config.verify = args.has("verify");

    std::printf("render_server: '%s' (%zu gaussians, %dx%d), %zu clients x %zu frames, "
                "%zu workers%s\n\n",
                scene_name.c_str(), cloud.size(), cameras.front().width(),
                cameras.front().height(), clients, cameras.size(), config.workers,
                config.verify ? ", verify gate ON" : "");

    RenderService service(config);

    // One misbehaving client: malformed requests must come back as typed
    // errors while everyone else renders on.
    const RenderResponse bad_scene =
        service.submit(RenderRequest{"", cameras.front(), 0}).get();
    const RenderResponse unknown =
        service.submit(RenderRequest{"not-a-scene", cameras.front(), 0}).get();
    std::printf("malformed probes: empty scene -> %s (\"%s\"), unknown scene -> %s\n",
                to_string(bad_scene.status), bad_scene.error.c_str(), to_string(unknown.status));
    if (bad_scene.ok() || unknown.ok()) {
      std::fprintf(stderr, "render_server: malformed requests were not rejected\n");
      return 1;
    }

    // Client fleet: session s streams the whole camera path in order.
    struct ClientResult {
      std::vector<double> latency_ms;
      std::size_t ok = 0;
      std::size_t reused_groups = 0;
    };
    std::vector<ClientResult> results(clients);
    Timer wall;
    std::vector<std::thread> fleet;
    fleet.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        ClientResult& mine = results[c];
        for (const Camera& camera : cameras) {
          Timer latency;
          RenderResponse response =
              service.submit(RenderRequest{scene_name, camera, static_cast<std::uint64_t>(c + 1)})
                  .get();
          mine.latency_ms.push_back(latency.lap_ms());
          if (response.ok()) ++mine.ok;
          mine.reused_groups += response.temporal.groups_reused;
        }
      });
    }
    for (std::thread& t : fleet) t.join();
    const double wall_ms = wall.lap_ms();

    TextTable table("per-client results");
    table.set_header({"client", "ok", "p50 ms", "p95 ms", "p99 ms", "reused groups"});
    bool all_ok = true;
    std::vector<double> all_latencies;
    for (std::size_t c = 0; c < clients; ++c) {
      ClientResult& r = results[c];
      all_latencies.insert(all_latencies.end(), r.latency_ms.begin(), r.latency_ms.end());
      const PercentileSummary pct = summarize_percentiles(std::move(r.latency_ms));
      all_ok = all_ok && r.ok == cameras.size();
      table.add_row({std::to_string(c + 1), std::to_string(r.ok) + "/" +
                     std::to_string(cameras.size()),
                     format_fixed(pct.p50, 1), format_fixed(pct.p95, 1),
                     format_fixed(pct.p99, 1), std::to_string(r.reused_groups)});
    }
    table.print();

    // Fleet-wide percentiles, twice: exactly (sorted samples) and through
    // the metrics registry's log-bucketed service.render_ms histogram the
    // workers populated — the bucketed numbers must bracket the exact ones
    // within the bucket growth factor.
    const PercentileSummary overall = summarize_percentiles(std::move(all_latencies));
    const LatencyHistogram render_hist =
        telemetry::MetricsRegistry::global().latency("service.render_ms");
    std::printf("\nclient-observed latency: p50 %.1f ms | p95 %.1f ms | p99 %.1f ms "
                "(%zu samples)\n",
                overall.p50, overall.p95, overall.p99, overall.count);
    std::printf("service render histogram: p50 %.1f ms | p95 %.1f ms | p99 %.1f ms "
                "(%llu samples, mean %.1f ms)\n",
                render_hist.quantile(0.50), render_hist.quantile(0.95),
                render_hist.quantile(0.99),
                static_cast<unsigned long long>(render_hist.total()), render_hist.mean());

    // Spot-check bit-identity against the one-shot renderer.
    GsTgConfig reference_config = config.render;
    reference_config.temporal = TemporalMode::kOff;
    const RenderResult oneshot = render_gstg(cloud, cameras.front(), reference_config);
    const RenderResponse again =
        service.submit(RenderRequest{scene_name, cameras.front(), 0}).get();
    const bool identical = again.ok() && max_abs_diff(oneshot.image, again.image) == 0.0f;

    const ServiceStats stats = service.stats();
    std::printf("\n%zu frames in %.1f ms (%.1f fps) | batches %zu (max %zu) | peak queue %zu\n",
                clients * cameras.size(), wall_ms,
                wall_ms > 0.0 ? 1000.0 * static_cast<double>(clients * cameras.size()) / wall_ms
                              : 0.0,
                stats.batches, stats.max_batch, stats.peak_queue_depth);
    std::printf("scene cache: %zu hits / %zu misses | reuse pairs %.1f%% | verify mismatches %zu\n",
                stats.cache_hits, stats.cache_misses, 100.0 * stats.reuse_pair_ratio(),
                stats.verify_mismatches);
    std::printf("spot check vs render_gstg: %s\n",
                identical ? "bit-identical" : "DIVERGED");

    const bool success = all_ok && identical && stats.verify_mismatches == 0;
    if (!success) std::fprintf(stderr, "render_server: FAILURE\n");
    return success ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
