// Explores the paper's central trade-off (section III) on one scene: larger
// tiles cut preprocessing + sorting but inflate rasterization, smaller
// tiles do the opposite — and GS-TG takes both winners at once.
//
// Run:  ./tile_tradeoff [--scene=train]
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "render/pipeline.h"
#include "scene/scene.h"

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"scene"});
    const Scene scene = generate_scene(args.get("scene", "train"), RunScale{8, 64});
    std::printf("scene '%s': %zu Gaussians at %dx%d\n\n", scene.info.name.c_str(),
                scene.cloud.size(), scene.render_width, scene.render_height);

    TextTable table("tile-size trade-off (Ellipse boundary)");
    table.set_header({"config", "cells/Gauss", "Gauss/pixel", "pre ms", "sort ms", "raster ms",
                      "total ms"});

    for (const int tile : {8, 16, 32, 64}) {
      RenderConfig config;
      config.tile_size = tile;
      config.boundary = Boundary::kEllipse;
      const RenderResult r = render_baseline(scene.cloud, scene.camera, config);
      table.add_row({"baseline " + std::to_string(tile) + "x" + std::to_string(tile),
                     format_fixed(r.counters.tiles_per_gaussian(), 2),
                     format_fixed(r.counters.gaussians_per_pixel(), 1),
                     format_fixed(r.times.preprocess_ms, 2), format_fixed(r.times.sort_ms, 2),
                     format_fixed(r.times.raster_ms, 2), format_fixed(r.times.total_ms(), 2)});
    }

    GsTgConfig config;  // 16+64, Ellipse+Ellipse
    const RenderResult g = render_gstg(scene.cloud, scene.camera, config);
    table.add_row({"GS-TG 16+64",
                   format_fixed(g.counters.tiles_per_gaussian(), 2),  // group-level
                   format_fixed(g.counters.gaussians_per_pixel(), 1),
                   format_fixed(g.times.preprocess_ms + g.times.bitmask_ms, 2),
                   format_fixed(g.times.sort_ms, 2), format_fixed(g.times.raster_ms, 2),
                   format_fixed(g.times.total_ms(), 2)});
    table.print();

    std::printf(
        "\nGS-TG sorts at 64x64 granularity (few cells per Gaussian) while\n"
        "rasterizing 16x16 tiles (few Gaussians per pixel) — both sides of\n"
        "the trade-off at once. 'cells/Gauss' for GS-TG counts 64x64 groups.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
