// Renders one of the six evaluation scenes (synthetic recipe, or a real
// 3D-GS checkpoint via --ply=...) with either pipeline and prints the
// stage/counter profile.
//
// Run:  ./render_scene --scene=truck --pipeline=gstg --tile=16 --group=64
//       [--boundary=ellipse --mask=ellipse --ply=ckpt.ply --fp16 --out=frame.ppm]
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "gaussian/ply_io.h"
#include "gaussian/quantize.h"
#include "render/pipeline.h"
#include "scene/scene.h"

namespace {

gstg::Boundary parse_boundary(const std::string& name) {
  if (name == "aabb") return gstg::Boundary::kAabb;
  if (name == "obb") return gstg::Boundary::kObb;
  if (name == "ellipse") return gstg::Boundary::kEllipse;
  throw std::invalid_argument("unknown boundary '" + name + "' (aabb|obb|ellipse)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"scene", "ply", "pipeline", "tile", "group", "boundary", "mask", "out",
                        "fp16", "threads"});

    const int tile = args.get_int("tile", 16);
    const int group = args.get_int("group", 64);
    const Boundary boundary = parse_boundary(args.get("boundary", "ellipse"));
    const Boundary mask = parse_boundary(args.get("mask", args.get("boundary", "ellipse")));
    const std::string pipeline = args.get("pipeline", "gstg");

    // Scene: synthetic recipe by default, real checkpoint with --ply.
    Scene scene = generate_scene(args.get("scene", "train"));
    if (args.has("ply")) {
      scene.cloud = read_gaussian_ply_file(args.get("ply", ""));
      std::printf("loaded %zu Gaussians from %s\n", scene.cloud.size(),
                  args.get("ply", "").c_str());
    }
    if (args.has("fp16")) {
      const QuantizeReport q = quantize_cloud_to_fp16(scene.cloud);
      std::printf("fp16 quantisation: max position err %.3g, max SH err %.3g\n",
                  static_cast<double>(q.max_position_error),
                  static_cast<double>(q.max_sh_error));
    }

    RenderResult result = [&] {
      if (pipeline == "baseline") {
        RenderConfig config;
        config.tile_size = tile;
        config.boundary = boundary;
        config.threads = args.get_size("threads", 0);
        return render_baseline(scene.cloud, scene.camera, config);
      }
      if (pipeline == "gstg") {
        GsTgConfig config;
        config.tile_size = tile;
        config.group_size = group;
        config.group_boundary = boundary;
        config.mask_boundary = mask;
        config.threads = args.get_size("threads", 0);
        return render_gstg(scene.cloud, scene.camera, config);
      }
      throw std::invalid_argument("unknown pipeline '" + pipeline + "' (baseline|gstg)");
    }();

    TextTable stages("stage profile: " + pipeline + " @ " + scene.info.name);
    stages.set_header({"stage", "ms"});
    stages.add_row({"preprocess (+ident)", format_fixed(result.times.preprocess_ms, 2)});
    if (pipeline == "gstg") {
      stages.add_row({"bitmask generation", format_fixed(result.times.bitmask_ms, 2)});
    }
    stages.add_row({"sorting", format_fixed(result.times.sort_ms, 2)});
    stages.add_row({"rasterization", format_fixed(result.times.raster_ms, 2)});
    stages.add_row({"total", format_fixed(result.times.total_ms(), 2)});
    stages.print();

    const RenderCounters& c = result.counters;
    TextTable counters("work counters");
    counters.set_header({"counter", "value"});
    counters.add_row({"input Gaussians", std::to_string(c.input_gaussians)});
    counters.add_row({"visible Gaussians", std::to_string(c.visible_gaussians)});
    counters.add_row({"cells per Gaussian", format_fixed(c.tiles_per_gaussian(), 2)});
    counters.add_row({"shared-with-neighbours %", format_fixed(c.shared_gaussian_percent(), 1)});
    counters.add_row({"Gaussians per pixel", format_fixed(c.gaussians_per_pixel(), 1)});
    counters.add_row({"sorted pairs", std::to_string(c.sort_pairs)});
    counters.add_row({"alpha computations", std::to_string(c.alpha_computations)});
    counters.add_row({"blend operations", std::to_string(c.blend_ops)});
    counters.print();

    if (args.has("out")) {
      result.image.write_ppm(args.get("out", "frame.ppm"));
      std::printf("wrote %s\n", args.get("out", "frame.ppm").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
