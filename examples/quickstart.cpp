// Quickstart: build a small synthetic scene, render it with the baseline
// tile pipeline and with GS-TG, verify the images are bit-identical (the
// paper's lossless claim), and compare the work both pipelines did.
//
// Run:  ./quickstart [--out=quickstart.ppm]
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "render/pipeline.h"
#include "scene/scene.h"

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"out", "scene"});

    // A reduced-scale synthetic stand-in for the paper's "train" scene.
    const std::string scene_name = args.get("scene", "train");
    const Scene scene = generate_scene(scene_name, RunScale{8, 128});
    std::printf("scene '%s' (%s): %zu Gaussians at %dx%d\n", scene.info.name.c_str(),
                scene.info.dataset.c_str(), scene.cloud.size(), scene.render_width,
                scene.render_height);

    // Baseline: per-tile sorting + per-tile rasterization (16x16, Ellipse).
    RenderConfig baseline_config;
    baseline_config.tile_size = 16;
    baseline_config.boundary = Boundary::kEllipse;
    const RenderResult baseline = render_baseline(scene.cloud, scene.camera, baseline_config);

    // GS-TG: sorting shared across a 64x64 group, rasterization per 16x16
    // tile through per-Gaussian bitmasks.
    GsTgConfig gstg_config;  // defaults: 16+64, Ellipse+Ellipse
    const RenderResult ours = render_gstg(scene.cloud, scene.camera, gstg_config);

    const float diff = max_abs_diff(baseline.image, ours.image);
    std::printf("\nlossless check: max |baseline - GS-TG| = %g  (%s)\n",
                static_cast<double>(diff), diff == 0.0f ? "bit-exact" : "MISMATCH");

    TextTable table("Baseline vs GS-TG (one frame)");
    table.set_header({"metric", "baseline", "GS-TG"});
    table.add_row({"sorted (cell,splat) pairs", std::to_string(baseline.counters.sort_pairs),
                   std::to_string(ours.counters.sort_pairs)});
    table.add_row({"identification tests", std::to_string(baseline.counters.boundary_tests),
                   std::to_string(ours.counters.boundary_tests)});
    table.add_row({"bitmask tests", "-", std::to_string(ours.counters.bitmask_tests)});
    table.add_row({"alpha computations", std::to_string(baseline.counters.alpha_computations),
                   std::to_string(ours.counters.alpha_computations)});
    table.add_row({"preprocess ms", format_fixed(baseline.times.preprocess_ms, 2),
                   format_fixed(ours.times.preprocess_ms, 2)});
    table.add_row({"bitmask ms", "-", format_fixed(ours.times.bitmask_ms, 2)});
    table.add_row({"sort ms", format_fixed(baseline.times.sort_ms, 2),
                   format_fixed(ours.times.sort_ms, 2)});
    table.add_row({"raster ms", format_fixed(baseline.times.raster_ms, 2),
                   format_fixed(ours.times.raster_ms, 2)});
    table.add_row({"total ms", format_fixed(baseline.times.total_ms(), 2),
                   format_fixed(ours.times.total_ms(), 2)});
    std::printf("\n");
    table.print();

    const std::string out = args.get("out", "quickstart.ppm");
    ours.image.write_ppm(out);
    std::printf("\nwrote %s\n", out.c_str());
    return diff == 0.0f ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
