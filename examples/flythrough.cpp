// Renders a camera path through a scene with the temporal GS-TG renderer
// and reports per-frame timing plus cross-frame sort-reuse statistics — the
// frame-sequence workload an AR/VR consumer of the library runs.
//
// Run:  ./flythrough [--scene=playroom] [--frames=8] [--path=orbit|flythrough]
//                    [--hold=0] [--temporal=off|reuse|verify] [--out-prefix=fly]
//
// --hold=N switches to tour sampling: N identical frames at every keyframe
// with --frames interpolated frames between — the stop-and-look profile
// where cross-frame sort reuse pays.
#include <cstdio>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "scene/scene.h"
#include "sim/sequence.h"
#include "temporal/camera_path.h"
#include "temporal/temporal_renderer.h"

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"scene", "frames", "path", "hold", "temporal", "out-prefix"});
    const Scene scene = generate_scene(args.get("scene", "playroom"), RunScale{8, 64});
    const int frames = args.get_int("frames", 8);
    const int hold = args.get_int("hold", 0);
    const std::string path_kind = args.get("path", "orbit");
    if (path_kind != "orbit" && path_kind != "flythrough") {
      throw std::invalid_argument("--path must be orbit or flythrough (got '" + path_kind + "')");
    }
    // Uniform sampling walks an open orbit (N distinct poses on the
    // circle); tour sampling instead holds at the waypoints of a quarter
    // orbit, like bench_temporal.
    const CameraPath path = path_kind == "flythrough" ? flythrough_path(scene)
                            : hold > 0               ? orbit_path(scene, 0.25f, 4)
                                                     : open_orbit_path(scene, frames);
    const FrameSequence sequence =
        hold > 0 ? tour_frames(path, frames, hold) : path.frames(frames);

    GsTgConfig config;  // 16+64, Ellipse+Ellipse
    const std::string mode = args.get("temporal", "reuse");
    if (mode != "off" && mode != "reuse" && mode != "verify") {
      throw std::invalid_argument("--temporal must be off, reuse or verify (got '" + mode + "')");
    }
    config.temporal = mode == "off"      ? TemporalMode::kOff
                      : mode == "verify" ? TemporalMode::kVerify
                                         : TemporalMode::kReuse;

    // Report the mode that actually runs (GSTG_TEMPORAL overrides the flag).
    std::printf("rendering '%s' along %s (%zu Gaussians), %zu frames at %dx%d, temporal=%s\n\n",
                scene.info.name.c_str(), sequence.name.c_str(), scene.cloud.size(),
                sequence.frame_count(), scene.render_width, scene.render_height,
                to_string(temporal_mode_from_env(config.temporal)));

    // Frames are only retained when they are going to be written out.
    const TemporalSequenceResult result =
        render_sequence(scene.cloud, sequence, config, args.has("out-prefix"));

    RunningStat frame_ms;
    RunningStat visible;
    TextTable table("per-frame profile (GS-TG 16+64, temporal sort reuse)");
    table.set_header({"frame", "visible", "sort pairs", "reused groups", "total ms"});
    for (std::size_t i = 0; i < sequence.frame_count(); ++i) {
      frame_ms.add(result.times[i].total_ms());
      visible.add(static_cast<double>(result.counters[i].visible_gaussians));
      table.add_row({std::to_string(i),
                     std::to_string(result.counters[i].visible_gaussians),
                     std::to_string(result.counters[i].sort_pairs),
                     std::to_string(result.frame_stats[i].groups_reused +
                                    result.frame_stats[i].groups_patched),
                     format_fixed(result.times[i].total_ms(), 2)});
      if (args.has("out-prefix")) {
        result.images[i].write_ppm(args.get("out-prefix", "fly") + "_" + std::to_string(i) +
                                   ".ppm");
      }
    }
    table.print();

    const TemporalStats& stats = result.total_stats;
    std::printf("\nmean frame: %.2f ms (%.1f FPS on this CPU), visible %.0f +- %.0f\n",
                frame_ms.mean(), 1000.0 / frame_ms.mean(), visible.mean(), visible.stddev());
    std::printf("temporal reuse: %.1f%% of groups, %.1f%% of sort pairs avoided "
                "(%zu reused / %zu patched / %zu resorted groups)\n",
                100.0 * stats.reuse_rate(), 100.0 * stats.sorts_avoided_ratio(),
                stats.groups_reused, stats.groups_patched, stats.groups_resorted);

    // Sustained-throughput estimate on the GS-TG accelerator: parameters
    // are DRAM-resident after frame 0, so later frames are cheaper.
    const HwConfig hw;
    const SequenceReport sim = simulate_gstg_sequence(scene.cloud, sequence.views(), config, hw,
                                                      scene.info.name);
    std::printf("accelerator estimate: %.0f sustained FPS at 1 GHz, %.2f uJ/frame "
                "(frame0 dram %.2f MB, steady %.2f MB, sort-pair stability %.2f)\n",
                sim.sustained_fps, sim.energy_per_frame_j * 1e6,
                static_cast<double>(sim.frames.front().dram_bytes) / 1e6,
                static_cast<double>(sim.frames.back().dram_bytes) / 1e6,
                sim.sort_pair_stability);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
