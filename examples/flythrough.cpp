// Renders an orbit of camera poses around a scene with GS-TG and reports
// per-frame timing — the multi-view workload an AR/VR consumer of the
// library would run.
//
// Run:  ./flythrough [--scene=playroom] [--frames=8] [--out-prefix=fly]
#include <cstdio>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "scene/scene.h"
#include "sim/sequence.h"

int main(int argc, char** argv) {
  using namespace gstg;
  try {
    const CliArgs args(argc, argv);
    args.require_known({"scene", "frames", "out-prefix"});
    const Scene scene = generate_scene(args.get("scene", "playroom"), RunScale{8, 64});
    const int frames = args.get_int("frames", 8);
    const auto cameras = orbit_cameras(scene, frames);

    std::printf("orbiting '%s' (%zu Gaussians), %d frames at %dx%d\n\n",
                scene.info.name.c_str(), scene.cloud.size(), frames, scene.render_width,
                scene.render_height);

    GsTgConfig config;  // 16+64, Ellipse+Ellipse
    RunningStat frame_ms;
    RunningStat visible;
    TextTable table("per-frame profile (GS-TG 16+64)");
    table.set_header({"frame", "visible", "sort pairs", "total ms"});

    for (int f = 0; f < frames; ++f) {
      const RenderResult r = render_gstg(scene.cloud, cameras[f], config);
      frame_ms.add(r.times.total_ms());
      visible.add(static_cast<double>(r.counters.visible_gaussians));
      table.add_row({std::to_string(f), std::to_string(r.counters.visible_gaussians),
                     std::to_string(r.counters.sort_pairs),
                     format_fixed(r.times.total_ms(), 2)});
      if (args.has("out-prefix")) {
        r.image.write_ppm(args.get("out-prefix", "fly") + "_" + std::to_string(f) + ".ppm");
      }
    }
    table.print();

    std::printf("\nmean frame: %.2f ms (%.1f FPS on this CPU), visible %.0f +- %.0f\n",
                frame_ms.mean(), 1000.0 / frame_ms.mean(), visible.mean(), visible.stddev());

    // Sustained-throughput estimate on the GS-TG accelerator: parameters
    // are DRAM-resident after frame 0, so later frames are cheaper.
    const HwConfig hw;
    const SequenceReport sim =
        simulate_gstg_sequence(scene.cloud, cameras, config, hw, scene.info.name);
    std::printf("accelerator estimate: %.0f sustained FPS at 1 GHz, %.2f uJ/frame "
                "(frame0 dram %.2f MB, steady %.2f MB)\n",
                sim.sustained_fps, sim.energy_per_frame_j * 1e6,
                static_cast<double>(sim.frames.front().dram_bytes) / 1e6,
                static_cast<double>(sim.frames.back().dram_bytes) / 1e6);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
