#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>
#include <vector>

#include "gaussian/sh.h"

namespace gstg {
namespace {

Vec3 random_unit(std::mt19937& gen) {
  std::normal_distribution<float> n(0.0f, 1.0f);
  return normalized(Vec3{n(gen), n(gen), n(gen)});
}

TEST(Sh, CoeffCounts) {
  EXPECT_EQ(sh_coeff_count(0), 1u);
  EXPECT_EQ(sh_coeff_count(1), 4u);
  EXPECT_EQ(sh_coeff_count(2), 9u);
  EXPECT_EQ(sh_coeff_count(3), 16u);
}

TEST(Sh, BasisDegreeZeroIsConstant) {
  std::mt19937 gen(3);
  for (int i = 0; i < 20; ++i) {
    std::array<float, 16> basis{};
    eval_sh_basis(0, random_unit(gen), basis);
    EXPECT_FLOAT_EQ(basis[0], 0.28209479177387814f);
  }
}

TEST(Sh, BasisKnownDirections) {
  std::array<float, 16> basis{};
  eval_sh_basis(3, {0, 0, 1}, basis);  // +z
  EXPECT_NEAR(basis[1], 0.0f, 1e-6f);               // -c1 * y
  EXPECT_NEAR(basis[2], 0.4886025119f, 1e-6f);      // c1 * z
  EXPECT_NEAR(basis[3], 0.0f, 1e-6f);               // -c1 * x
  EXPECT_NEAR(basis[6], 0.31539156525f * 2.0f, 1e-5f);  // (2z^2 - x^2 - y^2)
  eval_sh_basis(3, {1, 0, 0}, basis);  // +x
  EXPECT_NEAR(basis[3], -0.4886025119f, 1e-6f);
  EXPECT_NEAR(basis[8], 0.5462742153f, 1e-5f);  // c * (x^2 - y^2)
}

TEST(Sh, BasisRejectsBadArgs) {
  std::array<float, 16> basis{};
  EXPECT_THROW(eval_sh_basis(4, {0, 0, 1}, basis), std::invalid_argument);
  EXPECT_THROW(eval_sh_basis(-1, {0, 0, 1}, basis), std::invalid_argument);
  std::array<float, 2> tiny{};
  EXPECT_THROW(eval_sh_basis(1, {0, 0, 1}, tiny), std::invalid_argument);
}

TEST(Sh, BasisOrthonormalUnderSphereIntegral) {
  // Monte-Carlo check of orthonormality: E[4pi Yi Yj] = delta_ij.
  std::mt19937 gen(11);
  constexpr int kSamples = 200000;
  std::array<std::array<double, 16>, 16> gram{};
  std::array<float, 16> basis{};
  for (int s = 0; s < kSamples; ++s) {
    eval_sh_basis(3, random_unit(gen), basis);
    for (int i = 0; i < 16; ++i) {
      for (int j = i; j < 16; ++j) {
        gram[i][j] += static_cast<double>(basis[i]) * static_cast<double>(basis[j]);
      }
    }
  }
  const double norm = 4.0 * M_PI / kSamples;
  for (int i = 0; i < 16; ++i) {
    for (int j = i; j < 16; ++j) {
      const double expected = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(gram[i][j] * norm, expected, 0.05) << "i=" << i << " j=" << j;
    }
  }
}

TEST(ShColor, DcOnlyGivesOffsetColor) {
  // With only the DC coefficient, colour = 0.5 + c0 * Y0 for any direction.
  std::vector<float> coeffs(3 * 16, 0.0f);
  constexpr float kY0 = 0.28209479177387814f;
  coeffs[0 * 16] = (0.8f - 0.5f) / kY0;
  coeffs[1 * 16] = (0.4f - 0.5f) / kY0;
  coeffs[2 * 16] = (0.1f - 0.5f) / kY0;
  std::mt19937 gen(7);
  for (int i = 0; i < 20; ++i) {
    const Vec3 rgb = eval_sh_color(3, coeffs, random_unit(gen));
    EXPECT_NEAR(rgb.x, 0.8f, 1e-5f);
    EXPECT_NEAR(rgb.y, 0.4f, 1e-5f);
    EXPECT_NEAR(rgb.z, 0.1f, 1e-5f);
  }
}

TEST(ShColor, ClampsNegative) {
  std::vector<float> coeffs(3 * 1, 0.0f);
  coeffs[0] = -10.0f;  // drives red strongly negative
  const Vec3 rgb = eval_sh_color(0, coeffs, {0, 0, 1});
  EXPECT_EQ(rgb.x, 0.0f);
  EXPECT_NEAR(rgb.y, 0.5f, 1e-6f);
}

TEST(ShColor, ViewDependenceFromDegree1) {
  std::vector<float> coeffs(3 * 4, 0.0f);
  coeffs[0 * 4 + 2] = 1.0f;  // red varies with z of the direction
  const Vec3 plus_z = eval_sh_color(1, coeffs, {0, 0, 1});
  const Vec3 minus_z = eval_sh_color(1, coeffs, {0, 0, -1});
  EXPECT_GT(plus_z.x, minus_z.x);
  EXPECT_FLOAT_EQ(plus_z.y, minus_z.y);
}

TEST(ShColor, RejectsShortSpan) {
  std::vector<float> coeffs(5, 0.0f);
  EXPECT_THROW(eval_sh_color(1, coeffs, {0, 0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
