// CompressedCloud (gaussian/compressed.h): the fp16 resident form must
// round-trip exactly like the quantisation pass, survive adversarial values
// (NaN/Inf/subnormal/overflow) bit-for-bit, bound-check decode ranges, halve
// the resident bytes exactly, and decode into warmed scratch without
// allocating.
#include "gaussian/compressed.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>

#include "common/half.h"
#include "gaussian/quantize.h"
#include "test_helpers.h"

// Global allocation counter, as in tests/core/test_renderer.cpp: the warmed
// scratch-decode test asserts a zero delta. See that file for the GCC
// diagnostic rationale.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gstg {
namespace {

using testutil::make_random_cloud;

/// Bit-pattern float equality: distinguishes -0 from +0 and treats a NaN as
/// equal to the same NaN, which operator== cannot do.
void expect_bits_equal(float a, float b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b)) << what;
}

void expect_decode_matches_quantized(const GaussianCloud& original, const GaussianCloud& decoded) {
  ASSERT_EQ(decoded.size(), original.size());
  ASSERT_EQ(decoded.sh_degree(), original.sh_degree());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const std::string at = "gaussian " + std::to_string(i);
    expect_bits_equal(decoded.position(i).x, quantize_to_half(original.position(i).x), at);
    expect_bits_equal(decoded.position(i).y, quantize_to_half(original.position(i).y), at);
    expect_bits_equal(decoded.position(i).z, quantize_to_half(original.position(i).z), at);
    expect_bits_equal(decoded.scale(i).x, quantize_to_half(original.scale(i).x), at);
    expect_bits_equal(decoded.scale(i).y, quantize_to_half(original.scale(i).y), at);
    expect_bits_equal(decoded.scale(i).z, quantize_to_half(original.scale(i).z), at);
    expect_bits_equal(decoded.rotation(i).w, quantize_to_half(original.rotation(i).w), at);
    expect_bits_equal(decoded.rotation(i).x, quantize_to_half(original.rotation(i).x), at);
    expect_bits_equal(decoded.rotation(i).y, quantize_to_half(original.rotation(i).y), at);
    expect_bits_equal(decoded.rotation(i).z, quantize_to_half(original.rotation(i).z), at);
    expect_bits_equal(decoded.opacity(i), quantize_to_half(original.opacity(i)), at);
  }
  ASSERT_EQ(decoded.sh_data().size(), original.sh_data().size());
  for (std::size_t k = 0; k < original.sh_data().size(); ++k) {
    expect_bits_equal(decoded.sh_data()[k], quantize_to_half(original.sh_data()[k]),
                      "sh float " + std::to_string(k));
  }
}

TEST(CompressedCloud, RoundTripMatchesQuantizePass) {
  // decode(encode(cloud)) must equal the in-place fp16 quantisation pass
  // for every parameter the pass rounds verbatim. Rotations differ by
  // design: quantize_cloud_to_fp16 re-normalises the quaternion after
  // rounding, while the resident form stores the raw fp16 values (so a
  // decode is idempotent); those are checked against the plain widening.
  const GaussianCloud cloud = make_random_cloud(500, 11, /*sh_degree=*/2);
  const CompressedCloud compressed = CompressedCloud::encode(cloud);
  const GaussianCloud decoded = compressed.decode();

  GaussianCloud quantized = cloud;
  (void)quantize_cloud_to_fp16(quantized);
  ASSERT_EQ(decoded.size(), quantized.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const std::string at = "gaussian " + std::to_string(i);
    expect_bits_equal(decoded.position(i).x, quantized.position(i).x, at);
    expect_bits_equal(decoded.scale(i).y, quantized.scale(i).y, at);
    expect_bits_equal(decoded.rotation(i).w, quantize_to_half(cloud.rotation(i).w), at);
    expect_bits_equal(decoded.opacity(i), quantized.opacity(i), at);
  }
  EXPECT_EQ(decoded.sh_data(), quantized.sh_data());
}

TEST(CompressedCloud, EncodeDoesNotModifyTheSource) {
  const GaussianCloud cloud = make_random_cloud(64, 5);
  const GaussianCloud before = cloud;
  (void)CompressedCloud::encode(cloud);
  EXPECT_EQ(cloud.positions(), before.positions());
  EXPECT_EQ(cloud.sh_data(), before.sh_data());
}

TEST(CompressedCloud, AdversarialValuesRoundTripBitExact) {
  // NaN, infinities, fp32 subnormals (flush to fp16 zero), fp16 subnormals,
  // overflow to inf, negative zero, and the largest finite fp16 all follow
  // the Half conversion exactly. GaussianCloud::add validates its inputs,
  // so the hostile values go in through the mutable SoA accessors, exactly
  // as a corrupted checkpoint would reach the encoder.
  GaussianCloud cloud = make_random_cloud(16, 3, /*sh_degree=*/1);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  cloud.positions()[0] = {nan, inf, -inf};
  cloud.positions()[1] = {-0.0f, 1e-41f, std::numeric_limits<float>::denorm_min()};
  cloud.scales()[2] = {5.9604645e-8f, 6.0975552e-5f, 65504.0f};   // fp16 subnormal range + max
  cloud.scales()[3] = {65520.0f, 3.4e38f, 1e30f};                 // all round to +inf
  cloud.rotations()[4] = {inf, nan, -0.0f, -65520.0f};
  cloud.opacities()[5] = nan;
  cloud.opacities()[6] = 1e-45f;
  cloud.sh_data()[0] = -1e30f;
  cloud.sh_data()[1] = nan;
  cloud.sh_data()[2] = 1.1754944e-38f;

  const CompressedCloud compressed = CompressedCloud::encode(cloud);
  expect_decode_matches_quantized(cloud, compressed.decode());

  // Spot-check the stored patterns: overflow really is the fp16 infinity.
  EXPECT_TRUE(compressed.opacity(5).is_nan());
  const GaussianCloud decoded = compressed.decode();
  EXPECT_TRUE(std::isinf(decoded.scale(3).x));
  EXPECT_EQ(decoded.scale(2).z, 65504.0f);
  expect_bits_equal(decoded.position(1).x, -0.0f, "negative zero must survive");
  EXPECT_EQ(decoded.position(1).y, 0.0f) << "fp32 subnormal flushes to fp16 zero";
}

TEST(CompressedCloud, DecodeRangeMatchesFullDecodeSlices) {
  const GaussianCloud cloud = make_random_cloud(300, 21, /*sh_degree=*/1);
  const CompressedCloud compressed = CompressedCloud::encode(cloud);
  const GaussianCloud full = compressed.decode();

  GaussianCloud chunk;
  for (const auto [lo, hi] :
       {std::pair<std::size_t, std::size_t>{0, 300}, {0, 1}, {299, 300}, {17, 203}, {100, 100}}) {
    compressed.decode_range(lo, hi, chunk);
    ASSERT_EQ(chunk.size(), hi - lo);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      expect_bits_equal(chunk.position(i).x, full.position(lo + i).x, "slice position");
      expect_bits_equal(chunk.opacity(i), full.opacity(lo + i), "slice opacity");
    }
  }
}

TEST(CompressedCloud, DecodeRangeBoundsChecked) {
  const CompressedCloud compressed = CompressedCloud::encode(make_random_cloud(10, 1));
  GaussianCloud out;
  EXPECT_THROW(compressed.decode_range(0, 11, out), std::out_of_range);
  EXPECT_THROW(compressed.decode_range(5, 4, out), std::out_of_range);
  EXPECT_THROW(compressed.decode_range(11, 11, out), std::out_of_range);
  EXPECT_NO_THROW(compressed.decode_range(10, 10, out));
}

TEST(CompressedCloud, ResidentBytesAreExactlyHalfOfFloat32) {
  for (const int sh_degree : {0, 1, 2, 3}) {
    const GaussianCloud cloud = make_random_cloud(123, 9, sh_degree);
    const CompressedCloud compressed = CompressedCloud::encode(cloud);
    EXPECT_EQ(compressed.size(), cloud.size());
    EXPECT_EQ(compressed.resident_bytes() * 2, compressed.float32_bytes()) << sh_degree;
    // And both agree with the accelerator DRAM layout model.
    EXPECT_EQ(compressed.resident_bytes(), cloud.size() * cloud.bytes_per_gaussian(2));
    EXPECT_EQ(compressed.float32_bytes(), cloud.size() * cloud.bytes_per_gaussian(4));
  }
}

TEST(CompressedCloud, EmptyCloudIsFine) {
  const CompressedCloud compressed = CompressedCloud::encode(GaussianCloud(1));
  EXPECT_TRUE(compressed.empty());
  EXPECT_EQ(compressed.resident_bytes(), 0u);
  EXPECT_TRUE(compressed.decode().empty());
  GaussianCloud out;
  EXPECT_NO_THROW(compressed.decode_range(0, 0, out));
}

TEST(CompressedCloud, DecodeIntoWarmedScratchDoesNotAllocate) {
  // The streamed render path decodes fixed-size blocks into per-worker
  // scratch every frame; after the first pass that must be allocation-free.
  const CompressedCloud compressed = CompressedCloud::encode(make_random_cloud(1024, 7, 2));
  GaussianCloud scratch;
  compressed.decode_range(0, 512, scratch);  // warm-up sizes the buffers

  const std::size_t before = g_alloc_count.load();
  for (std::size_t lo = 0; lo < compressed.size(); lo += 512) {
    compressed.decode_range(lo, std::min<std::size_t>(lo + 512, compressed.size()), scratch);
  }
  EXPECT_EQ(g_alloc_count.load() - before, 0u) << "warmed decode_range allocated";
}

TEST(CompressedCloud, ScratchRebuiltOnShDegreeMismatch) {
  const CompressedCloud degree2 = CompressedCloud::encode(make_random_cloud(8, 2, 2));
  GaussianCloud scratch(0);
  degree2.decode_range(0, 8, scratch);
  EXPECT_EQ(scratch.sh_degree(), 2);
  EXPECT_EQ(scratch.sh_data().size(), 8 * degree2.sh_floats_per_gaussian());
}

}  // namespace
}  // namespace gstg
