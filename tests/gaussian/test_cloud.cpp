#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "gaussian/cloud.h"

namespace gstg {
namespace {

TEST(Cloud, SizeAndDegreeBookkeeping) {
  GaussianCloud cloud(2);
  EXPECT_TRUE(cloud.empty());
  EXPECT_EQ(cloud.sh_degree(), 2);
  EXPECT_EQ(cloud.sh_floats_per_gaussian(), 27u);  // 3 * 9
  cloud.add_solid({0, 0, 0}, {1, 1, 1}, Quat{}, 0.5f, {0.5f, 0.5f, 0.5f});
  EXPECT_EQ(cloud.size(), 1u);
}

TEST(Cloud, RejectsBadDegree) {
  EXPECT_THROW(GaussianCloud(-1), std::invalid_argument);
  EXPECT_THROW(GaussianCloud(4), std::invalid_argument);
}

TEST(Cloud, AddValidatesInput) {
  GaussianCloud cloud(0);
  const std::vector<float> sh(3, 0.0f);
  const std::vector<float> sh_wrong(5, 0.0f);
  EXPECT_THROW(cloud.add({0, 0, 0}, {1, 1, 1}, Quat{}, 0.5f, sh_wrong), std::invalid_argument);
  EXPECT_THROW(cloud.add({0, 0, 0}, {0, 1, 1}, Quat{}, 0.5f, sh), std::invalid_argument);
  EXPECT_THROW(cloud.add({0, 0, 0}, {1, 1, 1}, Quat{}, 1.5f, sh), std::invalid_argument);
  EXPECT_THROW(cloud.add({0, 0, 0}, {1, 1, 1}, Quat{}, -0.1f, sh), std::invalid_argument);
  EXPECT_NO_THROW(cloud.add({0, 0, 0}, {1, 1, 1}, Quat{}, 0.5f, sh));
}

TEST(Cloud, RotationIsNormalizedOnAdd) {
  GaussianCloud cloud(0);
  const std::vector<float> sh(3, 0.0f);
  cloud.add({0, 0, 0}, {1, 1, 1}, Quat{2, 0, 0, 0}, 0.5f, sh);
  EXPECT_NEAR(length(cloud.rotation(0)), 1.0f, 1e-6f);
}

TEST(Cloud, SolidColorRoundTrips) {
  GaussianCloud cloud(3);
  cloud.add_solid({0, 0, 0}, {1, 1, 1}, Quat{}, 0.7f, {0.9f, 0.2f, 0.4f});
  const auto sh = cloud.sh(0);
  constexpr float kY0 = 0.28209479177387814f;
  EXPECT_NEAR(0.5f + sh[0] * kY0, 0.9f, 1e-5f);
  EXPECT_NEAR(0.5f + sh[16] * kY0, 0.2f, 1e-5f);
  EXPECT_NEAR(0.5f + sh[32] * kY0, 0.4f, 1e-5f);
}

TEST(Cloud, AxisAlignedCovarianceIsDiagonal) {
  GaussianCloud cloud(0);
  const std::vector<float> sh(3, 0.0f);
  cloud.add({0, 0, 0}, {2.0f, 3.0f, 0.5f}, Quat{}, 0.5f, sh);
  const Mat3 cov = cloud.covariance3d(0);
  EXPECT_NEAR(cov(0, 0), 4.0f, 1e-5f);
  EXPECT_NEAR(cov(1, 1), 9.0f, 1e-5f);
  EXPECT_NEAR(cov(2, 2), 0.25f, 1e-5f);
  EXPECT_NEAR(cov(0, 1), 0.0f, 1e-6f);
}

TEST(Cloud, CovarianceInvariants) {
  // cov = R S S^T R^T: symmetric, det = (sx sy sz)^2, trace preserved under
  // rotation.
  std::mt19937 gen(29);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::uniform_real_distribution<float> s(0.2f, 3.0f);
  GaussianCloud cloud(0);
  const std::vector<float> sh(3, 0.0f);
  for (int i = 0; i < 100; ++i) {
    const Vec3 scale{s(gen), s(gen), s(gen)};
    const Quat rot = normalized(Quat{d(gen), d(gen), d(gen), d(gen)});
    cloud.add({0, 0, 0}, scale, rot, 0.5f, sh);
    const Mat3 cov = cloud.covariance3d(cloud.size() - 1);
    EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-4f);
    EXPECT_NEAR(cov(0, 2), cov(2, 0), 1e-4f);
    EXPECT_NEAR(cov(1, 2), cov(2, 1), 1e-4f);
    const float det_expected = std::pow(scale.x * scale.y * scale.z, 2.0f);
    EXPECT_NEAR(cov.determinant(), det_expected, 0.01f * det_expected);
    const float tr_expected =
        scale.x * scale.x + scale.y * scale.y + scale.z * scale.z;
    EXPECT_NEAR(cov(0, 0) + cov(1, 1) + cov(2, 2), tr_expected, 0.01f * tr_expected);
  }
}

TEST(Cloud, BytesPerGaussian) {
  GaussianCloud deg3(3);
  // 3 + 3 + 4 + 1 + 48 = 59 scalars.
  EXPECT_EQ(deg3.bytes_per_gaussian(2), 118u);
  EXPECT_EQ(deg3.bytes_per_gaussian(4), 236u);
  GaussianCloud deg0(0);
  EXPECT_EQ(deg0.bytes_per_gaussian(2), 28u);  // 14 scalars
}

}  // namespace
}  // namespace gstg
