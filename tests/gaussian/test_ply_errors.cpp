// Malformed-PLY corpus: garbled headers, truncated payloads, and
// overflowing size computations must all raise typed PlyErrors — never an
// "empty cloud" success, a crash, or garbage splats.
#include "gaussian/ply_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "test_helpers.h"

namespace gstg {
namespace {

using testutil::make_random_cloud;

/// A valid serialized checkpoint to corrupt.
std::string valid_ply_bytes(std::size_t splats = 8) {
  std::ostringstream out(std::ios::binary);
  write_gaussian_ply(out, make_random_cloud(splats, 21, /*sh_degree=*/1));
  return out.str();
}

GaussianCloud parse(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return read_gaussian_ply(in);
}

std::string replace_once(std::string text, const std::string& from, const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "corpus construction: '" << from << "' not found";
  return text.replace(pos, from.size(), to);
}

void expect_ply_error(const std::string& bytes, const std::string& message_fragment) {
  try {
    (void)parse(bytes);
    FAIL() << "expected PlyError containing '" << message_fragment << "'";
  } catch (const PlyError& e) {
    EXPECT_NE(std::string(e.what()).find(message_fragment), std::string::npos) << e.what();
  }
}

TEST(PlyErrors, ValidRoundTripStillWorks) {
  const GaussianCloud cloud = parse(valid_ply_bytes(8));
  EXPECT_EQ(cloud.size(), 8u);
}

TEST(PlyErrors, GarbledElementCountIsAnErrorNotAnEmptyCloud) {
  // "element vertex abc" used to leave vertex_count == 0 and parse the file
  // as a valid empty cloud.
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8", "element vertex abc"),
                   "garbled element");
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8", "element vertex"),
                   "garbled element");
  // Partial parses must not silently truncate to the leading digits.
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8", "element vertex 8x12"),
                   "garbled element");
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8", "element vertex 8.5"),
                   "garbled element");
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8", "element vertex 8 9"),
                   "garbled element");
}

TEST(PlyErrors, ElementCountBeyondSizeTypeIsGarbled) {
  // Too large for std::size_t: stream extraction fails -> garbled, not 0.
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8",
                                "element vertex 99999999999999999999999999"),
                   "garbled element");
}

TEST(PlyErrors, PayloadSizeOverflowGuarded) {
  // SIZE_MAX vertices parse, but vertex_count * stride * sizeof(float)
  // overflows; the guard must fire before any allocation or read.
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8",
                                "element vertex 18446744073709551615"),
                   "overflows");
}

TEST(PlyErrors, HugeCountWithTinyPayloadIsTruncationNotOom) {
  // A count that does not overflow but dwarfs the payload must die on the
  // truncation check (first missing row), not on a giant reservation.
  expect_ply_error(replace_once(valid_ply_bytes(), "element vertex 8", "element vertex 99999999"),
                   "truncated vertex data");
}

TEST(PlyErrors, TruncatedPayloadErrors) {
  const std::string bytes = valid_ply_bytes();
  expect_ply_error(bytes.substr(0, bytes.size() - 1), "truncated vertex data");
  expect_ply_error(bytes.substr(0, bytes.size() - 100), "truncated vertex data");
}

TEST(PlyErrors, TruncationReportsRowAndBytes) {
  const std::string bytes = valid_ply_bytes();
  try {
    (void)parse(bytes.substr(0, bytes.size() - 3));
    FAIL() << "expected PlyError";
  } catch (const PlyError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("row 7 of 8"), std::string::npos) << message;
    EXPECT_NE(message.find("bytes"), std::string::npos) << message;
  }
}

TEST(PlyErrors, HeaderCorpusRejected) {
  expect_ply_error("plyX\nend_header\n", "missing magic");
  expect_ply_error("ply\nelement vertex 0\nend_header\n", "missing format line");
  expect_ply_error("ply\nformat\nend_header\n", "garbled format");
  expect_ply_error("ply\nformat ascii 1.0\nend_header\n", "binary_little_endian");
  expect_ply_error("ply\nformat binary_little_endian 1.0\nelement vertex 0\n", "missing end_header");
  expect_ply_error(replace_once(valid_ply_bytes(), "property float x", "property float"),
                   "garbled property");
  expect_ply_error(replace_once(valid_ply_bytes(), "property float x", "property float x junk"),
                   "garbled property");
  expect_ply_error(replace_once(valid_ply_bytes(), "property float x", "property int x"),
                   "non-float");
  expect_ply_error(replace_once(valid_ply_bytes(), "property float x", "property float y2"),
                   "missing property x");
}

TEST(PlyErrors, ZeroVertexFileIsAValidEmptyCloud) {
  // An explicit, well-formed zero count is not an error.
  std::string bytes = valid_ply_bytes();
  bytes = replace_once(bytes, "element vertex 8", "element vertex 0");
  const std::string header_end = "end_header\n";
  bytes = bytes.substr(0, bytes.find(header_end) + header_end.size());
  EXPECT_EQ(parse(bytes).size(), 0u);
}

TEST(PlyErrors, PlyErrorIsARuntimeError) {
  // Existing catch (std::runtime_error) sites must keep working.
  EXPECT_THROW((void)parse("plyX\n"), std::runtime_error);
  EXPECT_THROW((void)read_gaussian_ply_file("/nonexistent/cloud.ply"), PlyError);
}

}  // namespace
}  // namespace gstg
