#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "common/half.h"
#include "gaussian/ply_io.h"
#include "gaussian/quantize.h"

namespace gstg {
namespace {

GaussianCloud make_random_cloud(int degree, std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> pos(-10.0f, 10.0f);
  std::uniform_real_distribution<float> scl(0.01f, 2.0f);
  std::uniform_real_distribution<float> rot(-1.0f, 1.0f);
  std::uniform_real_distribution<float> op(0.05f, 0.95f);
  std::uniform_real_distribution<float> coeff(-1.0f, 1.0f);
  GaussianCloud cloud(degree);
  std::vector<float> sh(cloud.sh_floats_per_gaussian());
  for (std::size_t i = 0; i < n; ++i) {
    for (float& c : sh) c = coeff(gen);
    cloud.add({pos(gen), pos(gen), pos(gen)}, {scl(gen), scl(gen), scl(gen)},
              Quat{rot(gen), rot(gen), rot(gen), rot(gen)}, op(gen), sh);
  }
  return cloud;
}

class PlyRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(PlyRoundTripTest, WriteReadPreservesActivatedValues) {
  const int degree = GetParam();
  const GaussianCloud original = make_random_cloud(degree, 50, 77 + degree);
  std::stringstream buffer;
  write_gaussian_ply(buffer, original);
  const GaussianCloud loaded = read_gaussian_ply(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.sh_degree(), degree);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded.position(i).x, original.position(i).x, 1e-5f);
    EXPECT_NEAR(loaded.position(i).y, original.position(i).y, 1e-5f);
    EXPECT_NEAR(loaded.position(i).z, original.position(i).z, 1e-5f);
    // Scales survive log/exp; opacity survives logit/sigmoid.
    EXPECT_NEAR(loaded.scale(i).x, original.scale(i).x, 1e-4f * original.scale(i).x + 1e-6f);
    EXPECT_NEAR(loaded.opacity(i), original.opacity(i), 1e-5f);
    // Rotation is normalised on both sides; compare up to sign.
    const Quat a = original.rotation(i), b = loaded.rotation(i);
    const float dot_q = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
    EXPECT_NEAR(std::fabs(dot_q), 1.0f, 1e-5f);
    const auto sh_a = original.sh(i);
    const auto sh_b = loaded.sh(i);
    for (std::size_t k = 0; k < sh_a.size(); ++k) {
      EXPECT_NEAR(sh_b[k], sh_a[k], 1e-6f) << "gaussian " << i << " coeff " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PlyRoundTripTest, ::testing::Values(0, 1, 2, 3));

TEST(Ply, HeaderRejectsBadMagic) {
  std::stringstream in("plx\nend_header\n");
  EXPECT_THROW(read_gaussian_ply(in), std::runtime_error);
}

TEST(Ply, HeaderRejectsAsciiFormat) {
  std::stringstream in("ply\nformat ascii 1.0\nelement vertex 0\nend_header\n");
  EXPECT_THROW(read_gaussian_ply(in), std::runtime_error);
}

TEST(Ply, RejectsMissingProperties) {
  std::stringstream in(
      "ply\nformat binary_little_endian 1.0\nelement vertex 1\n"
      "property float x\nproperty float y\nend_header\n");
  EXPECT_THROW(read_gaussian_ply(in), std::runtime_error);
}

TEST(Ply, RejectsTruncatedBody) {
  const GaussianCloud cloud = make_random_cloud(1, 4, 5);
  std::stringstream buffer;
  write_gaussian_ply(buffer, cloud);
  std::string data = buffer.str();
  data.resize(data.size() - 16);  // chop the last vertex short
  std::stringstream truncated(data);
  EXPECT_THROW(read_gaussian_ply(truncated), std::runtime_error);
}

TEST(Ply, FileRoundTrip) {
  const GaussianCloud cloud = make_random_cloud(2, 10, 123);
  const std::string path = ::testing::TempDir() + "/gstg_test_cloud.ply";
  write_gaussian_ply_file(path, cloud);
  const GaussianCloud loaded = read_gaussian_ply_file(path);
  EXPECT_EQ(loaded.size(), cloud.size());
  EXPECT_EQ(loaded.sh_degree(), 2);
}

TEST(Ply, MissingFileThrows) {
  EXPECT_THROW(read_gaussian_ply_file("/nonexistent/not_there.ply"), std::runtime_error);
}

TEST(Quantize, ValuesBecomeFp16Representable) {
  GaussianCloud cloud = make_random_cloud(3, 100, 9);
  quantize_cloud_to_fp16(cloud);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const Vec3 p = cloud.position(i);
    EXPECT_EQ(p.x, quantize_to_half(p.x));
    EXPECT_EQ(p.y, quantize_to_half(p.y));
    const float o = cloud.opacity(i);
    EXPECT_EQ(o, quantize_to_half(o));
    for (const float c : cloud.sh(i)) {
      EXPECT_EQ(c, quantize_to_half(c));
    }
  }
}

TEST(Quantize, ReportsBoundedErrors) {
  GaussianCloud cloud = make_random_cloud(3, 500, 31);
  const QuantizeReport report = quantize_cloud_to_fp16(cloud);
  // Positions are in [-10, 10]: absolute fp16 step there is ~2^-10 * 8.
  EXPECT_GT(report.max_position_error, 0.0f);
  EXPECT_LT(report.max_position_error, 0.01f);
  EXPECT_LT(report.max_scale_rel_error, std::ldexp(1.0f, -11) * 1.01f);
  EXPECT_LT(report.max_opacity_error, 1e-3f);
  EXPECT_LT(report.max_sh_error, 1e-3f);
}

TEST(Quantize, SecondPassIsAlmostIdentity) {
  GaussianCloud cloud = make_random_cloud(2, 100, 55);
  quantize_cloud_to_fp16(cloud);
  GaussianCloud again = cloud;
  const QuantizeReport report = quantize_cloud_to_fp16(again);
  // All parameter groups except rotations (renormalised in fp32) are fixed
  // points of the second pass.
  EXPECT_EQ(report.max_position_error, 0.0f);
  EXPECT_EQ(report.max_opacity_error, 0.0f);
  EXPECT_EQ(report.max_sh_error, 0.0f);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_EQ(cloud.position(i), again.position(i));
    EXPECT_EQ(cloud.opacity(i), again.opacity(i));
  }
}

TEST(Quantize, OpacityStaysInDomain) {
  GaussianCloud cloud(0);
  const std::vector<float> sh(3, 0.0f);
  cloud.add({0, 0, 0}, {1, 1, 1}, Quat{}, 1.0f, sh);
  cloud.add({0, 0, 0}, {1, 1, 1}, Quat{}, 0.0f, sh);
  quantize_cloud_to_fp16(cloud);
  EXPECT_LE(cloud.opacity(0), 1.0f);
  EXPECT_GE(cloud.opacity(1), 0.0f);
}

}  // namespace
}  // namespace gstg
