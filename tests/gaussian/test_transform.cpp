#include "gaussian/transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.h"
#include "render/framebuffer.h"
#include "render/pipeline.h"

namespace gstg {
namespace {

TEST(Transform, TranslationMovesPositionsOnly) {
  GaussianCloud cloud = testutil::make_random_cloud(50, 301);
  const GaussianCloud before = cloud;
  apply_rigid_transform(cloud, Quat{}, {1.0f, -2.0f, 3.0f});
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const Vec3 d = cloud.position(i) - before.position(i);
    EXPECT_NEAR(d.x, 1.0f, 1e-5f);
    EXPECT_NEAR(d.y, -2.0f, 1e-5f);
    EXPECT_NEAR(d.z, 3.0f, 1e-5f);
    EXPECT_EQ(cloud.scale(i), before.scale(i));
  }
}

TEST(Transform, RotationTransformsCovarianceCorrectly) {
  // cov' = R cov R^T for every Gaussian.
  GaussianCloud cloud = testutil::make_random_cloud(40, 303);
  const GaussianCloud before = cloud;
  const Quat rot = from_axis_angle({1, 2, 3}, 0.7f);
  apply_rigid_transform(cloud, rot, {0, 0, 0});
  const Mat3 r = rotation_matrix(rot);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const Mat3 expected = r * before.covariance3d(i) * r.transposed();
    const Mat3 actual = cloud.covariance3d(i);
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        EXPECT_NEAR(actual(a, b), expected(a, b), 2e-3f) << "gaussian " << i;
      }
    }
  }
}

TEST(Transform, RotatedSceneWithRotatedCameraRendersSameImage) {
  // Rotating the world and the camera together is a no-op for the image —
  // an end-to-end consistency property of transform + camera + renderer.
  // (Degree-0 SH so colour has no view dependence to re-orient.)
  const Camera cam = testutil::make_camera(128, 96);
  GaussianCloud cloud = testutil::make_random_cloud(400, 307, /*sh_degree=*/0);

  RenderConfig config;
  const RenderResult reference = render_baseline(cloud, cam, config);

  const Quat rot = from_axis_angle({0, 1, 0}, 0.6f);
  apply_rigid_transform(cloud, rot, {0.5f, -0.25f, 1.0f});
  // New camera: world_to_camera' = world_to_camera * inverse(applied).
  const Mat3 rm = rotation_matrix(rot);
  Mat4 applied = Mat4::identity();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) applied(a, b) = rm(a, b);
  }
  applied(0, 3) = 0.5f;
  applied(1, 3) = -0.25f;
  applied(2, 3) = 1.0f;
  const Mat4 new_w2c = cam.world_to_camera() * rigid_inverse(applied);
  const Camera moved(cam.width(), cam.height(), cam.fx(), cam.fy(), cam.cx(), cam.cy(), new_w2c);

  const RenderResult rotated = render_baseline(cloud, moved, config);
  // fp accumulation differs slightly (rotated covariances), so allow a
  // small tolerance rather than bit-exactness.
  EXPECT_LT(max_abs_diff(reference.image, rotated.image), 0.02f);
}

TEST(Transform, UniformScalePreservesScreenFootprint) {
  GaussianCloud cloud = testutil::make_random_cloud(30, 311);
  const GaussianCloud before = cloud;
  apply_uniform_scale(cloud, 2.0f);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_NEAR(cloud.position(i).x, 2.0f * before.position(i).x, 1e-5f);
    EXPECT_NEAR(cloud.scale(i).y, 2.0f * before.scale(i).y, 1e-5f);
  }
  EXPECT_THROW(apply_uniform_scale(cloud, 0.0f), std::invalid_argument);
  EXPECT_THROW(apply_uniform_scale(cloud, -1.0f), std::invalid_argument);
}

TEST(Transform, ConcatenateAppends) {
  GaussianCloud a = testutil::make_random_cloud(20, 313);
  const GaussianCloud b = testutil::make_random_cloud(30, 317);
  concatenate(a, b);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(a.position(25), b.position(5));
  EXPECT_EQ(a.opacity(49), b.opacity(29));

  GaussianCloud wrong_degree(0);
  EXPECT_THROW(concatenate(wrong_degree, b), std::invalid_argument);
}

TEST(Transform, PruneByOpacityRemovesAndCompacts) {
  GaussianCloud cloud(1);
  for (int i = 0; i < 10; ++i) {
    cloud.add_solid({static_cast<float>(i), 0, 0}, {1, 1, 1}, Quat{},
                    i % 2 == 0 ? 0.9f : 0.05f, {0.5f, 0.5f, 0.5f});
  }
  const std::size_t removed = prune_by_opacity(cloud, 0.5f);
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(cloud.size(), 5u);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_GE(cloud.opacity(i), 0.5f);
    EXPECT_EQ(cloud.position(i).x, static_cast<float>(2 * i));  // order kept
  }
  EXPECT_EQ(cloud.sh_data().size(), cloud.size() * cloud.sh_floats_per_gaussian());
}

TEST(Transform, PruneNothingWhenAllOpaque) {
  GaussianCloud cloud = testutil::make_random_cloud(25, 331);
  EXPECT_EQ(prune_by_opacity(cloud, 0.0f), 0u);
  EXPECT_EQ(cloud.size(), 25u);
}

}  // namespace
}  // namespace gstg
