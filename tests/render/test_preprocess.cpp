#include "render/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.h"

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::single_splat;

TEST(Preprocess, ProjectsCenteredSplat) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = single_splat({0, 0, 0}, {0.2f, 0.2f, 0.2f}, 0.8f, {1, 0, 0});
  RenderCounters counters;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, counters);
  ASSERT_EQ(splats.size(), 1u);
  EXPECT_EQ(counters.input_gaussians, 1u);
  EXPECT_EQ(counters.visible_gaussians, 1u);
  EXPECT_NEAR(splats[0].center.x, cam.cx(), 0.1f);
  EXPECT_NEAR(splats[0].center.y, cam.cy(), 0.1f);
  EXPECT_NEAR(splats[0].depth, 5.0f, 1e-3f);
  EXPECT_FLOAT_EQ(splats[0].opacity, 0.8f);
  EXPECT_EQ(splats[0].rho, kThreeSigmaRho);
  EXPECT_NEAR(splats[0].rgb.x, 1.0f, 1e-4f);
  EXPECT_NEAR(splats[0].rgb.y, 0.0f, 1e-4f);
  EXPECT_EQ(splats[0].index, 0u);
  // conic = cov^-1.
  EXPECT_NEAR(splats[0].cov.xx * splats[0].conic.xx + splats[0].cov.xy * splats[0].conic.xy,
              1.0f, 1e-3f);
}

TEST(Preprocess, CullsBehindCamera) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = single_splat({0, 0, -10.0f}, {0.2f, 0.2f, 0.2f}, 0.8f, {1, 1, 1});
  RenderCounters counters;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, counters);
  EXPECT_TRUE(splats.empty());
  EXPECT_EQ(counters.input_gaussians, 1u);
  EXPECT_EQ(counters.visible_gaussians, 0u);
}

TEST(Preprocess, CullsOutsideGuardBand) {
  const Camera cam = make_camera();
  // Far outside the 1.3x field of view at depth 5.
  const float x = cam.tan_half_fov_x() * 5.0f * 2.0f;
  const GaussianCloud cloud = single_splat({x, 0, 0}, {0.2f, 0.2f, 0.2f}, 0.8f, {1, 1, 1});
  RenderCounters counters;
  EXPECT_TRUE(preprocess(cloud, cam, RenderConfig{}, counters).empty());
}

TEST(Preprocess, CullsTransparentSplats) {
  const Camera cam = make_camera();
  GaussianCloud cloud(0);
  cloud.add_solid({0, 0, 0}, {0.2f, 0.2f, 0.2f}, Quat{}, 0.5f / 255.0f, {1, 1, 1});
  RenderCounters counters;
  EXPECT_TRUE(preprocess(cloud, cam, RenderConfig{}, counters).empty());
}

TEST(Preprocess, OpacityAwareRhoShrinksFootprint) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = single_splat({0, 0, 0}, {0.2f, 0.2f, 0.2f}, 0.3f, {1, 1, 1});
  RenderCounters c1, c2;
  RenderConfig three_sigma;
  RenderConfig opacity_aware;
  opacity_aware.opacity_aware_rho = true;
  const auto a = preprocess(cloud, cam, three_sigma, c1);
  const auto b = preprocess(cloud, cam, opacity_aware, c2);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].rho, kThreeSigmaRho);
  EXPECT_LT(b[0].rho, kThreeSigmaRho);  // opacity 0.3 -> 2 ln(76.5) < 9
  EXPECT_GT(b[0].rho, 0.0f);
}

TEST(Preprocess, OutputOrderFollowsCloudOrder) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(500, 42);
  RenderCounters counters;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, counters);
  ASSERT_GT(splats.size(), 100u);
  for (std::size_t i = 1; i < splats.size(); ++i) {
    EXPECT_LT(splats[i - 1].index, splats[i].index);
  }
}

TEST(Preprocess, DeterministicAcrossThreadCounts) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(2000, 7);
  RenderCounters c1, c2;
  RenderConfig one_thread;
  one_thread.threads = 1;
  RenderConfig many_threads;
  many_threads.threads = 4;
  const auto a = preprocess(cloud, cam, one_thread, c1);
  const auto b = preprocess(cloud, cam, many_threads, c2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].center, b[i].center);
    EXPECT_EQ(a[i].depth, b[i].depth);
  }
}

}  // namespace
}  // namespace gstg
