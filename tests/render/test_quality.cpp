// PSNR/SSIM audit helpers (render/quality.h): perfect scores on identical
// images, analytic PSNR on synthetic pairs, the small-image SSIM fallback,
// and the NaN-safe committed floors.
#include "render/quality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "render/framebuffer.h"

namespace gstg {
namespace {

Framebuffer constant_image(int w, int h, float value) {
  Framebuffer fb(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) fb.at(x, y) = {value, value, value};
  }
  return fb;
}

Framebuffer gradient_image(int w, int h) {
  Framebuffer fb(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float u = static_cast<float>(x) / static_cast<float>(w);
      const float v = static_cast<float>(y) / static_cast<float>(h);
      fb.at(x, y) = {u, v, 0.5f * (u + v)};
    }
  }
  return fb;
}

TEST(ImageQuality, IdenticalImagesScorePerfect) {
  const Framebuffer fb = gradient_image(32, 24);
  const ImageQuality q = image_quality(fb, fb);
  EXPECT_TRUE(q.measured);
  EXPECT_TRUE(std::isinf(q.psnr));
  EXPECT_GT(q.psnr, 0.0);
  EXPECT_DOUBLE_EQ(q.ssim, 1.0);
}

TEST(ImageQuality, ConstantOffsetHasAnalyticPsnr) {
  // Every channel differs by exactly 0.1, so MSE = 0.01 against peak 1.0:
  // PSNR = 10 log10(1 / 0.01) = 20 dB.
  const Framebuffer a = constant_image(32, 32, 0.5f);
  const Framebuffer b = constant_image(32, 32, 0.6f);
  const ImageQuality q = image_quality(a, b);
  EXPECT_TRUE(q.measured);
  EXPECT_NEAR(q.psnr, 20.0, 1e-4);
  EXPECT_LT(q.ssim, 1.0);
  EXPECT_GE(q.ssim, -1.0);
}

TEST(ImageQuality, SsimPenalizesStructuralDamage) {
  const Framebuffer a = gradient_image(64, 64);
  // Flat image at the gradient's mean destroys all structure.
  const Framebuffer b = constant_image(64, 64, 0.5f);
  const ImageQuality q = image_quality(a, b);
  EXPECT_TRUE(q.measured);
  EXPECT_TRUE(std::isfinite(q.psnr));
  EXPECT_LT(q.ssim, 0.9);
  EXPECT_GE(q.ssim, -1.0);
}

TEST(ImageQuality, SmallImageFallback) {
  // Below the 8x8 SSIM window the metric falls back to exactness.
  const Framebuffer tiny = constant_image(4, 4, 0.3f);
  const ImageQuality same = image_quality(tiny, tiny);
  EXPECT_TRUE(same.measured);
  EXPECT_DOUBLE_EQ(same.ssim, 1.0);

  const Framebuffer other = constant_image(4, 4, 0.4f);
  const ImageQuality diff = image_quality(tiny, other);
  EXPECT_TRUE(diff.measured);
  EXPECT_DOUBLE_EQ(diff.ssim, 0.0);
  EXPECT_TRUE(std::isfinite(diff.psnr));
}

TEST(ImageQuality, SizeMismatchThrows) {
  const Framebuffer a = constant_image(16, 16, 0.5f);
  const Framebuffer b = constant_image(16, 8, 0.5f);
  EXPECT_THROW(image_quality(a, b), std::invalid_argument);
}

TEST(ImageQuality, DeterministicAcrossCalls) {
  const Framebuffer a = gradient_image(48, 36);
  const Framebuffer b = constant_image(48, 36, 0.25f);
  const ImageQuality q1 = image_quality(a, b);
  const ImageQuality q2 = image_quality(a, b);
  EXPECT_EQ(q1.psnr, q2.psnr);
  EXPECT_EQ(q1.ssim, q2.ssim);
}

TEST(QualityFloor, MeetsFloorIsNaNSafe) {
  const QualityFloor floor{20.0, 0.7};

  ImageQuality good;
  good.psnr = 25.0;
  good.ssim = 0.9;
  good.measured = true;
  EXPECT_TRUE(meets_floor(good, floor));

  // Exactly at the floor passes (it is a floor, not a strict bound).
  ImageQuality edge = good;
  edge.psnr = 20.0;
  edge.ssim = 0.7;
  EXPECT_TRUE(meets_floor(edge, floor));

  ImageQuality unmeasured = good;
  unmeasured.measured = false;
  EXPECT_FALSE(meets_floor(unmeasured, floor));

  ImageQuality nan_psnr = good;
  nan_psnr.psnr = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(meets_floor(nan_psnr, floor));

  ImageQuality nan_ssim = good;
  nan_ssim.ssim = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(meets_floor(nan_ssim, floor));

  ImageQuality low = good;
  low.psnr = 19.9;
  EXPECT_FALSE(meets_floor(low, floor));
}

TEST(QualityFloor, CommittedScenesAreTighterThanUnknown) {
  const QualityFloor unknown = quality_floor("no-such-scene");
  for (const char* scene : {"train", "truck", "drjohnson", "playroom"}) {
    const QualityFloor floor = quality_floor(scene);
    EXPECT_GT(floor.min_psnr, unknown.min_psnr) << scene;
    EXPECT_GT(floor.min_ssim, unknown.min_ssim) << scene;
  }
}

}  // namespace
}  // namespace gstg
