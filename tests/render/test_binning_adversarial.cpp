// Adversarial footprint corpus and flat-vs-hierarchical identity sweep for
// the binning stage. The corpus targets the pre-hardening failure modes:
// unclamped float→int casts in candidate_cells (UB under UBSan for huge
// rho), silent uint32 CSR prefix-sum wrap, and the int product overflow of
// CellGrid::cell_count(). Runs under the ASan/UBSan and TSan presets via
// the render label.
#include "render/binning.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "../test_helpers.h"
#include "render/preprocess.h"

namespace gstg {
namespace {

using testutil::make_camera;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

ProjectedSplat make_splat(Vec2 center, Sym2 cov, float depth = 1.0f, std::uint32_t index = 0,
                          float rho = kThreeSigmaRho) {
  ProjectedSplat s;
  s.center = center;
  s.cov = cov;
  // Singular / non-finite covariances have no inverse; binning must still
  // survive the resulting NaN conic, so feed it one instead of throwing.
  try {
    s.conic = inverse(cov);
  } catch (const std::exception&) {
    s.conic = Sym2{kNaN, kNaN, kNaN};
  }
  s.depth = depth;
  s.opacity = 0.9f;
  s.rho = rho;
  s.index = index;
  return s;
}

/// The adversarial corpus: degenerate conics, non-finite means, huge rho,
/// fully off-screen splats — everything the float→cell math must survive.
std::vector<ProjectedSplat> adversarial_corpus() {
  std::vector<ProjectedSplat> splats;
  std::uint32_t index = 0;
  const auto add = [&](ProjectedSplat s) {
    s.index = index;
    s.depth = 1.0f + 0.25f * static_cast<float>(index);
    ++index;
    splats.push_back(s);
  };
  // Huge rho: AABB extent ~1e15 px, the original unclamped-cast UB trigger.
  add(make_splat({40, 40}, Sym2{1, 0, 1}, 1.0f, 0, 1e30f));
  // Infinite rho: honest full-cover box.
  add(make_splat({40, 40}, Sym2{1, 0, 1}, 1.0f, 0, kInf));
  // NaN rho.
  add(make_splat({40, 40}, Sym2{1, 0, 1}, 1.0f, 0, kNaN));
  // Negative rho: the ellipse test rejects even its own center's cell.
  add(make_splat({40, 40}, Sym2{1, 0, 1}, 1.0f, 0, -1.0f));
  // Non-finite means.
  add(make_splat({kNaN, 40}, Sym2{1, 0, 1}));
  add(make_splat({kInf, 40}, Sym2{1, 0, 1}));
  add(make_splat({-kInf, -kInf}, Sym2{1, 0, 1}));
  // NaN / infinite covariance (conic follows through inverse()).
  add(make_splat({40, 40}, Sym2{kNaN, 0, 1}));
  add(make_splat({40, 40}, Sym2{kInf, 0, kInf}));
  // Singular covariance: inverse() divides by a zero determinant.
  add(make_splat({40, 40}, Sym2{1, 1, 1}));
  add(make_splat({40, 40}, Sym2{0, 0, 0}));
  // Fully off-screen, near and astronomically far.
  add(make_splat({-500, -500}, Sym2{4, 0, 4}));
  add(make_splat({1e30f, 1e30f}, Sym2{4, 0, 4}));
  // Anchor splats with sane footprints so hit sets are non-trivial.
  add(make_splat({10, 10}, Sym2{2, 0, 2}));
  add(make_splat({60, 30}, Sym2{80, 20, 60}));
  add(make_splat({0.5f, 0.5f}, Sym2{0.25f, 0, 0.25f}));
  return splats;
}

/// Canonical per-cell (depth, index) sort — the comparison kVerify uses.
void canonicalize(BinnedSplats& bins, std::span<const ProjectedSplat> splats) {
  const auto less = [&](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t ka = pack_depth_index_key(splats[a].depth, splats[a].index);
    const std::uint64_t kb = pack_depth_index_key(splats[b].depth, splats[b].index);
    return ka != kb ? ka < kb : a < b;
  };
  for (int c = 0; c < bins.grid.cell_count(); ++c) {
    std::sort(bins.splat_ids.begin() + bins.offsets[c],
              bins.splat_ids.begin() + bins.offsets[c + 1], less);
  }
}

void expect_identical(const BinnedSplats& a, const BinnedSplats& b, const char* what) {
  ASSERT_EQ(a.offsets, b.offsets) << what;
  EXPECT_EQ(a.splat_ids, b.splat_ids) << what;
}

// --- candidate_cells hardening -------------------------------------------

TEST(CandidateCellsAdversarial, HugeRhoCoversFullGridWithoutUb) {
  const CellGrid g = CellGrid::over_image(128, 96, 16);
  // Pre-fix this cast was UB (float ~1e15 → int); the clamped math must
  // report the honest answer: the box covers every cell.
  const TileRange r = candidate_cells(make_splat({40, 40}, Sym2{1, 0, 1}, 1, 0, 1e30f), g);
  EXPECT_EQ(r.tx0, 0);
  EXPECT_EQ(r.ty0, 0);
  EXPECT_EQ(r.tx1, g.cells_x);
  EXPECT_EQ(r.ty1, g.cells_y);
}

TEST(CandidateCellsAdversarial, NonFiniteBoxesAreRejectedOrFullCover) {
  const CellGrid g = CellGrid::over_image(128, 96, 16);
  // NaN anywhere in the box → empty range.
  EXPECT_TRUE(candidate_cells(make_splat({kNaN, 40}, Sym2{1, 0, 1}), g).empty());
  EXPECT_TRUE(candidate_cells(make_splat({40, 40}, Sym2{kNaN, 0, 1}), g).empty());
  EXPECT_TRUE(candidate_cells(make_splat({40, 40}, Sym2{1, 0, 1}, 1, 0, kNaN), g).empty());
  // +inf center: the box is [inf, inf] — ordered, past the grid, empty.
  EXPECT_TRUE(candidate_cells(make_splat({kInf, 40}, Sym2{1, 0, 1}), g).empty());
  // Infinite rho: ordered [-inf, +inf] box, honest full cover.
  const TileRange full = candidate_cells(make_splat({40, 40}, Sym2{1, 0, 1}, 1, 0, kInf), g);
  EXPECT_EQ(full.count(), static_cast<long long>(g.cell_count()));
}

TEST(CandidateCellsAdversarial, FarOffscreenSplatsAreEmpty) {
  const CellGrid g = CellGrid::over_image(128, 96, 16);
  EXPECT_TRUE(candidate_cells(make_splat({-500, -500}, Sym2{4, 0, 4}), g).empty());
  EXPECT_TRUE(candidate_cells(make_splat({1e30f, 1e30f}, Sym2{4, 0, 4}), g).empty());
  EXPECT_TRUE(candidate_cells(make_splat({-1e30f, 50}, Sym2{4, 0, 4}), g).empty());
}

TEST(CandidateCellsAdversarial, OneByOneCellGrid) {
  const CellGrid g = CellGrid::over_image(8, 8, 16);  // one cell covers the image
  ASSERT_EQ(g.cell_count(), 1);
  EXPECT_EQ(candidate_cells(make_splat({4, 4}, Sym2{1, 0, 1}), g).count(), 1);
  EXPECT_EQ(candidate_cells(make_splat({4, 4}, Sym2{1, 0, 1}, 1, 0, 1e30f), g).count(), 1);
  EXPECT_TRUE(candidate_cells(make_splat({kNaN, 4}, Sym2{1, 0, 1}), g).empty());
}

// --- overflow guards ------------------------------------------------------

TEST(BinningOverflow, CsrPrefixSumThrowsTypedErrorInsteadOfWrapping) {
  // 3 cells of ~2^31 entries each: the old uint32 running sum wrapped
  // silently and scattered out of bounds. A real workload of this size is
  // not constructible in a test, so the guard is probed directly.
  const std::vector<std::uint32_t> counts = {0x80000000u, 0x80000000u, 0x80000000u};
  std::vector<std::uint32_t> offsets;
  EXPECT_THROW(csr_offsets_from_counts(counts, offsets), BinningError);

  // Sane counts produce ordinary CSR offsets.
  const std::vector<std::uint32_t> ok = {3, 0, 2};
  EXPECT_EQ(csr_offsets_from_counts(ok, offsets), 5u);
  EXPECT_EQ(offsets, (std::vector<std::uint32_t>{0, 3, 3, 5}));

  // The exact boundary: a total of 2^32 - 1 still fits.
  const std::vector<std::uint32_t> edge = {0xFFFFFFFEu, 1};
  EXPECT_EQ(csr_offsets_from_counts(edge, offsets), 0xFFFFFFFFu);
  const std::vector<std::uint32_t> over = {0xFFFFFFFEu, 2};
  EXPECT_THROW(csr_offsets_from_counts(over, offsets), BinningError);
}

TEST(BinningOverflow, CellCountProductGuarded) {
  // 2e9 x 2e9 cells: each dimension fits an int, the product does not.
  EXPECT_THROW(CellGrid::over_image(2000000000, 2000000000, 1), BinningError);
  // A big-but-valid grid still constructs.
  const CellGrid g = CellGrid::over_image(40000, 40000, 1);
  EXPECT_EQ(g.cell_count(), 1600000000);
}

TEST(BinningOverflow, TileRectFarIndicesStayFinite) {
  // (tx + 1) * tile_size overflowed int for far-out indices; the widened
  // math must produce an ordinary (if empty-intersection) rectangle.
  const int big = std::numeric_limits<int>::max() / 16;
  const Rect r = tile_rect(big, big, 16, 100, 100);
  EXPECT_TRUE(std::isfinite(r.x0));
  EXPECT_TRUE(std::isfinite(r.y0));
  EXPECT_FLOAT_EQ(r.x0, static_cast<float>(static_cast<long long>(big) * 16));
  EXPECT_FLOAT_EQ(r.x1, 100.0f);  // clipped to the image
}

// --- adversarial corpus through both strategies ---------------------------

TEST(BinningAdversarial, CorpusBinsIdenticallyInEveryModeAndBoundary) {
  const std::vector<ProjectedSplat> splats = adversarial_corpus();
  for (const int cell : {16, 64, 256}) {  // 256 > image: a 1×1-cell grid
    const CellGrid g = CellGrid::over_image(128, 96, cell);
    for (const Boundary b : {Boundary::kAabb, Boundary::kObb, Boundary::kEllipse}) {
      RenderCounters cf, ch;
      BinnedSplats flat = bin_splats(splats, g, b, 1, cf, BinningMode::kFlat);
      BinnedSplats hier = bin_splats(splats, g, b, 1, ch, BinningMode::kHierarchical);
      EXPECT_EQ(cf.tile_pairs, ch.tile_pairs) << to_string(b) << " cell " << cell;
      EXPECT_EQ(cf.splats_multi_tile, ch.splats_multi_tile) << to_string(b);
      canonicalize(flat, splats);
      canonicalize(hier, splats);
      expect_identical(flat, hier, to_string(b));
      // The audit mode must agree with itself.
      RenderCounters cv;
      EXPECT_NO_THROW(bin_splats(splats, g, b, 1, cv, BinningMode::kVerify)) << to_string(b);
      EXPECT_EQ(cv.tile_pairs, ch.tile_pairs);
    }
  }
}

TEST(BinningAdversarial, HugeRhoSplatHitsEveryCellUnderAabb) {
  const CellGrid g = CellGrid::over_image(128, 96, 16);
  const std::vector<ProjectedSplat> splats = {make_splat({40, 40}, Sym2{1, 0, 1}, 1, 0, 1e30f)};
  for (const BinningMode m : {BinningMode::kFlat, BinningMode::kHierarchical}) {
    RenderCounters c;
    const BinnedSplats bins = bin_splats(splats, g, Boundary::kAabb, 1, c, m);
    // Pre-fix the unclamped cast produced an empty range and silently
    // dropped a screen-covering splat.
    EXPECT_EQ(c.tile_pairs, static_cast<std::size_t>(g.cell_count())) << to_string(m);
    EXPECT_EQ(bins.splat_ids.size(), static_cast<std::size_t>(g.cell_count()));
  }
}

TEST(BinningAdversarial, NonFiniteSplatsProduceNoPairs) {
  const CellGrid g = CellGrid::over_image(128, 96, 16);
  const std::vector<ProjectedSplat> splats = {
      make_splat({kNaN, 40}, Sym2{1, 0, 1}, 1.0f, 0),
      make_splat({40, kNaN}, Sym2{1, 0, 1}, 1.5f, 1),
      make_splat({kInf, kInf}, Sym2{1, 0, 1}, 2.0f, 2),
      make_splat({40, 40}, Sym2{1, 0, 1}, 2.5f, 3, kNaN),
  };
  for (const BinningMode m : {BinningMode::kFlat, BinningMode::kHierarchical}) {
    for (const Boundary b : {Boundary::kAabb, Boundary::kObb, Boundary::kEllipse}) {
      RenderCounters c;
      bin_splats(splats, g, b, 1, c, m);
      EXPECT_EQ(c.tile_pairs, 0u) << to_string(m) << "/" << to_string(b);
    }
  }
}

TEST(BinningAdversarial, NegativeRhoRejectsEvenItsOwnCellUnderEllipse) {
  const CellGrid g = CellGrid::over_image(128, 96, 16);
  const std::vector<ProjectedSplat> splats = {make_splat({40, 40}, Sym2{1, 0, 1}, 1, 0, -1.0f)};
  for (const BinningMode m : {BinningMode::kFlat, BinningMode::kHierarchical}) {
    RenderCounters ce, ca;
    bin_splats(splats, g, Boundary::kEllipse, 1, ce, m);
    bin_splats(splats, g, Boundary::kAabb, 1, ca, m);
    // The single-cell fast path must not claim a guaranteed hit for rho < 0:
    // flat's ellipse test rejects the center's own cell (min distance 0 > rho).
    EXPECT_EQ(ce.tile_pairs, 0u) << to_string(m);
    EXPECT_EQ(ca.tile_pairs, 1u) << to_string(m);
  }
}

// --- flat vs hierarchical bit-identity sweep ------------------------------

TEST(BinningIdentitySweep, RealWorkloadAcrossBoundariesCellSizesThreads) {
  const Camera cam = make_camera(512, 384);
  const GaussianCloud cloud = testutil::make_random_cloud(2000, 7);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);

  for (const int cell : {8, 16, 32, 64}) {
    const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), cell);
    for (const Boundary b : {Boundary::kAabb, Boundary::kObb, Boundary::kEllipse}) {
      RenderCounters cf;
      BinnedSplats flat = bin_splats(splats, g, b, 1, cf, BinningMode::kFlat);
      canonicalize(flat, splats);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        RenderCounters ch;
        BinnedSplats hier = bin_splats(splats, g, b, threads, ch, BinningMode::kHierarchical);
        EXPECT_EQ(cf.tile_pairs, ch.tile_pairs)
            << to_string(b) << " cell " << cell << " threads " << threads;
        EXPECT_EQ(cf.splats_multi_tile, ch.splats_multi_tile);
        EXPECT_GT(ch.coarse_pairs, 0u);
        EXPECT_EQ(cf.coarse_pairs, 0u);
        canonicalize(hier, splats);
        expect_identical(flat, hier, to_string(b));
      }
      // kVerify runs its own flat reference compare across the same sweep.
      RenderCounters cv;
      EXPECT_NO_THROW(bin_splats(splats, g, b, 4, cv, BinningMode::kVerify))
          << to_string(b) << " cell " << cell;
    }
  }
}

TEST(BinningIdentitySweep, HierarchicalReducesBoundaryTestsOnRealWorkload) {
  const Camera cam = make_camera(512, 384);
  const GaussianCloud cloud = testutil::make_random_cloud(2000, 13);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 16);
  for (const Boundary b : {Boundary::kAabb, Boundary::kObb, Boundary::kEllipse}) {
    RenderCounters cf, ch;
    bin_splats(splats, g, b, 0, cf, BinningMode::kFlat);
    bin_splats(splats, g, b, 0, ch, BinningMode::kHierarchical);
    EXPECT_LT(ch.boundary_tests, cf.boundary_tests) << to_string(b);
  }
}

// --- mode resolution ------------------------------------------------------

TEST(BinningMode, AutoResolvesByGridSize) {
  const CellGrid small = CellGrid::over_image(256, 192, 16);  // 192 cells
  const CellGrid large = CellGrid::over_image(1024, 768, 16);  // 3072 cells
  ASSERT_LT(small.cell_count(), kAutoHierarchicalMinCells);
  ASSERT_GE(large.cell_count(), kAutoHierarchicalMinCells);
  EXPECT_EQ(resolve_binning_mode(BinningMode::kAuto, small), BinningMode::kFlat);
  EXPECT_EQ(resolve_binning_mode(BinningMode::kAuto, large), BinningMode::kHierarchical);
  EXPECT_EQ(resolve_binning_mode(BinningMode::kFlat, large), BinningMode::kFlat);
  EXPECT_EQ(resolve_binning_mode(BinningMode::kVerify, small), BinningMode::kVerify);
}

TEST(BinningMode, VerifyReportsHierarchicalCounters) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(600, 29);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 16);
  RenderCounters ch, cv;
  bin_splats(splats, g, Boundary::kEllipse, 2, ch, BinningMode::kHierarchical);
  bin_splats(splats, g, Boundary::kEllipse, 2, cv, BinningMode::kVerify);
  EXPECT_EQ(cv.boundary_tests, ch.boundary_tests);
  EXPECT_EQ(cv.tile_pairs, ch.tile_pairs);
  EXPECT_EQ(cv.coarse_pairs, ch.coarse_pairs);
  EXPECT_EQ(cv.splats_multi_tile, ch.splats_multi_tile);
}

// --- steady-state reuse ---------------------------------------------------

TEST(BinningScratchReuse, HierarchicalIsAllocationStableAcrossFrames) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(800, 31);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 16);

  BinnedSplats out;
  BinningScratch scratch;
  RenderCounters warm;
  bin_splats_into(splats, g, Boundary::kEllipse, 1, warm, out, scratch,
                  BinningMode::kHierarchical);
  const BinnedSplats first = out;
  // Steady state: capacities are warm, results must be reproduced exactly.
  for (int frame = 0; frame < 3; ++frame) {
    RenderCounters c;
    bin_splats_into(splats, g, Boundary::kEllipse, 1, c, out, scratch,
                    BinningMode::kHierarchical);
    EXPECT_EQ(out.offsets, first.offsets);
    EXPECT_EQ(out.splat_ids, first.splat_ids);
    EXPECT_EQ(c.tile_pairs, warm.tile_pairs);
  }
}

}  // namespace
}  // namespace gstg
