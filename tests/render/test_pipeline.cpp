#include "render/pipeline.h"

#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "scene/scene.h"

namespace gstg {
namespace {

using testutil::make_camera;

TEST(BaselinePipeline, RendersNonEmptyImage) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(1500, 21);
  RenderConfig config;
  const RenderResult result = render_baseline(cloud, cam, config);

  // Some pixels received colour.
  double total = 0.0;
  for (const Vec3& p : result.image.pixels()) total += static_cast<double>(p.x + p.y + p.z);
  EXPECT_GT(total, 1.0);

  EXPECT_EQ(result.counters.input_gaussians, 1500u);
  EXPECT_GT(result.counters.visible_gaussians, 500u);
  EXPECT_GE(result.times.preprocess_ms, 0.0);
  EXPECT_GE(result.times.sort_ms, 0.0);
  EXPECT_GE(result.times.raster_ms, 0.0);
  EXPECT_EQ(result.times.bitmask_ms, 0.0);
  EXPECT_GT(result.times.total_ms(), 0.0);
}

TEST(BaselinePipeline, DeterministicAcrossThreadCounts) {
  const Camera cam = make_camera(192, 128);
  const GaussianCloud cloud = testutil::make_random_cloud(800, 31);
  RenderConfig one;
  one.threads = 1;
  RenderConfig four;
  four.threads = 4;
  const RenderResult a = render_baseline(cloud, cam, one);
  const RenderResult b = render_baseline(cloud, cam, four);
  EXPECT_EQ(max_abs_diff(a.image, b.image), 0.0f);
  EXPECT_EQ(a.counters.tile_pairs, b.counters.tile_pairs);
  EXPECT_EQ(a.counters.alpha_computations, b.counters.alpha_computations);
  EXPECT_EQ(a.counters.blend_ops, b.counters.blend_ops);
}

class TileSizeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TileSizeSweepTest, ImageExactlyIndependentOfTileSizeUnderOpacityRho) {
  // With the opacity-aware extent (rho = 2 ln(255 sigma)), every splat a
  // tile list omits has alpha < 1/255 at all tile pixels — exactly the
  // splats the alpha threshold would skip anyway. The image is therefore
  // bit-exactly independent of the tile size.
  const Camera cam = make_camera(128, 96);
  const GaussianCloud cloud = testutil::make_random_cloud(500, 41);
  RenderConfig reference;
  reference.tile_size = 16;
  reference.opacity_aware_rho = true;
  const RenderResult ref = render_baseline(cloud, cam, reference);

  RenderConfig config = reference;
  config.tile_size = GetParam();
  const RenderResult result = render_baseline(cloud, cam, config);
  EXPECT_EQ(max_abs_diff(ref.image, result.image), 0.0f) << "tile " << GetParam();
}

TEST_P(TileSizeSweepTest, ThreeSigmaRuleNearlyIndependentOfTileSize) {
  // Under the 3-sigma rule (the paper's setting) an omitted splat can still
  // carry alpha up to sigma*exp(-4.5) ~ 0.011 at a tile corner, so images
  // across tile sizes agree only to that residual — the known approximation
  // of the original 3D-GS tile culling.
  const Camera cam = make_camera(128, 96);
  const GaussianCloud cloud = testutil::make_random_cloud(500, 41);
  RenderConfig reference;
  reference.tile_size = 16;
  const RenderResult ref = render_baseline(cloud, cam, reference);

  RenderConfig config = reference;
  config.tile_size = GetParam();
  const RenderResult result = render_baseline(cloud, cam, config);
  EXPECT_LE(max_abs_diff(ref.image, result.image), 0.05f) << "tile " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileSizeSweepTest, ::testing::Values(8, 32, 64));

TEST(BaselinePipeline, BoundaryMethodDoesNotChangeImage) {
  // AABB/OBB only add splats whose alpha contribution at every tile pixel is
  // below 1/255 (outside the 3-sigma contour), so the image is unchanged.
  const Camera cam = make_camera(128, 96);
  const GaussianCloud cloud = testutil::make_random_cloud(500, 43);
  RenderConfig ell;
  ell.boundary = Boundary::kEllipse;
  RenderConfig aabb;
  aabb.boundary = Boundary::kAabb;
  const RenderResult a = render_baseline(cloud, cam, ell);
  const RenderResult b = render_baseline(cloud, cam, aabb);
  // Identical because splats outside 3-sigma are rejected by the alpha
  // threshold — footnote: alpha at q>9 is sigma*exp(-4.5) < 1/255 only when
  // sigma < ~0.9; for near-opaque splats a tiny contribution can pass, so
  // allow a sub-quantisation tolerance.
  EXPECT_LE(max_abs_diff(a.image, b.image), 2.5f / 255.0f);
  // AABB processes strictly more pairs.
  EXPECT_GT(b.counters.tile_pairs, a.counters.tile_pairs);
}

TEST(BaselinePipeline, PaperTradeoffDirections) {
  // The motivation-section directions (Figs. 5 and 7): smaller tiles mean
  // more tiles per Gaussian; larger tiles mean more Gaussians per pixel.
  const Scene scene = generate_scene("train", RunScale{8, 256});
  double prev_tiles_per_gaussian = 1e18;
  double prev_gaussians_per_pixel = 0.0;
  for (const int tile : {8, 16, 32, 64}) {
    RenderConfig config;
    config.tile_size = tile;
    config.boundary = Boundary::kAabb;
    const RenderResult r = render_baseline(scene.cloud, scene.camera, config);
    const double tpg = r.counters.tiles_per_gaussian();
    const double gpp = r.counters.gaussians_per_pixel();
    EXPECT_LT(tpg, prev_tiles_per_gaussian) << "tile " << tile;
    EXPECT_GT(gpp, prev_gaussians_per_pixel) << "tile " << tile;
    prev_tiles_per_gaussian = tpg;
    prev_gaussians_per_pixel = gpp;
  }
}

TEST(BaselinePipeline, SharedGaussianPercentDropsWithTileSize) {
  // Paper Table I: the share of Gaussians touching >= 2 tiles falls as the
  // tile grows.
  const Scene scene = generate_scene("playroom", RunScale{8, 256});
  double prev = 101.0;
  for (const int tile : {8, 16, 32, 64}) {
    RenderConfig config;
    config.tile_size = tile;
    config.boundary = Boundary::kAabb;
    const RenderResult r = render_baseline(scene.cloud, scene.camera, config);
    const double shared = r.counters.shared_gaussian_percent();
    EXPECT_LT(shared, prev) << "tile " << tile;
    EXPECT_GT(shared, 0.0);
    prev = shared;
  }
}

}  // namespace
}  // namespace gstg
