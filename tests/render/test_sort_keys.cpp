// Packed-key radix sorting: key monotonicity, stability, and the
// radix-vs-comparison equivalence the hot paths rely on (render/sort_keys.h).
#include "render/sort_keys.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "render/binning.h"
#include "render/sort.h"
#include "render/types.h"

namespace gstg {
namespace {

TEST(SortKeys, PackedKeyOrdersByDepthThenIndex) {
  // Positive floats in increasing order must produce increasing keys.
  const float depths[] = {1e-6f, 0.5f, 1.0f, 1.5f, 2.0f, 100.0f, 1e6f};
  for (std::size_t i = 0; i + 1 < std::size(depths); ++i) {
    EXPECT_LT(pack_depth_index_key(depths[i], 0), pack_depth_index_key(depths[i + 1], 0))
        << depths[i] << " vs " << depths[i + 1];
  }
  // Equal depth: the index tiebreak decides.
  EXPECT_LT(pack_depth_index_key(2.5f, 3), pack_depth_index_key(2.5f, 4));
  // Depth dominates the index.
  EXPECT_LT(pack_depth_index_key(1.0f, 0xffffffffu), pack_depth_index_key(1.0000001f, 0));
  // Round trip of the index half.
  EXPECT_EQ(key_index(pack_depth_index_key(3.25f, 12345u)), 12345u);
}

TEST(SortKeys, RadixSortKeysMatchesStdSort) {
  std::mt19937 gen(7);
  std::uniform_int_distribution<std::uint64_t> dist;
  for (const std::size_t n : {0ul, 1ul, 2ul, 63ul, 64ul, 1000ul}) {
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) k = dist(gen);
    std::vector<std::uint64_t> expected = keys;
    std::sort(expected.begin(), expected.end());

    std::vector<std::uint64_t> tmp;
    radix_sort_keys(keys, tmp, n, 64);
    EXPECT_EQ(keys, expected) << "n=" << n;
  }
}

TEST(SortKeys, RadixSortPairsIsStableOnDuplicateKeys) {
  // Many duplicate keys; the payload records the original position, so
  // stability means payloads stay increasing within each key.
  std::mt19937 gen(11);
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 15);  // heavy ties
  const std::size_t n = 4096;
  std::vector<KeyValue> items(n);
  for (std::size_t i = 0; i < n; ++i) items[i] = {key_dist(gen), i};

  std::vector<KeyValue> tmp;
  radix_sort_pairs(items, tmp, n, 8);

  for (std::size_t i = 0; i + 1 < n; ++i) {
    ASSERT_LE(items[i].key, items[i + 1].key);
    if (items[i].key == items[i + 1].key) {
      ASSERT_LT(items[i].value, items[i + 1].value) << "instability at " << i;
    }
  }
}

TEST(SortKeys, RadixSortRespectsKeyBitsParameter) {
  // Only the low 16 bits are populated; 2 passes must fully sort.
  std::mt19937 gen(13);
  std::uniform_int_distribution<std::uint64_t> dist(0, 0xffff);
  std::vector<std::uint64_t> keys(777);
  for (auto& k : keys) k = dist(gen);
  std::vector<std::uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());

  std::vector<std::uint64_t> tmp;
  radix_sort_keys(keys, tmp, keys.size(), 16);
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(radix_pass_count(16), 2);
}

// Builds a single-cell binning over splats with deliberate depth ties.
BinnedSplats one_cell_bins(std::size_t n) {
  BinnedSplats bins;
  bins.grid = CellGrid::over_image(16, 16, 16);
  bins.offsets = {0, static_cast<std::uint32_t>(n)};
  bins.splat_ids.resize(n);
  for (std::size_t i = 0; i < n; ++i) bins.splat_ids[i] = static_cast<std::uint32_t>(i);
  return bins;
}

std::vector<ProjectedSplat> tied_depth_splats(std::size_t n, unsigned seed) {
  // Depths drawn from a tiny set so most entries tie and the index tiebreak
  // decides; indices are shuffled relative to ids to make the tiebreak
  // observable.
  std::mt19937 gen(seed);
  std::uniform_int_distribution<int> depth_pick(1, 4);
  std::vector<std::uint32_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = static_cast<std::uint32_t>(i);
  std::shuffle(indices.begin(), indices.end(), gen);

  std::vector<ProjectedSplat> splats(n);
  for (std::size_t i = 0; i < n; ++i) {
    splats[i].depth = static_cast<float>(depth_pick(gen));
    splats[i].index = indices[i];
  }
  return splats;
}

TEST(SortKeys, CellListRadixMatchesComparisonOnDepthTies) {
  for (const std::size_t n : {2ul, 17ul, 63ul, 64ul, 257ul, 1024ul}) {
    const std::vector<ProjectedSplat> splats =
        tied_depth_splats(n, 23 + static_cast<unsigned>(n));

    BinnedSplats comparison = one_cell_bins(n);
    BinnedSplats radix = one_cell_bins(n);
    RenderCounters c1, c2;
    sort_cell_lists(comparison, splats, 1, c1, SortAlgo::kComparison);
    sort_cell_lists(radix, splats, 1, c2, SortAlgo::kRadix);

    EXPECT_EQ(comparison.splat_ids, radix.splat_ids) << "n=" << n;
    EXPECT_EQ(c1.sort_pairs, c2.sort_pairs);
    // Both orderings must actually be sorted by (depth, index).
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const ProjectedSplat& a = splats[radix.splat_ids[i]];
      const ProjectedSplat& b = splats[radix.splat_ids[i + 1]];
      ASSERT_TRUE(a.depth < b.depth || (a.depth == b.depth && a.index < b.index))
          << "unsorted at " << i;
    }
  }
}

TEST(SortKeys, AutoSelectsRadixAboveCutoff) {
  EXPECT_FALSE(use_radix_sort(SortAlgo::kAuto, kRadixSortCutoff - 1));
  EXPECT_TRUE(use_radix_sort(SortAlgo::kAuto, kRadixSortCutoff));
  EXPECT_TRUE(use_radix_sort(SortAlgo::kRadix, 2));
  EXPECT_FALSE(use_radix_sort(SortAlgo::kComparison, 1 << 20));
}

TEST(SortKeys, SortScratchReusePreservesResults) {
  // The same scratch across repeated sorts must not change the outcome.
  const std::size_t n = 300;
  const std::vector<ProjectedSplat> splats = tied_depth_splats(n, 99);
  SortScratch scratch;

  BinnedSplats reference = one_cell_bins(n);
  RenderCounters cr;
  sort_cell_lists(reference, splats, 1, cr, SortAlgo::kAuto);

  for (int round = 0; round < 3; ++round) {
    BinnedSplats bins = one_cell_bins(n);
    RenderCounters c;
    sort_cell_lists(bins, splats, 1, c, SortAlgo::kAuto, &scratch);
    EXPECT_EQ(bins.splat_ids, reference.splat_ids) << "round " << round;
    EXPECT_EQ(c.sort_pairs, cr.sort_pairs);
    EXPECT_DOUBLE_EQ(c.sort_comparison_volume, cr.sort_comparison_volume);
  }
}

}  // namespace
}  // namespace gstg
