// The typed-error contract of framebuffer I/O (lint rule R3): PPM write
// failures throw FramebufferError — derived from std::runtime_error with
// the "Framebuffer: " prefix — never a raw std::runtime_error. Size/shape
// misuse stays std::invalid_argument.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "render/framebuffer.h"

namespace gstg {
namespace {

TEST(FramebufferErrors, WriteToUnopenablePathThrowsTyped) {
  const Framebuffer fb(4, 4);
  const std::string path = "/nonexistent_gstg_dir/out.ppm";
  EXPECT_THROW(fb.write_ppm(path), FramebufferError);
}

TEST(FramebufferErrors, DerivesFromRuntimeErrorWithPrefix) {
  const Framebuffer fb(4, 4);
  try {
    fb.write_ppm("/nonexistent_gstg_dir/out.ppm");
    FAIL() << "expected FramebufferError";
  } catch (const std::runtime_error& e) {
    // Catchable as runtime_error (existing catch sites keep working) and
    // identifiable by the layer prefix.
    EXPECT_EQ(std::string(e.what()).rfind("Framebuffer: ", 0), 0u) << e.what();
  }
}

TEST(FramebufferErrors, ShapeMisuseStaysInvalidArgument) {
  EXPECT_THROW(Framebuffer(-1, 4), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
