#include "render/binning.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_helpers.h"
#include "render/preprocess.h"

namespace gstg {
namespace {

using testutil::make_camera;

ProjectedSplat make_splat(Vec2 center, Sym2 cov, float depth = 1.0f, std::uint32_t index = 0) {
  ProjectedSplat s;
  s.center = center;
  s.cov = cov;
  s.conic = inverse(cov);
  s.depth = depth;
  s.opacity = 0.9f;
  s.rho = kThreeSigmaRho;
  s.index = index;
  return s;
}

TEST(CellGrid, CoversImageWithCeilDivision) {
  const CellGrid g = CellGrid::over_image(100, 50, 16);
  EXPECT_EQ(g.cells_x, 7);
  EXPECT_EQ(g.cells_y, 4);
  EXPECT_EQ(g.cell_count(), 28);
  EXPECT_EQ(g.cell_index(2, 1), 9);
  EXPECT_THROW(CellGrid::over_image(0, 50, 16), std::invalid_argument);
  EXPECT_THROW(CellGrid::over_image(100, 50, 0), std::invalid_argument);
}

TEST(CandidateCells, ClipsToGrid) {
  const CellGrid g = CellGrid::over_image(128, 128, 16);
  // Small circular splat centred at (24, 24), radius 3*1 = 3 px.
  const ProjectedSplat s = make_splat({24, 24}, Sym2{1, 0, 1});
  const TileRange r = candidate_cells(s, g);
  EXPECT_EQ(r.tx0, 1);
  EXPECT_EQ(r.ty0, 1);
  EXPECT_EQ(r.tx1, 2);
  EXPECT_EQ(r.ty1, 2);
  // Splat near the corner: range clipped at zero.
  const ProjectedSplat corner = make_splat({1, 1}, Sym2{4, 0, 4});
  const TileRange rc = candidate_cells(corner, g);
  EXPECT_EQ(rc.tx0, 0);
  EXPECT_EQ(rc.ty0, 0);
  EXPECT_GE(rc.count(), 1);
}

TEST(BinSplats, SmallSplatLandsInOneTile) {
  const CellGrid g = CellGrid::over_image(128, 128, 16);
  const std::vector<ProjectedSplat> splats = {make_splat({40, 40}, Sym2{0.5f, 0, 0.5f})};
  for (const Boundary b : {Boundary::kAabb, Boundary::kObb, Boundary::kEllipse}) {
    RenderCounters counters;
    const BinnedSplats bins = bin_splats(splats, g, b, 1, counters);
    EXPECT_EQ(counters.tile_pairs, 1u) << to_string(b);
    EXPECT_EQ(bins.cell_size_of(g.cell_index(2, 2)), 1u);
    EXPECT_EQ(counters.splats_multi_tile, 0u);
  }
}

TEST(BinSplats, DiagonalSplatEllipseTighterThanAabb) {
  const CellGrid g = CellGrid::over_image(160, 160, 16);
  // Strongly elongated diagonal splat (the paper's Fig. 2 situation).
  const Sym2 cov{60.0f, 55.0f, 60.0f};
  const std::vector<ProjectedSplat> splats = {make_splat({80, 80}, cov)};
  std::size_t pairs[3];
  int i = 0;
  for (const Boundary b : {Boundary::kAabb, Boundary::kObb, Boundary::kEllipse}) {
    RenderCounters counters;
    bin_splats(splats, g, b, 1, counters);
    pairs[i++] = counters.tile_pairs;
  }
  EXPECT_GT(pairs[0], pairs[1]);  // AABB > OBB
  EXPECT_GE(pairs[1], pairs[2]);  // OBB >= Ellipse
  EXPECT_GT(pairs[2], 0u);
}

TEST(BinSplats, ContainmentChainOnRealWorkload) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(800, 3);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 16);

  RenderCounters ca, co, ce;
  const BinnedSplats aabb = bin_splats(splats, g, Boundary::kAabb, 0, ca);
  const BinnedSplats obb = bin_splats(splats, g, Boundary::kObb, 0, co);
  const BinnedSplats ell = bin_splats(splats, g, Boundary::kEllipse, 0, ce);

  EXPECT_GE(ca.tile_pairs, co.tile_pairs);
  EXPECT_GE(co.tile_pairs, ce.tile_pairs);

  // Per-cell set containment: ellipse list ⊆ obb list ⊆ aabb list.
  for (int c = 0; c < g.cell_count(); ++c) {
    std::set<std::uint32_t> sa(aabb.cell_list(c).begin(), aabb.cell_list(c).end());
    std::set<std::uint32_t> so(obb.cell_list(c).begin(), obb.cell_list(c).end());
    std::set<std::uint32_t> se(ell.cell_list(c).begin(), ell.cell_list(c).end());
    for (const auto id : se) EXPECT_TRUE(so.count(id)) << "cell " << c;
    for (const auto id : so) EXPECT_TRUE(sa.count(id)) << "cell " << c;
  }
}

TEST(BinSplats, CsrIsConsistent) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(500, 11);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 32);
  for (const BinningMode m : {BinningMode::kFlat, BinningMode::kHierarchical}) {
    RenderCounters counters;
    const BinnedSplats bins = bin_splats(splats, g, Boundary::kEllipse, 0, counters, m);

    ASSERT_EQ(bins.offsets.size(), static_cast<std::size_t>(g.cell_count()) + 1);
    EXPECT_EQ(bins.offsets.front(), 0u);
    EXPECT_EQ(bins.offsets.back(), bins.splat_ids.size());
    EXPECT_EQ(bins.splat_ids.size(), counters.tile_pairs);
    for (std::size_t c = 0; c + 1 < bins.offsets.size(); ++c) {
      EXPECT_LE(bins.offsets[c], bins.offsets[c + 1]);
    }
    for (const std::uint32_t id : bins.splat_ids) {
      EXPECT_LT(id, splats.size());
    }
  }
}

TEST(BinSplats, DeterministicSetAcrossThreadCounts) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(1000, 19);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 16);
  for (const BinningMode m : {BinningMode::kFlat, BinningMode::kHierarchical}) {
    RenderCounters c1, c4;
    const BinnedSplats b1 = bin_splats(splats, g, Boundary::kEllipse, 1, c1, m);
    const BinnedSplats b4 = bin_splats(splats, g, Boundary::kEllipse, 4, c4, m);
    EXPECT_EQ(c1.tile_pairs, c4.tile_pairs);
    EXPECT_EQ(c1.boundary_tests, c4.boundary_tests);
    EXPECT_EQ(c1.coarse_pairs, c4.coarse_pairs);
    ASSERT_EQ(b1.offsets, b4.offsets);
    // Per-cell sets equal (order within a cell may differ before sorting).
    for (int c = 0; c < g.cell_count(); ++c) {
      std::multiset<std::uint32_t> s1(b1.cell_list(c).begin(), b1.cell_list(c).end());
      std::multiset<std::uint32_t> s4(b4.cell_list(c).begin(), b4.cell_list(c).end());
      EXPECT_EQ(s1, s4);
    }
  }
}

TEST(BinSplats, MultiTileCounterMatchesDefinition) {
  const CellGrid g = CellGrid::over_image(64, 64, 16);
  // One splat inside a single tile, one spanning several.
  const std::vector<ProjectedSplat> splats = {
      make_splat({8, 8}, Sym2{0.5f, 0, 0.5f}, 1.0f, 0),
      make_splat({32, 32}, Sym2{40.0f, 0, 40.0f}, 2.0f, 1),
  };
  RenderCounters counters;
  counters.visible_gaussians = splats.size();  // normally set by preprocess()
  bin_splats(splats, g, Boundary::kAabb, 1, counters);
  EXPECT_EQ(counters.splats_multi_tile, 1u);
  EXPECT_NEAR(counters.shared_gaussian_percent(), 50.0, 1e-9);
}

TEST(BinSplats, LargerTilesMeanFewerPairs) {
  const Camera cam = make_camera(512, 384);
  const GaussianCloud cloud = testutil::make_random_cloud(1500, 23);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  std::size_t prev_pairs = SIZE_MAX;
  for (const int tile : {8, 16, 32, 64}) {
    RenderCounters counters;
    const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), tile);
    bin_splats(splats, g, Boundary::kEllipse, 0, counters);
    EXPECT_LT(counters.tile_pairs, prev_pairs) << "tile " << tile;
    prev_pairs = counters.tile_pairs;
  }
}

}  // namespace
}  // namespace gstg
