#include "render/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace gstg {
namespace {

Framebuffer noise_image(int w, int h, unsigned seed, float lo = 0.0f, float hi = 1.0f) {
  Framebuffer fb(w, h);
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (Vec3& p : fb.pixels()) p = {dist(gen), dist(gen), dist(gen)};
  return fb;
}

TEST(Ssim, IdenticalImagesScoreOne) {
  const Framebuffer a = noise_image(64, 48, 1);
  EXPECT_DOUBLE_EQ(ssim(a, a), 1.0);
}

TEST(Ssim, UncorrelatedNoiseScoresLow) {
  const Framebuffer a = noise_image(64, 48, 2);
  const Framebuffer b = noise_image(64, 48, 3);
  EXPECT_LT(ssim(a, b), 0.2);
}

TEST(Ssim, SmallPerturbationScoresHigh) {
  const Framebuffer a = noise_image(64, 48, 4);
  Framebuffer b = a;
  std::mt19937 gen(5);
  std::normal_distribution<float> jitter(0.0f, 0.004f);
  for (Vec3& p : b.pixels()) {
    p.x = std::clamp(p.x + jitter(gen), 0.0f, 1.0f);
    p.y = std::clamp(p.y + jitter(gen), 0.0f, 1.0f);
    p.z = std::clamp(p.z + jitter(gen), 0.0f, 1.0f);
  }
  EXPECT_GT(ssim(a, b), 0.95);
}

TEST(Ssim, OrderedBetweenDegradations) {
  const Framebuffer a = noise_image(64, 48, 6);
  Framebuffer mild = a, harsh = a;
  std::mt19937 gen(7);
  std::normal_distribution<float> small(0.0f, 0.01f);
  std::normal_distribution<float> large(0.0f, 0.1f);
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    mild.pixels()[i].x = std::clamp(a.pixels()[i].x + small(gen), 0.0f, 1.0f);
    harsh.pixels()[i].x = std::clamp(a.pixels()[i].x + large(gen), 0.0f, 1.0f);
  }
  EXPECT_GT(ssim(a, mild), ssim(a, harsh));
}

TEST(Ssim, RejectsBadInput) {
  const Framebuffer a = noise_image(64, 48, 8);
  const Framebuffer b = noise_image(48, 64, 9);
  EXPECT_THROW(ssim(a, b), std::invalid_argument);
  const Framebuffer tiny(4, 4);
  EXPECT_THROW(ssim(tiny, tiny), std::invalid_argument);
}

TEST(ChannelPsnr, InfinityForIdentical) {
  const Framebuffer a = noise_image(32, 32, 10);
  const ChannelPsnr p = channel_psnr(a, a);
  EXPECT_TRUE(std::isinf(p.r));
  EXPECT_TRUE(std::isinf(p.g));
  EXPECT_TRUE(std::isinf(p.b));
}

TEST(ChannelPsnr, KnownUniformError) {
  Framebuffer a(32, 32), b(32, 32);
  for (Vec3& p : b.pixels()) p = {0.1f, 0.0f, 0.0f};  // red MSE = 0.01
  const ChannelPsnr p = channel_psnr(a, b);
  EXPECT_NEAR(p.r, 20.0, 1e-4);  // 10 log10(1/0.01)
  EXPECT_TRUE(std::isinf(p.g));
  EXPECT_TRUE(std::isinf(p.b));
}

TEST(ChannelPsnr, SizeMismatchThrows) {
  Framebuffer a(32, 32), b(16, 16);
  EXPECT_THROW(channel_psnr(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
