// Sortless pipeline (PipelineMode::kSortless / kVerify): the
// order-independent transmittance path never sorts, is bit-deterministic
// across thread counts, SIMD backends and splat-list permutations, meets
// the committed PSNR/SSIM floor on every bench scene, bypasses the temporal
// cache cleanly, and rejects the contradictory sortless + temporal-kVerify
// configuration with a typed error.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <random>
#include <stdexcept>

#include "core/pipeline.h"
#include "core/renderer.h"
#include "render/preprocess.h"
#include "render/quality.h"
#include "render/rasterize.h"
#include "render/simd_kernels.h"
#include "scene/scene.h"
#include "temporal/temporal_renderer.h"
#include "test_helpers.h"

// --- Global allocation counter -------------------------------------------
// Counts every operator new in this binary; the steady-state test asserts
// the delta across a warmed-up sortless render is zero. Same idiom as
// tests/core/test_renderer.cpp (see the note there about the GCC
// -Wmismatched-new-delete false positive).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::make_random_cloud;

bool images_identical(const Framebuffer& a, const Framebuffer& b) {
  return a.width() == b.width() && a.height() == b.height() && max_abs_diff(a, b) == 0.0f;
}

bool counters_equal(const RenderCounters& a, const RenderCounters& b) {
  return a.visible_gaussians == b.visible_gaussians && a.tile_pairs == b.tile_pairs &&
         a.sort_pairs == b.sort_pairs &&
         a.sort_comparison_volume == b.sort_comparison_volume &&
         a.alpha_computations == b.alpha_computations && a.blend_ops == b.blend_ops &&
         a.early_exit_pixels == b.early_exit_pixels && a.total_pixels == b.total_pixels;
}

GsTgConfig sortless_config(std::size_t threads = 1) {
  GsTgConfig config;
  config.threads = threads;
  config.pipeline = PipelineMode::kSortless;
  return config;
}

TEST(Sortless, NeverSortsAndNeverEarlyExits) {
  const GaussianCloud cloud = make_random_cloud(800, 11);
  const Camera camera = make_camera();

  const RenderResult sortless = render_gstg(cloud, camera, sortless_config());
  EXPECT_EQ(sortless.counters.sort_pairs, 0u);
  EXPECT_EQ(sortless.counters.sort_comparison_volume, 0.0);
  // Transmittance early exit would reintroduce order dependence.
  EXPECT_EQ(sortless.counters.early_exit_pixels, 0u);
  EXPECT_FALSE(sortless.quality.measured);

  GsTgConfig exact;
  exact.threads = 1;
  const RenderResult reference = render_gstg(cloud, camera, exact);
  EXPECT_GT(reference.counters.sort_pairs, 0u);
  // Same culling/binning front end: only the blending discipline differs.
  EXPECT_EQ(sortless.counters.visible_gaussians, reference.counters.visible_gaussians);
  EXPECT_EQ(sortless.counters.tile_pairs, reference.counters.tile_pairs);
}

TEST(Sortless, BitIdenticalAcrossThreadCounts) {
  const GaussianCloud cloud = make_random_cloud(900, 23);
  const Camera camera = make_camera(192, 160);

  const RenderResult one = render_gstg(cloud, camera, sortless_config(1));
  for (const std::size_t threads : {2u, 4u}) {
    const RenderResult many = render_gstg(cloud, camera, sortless_config(threads));
    EXPECT_TRUE(images_identical(one.image, many.image)) << threads << " threads";
    EXPECT_TRUE(counters_equal(one.counters, many.counters)) << threads << " threads";
  }
}

TEST(Sortless, BitIdenticalAcrossSimdBackends) {
  const GaussianCloud cloud = make_random_cloud(700, 5);
  const Camera camera = make_camera();

  GsTgConfig scalar = sortless_config();
  scalar.simd.backend = SimdBackend::kScalar;
  const RenderResult reference = render_gstg(cloud, camera, scalar);

  for (const SimdBackend backend : available_simd_backends()) {
    if (backend == SimdBackend::kScalar) continue;
    GsTgConfig config = sortless_config();
    config.simd.backend = backend;
    const RenderResult result = render_gstg(cloud, camera, config);
    EXPECT_TRUE(images_identical(reference.image, result.image)) << to_string(backend);
    EXPECT_TRUE(counters_equal(reference.counters, result.counters)) << to_string(backend);
  }
}

TEST(Sortless, TileKernelIsOrderIndependent) {
  const GaussianCloud cloud = make_random_cloud(400, 77);
  const Camera camera = make_camera(64, 64);
  RenderConfig config;
  RenderCounters counters;
  const std::vector<ProjectedSplat> splats = preprocess(cloud, camera, config, counters);
  ASSERT_GT(splats.size(), 8u);

  std::vector<std::uint32_t> order(splats.size());
  std::iota(order.begin(), order.end(), 0u);

  Framebuffer forward(64, 64);
  SortlessRasterScratch scratch;
  const TileRasterStats ref =
      rasterize_tile_sortless(splats, order, 0, 0, 64, 64, forward, scratch);

  std::mt19937 gen(123);
  for (int round = 0; round < 3; ++round) {
    std::shuffle(order.begin(), order.end(), gen);
    Framebuffer shuffled(64, 64);
    const TileRasterStats stats =
        rasterize_tile_sortless(splats, order, 0, 0, 64, 64, shuffled, scratch);
    EXPECT_TRUE(images_identical(forward, shuffled)) << "round " << round;
    EXPECT_EQ(ref.alpha_computations, stats.alpha_computations);
    EXPECT_EQ(ref.blend_ops, stats.blend_ops);
    EXPECT_EQ(stats.early_exit_pixels, 0u);
  }
}

TEST(Sortless, VerifyShipsSortlessImageAndMeasuresQuality) {
  const GaussianCloud cloud = make_random_cloud(600, 31);
  const Camera camera = make_camera();

  const RenderResult sortless = render_gstg(cloud, camera, sortless_config());
  GsTgConfig verify_config = sortless_config();
  verify_config.pipeline = PipelineMode::kVerify;
  const RenderResult verify = render_gstg(cloud, camera, verify_config);

  // kVerify ships the sortless image and counters; the exact reference and
  // audit work stay out of the shipped record.
  EXPECT_TRUE(images_identical(sortless.image, verify.image));
  EXPECT_TRUE(counters_equal(sortless.counters, verify.counters));

  ASSERT_TRUE(verify.quality.measured);
  GsTgConfig exact;
  exact.threads = 1;
  const RenderResult reference = render_gstg(cloud, camera, exact);
  const ImageQuality expected = image_quality(reference.image, sortless.image);
  EXPECT_EQ(verify.quality.psnr, expected.psnr);
  EXPECT_EQ(verify.quality.ssim, expected.ssim);
}

TEST(Sortless, BenchScenesMeetCommittedFloor) {
  for (const char* name : {"train", "truck", "drjohnson", "playroom"}) {
    const Scene scene = generate_scene(name, RunScale{8, 64});
    GsTgConfig config;
    config.pipeline = PipelineMode::kVerify;
    const RenderResult result = render_gstg(scene.cloud, scene.camera, config);
    ASSERT_TRUE(result.quality.measured) << name;
    EXPECT_EQ(result.counters.sort_pairs, 0u) << name;
    EXPECT_TRUE(meets_floor(result.quality, quality_floor(name)))
        << name << ": psnr " << result.quality.psnr << ", ssim " << result.quality.ssim;
  }
}

TEST(Sortless, EnvOverrideSelectsPipeline) {
  const GaussianCloud cloud = make_random_cloud(300, 9);
  const Camera camera = make_camera(96, 64);

  ASSERT_EQ(setenv("GSTG_PIPELINE", "sortless", 1), 0);
  GsTgConfig config;  // kExact; the environment must win
  const Renderer overridden(config);
  unsetenv("GSTG_PIPELINE");
  EXPECT_EQ(overridden.config().pipeline, PipelineMode::kSortless);
  FrameContext ctx;
  overridden.render(cloud, camera, ctx);
  EXPECT_EQ(ctx.counters.sort_pairs, 0u);

  // Unknown values keep the configured mode (one-time warning on stderr).
  ASSERT_EQ(setenv("GSTG_PIPELINE", "definitely-not-a-mode", 1), 0);
  const Renderer kept(config);
  unsetenv("GSTG_PIPELINE");
  EXPECT_EQ(kept.config().pipeline, PipelineMode::kExact);
}

TEST(Sortless, TemporalVerifyCombinationIsRejected) {
  for (const PipelineMode pipeline : {PipelineMode::kSortless, PipelineMode::kVerify}) {
    GsTgConfig config;
    config.pipeline = pipeline;
    config.temporal = TemporalMode::kVerify;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    EXPECT_THROW(Renderer{config}, std::invalid_argument);
    EXPECT_THROW(TemporalRenderer{config}, std::invalid_argument);
  }
}

TEST(Sortless, TemporalRendererBypassesCacheCleanly) {
  const Scene scene = generate_scene("train", RunScale{8, 64});
  const std::vector<Camera> cameras = orbit_cameras(scene, 4);

  GsTgConfig config = sortless_config();
  config.temporal = TemporalMode::kReuse;

  TemporalRenderer temporal(config);
  const Renderer plain(config);
  FrameContext temporal_ctx;
  FrameContext plain_ctx;
  for (std::size_t i = 0; i < cameras.size(); ++i) {
    temporal.render(scene.cloud, cameras[i], temporal_ctx);
    plain.render(scene.cloud, cameras[i], plain_ctx);
    EXPECT_TRUE(images_identical(plain_ctx.image, temporal_ctx.image)) << "frame " << i;
    EXPECT_TRUE(counters_equal(plain_ctx.counters, temporal_ctx.counters)) << "frame " << i;
    // The cross-frame cache is never consulted: no reuse, no sorting.
    EXPECT_EQ(temporal.last_frame().frames, 1u);
    EXPECT_EQ(temporal.last_frame().groups_total, 0u);
    EXPECT_EQ(temporal.last_frame().pairs_reused, 0u);
    EXPECT_EQ(temporal.last_frame().pairs_sorted, 0u);
  }
  EXPECT_EQ(temporal.total().frames, cameras.size());
  EXPECT_EQ(temporal.total().pairs_reused, 0u);
  EXPECT_EQ(temporal.total().pairs_sorted, 0u);
}

TEST(Sortless, SteadyStateAllocatesNothing) {
  const GaussianCloud cloud = make_random_cloud(700, 99);
  const Camera camera = make_camera();
  GsTgConfig config = sortless_config(1);  // worker threads would allocate
  const Renderer renderer(config);

  FrameContext ctx;
  renderer.render(cloud, camera, ctx);  // warm-up: grow every buffer
  renderer.render(cloud, camera, ctx);

  const std::size_t before = g_alloc_count.load();
  renderer.render(cloud, camera, ctx);
  const std::size_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "steady-state sortless render allocated";
}

}  // namespace
}  // namespace gstg
