#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "../test_helpers.h"
#include "render/binning.h"
#include "render/preprocess.h"
#include "render/rasterize.h"
#include "render/sort.h"

namespace gstg {
namespace {

using testutil::make_camera;

ProjectedSplat flat_splat(Vec2 center, float depth, float opacity, Vec3 rgb,
                          std::uint32_t index, float sigma_px = 4.0f) {
  ProjectedSplat s;
  s.center = center;
  s.cov = Sym2{sigma_px * sigma_px, 0.0f, sigma_px * sigma_px};
  s.conic = inverse(s.cov);
  s.depth = depth;
  s.opacity = opacity;
  s.rgb = rgb;
  s.rho = kThreeSigmaRho;
  s.index = index;
  return s;
}

TEST(SortCells, OrdersByDepthThenIndex) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(800, 5);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 16);
  RenderCounters counters;
  BinnedSplats bins = bin_splats(splats, g, Boundary::kEllipse, 0, counters);
  sort_cell_lists(bins, splats, 0, counters);

  for (int c = 0; c < g.cell_count(); ++c) {
    const auto list = bins.cell_list(c);
    for (std::size_t i = 1; i < list.size(); ++i) {
      const auto& a = splats[list[i - 1]];
      const auto& b = splats[list[i]];
      EXPECT_TRUE(a.depth < b.depth || (a.depth == b.depth && a.index < b.index))
          << "cell " << c << " pos " << i;
    }
  }
  EXPECT_EQ(counters.sort_pairs, counters.tile_pairs);
  EXPECT_GT(counters.sort_comparison_volume, 0.0);
}

TEST(SortCells, EqualDepthTieBreaksByIndex) {
  std::vector<ProjectedSplat> splats = {
      flat_splat({8, 8}, 2.0f, 0.5f, {1, 0, 0}, 5),
      flat_splat({8, 8}, 2.0f, 0.5f, {0, 1, 0}, 2),
      flat_splat({8, 8}, 2.0f, 0.5f, {0, 0, 1}, 9),
  };
  const CellGrid g = CellGrid::over_image(16, 16, 16);
  RenderCounters counters;
  BinnedSplats bins = bin_splats(splats, g, Boundary::kAabb, 1, counters);
  sort_cell_lists(bins, splats, 1, counters);
  const auto list = bins.cell_list(0);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(splats[list[0]].index, 2u);
  EXPECT_EQ(splats[list[1]].index, 5u);
  EXPECT_EQ(splats[list[2]].index, 9u);
}

TEST(RasterizeTile, SingleOpaqueSplatPaintsItsColor) {
  Framebuffer fb(16, 16);
  // Splat centred exactly on the pixel centre of pixel (8, 8).
  const std::vector<ProjectedSplat> splats = {flat_splat({8.5f, 8.5f}, 1.0f, 0.99f, {1, 0, 0}, 0)};
  const std::vector<std::uint32_t> order = {0};
  const TileRasterStats stats = rasterize_tile(splats, order, 0, 0, 16, 16, fb);
  // At the centre alpha = 0.99 clamped -> nearly pure red.
  const Vec3 center = fb.at(8, 8);
  EXPECT_NEAR(center.x, 0.99f, 0.001f);
  EXPECT_NEAR(center.y, 0.0f, 1e-5f);
  EXPECT_EQ(stats.pixels, 256u);
  EXPECT_EQ(stats.alpha_computations, 256u);
  EXPECT_GT(stats.blend_ops, 0u);
  EXPECT_EQ(stats.pixel_list_work, 256u);
}

TEST(RasterizeTile, FrontToBackOcclusion) {
  Framebuffer fb(16, 16);
  // Opaque red in front of opaque green at the same position.
  const std::vector<ProjectedSplat> splats = {
      flat_splat({8.5f, 8.5f}, 1.0f, 0.99f, {1, 0, 0}, 0),
      flat_splat({8.5f, 8.5f}, 2.0f, 0.99f, {0, 1, 0}, 1),
  };
  const std::vector<std::uint32_t> order = {0, 1};  // sorted front-to-back
  rasterize_tile(splats, order, 0, 0, 16, 16, fb);
  const Vec3 c = fb.at(8, 8);
  EXPECT_GT(c.x, 0.95f);
  EXPECT_LT(c.y, 0.02f);  // green almost fully occluded
}

TEST(RasterizeTile, BlendingMatchesClosedForm) {
  Framebuffer fb(16, 16);
  // Two half-transparent splats: colour = a1 c1 + a2 c2 (1 - a1) at centre.
  const std::vector<ProjectedSplat> splats = {
      flat_splat({8, 8}, 1.0f, 0.5f, {1, 0, 0}, 0, 100.0f),  // huge sigma: flat alpha
      flat_splat({8, 8}, 2.0f, 0.5f, {0, 0, 1}, 1, 100.0f),
  };
  const std::vector<std::uint32_t> order = {0, 1};
  rasterize_tile(splats, order, 0, 0, 16, 16, fb);
  const Vec3 c = fb.at(8, 8);
  EXPECT_NEAR(c.x, 0.5f, 0.01f);
  EXPECT_NEAR(c.z, 0.5f * 0.5f, 0.01f);
}

TEST(RasterizeTile, AlphaThresholdSkipsFarPixels) {
  Framebuffer fb(32, 32);
  // Tiny splat in the corner of a large block: most pixels get alpha < 1/255.
  const std::vector<ProjectedSplat> splats = {flat_splat({4, 4}, 1.0f, 0.9f, {1, 1, 1}, 0, 1.0f)};
  const std::vector<std::uint32_t> order = {0};
  const TileRasterStats stats = rasterize_tile(splats, order, 0, 0, 32, 32, fb);
  // alpha_computations counts only in-footprint quad evaluations
  // (0 <= q <= 2 ln(255 sigma)); the reference count is enumerated here.
  const float q_max = 2.0f * std::log(255.0f * 0.9f);
  std::size_t in_range = 0;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const Vec2 d{static_cast<float>(x) + 0.5f - 4.0f, static_cast<float>(y) + 0.5f - 4.0f};
      const float q = splats[0].conic.quad(d);
      if (!(q > q_max || q < 0.0f)) ++in_range;
    }
  }
  EXPECT_EQ(stats.alpha_computations, in_range);
  EXPECT_LT(stats.alpha_computations, 1024u);  // far pixels are not charged
  EXPECT_LT(stats.blend_ops, 200u);            // only pixels near the splat blend
  EXPECT_EQ(stats.pixel_list_work, 1024u);     // the Fig. 7 workload still counts all
  EXPECT_EQ(fb.at(31, 31).x, 0.0f);
}

TEST(RasterizeTile, AlphaCounterPinnedOnKnownScene) {
  // Regression pin for the counter-semantics fix: the in-range guard is
  // hoisted above the alpha-computation counter, so sim workloads charge the
  // RM datapath only for (pixel, splat) pairs it actually evaluates.
  Framebuffer fb(16, 16);
  const std::vector<ProjectedSplat> splats = {
      flat_splat({8.5f, 8.5f}, 1.0f, 0.9f, {1, 0, 0}, 0, 2.0f),
      flat_splat({2.5f, 2.5f}, 2.0f, 0.5f, {0, 1, 0}, 1, 1.5f),
  };
  const std::vector<std::uint32_t> order = {0, 1};
  const TileRasterStats stats = rasterize_tile(splats, order, 0, 0, 16, 16, fb);

  // Independent scalar reference with the documented semantics.
  std::size_t expected_alpha = 0, expected_blends = 0;
  for (const std::uint32_t id : order) {
    const ProjectedSplat& s = splats[id];
    const float q_max = 2.0f * std::log(255.0f * s.opacity);
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        const Vec2 d{static_cast<float>(x) + 0.5f - s.center.x,
                     static_cast<float>(y) + 0.5f - s.center.y};
        const float q = s.conic.quad(d);
        if (q > q_max || q < 0.0f) continue;
        ++expected_alpha;
        const float alpha = std::min(kAlphaClamp, s.opacity * std::exp(-0.5f * q));
        if (alpha >= kAlphaThreshold) ++expected_blends;
      }
    }
  }
  EXPECT_EQ(stats.alpha_computations, expected_alpha);
  EXPECT_EQ(stats.blend_ops, expected_blends);
  // Stable absolute pin (16x16 tile, sigma 2 and 1.5 footprints): a change
  // to either the guard or the counter placement moves this number.
  EXPECT_EQ(stats.alpha_computations, 183u);
}

TEST(RasterizeTile, EarlyExitStopsWork) {
  Framebuffer fb(8, 8);
  // A stack of opaque splats: after a few, transmittance < 1e-4 everywhere
  // and the remaining splats must not be evaluated.
  std::vector<ProjectedSplat> splats;
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < 50; ++i) {
    splats.push_back(flat_splat({4, 4}, 1.0f + static_cast<float>(i), 0.99f, {1, 1, 1}, i, 50.0f));
    order.push_back(i);
  }
  const TileRasterStats stats = rasterize_tile(splats, order, 0, 0, 8, 8, fb);
  EXPECT_EQ(stats.early_exit_pixels, 64u);
  // T after k splats = 0.01^k; < 1e-4 after 2 -> ~3 evaluations per pixel.
  EXPECT_LT(stats.alpha_computations, 64u * 5u);
  EXPECT_EQ(stats.pixel_list_work, 64u * 50u);  // workload metric ignores exits
}

TEST(RasterizeTile, RejectsBadBlock) {
  Framebuffer fb(16, 16);
  const std::vector<ProjectedSplat> splats;
  const std::vector<std::uint32_t> order;
  EXPECT_THROW(rasterize_tile(splats, order, 0, 0, 17, 16, fb), std::invalid_argument);
  EXPECT_THROW(rasterize_tile(splats, order, -1, 0, 8, 8, fb), std::invalid_argument);
  EXPECT_THROW(rasterize_tile(splats, order, 8, 8, 8, 16, fb), std::invalid_argument);
}

TEST(RasterizeAll, CountersAggregateOverTiles) {
  const Camera cam = make_camera(128, 96);
  const GaussianCloud cloud = testutil::make_random_cloud(400, 13);
  RenderCounters counters;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, counters);
  const CellGrid g = CellGrid::over_image(cam.width(), cam.height(), 16);
  BinnedSplats bins = bin_splats(splats, g, Boundary::kEllipse, 0, counters);
  sort_cell_lists(bins, splats, 0, counters);
  Framebuffer fb(cam.width(), cam.height());
  rasterize_all(bins, splats, fb, 0, counters);

  EXPECT_EQ(counters.total_pixels, static_cast<std::size_t>(128 * 96));
  EXPECT_GT(counters.alpha_computations, 0u);
  EXPECT_GE(counters.alpha_computations, counters.blend_ops);
  EXPECT_GE(counters.pixel_list_work, counters.alpha_computations);
  EXPECT_GT(counters.gaussians_per_pixel(), 0.0);
}

TEST(Framebuffer, PpmWriteAndMetrics) {
  Framebuffer a(8, 4), b(8, 4);
  a.at(3, 2) = {1.0f, 0.5f, 0.25f};
  EXPECT_EQ(max_abs_diff(a, a), 0.0f);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
  b.at(3, 2) = {0.5f, 0.5f, 0.25f};
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_LT(psnr(a, b), 100.0);
  const std::string path = ::testing::TempDir() + "/gstg_test.ppm";
  a.write_ppm(path);
  std::ifstream check(path, std::ios::binary);
  EXPECT_TRUE(check.good());
  std::string magic;
  check >> magic;
  EXPECT_EQ(magic, "P6");
}

TEST(Framebuffer, SizeMismatchThrows) {
  Framebuffer a(8, 4), b(4, 8);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
  EXPECT_THROW(psnr(a, b), std::invalid_argument);
  EXPECT_THROW(Framebuffer(0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
