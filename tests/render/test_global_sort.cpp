#include "render/global_sort.h"

#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "render/preprocess.h"
#include "render/sort.h"

namespace gstg {
namespace {

using testutil::make_camera;

TEST(DepthKey, OrdersByCellThenDepth) {
  EXPECT_LT(make_depth_key(0, 5.0f), make_depth_key(1, 0.1f));
  EXPECT_LT(make_depth_key(3, 1.0f), make_depth_key(3, 2.0f));
  EXPECT_LT(make_depth_key(3, 0.25f), make_depth_key(3, 0.26f));
  EXPECT_EQ(make_depth_key(7, 4.5f), make_depth_key(7, 4.5f));
  // Cell lives in the high 32 bits.
  EXPECT_EQ(make_depth_key(7, 4.5f) >> 32, 7u);
}

class GlobalSortEquivalenceTest : public ::testing::TestWithParam<Boundary> {};

TEST_P(GlobalSortEquivalenceTest, MatchesPerTileSortExactly) {
  const Camera cam = make_camera(256, 192);
  const GaussianCloud cloud = testutil::make_random_cloud(1500, 201);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid grid = CellGrid::over_image(cam.width(), cam.height(), 16);

  RenderCounters c_two_step;
  BinnedSplats two_step = bin_splats(splats, grid, GetParam(), 0, c_two_step);
  sort_cell_lists(two_step, splats, 0, c_two_step);

  RenderCounters c_global;
  const BinnedSplats global = global_sorted_binning(splats, grid, GetParam(), 0, c_global);

  // Identical CSR structure AND identical within-cell order: the stable
  // radix sort reproduces the (depth, index) comparator exactly.
  ASSERT_EQ(global.offsets, two_step.offsets);
  ASSERT_EQ(global.splat_ids.size(), two_step.splat_ids.size());
  for (std::size_t k = 0; k < global.splat_ids.size(); ++k) {
    EXPECT_EQ(global.splat_ids[k], two_step.splat_ids[k]) << "pair " << k;
    if (global.splat_ids[k] != two_step.splat_ids[k]) break;
  }

  // Counter equivalence for the shared semantics.
  EXPECT_EQ(c_global.boundary_tests, c_two_step.boundary_tests);
  EXPECT_EQ(c_global.tile_pairs, c_two_step.tile_pairs);
  EXPECT_EQ(c_global.splats_multi_tile, c_two_step.splats_multi_tile);
  EXPECT_EQ(c_global.sort_pairs, c_two_step.sort_pairs);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, GlobalSortEquivalenceTest,
                         ::testing::Values(Boundary::kAabb, Boundary::kObb, Boundary::kEllipse),
                         [](const ::testing::TestParamInfo<Boundary>& param_info) {
                           return to_string(param_info.param);
                         });

TEST(GlobalSort, DeterministicAcrossThreadCounts) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(900, 203);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid grid = CellGrid::over_image(cam.width(), cam.height(), 16);
  RenderCounters c1, c4;
  const BinnedSplats a = global_sorted_binning(splats, grid, Boundary::kEllipse, 1, c1);
  const BinnedSplats b = global_sorted_binning(splats, grid, Boundary::kEllipse, 4, c4);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.splat_ids, b.splat_ids);
}

TEST(GlobalSort, EqualDepthsKeepIndexOrder) {
  // Two splats at identical depth in the same tile: stable radix keeps the
  // emission (index) order, matching the comparator's tiebreak.
  std::vector<ProjectedSplat> splats(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    splats[i].center = {8.0f, 8.0f};
    splats[i].cov = Sym2{4.0f, 0.0f, 4.0f};
    splats[i].conic = inverse(splats[i].cov);
    splats[i].depth = 2.0f;
    splats[i].opacity = 0.5f;
    splats[i].rho = kThreeSigmaRho;
    splats[i].index = i;
  }
  const CellGrid grid = CellGrid::over_image(16, 16, 16);
  RenderCounters counters;
  const BinnedSplats bins = global_sorted_binning(splats, grid, Boundary::kAabb, 1, counters);
  const auto list = bins.cell_list(0);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 0u);
  EXPECT_EQ(list[1], 1u);
  EXPECT_EQ(list[2], 2u);
}

TEST(GlobalSort, EmptyInput) {
  const CellGrid grid = CellGrid::over_image(64, 64, 16);
  RenderCounters counters;
  const BinnedSplats bins =
      global_sorted_binning(std::span<const ProjectedSplat>{}, grid, Boundary::kEllipse, 1,
                            counters);
  EXPECT_EQ(bins.splat_ids.size(), 0u);
  EXPECT_EQ(bins.offsets.back(), 0u);
  EXPECT_EQ(counters.sort_pairs, 0u);
}

TEST(GlobalSort, RadixVolumeAccounted) {
  const Camera cam = make_camera(128, 96);
  const GaussianCloud cloud = testutil::make_random_cloud(300, 207);
  RenderCounters pc;
  const auto splats = preprocess(cloud, cam, RenderConfig{}, pc);
  const CellGrid grid = CellGrid::over_image(cam.width(), cam.height(), 16);
  RenderCounters counters;
  global_sorted_binning(splats, grid, Boundary::kEllipse, 0, counters);
  // Volume = pairs * passes; passes between 5 (32+8 bits) and 8.
  EXPECT_GE(counters.sort_comparison_volume, 5.0 * static_cast<double>(counters.sort_pairs));
  EXPECT_LE(counters.sort_comparison_volume, 8.0 * static_cast<double>(counters.sort_pairs));
}

}  // namespace
}  // namespace gstg
