// Shared fixtures for renderer/core/sim tests: small deterministic clouds
// and cameras that exercise the full pipeline quickly.
#pragma once

#include <random>

#include "camera/camera.h"
#include "gaussian/cloud.h"

namespace gstg::testutil {

/// Camera 5 units from the origin looking at it, given image size.
inline Camera make_camera(int width = 256, int height = 192) {
  return Camera::from_fov(width, height, 1.2f, look_at({0.0f, 0.0f, -5.0f}, {0.0f, 0.0f, 0.0f}));
}

/// A deterministic cloud of `n` random splats spread across the camera's
/// field of view at depths 3..10, with varied anisotropy and opacity.
inline GaussianCloud make_random_cloud(std::size_t n, unsigned seed, int sh_degree = 1) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> xy(-2.2f, 2.2f);
  std::uniform_real_distribution<float> z(-2.0f, 5.0f);
  std::uniform_real_distribution<float> scl(0.02f, 0.35f);
  std::uniform_real_distribution<float> rot(-1.0f, 1.0f);
  std::uniform_real_distribution<float> op(0.05f, 0.98f);
  std::uniform_real_distribution<float> col(0.05f, 0.95f);
  GaussianCloud cloud(sh_degree);
  cloud.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cloud.add_solid({xy(gen), xy(gen), z(gen)}, {scl(gen), scl(gen), scl(gen)},
                    Quat{rot(gen), rot(gen), rot(gen), rot(gen)}, op(gen),
                    {col(gen), col(gen), col(gen)});
  }
  return cloud;
}

/// A cloud with exactly one splat at the given world position.
inline GaussianCloud single_splat(Vec3 pos, Vec3 scale, float opacity, Vec3 rgb,
                                  int sh_degree = 0) {
  GaussianCloud cloud(sh_degree);
  cloud.add_solid(pos, scale, Quat{}, opacity, rgb);
  return cloud;
}

}  // namespace gstg::testutil
