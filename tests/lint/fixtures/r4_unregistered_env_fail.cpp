// gstg-lint fixture: R4 must flag a GSTG_* environment variable literal
// that is not registered in kGstgEnvVars (common/runconfig.h).
#include <cstdlib>

namespace fixture {

bool shadow_feature_enabled() {
  return std::getenv("GSTG_FIXTURE_UNREGISTERED") != nullptr;
}

}  // namespace fixture
