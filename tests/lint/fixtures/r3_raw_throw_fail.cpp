// gstg-lint fixture: R3 must flag raw std::runtime_error / std::logic_error
// throws — failures must carry a layer-typed error class.
#include <stdexcept>
#include <string>

namespace fixture {

void parse(const std::string& text) {
  if (text.empty()) throw std::runtime_error("empty input");
  if (text.size() > 4096) throw std::logic_error("input too large");
}

}  // namespace fixture
