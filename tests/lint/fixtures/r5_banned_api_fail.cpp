// gstg-lint fixture: R5 must flag naked lock()/unlock(), rand(), and
// std::function in hot scope (fixture mode applies the union of scopes).
#include <cstdlib>
#include <functional>
#include <mutex>

namespace fixture {

std::mutex g_mutex;

int unsafe_sample(const std::function<int()>& pick) {
  g_mutex.lock();
  const int value = pick() + rand();
  g_mutex.unlock();
  return value;
}

}  // namespace fixture
