// gstg-lint fixture: R1 must flag allocation reachable from a
// GSTG_HOT_NOALLOC root through the call graph. Scanned, never compiled.
#include <cstddef>
#include <vector>

namespace fixture {

int* grow_table(std::size_t n) {
  // Reached from the annotated root below: operator new[] must be flagged.
  return new int[n];
}

void scatter(std::vector<int>& out) {
  std::vector<int> staging;  // fresh owning container in a hot callee
  out.swap(staging);
}

GSTG_HOT_NOALLOC
void hot_entry(std::vector<int>& out, std::size_t n) {
  int* table = grow_table(n);
  out.assign(table, table + n);
  scatter(out);
  delete[] table;
}

}  // namespace fixture
