// gstg-lint fixture: R2 must accept casts that clamp inside the expression,
// the shared clamped helpers, integer-only casts, and casts whose float
// arguments sit inside a nested call (the cast sees the call's return type).
#include <algorithm>
#include <cstdint>

namespace fixture {

std::uint32_t depth_bits(float depth);

int quantize(float v) {
  return static_cast<int>(std::clamp(v * 4.0f, 0.0f, 63.0f));
}

int via_helper(float v) {
  return clamped_float_to_int(v, 0, 255);
}

std::uint64_t pack(float depth, std::uint32_t index) {
  return (static_cast<std::uint64_t>(depth_bits(depth)) << 32) | index;
}

int narrow(long wide) {
  return static_cast<int>(wide);  // integer source: out of R2's scope
}

}  // namespace fixture
